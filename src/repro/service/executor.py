"""Execute one claimed job: spec -> suite run -> durable result payload.

The executor is deliberately thin glue over machinery that already knows
how to survive interruptions:

* every job runs through :func:`repro.experiments.suite.run_suite` with
  ``resume=True`` over the shared :class:`~repro.experiments.cache.RunCache`
  — a job that was killed (worker SIGKILL, lease expiry, graceful drain)
  resumes from its per-cell checkpoints instead of recomputing, and the
  simulators are deterministic, so the eventual payload is byte-identical
  to an uninterrupted run modulo wall-clock fields
  (:func:`repro.telemetry.diff.diff_payloads` ignores exactly those);
* the suite's *on_cell* hook is where the service's liveness concerns
  meet the run: after every grid cell the executor records progress,
  emits a job event, polls the cancellation marker, honours the process
  interrupt flag (graceful drain), and aborts if the heartbeat thread
  reports the lease lost.

The result payload is written atomically next to the spool
(``results/<job_id>.json``) *before* the job record transitions to
``done`` — a crash between the two steps leaves a payload file without a
done record, which is re-created identically on retry.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from ..config import MachineConfig
from ..errors import JobCancelled, ServiceError
from ..experiments.cache import RunCache
from ..experiments.suite import run_suite
from ..telemetry import metrics
from ..workloads import all_workloads, get_workload, quick_workloads
from .queue import JobQueue
from .records import JobRecord


class LeaseLost(ServiceError):
    """This worker's lease expired mid-run; abandon the job silently.

    Not a failure: the reaper already requeued the job and another worker
    owns it.  Charging an attempt or writing any transition here would
    corrupt the new owner's bookkeeping.
    """


def _spec_workloads(spec: dict):
    benchmarks = spec.get("benchmarks")
    quick = bool(spec.get("quick", True))
    seed = int(spec.get("seed", 2003))
    if benchmarks is None:
        return list(quick_workloads(seed) if quick else all_workloads(seed))
    # Unknown names raise ConfigError *here*, at execution time — this is
    # the deterministic-failure path that retries and then quarantines.
    return [get_workload(name, quick=quick, seed=seed) for name in benchmarks]


def write_result(queue: JobQueue, job_id: str, payload: dict) -> str:
    """Atomically persist *payload* as the job's result; returns the path."""
    path = queue.result_path(job_id)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".json.tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, sort_keys=True, indent=1)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return str(path)


def execute_job(queue: JobQueue, record: JobRecord, worker: str,
                *, cache: RunCache | None = None,
                should_stop=None, lease_lost=None,
                progress=None, tracer=None) -> str:
    """Run *record*'s suite and persist its payload; returns the path.

    Raises :class:`JobCancelled` when the job's cancel marker appears,
    :class:`~repro.errors.InterruptedRun` on graceful drain (via the
    process interrupt flag polled inside ``run_suite``),
    :class:`LeaseLost` when *lease_lost* (a ``threading.Event`` fed by
    the heartbeat thread) fires, and whatever the simulation raises on a
    genuinely broken spec.  The caller maps each to the right queue
    transition.  *tracer* (a :class:`~repro.telemetry.spans.SpanTracer`)
    gets one retro-recorded span per grid cell.
    """
    spec = record.spec
    config = MachineConfig()
    cache = cache if cache is not None else RunCache()
    cell_delay = float(spec.get("cell_delay", 0.0))
    cell_start = [time.time_ns()]

    def on_cell(benchmark: str, mode: str, resumed: bool) -> None:
        if lease_lost is not None and lease_lost.is_set():
            raise LeaseLost(f"lease on {record.job_id} lost mid-run")
        now_ns = time.time_ns()
        cell_ns = max(now_ns - cell_start[0], 0)
        metrics.inc("job_cells_completed")
        metrics.observe("job_cell_seconds", cell_ns / 1e9)
        if tracer is not None:
            tracer.record_span(f"cell {benchmark}/{mode}",
                               cell_start[0], cell_ns, cat="cell",
                               benchmark=benchmark, mode=mode,
                               resumed=resumed)
        cell_start[0] = now_ns
        queue.record_cell(record.job_id, worker)
        queue.append_event(record.job_id, "cell", benchmark=benchmark,
                           mode=mode, resumed=resumed, worker=worker)
        if queue.cancel_marker(record.job_id).exists():
            raise JobCancelled(f"job {record.job_id} cancelled")
        if should_stop is not None and should_stop():
            # Graceful drain requested between cells: hand the job back
            # attempt-neutrally (the caller catches InterruptedRun).
            from ..errors import InterruptedRun
            raise InterruptedRun("SIGTERM")
        if cell_delay > 0 and not resumed:
            # Test hook: slow the grid down so kill-timing is
            # deterministic (only for freshly computed cells — resumed
            # cells fly by so drained jobs finish fast).
            import time as _time
            _time.sleep(cell_delay)

    suite = run_suite(
        config=config,
        quick=bool(spec.get("quick", True)),
        seed=int(spec.get("seed", 2003)),
        modes=tuple(spec.get("modes") or ()),
        workloads=_spec_workloads(spec),
        cache=cache,
        resume=True,
        verify=bool(spec.get("verify", False)),
        progress=progress,
        on_cell=on_cell,
    )
    return write_result(queue, record.job_id, suite.to_payload())
