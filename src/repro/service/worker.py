"""Leased worker process: claim, heartbeat, execute, transition.

One worker is one OS process (``python -m repro.service.worker`` — the
``hidisc serve`` supervisor spawns N of them).  The loop is::

    claim -> [lease-keeper thread renews every ttl/3] -> execute_job
          -> complete | fail | cancel | release | abandon

and every exceptional path maps to exactly one queue transition:

============================  =====================================
what happened                 transition
============================  =====================================
suite finished                ``complete`` (ownership-checked)
execution raised              ``fail`` -> retry w/ backoff or
                              quarantine past the budget
cancel marker observed        ``cancel_job`` -> failed/cancelled
SIGTERM/SIGINT (drain)        ``release`` -> pending, attempt-neutral
lease lost (reaper requeued)  *nothing* — the new owner has it
SIGKILL                       nothing runs; the reaper's lease
                              expiry requeues the job
============================  =====================================

Graceful drain rides :class:`repro.experiments.interrupt.GracefulInterrupt`:
the first SIGTERM sets the flag, ``run_suite``'s per-cell polls raise
:class:`~repro.errors.InterruptedRun` at the next cell boundary (every
finished cell already checkpointed), the worker releases the job and
exits 0.  A second signal aborts hard.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
import traceback

from ..config import MachineConfig
from ..errors import InterruptedRun, JobCancelled
from ..experiments.cache import RunCache
from ..experiments.interrupt import GracefulInterrupt
from ..experiments.ledger import RunLedger, build_record, ledger_path
from ..telemetry import metrics, spans
from ..telemetry.spans import SpanTracer
from .executor import LeaseLost, execute_job
from .observability import publish_worker_status
from .queue import JobQueue
from .records import JobRecord


class LeaseKeeper(threading.Thread):
    """Renews one job's lease every ``interval`` seconds until stopped.

    Sets :attr:`lost` (and stops renewing) the moment a renewal fails —
    the executor's per-cell hook checks it and abandons the run.
    *on_renew* (optional) fires after each successful renewal; the
    worker uses it to republish its status file mid-job so liveness
    holds through arbitrarily long cells.
    """

    def __init__(self, queue: JobQueue, job_id: str, worker: str,
                 interval: float, on_renew=None) -> None:
        super().__init__(name=f"lease-keeper-{job_id}", daemon=True)
        self.queue = queue
        self.job_id = job_id
        self.worker = worker
        self.interval = max(interval, 0.05)
        self.on_renew = on_renew
        self.lost = threading.Event()
        self._done = threading.Event()

    def run(self) -> None:
        while not self._done.wait(self.interval):
            try:
                renewed = self.queue.renew(self.job_id, self.worker)
            except Exception:
                renewed = None
            if renewed is None:
                self.lost.set()
                return
            if self.on_renew is not None:
                try:
                    self.on_renew()
                except Exception:  # pragma: no cover - status is advisory
                    pass

    def stop(self) -> None:
        self._done.set()
        self.join(timeout=5.0)


class Worker:
    """The claim/execute loop for one worker process."""

    def __init__(self, queue: JobQueue, worker_id: str | None = None,
                 *, poll_interval: float = 0.2, cache: RunCache | None = None,
                 stream=None) -> None:
        self.queue = queue
        self.worker_id = worker_id or f"worker-{os.getpid():x}"
        self.poll_interval = poll_interval
        self.cache = cache if cache is not None else RunCache()
        self.stream = stream if stream is not None else sys.stderr
        self.jobs_run = 0
        self._status_at = 0.0

    def _log(self, message: str) -> None:
        try:
            self.stream.write(f"[{self.worker_id}] {message}\n")
            self.stream.flush()
        except OSError:  # pragma: no cover - stream gone during teardown
            pass

    def publish_status(self, state: str, job_id: str | None = None,
                       min_interval: float = 0.0) -> None:
        """Publish this worker's status file (see
        :mod:`repro.service.observability`); *min_interval* rate-limits
        the idle-loop republish."""
        now = time.monotonic()
        if min_interval and now - self._status_at < min_interval:
            return
        self._status_at = now
        publish_worker_status(self.queue, self.worker_id, state,
                              job_id=job_id, jobs_run=self.jobs_run)

    # ------------------------------------------------------------------
    def _dispose(self, record: JobRecord, keeper: LeaseKeeper) -> str:
        """The claim-to-transition core of :meth:`run_one` (exactly one
        queue transition per exceptional path)."""
        tracer = spans.current()
        try:
            result_path = execute_job(
                self.queue, record, self.worker_id, cache=self.cache,
                lease_lost=keeper.lost, tracer=tracer)
        except JobCancelled:
            self.queue.cancel_job(record, worker=self.worker_id)
            self._log(f"job {record.job_id}: cancelled")
            return "cancelled"
        except InterruptedRun as exc:
            self.queue.release(record, worker=self.worker_id)
            self._log(f"job {record.job_id}: released on "
                      f"{exc.signal_name} (drain)")
            return "released"
        except LeaseLost:
            self._log(f"job {record.job_id}: lease lost, abandoning")
            return "lost"
        except Exception as exc:
            landed = self.queue.fail(
                record, f"{type(exc).__name__}: {exc}",
                traceback_text=traceback.format_exc(),
                worker=self.worker_id)
            self._log(f"job {record.job_id}: failed "
                      f"(attempt {record.attempts}) -> {landed}: {exc}")
            return landed
        if self.queue.complete(record, result_path,
                               worker=self.worker_id):
            self._log(f"job {record.job_id}: completed")
            return "completed"
        self._log(f"job {record.job_id}: completed but lease was "
                  f"lost; result dropped")
        return "lost"

    def run_one(self, record: JobRecord) -> str:
        """Execute one claimed job; returns the disposition.

        Observability wrapper around :meth:`_dispose`: a metrics scope
        isolates the job's counters (merged back afterwards, and shipped
        both to the status file live and to the run ledger at the end),
        and a per-job :class:`~repro.telemetry.spans.SpanTracer` records
        the ``job``/``execute``/per-cell span tree, persisted to the
        spool for ``hidisc jobs trace`` to stitch.
        """
        self.publish_status("running", record.job_id)
        keeper = LeaseKeeper(
            self.queue, record.job_id, self.worker_id,
            interval=self.queue.lease_ttl / 3.0,
            on_renew=lambda: self.publish_status("running", record.job_id))
        scope = metrics.push_scope()
        tracer = SpanTracer()
        was_tracing = spans.current()
        spans._TRACER = tracer
        parent_span = (record.trace or {}).get("span")
        started = time.time()
        disposition = "failed"
        keeper.start()
        try:
            with tracer.span(f"job {record.job_id}", cat="job",
                             worker=self.worker_id,
                             attempt=record.attempts + 1,
                             parent_span=parent_span):
                with tracer.span("execute", cat="job") as execute_span:
                    disposition = self._dispose(record, keeper)
                    execute_span.set(disposition=disposition)
        finally:
            keeper.stop()
            spans._TRACER = was_tracing
            elapsed = time.time() - started
            metrics.observe("job_execution_seconds", elapsed)
            metrics.inc("jobs_executed", disposition=disposition)
            snapshot = metrics.pop_scope(scope)
            metrics.merge(snapshot)
            try:
                self.queue.append_spans(record.job_id, tracer.records)
            except Exception:  # pragma: no cover - spans are advisory
                pass
            if disposition != "lost":
                self._append_ledger(record, disposition, elapsed,
                                    snapshot, tracer)
            self.publish_status("idle")
        return disposition

    def _append_ledger(self, record: JobRecord, disposition: str,
                       elapsed: float, snapshot: dict,
                       tracer: SpanTracer) -> None:
        """Best-effort run-ledger entry, so ``hidisc runs list`` /
        ``runs report`` cover service-executed suites alongside CLI
        runs.  ``lost`` dispositions are skipped — the job's new owner
        writes the authoritative entry."""
        try:
            # The claimed record is stale by now (the executor updates
            # the spool copy); report the final attempt/cell counts.
            final = self.queue.get(record.job_id) or record
            entry = build_record(
                run_id=record.job_id, command="job",
                argv=[f"--worker={self.worker_id}"],
                outcome=disposition,
                exit_code=0 if disposition == "completed" else 1,
                elapsed_seconds=elapsed, config=MachineConfig(),
                metrics_snapshot=snapshot,
                spans_summary=spans.summarize(tracer.records),
                extra={"job_id": record.job_id,
                       "worker": self.worker_id,
                       "attempts": max(final.attempts, record.attempts + 1),
                       "cells_done": final.cells_done})
            RunLedger(ledger_path(self.cache.root)).append(entry)
        except Exception:  # pragma: no cover - the ledger is advisory
            pass

    # ------------------------------------------------------------------
    def run_forever(self, *, max_jobs: int | None = None,
                    idle_exit: float | None = None) -> int:
        """Claim/execute until drained (signal), *max_jobs*, or an idle
        timeout.  Returns the process exit code (0 for a clean drain).
        """
        self._log(f"worker up (pid {os.getpid()}, "
                  f"lease_ttl {self.queue.lease_ttl}s)")
        self.publish_status("idle")
        idle_since = time.monotonic()
        with GracefulInterrupt(stream=self.stream) as gi:
            while True:
                if gi.triggered is not None:
                    self._log(f"drained on {gi.triggered}; exiting")
                    self.publish_status("stopped")
                    return 0
                if max_jobs is not None and self.jobs_run >= max_jobs:
                    self.publish_status("stopped")
                    return 0
                try:
                    record = self.queue.claim(self.worker_id)
                except Exception as exc:
                    self._log(f"claim failed: {exc}")
                    record = None
                if record is None:
                    if idle_exit is not None and \
                            time.monotonic() - idle_since > idle_exit:
                        self._log("idle timeout; exiting")
                        self.publish_status("stopped")
                        return 0
                    self.publish_status("idle", min_interval=1.0)
                    time.sleep(self.poll_interval)
                    continue
                idle_since = time.monotonic()
                self.jobs_run += 1
                self._log(f"claimed {record.job_id} "
                          f"(attempt {record.attempts + 1}/"
                          f"{record.max_attempts})")
                self.run_one(record)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.service.worker`` — spawned by ``hidisc serve``."""
    parser = argparse.ArgumentParser(
        prog="repro.service.worker",
        description="one leased simulation worker (spawned by hidisc serve)")
    parser.add_argument("--root", required=True,
                        help="service spool root directory")
    parser.add_argument("--id", dest="worker_id", default=None,
                        help="worker name used in leases and logs")
    parser.add_argument("--lease-ttl", type=float, default=30.0)
    parser.add_argument("--max-attempts", type=int, default=3)
    parser.add_argument("--retry-backoff", type=float, default=0.5)
    parser.add_argument("--poll-interval", type=float, default=0.2)
    parser.add_argument("--max-jobs", type=int, default=None)
    parser.add_argument("--idle-exit", type=float, default=None)
    parser.add_argument("--cache-dir", default=None,
                        help="run-cache root (defaults to the env-derived "
                             "cache; the supervisor passes its own so "
                             "worker and server always share one store)")
    args = parser.parse_args(argv)

    queue = JobQueue(args.root, lease_ttl=args.lease_ttl,
                     max_attempts=args.max_attempts,
                     retry_backoff=args.retry_backoff)
    queue.ensure_layout()
    cache = RunCache(args.cache_dir) if args.cache_dir else RunCache()
    worker = Worker(queue, args.worker_id, poll_interval=args.poll_interval,
                    cache=cache)
    return worker.run_forever(max_jobs=args.max_jobs,
                              idle_exit=args.idle_exit)


if __name__ == "__main__":  # pragma: no cover - subprocess entrypoint
    sys.exit(main())
