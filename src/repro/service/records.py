"""Job records and specs: the unit of work the simulation service moves
through its spool directories.

A **job spec** is the client-supplied description of a run — today one
kind, ``"suite"``: a grid of benchmarks x machine models at quick or
paper scale.  :func:`normalize_spec` canonicalizes and validates it
(sorted benchmarks, default modes, typed scalars) so that two clients
asking for the same grid in different key orders produce the **same
canonical spec** and therefore the same :func:`job_dedup_key` — which is
how N identical submissions share one execution.  The dedup key hashes
the canonical spec together with the machine-config fingerprint and the
package version, mirroring :func:`repro.experiments.cache.compile_key` /
:func:`repro.experiments.checkpoint.suite_key`: a code upgrade or config
change never aliases an old job's results.

A **job record** is one JSON file holding everything durable about a
job: identity, spec, state, attempt/lease bookkeeping, and the terminal
outcome (including the captured traceback for quarantined poison jobs).
The record is small and rewritten atomically on every transition; the
(potentially large) result payload lives in a separate file referenced
by ``result_path``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field

from ..config import MachineConfig
from ..errors import ConfigError
from ..experiments.cache import config_fingerprint
from ..experiments.models import MODEL_ORDER
from ..workloads import WORKLOADS_BY_NAME

#: Spool states a job moves through (one subdirectory per state).
STATES = ("pending", "leased", "done", "failed", "quarantined")

#: Job kinds the service knows how to execute.
KINDS = ("suite",)


def new_job_id() -> str:
    """Time-sortable, process-unique job identifier.

    Lexicographic order equals submission order (zero-padded
    nanosecond stamp), which gives the queue FIFO claiming for free.
    """
    return f"{time.time_ns():020d}-{os.getpid():x}"


def normalize_spec(spec: dict) -> dict:
    """Validate and canonicalize a job spec (raises ``ConfigError``).

    Canonical form — stable key set, typed values, sorted ``modes``
    subsequence of ``MODEL_ORDER`` — so byte equality of the canonical
    JSON is semantic equality of the request.  ``benchmarks`` order is
    preserved (it is the grid order and changes the payload layout) but
    names are only checked for *type* here, not existence: an unknown
    benchmark is a deterministic execution failure, which is exactly how
    poison jobs reach quarantine instead of being rejected at the door.
    """
    if not isinstance(spec, dict):
        raise ConfigError(f"job spec must be an object, got {type(spec).__name__}")
    kind = spec.get("kind", "suite")
    if kind not in KINDS:
        raise ConfigError(
            f"unknown job kind {kind!r} (supported: {', '.join(KINDS)})")
    unknown = set(spec) - {"kind", "benchmarks", "modes", "quick", "seed",
                           "verify", "cell_delay"}
    if unknown:
        raise ConfigError(
            f"unknown job spec field(s): {', '.join(sorted(map(str, unknown)))}")

    benchmarks = spec.get("benchmarks")
    if benchmarks is not None:
        if (not isinstance(benchmarks, list) or not benchmarks or
                not all(isinstance(b, str) for b in benchmarks)):
            raise ConfigError("benchmarks must be a non-empty list of names")
    modes = spec.get("modes")
    if modes is None:
        modes = list(MODEL_ORDER)
    else:
        if (not isinstance(modes, list) or not modes or
                not all(isinstance(m, str) for m in modes)):
            raise ConfigError("modes must be a non-empty list of model names")
        bad = [m for m in modes if m not in MODEL_ORDER]
        if bad:
            raise ConfigError(
                f"unknown model(s) {', '.join(bad)} "
                f"(have: {', '.join(MODEL_ORDER)})")
        # Canonical order = MODEL_ORDER subsequence; de-duplicated.
        modes = [m for m in MODEL_ORDER if m in modes]
    seed = spec.get("seed", 2003)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ConfigError(f"seed must be an integer, got {seed!r}")
    cell_delay = spec.get("cell_delay", 0.0)
    if not isinstance(cell_delay, (int, float)) or isinstance(cell_delay, bool) \
            or cell_delay < 0 or cell_delay > 60:
        raise ConfigError("cell_delay must be a number of seconds in [0, 60]")
    return {
        "kind": kind,
        "benchmarks": list(benchmarks) if benchmarks is not None else None,
        "modes": modes,
        "quick": bool(spec.get("quick", True)),
        "seed": seed,
        "verify": bool(spec.get("verify", False)),
        "cell_delay": float(cell_delay),
    }


def job_dedup_key(spec: dict, config: MachineConfig) -> str:
    """Content-addressed identity of one job request.

    Two submissions with the same canonical spec, machine configuration
    and package version collapse onto one execution; anything else — a
    different seed, scale, mode set or code version — is a different job.
    """
    from .. import __version__

    text = "\x1f".join((
        "hidisc-job", __version__, config_fingerprint(config),
        json.dumps(spec, sort_keys=True, separators=(",", ":")),
    ))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def normalize_trace(trace) -> dict | None:
    """Sanitize a client-supplied trace context (never raises).

    The context carries only what the job-trace stitcher needs to draw
    the client's lane and link it as the root of the job's span tree:
    the submitting pid, its submit-span id, and the wall-clock submit
    stamp.  It is advisory telemetry, not part of the job's identity —
    callers pop it off the request body *before* :func:`normalize_spec`,
    so it can never perturb :func:`job_dedup_key`.  Malformed contexts
    degrade to ``None`` (an untraced submit) rather than rejecting the
    job.
    """
    if not isinstance(trace, dict):
        return None
    pid = trace.get("pid")
    span = trace.get("span")
    t_ns = trace.get("t_ns")
    if not isinstance(pid, int) or isinstance(pid, bool) or pid < 0:
        return None
    if not isinstance(span, str) or not span or len(span) > 64:
        return None
    if not isinstance(t_ns, int) or isinstance(t_ns, bool) or t_ns <= 0:
        return None
    return {"pid": pid, "span": span, "t_ns": t_ns}


def known_benchmarks() -> list[str]:
    """Registered benchmark names (for client-side hints, not gating)."""
    return sorted(WORKLOADS_BY_NAME)


@dataclass
class JobRecord:
    """Everything durable about one job (one JSON spool file)."""

    job_id: str
    spec: dict
    dedup_key: str
    state: str = "pending"
    created: float = field(default_factory=time.time)
    updated: float = field(default_factory=time.time)
    #: executions charged against the retry budget (failed attempts and
    #: expired leases; a graceful drain requeue is attempt-neutral).
    attempts: int = 0
    max_attempts: int = 3
    #: earliest wall-clock second a worker may claim this job (retry
    #: backoff; 0 = immediately).
    not_before: float = 0.0
    #: how many submissions this record absorbed (1 + dedup hits).
    submitted: int = 1
    #: lease bookkeeping while ``state == "leased"``:
    #: {"worker", "pid", "deadline", "renewals"}.
    lease: dict | None = None
    #: terminal disposition: completed | failed | quarantined | cancelled.
    outcome: str | None = None
    error: str | None = None
    traceback: str | None = None
    result_path: str | None = None
    #: grid cells reported finished so far (events carry the detail).
    cells_done: int = 0
    #: client trace context ({"pid", "span", "t_ns"}) linking the
    #: submitter's span tree to the job's — see :func:`normalize_trace`.
    trace: dict | None = None

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        fields = {k: data[k] for k in cls.__dataclass_fields__ if k in data}
        return cls(**fields)

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "JobRecord":
        data = json.loads(text)
        if not isinstance(data, dict) or "job_id" not in data:
            raise ValueError("not a job record")
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    def touch(self) -> None:
        self.updated = time.time()

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "quarantined")

    def summary(self) -> dict:
        """Compact view for listings (``GET /jobs``, ``hidisc jobs``)."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "outcome": self.outcome,
            "kind": self.spec.get("kind"),
            "benchmarks": self.spec.get("benchmarks"),
            "modes": self.spec.get("modes"),
            "quick": self.spec.get("quick"),
            "attempts": self.attempts,
            "submitted": self.submitted,
            "cells_done": self.cells_done,
            "created": self.created,
            "updated": self.updated,
            "error": self.error,
        }
