"""Thin stdlib HTTP client for the simulation service.

Backs ``hidisc submit | jobs | cancel`` and the tests; uses only
``urllib`` so the client is importable everywhere the package is.
Server-side error envelopes (``{"error": ...}``) are re-raised as
:class:`~repro.errors.ServiceError` — and HTTP 429 specifically as
:class:`~repro.errors.BackpressureError` so callers can implement
retry-after-drain without string matching.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from collections.abc import Iterator

from ..errors import BackpressureError, ServiceError


class ServiceClient:
    """Client for one ``hidisc serve`` endpoint (``http://host:port``)."""

    def __init__(self, url: str, timeout: float = 10.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None = None,
                 timeout: float | None = None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.url + path, data=data, method=method,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            return urllib.request.urlopen(
                request, timeout=timeout if timeout is not None
                else self.timeout)
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                payload = json.loads(exc.read().decode())
                detail = payload.get("error", "")
            except Exception:
                pass
            if exc.code == 429:
                # Surface admission control as the typed error the local
                # queue raises, parsing nothing: depth/limit live in the
                # message already.
                raise _backpressure(detail or "job queue is full")
            raise ServiceError(
                f"{method} {path} -> HTTP {exc.code}"
                + (f": {detail}" if detail else ""))
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.url}: {exc.reason} — "
                f"is `hidisc serve` running?")

    def _json(self, method: str, path: str, body: dict | None = None):
        with self._request(method, path, body) as response:
            return json.loads(response.read().decode())

    # ------------------------------------------------------------------
    def submit(self, spec: dict, trace: dict | None = None) -> dict:
        """POST a job spec; returns ``{job_id, state, created, submitted}``.

        *trace* is an optional client trace context
        (``{"pid", "span", "t_ns"}``) that rides beside the spec and
        lets ``hidisc jobs trace`` draw the submitter's lane; it never
        affects dedup.
        """
        body = dict(spec)
        if trace is not None:
            body["trace"] = trace
        return self._json("POST", "/jobs", body)

    def job(self, job_id: str) -> dict:
        """The full job record (state, attempts, error, traceback, ...)."""
        return self._json("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._json("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._json("DELETE", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The completed suite payload (HTTP 409 until the job is done)."""
        return self._json("GET", f"/jobs/{job_id}/result")

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def fleet(self) -> dict:
        """``GET /health`` — readiness + per-worker fleet detail.

        Raises :class:`~repro.errors.ServiceError` (HTTP 503) when no
        worker is alive; use :meth:`health` for unconditional liveness.
        """
        return self._json("GET", "/health")

    def metrics(self) -> dict:
        """``GET /metrics?format=json`` — the fleet metrics payload
        (``{"metrics", "counts", "workers", ...}``)."""
        return self._json("GET", "/metrics?format=json")

    def metrics_text(self) -> str:
        """``GET /metrics`` — the Prometheus text exposition."""
        with self._request("GET", "/metrics") as response:
            return response.read().decode()

    def events(self, job_id: str, follow: bool = False,
               timeout: float | None = None) -> Iterator[dict]:
        """Yield the job's JSONL events; ``follow=True`` tails the stream
        until the job reaches a terminal state (server closes it)."""
        suffix = "?follow=1" if follow else ""
        stream_timeout = timeout if timeout is not None else \
            (None if follow else self.timeout)
        with self._request("GET", f"/jobs/{job_id}/events{suffix}",
                           timeout=stream_timeout) as response:
            for line in response:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if isinstance(event, dict):
                    yield event

    # ------------------------------------------------------------------
    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.2) -> dict:
        """Poll until the job is terminal; returns the final record."""
        import time
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.get("state") in ("done", "failed", "quarantined"):
                return record
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for "
                    f"{job_id} (state: {record.get('state')})")
            time.sleep(poll)


def _backpressure(detail: str) -> BackpressureError:
    error = BackpressureError(0, 0)
    error.args = (detail,)
    return error
