"""``hidisc serve``: HTTP front end + worker supervisor + lease reaper.

One ``ServiceServer`` owns three things over a shared :class:`JobQueue`:

* an HTTP API on a stdlib ``ThreadingHTTPServer`` (no new dependencies)::

      POST   /jobs               submit a job spec (JSON)  -> 201/200/400/429
      GET    /jobs               list job summaries
      GET    /jobs/<id>          full job record (incl. traceback)
      GET    /jobs/<id>/result   the completed suite payload
      GET    /jobs/<id>/events   JSONL event stream (?follow=1 tails it)
      DELETE /jobs/<id>          request cancellation
      GET    /healthz            queue depths + worker liveness

* N worker subprocesses (``python -m repro.service.worker``), supervised:
  a worker that dies is respawned, and whatever job it held is recovered
  by lease expiry, not by the supervisor guessing;

* a reaper thread calling :meth:`JobQueue.expire_leases` every ttl/3 —
  the only component that turns a SIGKILL'd worker's job back into a
  pending one.

Shutdown discipline: ``serve_forever`` runs the HTTP server in a
*background* thread and parks the main thread on an event, because
calling ``HTTPServer.shutdown()`` from a signal handler inside the
serving thread deadlocks.  SIGTERM/SIGINT → stop admitting (HTTP goes
down last so in-flight requests finish), SIGTERM the workers, wait for
them to release/checkpoint their jobs (exit 0), then stop the reaper and
return.  Anything still leased after the grace period is SIGKILLed and
left to lease expiry on the next start — crash-safety is the fallback
for the graceful path, not a separate mechanism.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from .. import __version__
from ..errors import BackpressureError, ConfigError, ServiceError
from ..telemetry import metrics
from ..telemetry.metrics import render_prometheus
from .observability import fleet_metrics, read_worker_statuses
from .queue import JobQueue

#: Default TCP port ("HI" = 0x4849 is taken; pick something memorable).
DEFAULT_PORT = 8203


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto ``self.server.service`` (a ServiceServer)."""

    server_version = f"hidisc-service/{__version__}"
    protocol_version = "HTTP/1.0"  # close-delimited bodies; streaming-safe

    # ------------------------------------------------------------------
    @property
    def service(self) -> "ServiceServer":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # noqa: N802 - stdlib name
        self.service.log(f"http: {self.address_string()} {fmt % args}")

    def _send_json(self, code: int, payload) -> None:
        body = json.dumps(payload, sort_keys=True, indent=1).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ConfigError("request body must be a JSON job spec")
        try:
            data = json.loads(raw)
        except ValueError as exc:
            raise ConfigError(f"request body is not valid JSON: {exc}")
        return data

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib name
        metrics.inc("http_requests", method="POST")
        if urlparse(self.path).path != "/jobs":
            return self._error(404, f"no such endpoint: POST {self.path}")
        if self.service.draining:
            return self._error(503, "service is draining; resubmit after "
                                    "restart")
        try:
            spec = self._read_body()
            # The optional trace context rides beside the spec in the
            # same body; pop it before validation so it can never enter
            # normalize_spec or the dedup key.
            trace = spec.pop("trace", None) if isinstance(spec, dict) \
                else None
            record, created = self.service.queue.submit(spec, trace=trace)
        except BackpressureError as exc:
            return self._error(429, str(exc))
        except ConfigError as exc:
            return self._error(400, str(exc))
        self._send_json(201 if created else 200,
                        {"job_id": record.job_id, "state": record.state,
                         "created": created, "submitted": record.submitted})

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib name
        parts = urlparse(self.path).path.strip("/").split("/")
        if len(parts) != 2 or parts[0] != "jobs":
            return self._error(404, f"no such endpoint: DELETE {self.path}")
        try:
            state = self.service.queue.request_cancel(parts[1])
        except ServiceError as exc:
            return self._error(404, str(exc))
        self._send_json(200, {"job_id": parts[1], "state": state})

    def do_GET(self) -> None:  # noqa: N802 - stdlib name
        url = urlparse(self.path)
        parts = url.path.strip("/").split("/")
        metrics.inc("http_requests", method="GET")
        if url.path == "/healthz":
            # Liveness: always 200 while the process serves (probes and
            # the client's health() rely on it never gating on workers).
            return self._send_json(200, self.service.health())
        if url.path == "/health":
            # Readiness: 503 until at least one worker is alive.
            payload = self.service.health()
            code = 200 if payload.get("workers_alive", 0) > 0 else 503
            return self._send_json(code, payload)
        if url.path == "/metrics":
            payload = self.service.metrics_payload()
            wants_json = parse_qs(url.query).get("format", [""])[0] == "json"
            if wants_json:
                return self._send_json(200, payload)
            body = render_prometheus(payload["metrics"]).encode()
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return None
        if parts[0] != "jobs":
            return self._error(404, f"no such endpoint: GET {self.path}")
        if len(parts) == 1:
            jobs = [r.summary() for r in self.service.queue.list_jobs()]
            return self._send_json(200, {"jobs": jobs})
        record = self.service.queue.get(parts[1])
        if record is None:
            return self._error(404, f"unknown job {parts[1]!r}")
        if len(parts) == 2:
            return self._send_json(200, record.as_dict())
        if len(parts) == 3 and parts[2] == "result":
            payload = self.service.queue.load_result(record)
            if payload is None:
                return self._error(
                    409, f"job {record.job_id} has no result "
                         f"(state: {record.state})")
            return self._send_json(200, payload)
        if len(parts) == 3 and parts[2] == "events":
            follow = parse_qs(url.query).get("follow", ["0"])[0] in \
                ("1", "true", "yes")
            return self._stream_events(parts[1], follow)
        return self._error(404, f"no such endpoint: GET {self.path}")

    def _stream_events(self, job_id: str, follow: bool) -> None:
        """JSONL over a close-delimited response; ``follow`` tails the
        stream until the job reaches a terminal state."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        path = self.service.queue.events_path(job_id)
        offset = 0
        try:
            while True:
                try:
                    with path.open("r") as fh:
                        fh.seek(offset)
                        chunk = fh.read()
                        offset = fh.tell()
                except OSError:
                    chunk = ""
                if chunk:
                    self.wfile.write(chunk.encode())
                    self.wfile.flush()
                if not follow:
                    return
                record = self.service.queue.get(job_id)
                if record is None or record.terminal:
                    # Flush whatever the terminal transition appended.
                    try:
                        with path.open("r") as fh:
                            fh.seek(offset)
                            tail = fh.read()
                    except OSError:
                        tail = ""
                    if tail:
                        self.wfile.write(tail.encode())
                    return
                if self.service.stopped.wait(0.2):
                    return
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away; nothing to clean up


class _API(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class ServiceServer:
    """The ``hidisc serve`` daemon: queue + workers + reaper + HTTP."""

    def __init__(self, root, *, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT, workers: int = 2,
                 lease_ttl: float = 30.0, max_depth: int = 64,
                 max_attempts: int = 3, retry_backoff: float = 0.5,
                 poll_interval: float = 0.2,
                 drain_grace: float = 30.0, stream=None) -> None:
        if workers < 0:
            raise ConfigError(f"workers must be >= 0, got {workers}")
        self.queue = JobQueue(root, max_depth=max_depth,
                              lease_ttl=lease_ttl,
                              max_attempts=max_attempts,
                              retry_backoff=retry_backoff)
        self.host = host
        self.port = port
        self.workers = workers
        self.poll_interval = poll_interval
        self.drain_grace = drain_grace
        self.stream = stream if stream is not None else sys.stderr
        self.stopped = threading.Event()
        self.draining = False
        self.restarts = 0
        self._procs: dict[str, subprocess.Popen] = {}
        self._httpd: _API | None = None
        self._http_thread: threading.Thread | None = None
        self._reaper: threading.Thread | None = None

    def log(self, message: str) -> None:
        try:
            self.stream.write(f"[serve] {message}\n")
            self.stream.flush()
        except OSError:  # pragma: no cover - stream gone during teardown
            pass

    # ------------------------------------------------------------------
    # Workers.

    def _spawn_worker(self, name: str) -> None:
        argv = [sys.executable, "-m", "repro.service.worker",
                "--root", str(self.queue.root), "--id", name,
                "--lease-ttl", str(self.queue.lease_ttl),
                "--max-attempts", str(self.queue.max_attempts),
                "--retry-backoff", str(self.queue.retry_backoff),
                "--poll-interval", str(self.poll_interval),
                # The spool lives at <cache>/service, so the cache root
                # is its parent — pinning it keeps worker results and
                # ledger entries in the same store the server accounts.
                "--cache-dir", str(self.queue.root.parent)]
        self._procs[name] = subprocess.Popen(argv)
        self.log(f"worker {name} up (pid {self._procs[name].pid})")

    def _supervise(self) -> None:
        """Respawn dead workers (crash recovery is the reaper's job)."""
        if self.draining:
            return
        for name, proc in list(self._procs.items()):
            code = proc.poll()
            if code is None:
                continue
            self.restarts += 1
            metrics.inc("worker_restarts")
            self.log(f"worker {name} died (exit {code}); respawning — "
                     f"its lease will expire and the job will requeue")
            self._spawn_worker(name)

    def worker_pids(self) -> dict[str, int | None]:
        return {name: (proc.pid if proc.poll() is None else None)
                for name, proc in self._procs.items()}

    # ------------------------------------------------------------------
    # Reaper.

    def _reap_loop(self) -> None:
        interval = max(self.queue.lease_ttl / 3.0, 0.1)
        while not self.stopped.wait(interval):
            try:
                acted = self.queue.expire_leases()
            except Exception as exc:  # pragma: no cover - defensive
                self.log(f"reaper error: {exc}")
                continue
            for job_id in acted:
                self.log(f"lease expired on {job_id}; recovered")

    # ------------------------------------------------------------------
    # Lifecycle.

    def start(self) -> None:
        """Bring everything up (non-blocking); pair with serve_forever."""
        self.queue.ensure_layout()
        recovered = self.queue.expire_leases()
        if recovered:
            self.log(f"startup recovery: requeued/quarantined "
                     f"{len(recovered)} stranded job(s)")
        self._httpd = _API((self.host, self.port), _Handler)
        self._httpd.service = self  # type: ignore[attr-defined]
        self.port = self._httpd.server_address[1]  # resolve port 0
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="http", daemon=True)
        self._http_thread.start()
        self._reaper = threading.Thread(target=self._reap_loop,
                                        name="reaper", daemon=True)
        self._reaper.start()
        for n in range(self.workers):
            self._spawn_worker(f"w{n}")
        self.log(f"listening on http://{self.host}:{self.port} "
                 f"({self.workers} workers, lease_ttl "
                 f"{self.queue.lease_ttl}s, spool {self.queue.root})")

    def serve_forever(self, interrupt_ctx=None) -> int:
        """Supervise until SIGTERM/SIGINT (or ``stopped`` is set), then
        drain.  *interrupt_ctx* is an entered
        :class:`~repro.experiments.interrupt.GracefulInterrupt`; the CLI
        passes its own so the ledger can record the outcome.
        """
        while not self.stopped.is_set():
            if interrupt_ctx is not None and \
                    interrupt_ctx.triggered is not None:
                self.log(f"{interrupt_ctx.triggered} received; draining")
                break
            self._supervise()
            self.stopped.wait(self.poll_interval)
        return self.drain()

    def drain(self) -> int:
        """Graceful shutdown; returns the process exit code (0)."""
        self.draining = True
        deadline = time.monotonic() + self.drain_grace
        for name, proc in self._procs.items():
            if proc.poll() is None:
                proc.terminate()  # SIGTERM -> worker releases at next cell
        for name, proc in self._procs.items():
            remaining = max(deadline - time.monotonic(), 0.1)
            try:
                proc.wait(timeout=remaining)
                self.log(f"worker {name} drained (exit {proc.returncode})")
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
                self.log(f"worker {name} did not drain in time; killed — "
                         f"its job recovers via lease expiry on restart")
        self.stopped.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
        if self._reaper is not None:
            self._reaper.join(timeout=5.0)
        counts = self.queue.counts()
        self.log(f"drained; queue now {counts}")
        return 0

    def health(self) -> dict:
        statuses = read_worker_statuses(self.queue)
        supervised = self.worker_pids()
        alive = sum(1 for pid in supervised.values() if pid is not None)
        # Externally-started workers (tests, manual `python -m ...`)
        # count through their published status files.
        alive = max(alive,
                    sum(1 for s in statuses if s.get("alive")))
        return {
            "version": __version__,
            "draining": self.draining,
            "counts": self.queue.counts(),
            "workers": supervised,
            "workers_alive": alive,
            "fleet": [{k: s.get(k) for k in
                       ("worker", "pid", "state", "job", "jobs_run",
                        "age", "alive")}
                      for s in statuses],
            "restarts": self.restarts,
            "spool": str(self.queue.root),
        }

    def metrics_payload(self) -> dict:
        """The ``GET /metrics`` document: the fleet-merged snapshot plus
        the context ``hidisc jobs top`` renders from (JSON format)."""
        statuses = read_worker_statuses(self.queue)
        snapshot = fleet_metrics(
            self.queue, base_snapshot=metrics.combined_snapshot(),
            statuses=statuses,
            extra_gauges={"service_draining": 1.0 if self.draining
                          else 0.0})
        return {
            "version": __version__,
            "metrics": snapshot,
            "counts": self.queue.counts(),
            "draining": self.draining,
            "workers": [{k: s.get(k) for k in
                         ("worker", "pid", "state", "job", "jobs_run",
                          "age", "alive")}
                        for s in statuses],
        }
