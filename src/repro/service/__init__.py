"""Durable simulation service: crash-safe queue, leased workers, HTTP API.

``hidisc serve`` turns the repository's one-shot experiment runner into a
long-running service without inventing new persistence: the job queue is
spool directories of atomically-renamed JSON records under the run-cache
root, results are content-addressed through the same
:mod:`repro.experiments.cache` / :mod:`repro.experiments.checkpoint`
machinery the CLI uses, and every failure mode (worker SIGKILL, poison
spec, overload, operator Ctrl-C) degrades to a defined state instead of
a wedged pool.  See DESIGN §9 for the state machine and the
crash-consistency argument.
"""

from .client import ServiceClient
from .executor import LeaseLost, execute_job
from .observability import (
    fleet_metrics,
    publish_worker_status,
    read_worker_statuses,
    render_fleet_line,
    render_fleet_table,
    resolve_job_id,
    run_top,
    stitch_job_trace,
)
from .queue import SERVICE_DIR, JobQueue
from .records import (
    KINDS,
    STATES,
    JobRecord,
    job_dedup_key,
    known_benchmarks,
    new_job_id,
    normalize_spec,
    normalize_trace,
)
from .server import DEFAULT_PORT, ServiceServer
from .worker import LeaseKeeper, Worker

__all__ = [
    "DEFAULT_PORT",
    "JobQueue",
    "JobRecord",
    "KINDS",
    "LeaseKeeper",
    "LeaseLost",
    "SERVICE_DIR",
    "STATES",
    "ServiceClient",
    "ServiceServer",
    "Worker",
    "execute_job",
    "fleet_metrics",
    "job_dedup_key",
    "known_benchmarks",
    "new_job_id",
    "normalize_spec",
    "normalize_trace",
    "publish_worker_status",
    "read_worker_statuses",
    "render_fleet_line",
    "render_fleet_table",
    "resolve_job_id",
    "run_top",
    "stitch_job_trace",
]
