"""Service observability: fleet metrics, worker status, job-trace stitching.

Three concerns, all file-backed through the same spool the queue already
owns (no new persistence, no new dependencies):

* **Worker status.**  Each worker atomically publishes a small JSON file
  (``<service>/workers/<id>.json``) with its state, current job, and a
  :func:`repro.telemetry.metrics.combined_snapshot` of everything it has
  counted so far — including the in-flight job's open scope, so a scrape
  mid-job sees live totals.  Liveness is derived, not declared: a status
  older than the lease TTL means the worker is dead or wedged, which is
  the same signal the lease reaper acts on.

* **Fleet metrics.**  :func:`fleet_metrics` folds the server's own
  registry and every worker's published snapshot into one
  :class:`~repro.telemetry.metrics.MetricsRegistry` (all merges commute,
  so scrape order cannot change totals), then overlays scrape-time
  gauges measured straight off the spool: per-state depth, oldest
  pending age, max lease age, live/known workers.  ``GET /metrics``
  renders this with :func:`repro.telemetry.metrics.render_prometheus`.

* **Job-trace stitching.**  A job's path crosses at least three
  processes — client, queue/server, worker — none of which ever holds
  the whole story.  :func:`stitch_job_trace` reassembles it from what
  each durably left behind: the client's trace context on the job
  record, the queue's per-job event stream (state-residency spans are
  reconstructed from the transition events), and the worker's persisted
  span file.  The result is one span set with cross-process parent
  links, rendered by ``hidisc jobs trace`` as a single Perfetto trace
  with one lane per process.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from ..errors import ServiceError
from ..telemetry import metrics
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.spans import SpanRecord
from .queue import JobQueue

#: Synthetic pid for the queue's lane in stitched job traces (no real
#: process can have pid 0, so it never collides with client or worker).
QUEUE_LANE_PID = 0

#: Worker status files older than ``max(lease_ttl, _MIN_LIVENESS)``
#: seconds are considered dead (a live worker republishes at least once
#: per lease renewal).
_MIN_LIVENESS = 5.0


# ----------------------------------------------------------------------
# Worker status files.

def publish_worker_status(queue: JobQueue, worker: str, state: str,
                          job_id: str | None = None,
                          jobs_run: int = 0) -> None:
    """Atomically publish *worker*'s status file (best-effort).

    Includes the process's combined metrics snapshot so the server can
    aggregate per-worker counters into the fleet scrape without any IPC
    beyond the spool directory everything already shares.
    """
    payload = {
        "worker": worker,
        "pid": os.getpid(),
        "time": round(time.time(), 3),
        "state": state,
        "job": job_id,
        "jobs_run": jobs_run,
        "metrics": metrics.combined_snapshot(),
    }
    directory = queue.workers_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".json.tmp")
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(tmp, queue.status_path(worker))
    except OSError:
        pass


def read_worker_statuses(queue: JobQueue,
                         window: float | None = None) -> list[dict]:
    """Every published worker status, annotated with ``age`` and
    ``alive`` (status fresher than *window*, default
    ``max(lease_ttl, 5s)``)."""
    if window is None:
        window = max(queue.lease_ttl, _MIN_LIVENESS)
    directory = queue.workers_dir()
    if not directory.is_dir():
        return []
    now = time.time()
    statuses = []
    for path in sorted(directory.glob("*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if not isinstance(data, dict) or "worker" not in data:
            continue
        age = max(now - float(data.get("time") or 0.0), 0.0)
        data["age"] = round(age, 3)
        data["alive"] = age <= window
        statuses.append(data)
    return statuses


# ----------------------------------------------------------------------
# Fleet-wide metrics aggregation.

def fleet_metrics(queue: JobQueue, base_snapshot: dict | None = None,
                  statuses: list[dict] | None = None,
                  extra_gauges: dict | None = None) -> dict:
    """One merged metrics snapshot for the whole fleet.

    Folds the server's *base_snapshot* and every worker's published
    snapshot together (commutative merges — scrape order is
    irrelevant), then overlays gauges measured off the spool at scrape
    time: per-state depth, oldest-pending age, max lease age, and
    worker liveness.  *extra_gauges* (``{name: value}``) lets the
    server add its own (e.g. ``service_draining``).
    """
    if statuses is None:
        statuses = read_worker_statuses(queue)
    merged = MetricsRegistry()
    if base_snapshot:
        merged.merge(base_snapshot)
    for status in statuses:
        snap = status.get("metrics")
        if isinstance(snap, dict):
            merged.merge(snap)

    now = time.time()
    for state, depth in queue.counts().items():
        merged.gauge("jobs_depth", float(depth), state=state)
    pending = queue._records_in("pending")
    oldest = max((now - r.created for r in pending), default=0.0)
    merged.gauge("oldest_pending_age_seconds", round(max(oldest, 0.0), 3))
    leased = queue._records_in("leased")
    lease_age = max((now - (r.lease or {}).get("since", now)
                     for r in leased), default=0.0)
    merged.gauge("max_lease_age_seconds", round(max(lease_age, 0.0), 3))
    merged.gauge("workers_known", float(len(statuses)))
    merged.gauge("workers_live",
                 float(sum(1 for s in statuses if s.get("alive"))))
    for name, value in (extra_gauges or {}).items():
        merged.gauge(name, float(value))
    return merged.snapshot()


# ----------------------------------------------------------------------
# Job-trace stitching.

def resolve_job_id(queue: JobQueue, prefix: str) -> str:
    """Expand a job-id prefix to the unique job it names (convenience
    for the CLI — full ids are 20+ characters)."""
    matches = sorted({r.job_id for r in queue.list_jobs()
                      if r.job_id.startswith(prefix)})
    if not matches:
        raise ServiceError(f"unknown job {prefix!r}")
    if len(matches) > 1:
        raise ServiceError(
            f"ambiguous job id {prefix!r}: matches "
            f"{', '.join(matches[:4])}{'…' if len(matches) > 4 else ''}")
    return matches[0]


#: Event kind -> the queue state the job occupies *after* that event
#: (``None`` = no state change; terminal/landed kinds consult fields).
def _state_after(event: dict) -> str | None:
    kind = event.get("kind")
    if kind == "submitted":
        return "pending"
    if kind == "leased":
        return "leased"
    if kind == "released":
        return "pending"
    if kind in ("failed", "lease_expired"):
        return event.get("landed") or "pending"
    if kind == "state":
        return event.get("state")
    return None


def stitch_job_trace(queue: JobQueue, job_id: str
                     ) -> tuple[list[SpanRecord], dict]:
    """Reassemble one job's cross-process timeline.

    Returns ``(records, lane_names)`` ready for
    :func:`repro.telemetry.spans.write_orchestration_trace`:

    * a **client** lane (when the record carries a trace context) with
      the submit span, linked as the parent of the job's root span;
    * a **queue** lane (synthetic pid 0): a root ``job <id>`` span over
      the whole observed lifetime, state-residency child spans
      reconstructed from the transition events, and one instant per
      raw event;
    * one **worker** lane per pid found in the persisted span file
      (``job``/``execute``/per-cell spans, already parent-linked by the
      worker's own tracer).
    """
    record = queue.get(job_id)
    if record is None:
        raise ServiceError(f"unknown job {job_id!r}")
    events = queue.read_events(job_id)
    worker_spans = queue.read_spans(job_id)
    if not events and not worker_spans:
        raise ServiceError(f"job {job_id} has no events or spans to stitch")

    records: list[SpanRecord] = []
    lane_names: dict[int, str] = {}
    trace = record.trace if isinstance(record.trace, dict) else None

    event_ns = [int(float(e.get("t", 0.0)) * 1e9) for e in events]
    first_ns = min(event_ns) if event_ns else \
        min(s["t0_ns"] for s in worker_spans)
    last_ns = max((t + 1 for t in event_ns), default=first_ns)
    for span in worker_spans:
        last_ns = max(last_ns, span["t0_ns"] + (span.get("dur_ns") or 0))

    # Client lane: the submit span the CLI stamped into the trace context,
    # closed at the moment the queue durably accepted the job.
    client_sid = None
    if trace:
        client_sid = trace["span"]
        t0 = min(trace["t_ns"], first_ns)
        submitted_ns = next(
            (ns for e, ns in zip(events, event_ns)
             if e.get("kind") == "submitted"), first_ns)
        records.append(SpanRecord(
            name="submit job", cat="client", pid=trace["pid"],
            sid=client_sid, parent=None, t0_ns=t0,
            dur_ns=max(submitted_ns - t0, 1_000),
            args={"job_id": job_id}))
        lane_names[trace["pid"]] = f"hidisc client {trace['pid']}"

    # Queue lane: root span + state-residency spans + raw-event instants.
    seq = 0

    def queue_sid() -> str:
        nonlocal seq
        seq += 1
        return f"q.{seq}"

    root_sid = queue_sid()
    records.append(SpanRecord(
        name=f"job {job_id}", cat="queue", pid=QUEUE_LANE_PID,
        sid=root_sid, parent=client_sid, t0_ns=first_ns,
        dur_ns=max(last_ns - first_ns, 1_000),
        args={"state": record.state, "outcome": record.outcome,
              "attempts": record.attempts, "submitted": record.submitted}))
    lane_names[QUEUE_LANE_PID] = "hidisc job queue"

    open_state: str | None = None
    open_since = first_ns
    for event, t_ns in zip(events, event_ns):
        records.append(SpanRecord(
            name=event.get("kind", "event"), cat="queue",
            pid=QUEUE_LANE_PID, sid=queue_sid(), parent=root_sid,
            t0_ns=t_ns, dur_ns=None,
            args={k: v for k, v in event.items()
                  if k not in ("t", "kind", "spec")}))
        state = _state_after(event)
        if state is None or state == open_state:
            continue
        if open_state is not None:
            records.append(SpanRecord(
                name=open_state, cat="queue-state", pid=QUEUE_LANE_PID,
                sid=queue_sid(), parent=root_sid, t0_ns=open_since,
                dur_ns=max(t_ns - open_since, 1_000), args={}))
        open_state, open_since = state, t_ns
    if open_state is not None:
        # Close the final residency span at the last observed stamp —
        # for a live job that is "so far", for a terminal one the tail
        # of its lifetime.
        records.append(SpanRecord(
            name=open_state, cat="queue-state", pid=QUEUE_LANE_PID,
            sid=queue_sid(), parent=root_sid, t0_ns=open_since,
            dur_ns=max(last_ns - open_since, 1_000), args={}))

    # Worker lanes: persisted span dicts, intra-process parent links
    # intact; top-level worker spans (the per-attempt ``job <id>`` root)
    # are re-parented onto the queue's root span, completing the
    # client -> queue -> worker chain.
    for span in worker_spans:
        pid = int(span.get("pid", 0))
        records.append(SpanRecord(
            name=span.get("name", "span"), cat=span.get("cat", "orch"),
            pid=pid, sid=str(span.get("sid", "")),
            parent=span.get("parent") or root_sid,
            t0_ns=int(span["t0_ns"]), dur_ns=span.get("dur_ns"),
            args=span.get("args") or {}))
        lane_names.setdefault(pid, f"hidisc worker {pid}")

    return records, lane_names


# ----------------------------------------------------------------------
# Live fleet status (`hidisc jobs top`).

def render_fleet_line(payload: dict) -> str:
    """One-line fleet digest from a ``GET /metrics?format=json`` payload."""
    counts = payload.get("counts", {})
    snap = payload.get("metrics", {})
    gauges = snap.get("gauges", {})
    counters = snap.get("counters", {})
    live = int(gauges.get("workers_live", 0))
    known = int(gauges.get("workers_known", 0))
    return (
        "[top] "
        f"pending={counts.get('pending', 0)} "
        f"leased={counts.get('leased', 0)} "
        f"done={counts.get('done', 0)} "
        f"failed={counts.get('failed', 0)} "
        f"quarantined={counts.get('quarantined', 0)} | "
        f"workers {live}/{known} | "
        f"completed={int(counters.get('jobs_completed', 0))} "
        f"retried={int(counters.get('jobs_retried', 0))} "
        f"oldest_wait={gauges.get('oldest_pending_age_seconds', 0.0):.1f}s"
    )


def render_fleet_table(payload: dict, jobs: list[dict]) -> str:
    """Multi-line fleet summary: per-worker rows plus active jobs."""
    lines = [render_fleet_line(payload)[len("[top] "):]]
    workers = payload.get("workers", [])
    if workers:
        lines.append("")
        lines.append(f"{'worker':<14} {'state':<10} {'alive':<6} "
                     f"{'jobs':>5}  job")
        for status in workers:
            lines.append(
                f"{str(status.get('worker', '?')):<14} "
                f"{str(status.get('state', '?')):<10} "
                f"{'yes' if status.get('alive') else 'no':<6} "
                f"{status.get('jobs_run', 0):>5}  "
                f"{status.get('job') or '-'}")
    active = [j for j in jobs
              if j.get("state") in ("pending", "leased")]
    if active:
        lines.append("")
        lines.append(f"{'job':<26} {'state':<8} {'attempts':>8} "
                     f"{'cells':>6}")
        for job in active:
            lines.append(
                f"{str(job.get('job_id', '?'))[:26]:<26} "
                f"{str(job.get('state', '?')):<8} "
                f"{job.get('attempts', 0):>8} "
                f"{job.get('cells_done', 0):>6}")
    return "\n".join(lines)


def run_top(client, *, interval: float = 2.0, iterations: int = 0,
            stream=None, live: bool | None = None) -> int:
    """The ``hidisc jobs top`` loop: refresh a fleet status line from
    ``/metrics`` + ``/jobs`` every *interval* seconds.

    *iterations* bounds the refresh count (0 = until Ctrl-C, the
    interactive default); on exit the final fleet table is printed in
    full.  Rendering rides :class:`repro.telemetry.StatusLine`, so a
    TTY gets an in-place line and a pipe gets one plain line per
    refresh — the heartbeat's non-TTY contract.
    """
    import sys as _sys

    from ..telemetry.heartbeat import StatusLine

    out = stream if stream is not None else _sys.stderr
    status = StatusLine(out, live)
    payload: dict = {}
    jobs: list[dict] = []
    count = 0
    try:
        while True:
            payload = client.metrics()
            jobs = client.jobs()
            status.update(render_fleet_line(payload))
            count += 1
            if iterations and count >= iterations:
                break
            time.sleep(max(interval, 0.05))
    except KeyboardInterrupt:
        pass
    finally:
        status.finish()
    if payload:
        out.write(render_fleet_table(payload, jobs) + "\n")
        out.flush()
    return 0
