"""Crash-safe, file-based job queue: spool directories + atomic renames.

One JSON record per job, moved through per-state spool directories::

    <cache>/service/jobs/pending/      submitted, claimable
    <cache>/service/jobs/leased/       claimed by a worker, heartbeat-renewed
    <cache>/service/jobs/done/         completed (result_path points at payload)
    <cache>/service/jobs/failed/       terminal failures & cancellations
    <cache>/service/jobs/quarantined/  poison jobs: retry budget exhausted

Crash-consistency rules (the short proof lives in DESIGN §9):

* **Publishing** a record (submit, or rewriting it in place) is always
  write-temp-then-``os.replace`` in the destination directory — a crash
  never leaves a torn JSON file where a reader looks.
* **Claiming** is a bare ``os.rename(pending/x, leased/x)``.  POSIX
  rename is atomic and fails with ENOENT for every claimant but one, so
  exactly one worker wins without any locking.
* **Leaving** ``leased/`` (complete, fail, requeue, quarantine) writes
  the destination copy first, then unlinks the leased copy.  A crash
  between the two steps leaves the job in *both* directories; the
  recovery rule is unambiguous because only this transition ever creates
  duplicates: *a job present in ``leased/`` and any other directory is a
  stale leased leftover — delete the leased copy.*
* **Leases expire.** A leased record whose heartbeat deadline has passed
  (or that has no lease at all — a worker died between the claim rename
  and the lease rewrite) is requeued by the reaper, charging one attempt
  against the retry budget; past the budget it is quarantined with the
  last captured error.  A SIGKILL'd worker therefore loses at most the
  in-flight cells of one job, and the job completes elsewhere.

Multi-writer transitions (worker renew vs. reaper expiry, concurrent
submits racing the depth check) serialize on one ``flock``-ed lock file;
claims stay lock-free via rename atomicity.  Per-job event streams are
append-only JSONL through :func:`repro.experiments.ledger.locked_append`
— the same discipline as the run ledger.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

try:  # pragma: no cover - absent only on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

from ..config import MachineConfig
from ..errors import BackpressureError, ConfigError, ServiceError
from ..experiments.cache import SERVICE_DIR
from ..experiments.ledger import locked_append
from ..telemetry import metrics
from .records import (
    STATES,
    JobRecord,
    job_dedup_key,
    new_job_id,
    normalize_spec,
    normalize_trace,
)

__all__ = ["SERVICE_DIR", "JobQueue"]

#: States whose records absorb duplicate submissions (a failed or
#: quarantined job does *not* — resubmitting one is an explicit retry).
_DEDUP_STATES = ("pending", "leased", "done")


class JobQueue:
    """Spool-directory job store shared by server, workers and reaper.

    Every process/thread constructs its own ``JobQueue`` over the same
    *root*; all coordination happens through the filesystem.
    """

    def __init__(self, root: str | Path, *, max_depth: int = 64,
                 lease_ttl: float = 30.0, max_attempts: int = 3,
                 retry_backoff: float = 0.5) -> None:
        if max_depth < 1:
            raise ConfigError(f"max_depth must be >= 1, got {max_depth}")
        if lease_ttl <= 0:
            raise ConfigError(f"lease_ttl must be > 0, got {lease_ttl}")
        if max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {max_attempts}")
        self.root = Path(root)
        self.max_depth = max_depth
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff

    # ------------------------------------------------------------------
    # Paths.

    def state_dir(self, state: str) -> Path:
        if state not in STATES:
            raise ServiceError(f"unknown job state {state!r}")
        return self.root / "jobs" / state

    def record_path(self, job_id: str, state: str) -> Path:
        return self.state_dir(state) / f"{job_id}.json"

    def cancel_marker(self, job_id: str) -> Path:
        return self.root / "cancel" / job_id

    def events_path(self, job_id: str) -> Path:
        return self.root / "events" / f"{job_id}.jsonl"

    def result_path(self, job_id: str) -> Path:
        return self.root / "results" / f"{job_id}.json"

    def spans_path(self, job_id: str) -> Path:
        return self.root / "spans" / f"{job_id}.jsonl"

    def workers_dir(self) -> Path:
        return self.root / "workers"

    def status_path(self, worker: str) -> Path:
        return self.workers_dir() / f"{worker}.json"

    def ensure_layout(self) -> None:
        for state in STATES:
            self.state_dir(state).mkdir(parents=True, exist_ok=True)
        for sub in ("cancel", "events", "results", "spans", "workers"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Locking (multi-writer transitions only; claims are rename-atomic).

    class _Lock:
        def __init__(self, path: Path) -> None:
            self.path = path
            self._fh = None

        def __enter__(self):
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a")
            if fcntl is not None:
                fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX)
            return self

        def __exit__(self, *exc):
            try:
                if fcntl is not None:
                    fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
            finally:
                self._fh.close()
                self._fh = None

    def _lock(self) -> "_Lock":
        return self._Lock(self.root / ".lock")

    # ------------------------------------------------------------------
    # Record I/O.

    def _publish(self, record: JobRecord, state: str) -> None:
        """Atomically (re)write *record* into *state*'s spool directory."""
        record.state = state
        record.touch()
        directory = self.state_dir(state)
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(record.to_json())
            os.replace(tmp, self.record_path(record.job_id, state))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _read(self, path: Path) -> JobRecord | None:
        try:
            return JobRecord.from_json(path.read_text())
        except (OSError, ValueError):
            return None

    def _leave_leased(self, record: JobRecord, dest_state: str) -> None:
        """Transition out of ``leased/``: destination copy first, then
        unlink the leased copy (see the module docstring's recovery rule).
        """
        self._publish(record, dest_state)
        try:
            self.record_path(record.job_id, "leased").unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Events.

    def append_event(self, job_id: str, kind: str, **fields) -> None:
        event = {"t": round(time.time(), 3), "kind": kind, **fields}
        locked_append(self.events_path(job_id),
                      json.dumps(event, sort_keys=True,
                                 separators=(",", ":")))

    def read_events(self, job_id: str) -> list[dict]:
        """Parse the job's event stream, tolerating a torn final line.

        A crash mid-append can leave the last line truncated — possibly
        inside a multi-byte UTF-8 sequence — so each line is decoded and
        parsed independently and bad lines are skipped, mirroring the run
        ledger's tolerant parse.
        """
        try:
            raw = self.events_path(job_id).read_bytes()
        except OSError:
            return []
        events = []
        for chunk in raw.splitlines():
            try:
                event = json.loads(chunk.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                continue
            if isinstance(event, dict):
                events.append(event)
        return events

    # ------------------------------------------------------------------
    # Worker spans (the job-trace stitcher's raw material).

    def append_spans(self, job_id: str, records) -> int:
        """Persist span records (``SpanRecord.as_dict`` dicts or objects)
        for *job_id*; append-only JSONL, one span per line."""
        count = 0
        for record in records:
            data = record if isinstance(record, dict) else record.as_dict()
            locked_append(self.spans_path(job_id),
                          json.dumps(data, sort_keys=True,
                                     separators=(",", ":")))
            count += 1
        return count

    def read_spans(self, job_id: str) -> list[dict]:
        """All persisted span dicts for *job_id* (torn lines skipped)."""
        try:
            raw = self.spans_path(job_id).read_bytes()
        except OSError:
            return []
        out = []
        for chunk in raw.splitlines():
            try:
                data = json.loads(chunk.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                continue
            if isinstance(data, dict) and "t0_ns" in data:
                out.append(data)
        return out

    # ------------------------------------------------------------------
    # Submission (dedup + admission control).

    def submit(self, spec: dict, config: MachineConfig | None = None,
               trace: dict | None = None) -> tuple[JobRecord, bool]:
        """Admit one job; returns ``(record, created)``.

        ``created=False`` means an identical live job absorbed the
        submission (content-addressed dedup) — the caller polls the
        shared job.  Raises :class:`BackpressureError` past *max_depth*
        and :class:`ConfigError` for malformed specs.  *trace* is an
        optional client trace context (see
        :func:`repro.service.records.normalize_trace`); it is telemetry
        only and never enters the dedup key.
        """
        config = config if config is not None else MachineConfig()
        spec = normalize_spec(spec)
        trace = normalize_trace(trace)
        key = job_dedup_key(spec, config)
        self.ensure_layout()
        with self._lock():
            for state in _DEDUP_STATES:
                for record in self._records_in(state):
                    if record.dedup_key == key:
                        record.submitted += 1
                        self._publish(record, state)
                        self.append_event(record.job_id, "deduplicated",
                                          submitted=record.submitted)
                        metrics.inc("jobs_deduplicated")
                        return record, False
            depth = len(self._paths_in("pending"))
            if depth >= self.max_depth:
                metrics.inc("backpressure_rejections")
                raise BackpressureError(depth, self.max_depth)
            record = JobRecord(job_id=new_job_id(), spec=spec,
                               dedup_key=key,
                               max_attempts=self.max_attempts,
                               trace=trace)
            self._publish(record, "pending")
        self.append_event(record.job_id, "submitted", spec=spec)
        metrics.inc("jobs_submitted")
        return record, True

    # ------------------------------------------------------------------
    # Claiming and leases.

    def claim(self, worker: str, pid: int | None = None) -> JobRecord | None:
        """Claim the oldest eligible pending job for *worker*, or None.

        The claim itself is a single atomic rename — exactly one of any
        number of racing workers wins a given job.
        """
        now = time.time()
        for path in self._paths_in("pending"):
            record = self._read(path)
            if record is None:
                continue
            if record.not_before > now:
                continue
            if self.cancel_marker(record.job_id).exists():
                with self._lock():
                    self._finalize_cancelled(record, "pending")
                continue
            leased_path = self.record_path(record.job_id, "leased")
            try:
                os.rename(path, leased_path)
            except OSError:
                continue  # lost the race; try the next job
            record.lease = {"worker": worker,
                            "pid": pid if pid is not None else os.getpid(),
                            "deadline": now + self.lease_ttl,
                            "since": now,
                            "renewals": 0}
            self._publish(record, "leased")
            self.append_event(record.job_id, "leased", worker=worker,
                              pid=record.lease["pid"],
                              attempt=record.attempts + 1,
                              deadline=round(record.lease["deadline"], 3))
            metrics.inc("jobs_claimed")
            if record.attempts == 0:
                # First execution: time spent waiting in pending/.
                metrics.observe("job_queue_wait_seconds",
                                max(now - record.created, 0.0))
            return record
        return None

    def renew(self, job_id: str, worker: str) -> JobRecord | None:
        """Extend *worker*'s lease; returns the fresh record, or ``None``
        when the lease is lost (job expired and was requeued, cancelled,
        or completed elsewhere) — the worker must then abandon the job.
        """
        with self._lock():
            record = self._read(self.record_path(job_id, "leased"))
            if record is None or record.lease is None or \
                    record.lease.get("worker") != worker:
                return None
            record.lease["deadline"] = time.time() + self.lease_ttl
            record.lease["renewals"] = record.lease.get("renewals", 0) + 1
            self._publish(record, "leased")
        self.append_event(job_id, "heartbeat", worker=worker,
                          renewals=record.lease["renewals"],
                          deadline=round(record.lease["deadline"], 3))
        metrics.inc("lease_renewals")
        return record

    def record_cell(self, job_id: str, worker: str) -> None:
        """Bump the leased record's completed-cell counter (best-effort)."""
        with self._lock():
            record = self._read(self.record_path(job_id, "leased"))
            if record is None or record.lease is None or \
                    record.lease.get("worker") != worker:
                return
            record.cells_done += 1
            self._publish(record, "leased")

    # ------------------------------------------------------------------
    # Terminal transitions (always out of leased/).

    def _owned_leased(self, job_id: str, worker: str | None
                      ) -> JobRecord | None:
        """The current leased record, iff *worker* still holds the lease
        (``worker=None`` skips the ownership check — reaper/admin paths).
        Must be called under :meth:`_lock`.
        """
        current = self._read(self.record_path(job_id, "leased"))
        if current is None:
            return None
        if worker is not None and \
                (current.lease or {}).get("worker") != worker:
            return None
        return current

    def complete(self, record: JobRecord, result_path: str | Path,
                 worker: str | None = None) -> bool:
        """Finish a leased job; ``False`` if the lease was lost meanwhile
        (the job expired and someone else owns it now — this worker's
        result is simply dropped; the re-execution is deterministic).
        """
        with self._lock():
            current = self._owned_leased(record.job_id, worker)
            if current is None:
                return False
            current.outcome = "completed"
            current.error = None
            current.result_path = str(result_path)
            current.lease = None
            self._leave_leased(current, "done")
        self.append_event(record.job_id, "state", state="done",
                          outcome="completed")
        metrics.inc("jobs_completed")
        metrics.observe("job_latency_seconds",
                        max(time.time() - current.created, 0.0))
        self._clear_cancel(record.job_id)
        return True

    def fail(self, record: JobRecord, error: str,
             traceback_text: str | None = None,
             worker: str | None = None) -> str:
        """One failed execution: retry with backoff or quarantine.

        Returns the state the job landed in: ``pending`` for a retry,
        ``quarantined`` past the budget, ``failed`` if it was cancelled,
        or ``lost`` when the caller's lease had already expired (the
        record is untouched — its new owner is responsible for it).
        """
        with self._lock():
            current = self._owned_leased(record.job_id, worker)
            if current is None:
                return "lost"
            current.attempts += 1
            current.error = error
            current.traceback = traceback_text
            current.lease = None
            if self.cancel_marker(record.job_id).exists():
                current.outcome = "cancelled"
                self._leave_leased(current, "failed")
                landed = "failed"
            elif current.attempts >= current.max_attempts:
                current.outcome = "quarantined"
                self._leave_leased(current, "quarantined")
                landed = "quarantined"
            else:
                delay = self.retry_backoff * (2 ** (current.attempts - 1))
                current.not_before = time.time() + delay
                self._leave_leased(current, "pending")
                landed = "pending"
            record.attempts = current.attempts
        self.append_event(record.job_id, "failed", error=error,
                          attempt=current.attempts, landed=landed)
        metrics.inc("jobs_failed")
        if landed == "pending":
            metrics.inc("jobs_retried")
        elif landed == "quarantined":
            metrics.inc("jobs_quarantined")
        else:
            metrics.inc("jobs_cancelled")
        if landed != "pending":
            self._clear_cancel(record.job_id)
        return landed

    def cancel_job(self, record: JobRecord,
                   worker: str | None = None) -> bool:
        """A worker observed the cancel marker mid-run."""
        with self._lock():
            current = self._owned_leased(record.job_id, worker)
            if current is None:
                return False
            current.outcome = "cancelled"
            current.lease = None
            self._leave_leased(current, "failed")
        self.append_event(record.job_id, "state", state="failed",
                          outcome="cancelled")
        metrics.inc("jobs_cancelled")
        self._clear_cancel(record.job_id)
        return True

    def release(self, record: JobRecord, worker: str | None = None) -> None:
        """Graceful drain: requeue a leased job, attempt-neutral.

        Completed cells are checkpointed, so the next claimant resumes
        instead of recomputing.  A record that is no longer leased (lease
        lost while draining) is left alone.
        """
        with self._lock():
            current = self._owned_leased(record.job_id, worker)
            if current is None:
                return
            current.lease = None
            current.not_before = 0.0
            self._leave_leased(current, "pending")
        self.append_event(record.job_id, "released",
                          cells_done=current.cells_done)
        metrics.inc("jobs_released")

    # ------------------------------------------------------------------
    # Reaper: lease expiry + crash recovery.

    def expire_leases(self, now: float | None = None) -> list[str]:
        """Requeue (or quarantine) every leased job whose lease lapsed.

        Also applies the duplicate-recovery rule for crash leftovers.
        Returns the ids it acted on.  Called periodically by the server's
        reaper and once at startup (jobs stranded in ``leased/`` by a
        crashed server have long-passed deadlines and requeue instantly).
        """
        now = time.time() if now is None else now
        acted = []
        for path in self._paths_in("leased"):
            job_id = path.stem
            if self._drop_stale_leased_copy(job_id):
                acted.append(job_id)
                continue
            with self._lock():
                record = self._read(path)
                if record is None:
                    continue
                deadline = (record.lease or {}).get("deadline", 0.0)
                if deadline > now:
                    continue
                record.attempts += 1
                holder = (record.lease or {}).get("worker")
                record.lease = None
                if record.attempts >= record.max_attempts:
                    record.outcome = "quarantined"
                    record.error = (
                        f"lease expired {record.attempts} time(s) "
                        f"(last held by {holder or 'unknown'}) — worker "
                        f"crash loop, retry budget exhausted")
                    self._leave_leased(record, "quarantined")
                    landed = "quarantined"
                else:
                    record.not_before = 0.0
                    self._leave_leased(record, "pending")
                    landed = "pending"
            self.append_event(job_id, "lease_expired", worker=holder,
                              attempt=record.attempts, landed=landed)
            metrics.inc("lease_expiries")
            if landed == "quarantined":
                metrics.inc("jobs_quarantined")
            else:
                metrics.inc("jobs_retried")
            acted.append(job_id)
        return acted

    def _drop_stale_leased_copy(self, job_id: str) -> bool:
        """Recovery rule: leased copy + any other copy → drop the leased
        one (the crash happened after the destination was published)."""
        for state in STATES:
            if state == "leased":
                continue
            if self.record_path(job_id, state).exists():
                try:
                    self.record_path(job_id, "leased").unlink()
                except OSError:
                    pass
                return True
        return False

    # ------------------------------------------------------------------
    # Cancellation (client side).

    def request_cancel(self, job_id: str) -> str:
        """Cancel *job_id*; returns the resulting state.

        Pending jobs finalize immediately; leased jobs get a marker the
        worker observes at its next cell boundary; terminal jobs are
        left untouched (their state is returned).
        """
        found = self.get(job_id)
        if found is None:
            raise ServiceError(f"unknown job {job_id!r}")
        if found.terminal:
            return found.state
        marker = self.cancel_marker(job_id)
        marker.parent.mkdir(parents=True, exist_ok=True)
        marker.touch()
        with self._lock():
            record = self._read(self.record_path(job_id, "pending"))
            if record is not None:
                self._finalize_cancelled(record, "pending")
                return "failed"
        self.append_event(job_id, "cancel_requested")
        return "leased"

    def _finalize_cancelled(self, record: JobRecord, from_state: str) -> None:
        """Move a (non-leased) record straight to failed/cancelled."""
        record.outcome = "cancelled"
        record.lease = None
        self._publish(record, "failed")
        try:
            self.record_path(record.job_id, from_state).unlink()
        except OSError:
            pass
        self.append_event(record.job_id, "state", state="failed",
                          outcome="cancelled")
        metrics.inc("jobs_cancelled")
        self._clear_cancel(record.job_id)

    def _clear_cancel(self, job_id: str) -> None:
        try:
            self.cancel_marker(job_id).unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Introspection.

    def _paths_in(self, state: str) -> list[Path]:
        directory = self.state_dir(state)
        if not directory.is_dir():
            return []
        return sorted(directory.glob("*.json"))

    def _records_in(self, state: str) -> list[JobRecord]:
        records = []
        for path in self._paths_in(state):
            record = self._read(path)
            if record is not None:
                records.append(record)
        return records

    def get(self, job_id: str) -> JobRecord | None:
        """The job's current record, wherever it is in the spool."""
        for state in STATES:
            record = self._read(self.record_path(job_id, state))
            if record is not None:
                return record
        return None

    def list_jobs(self) -> list[JobRecord]:
        records = []
        for state in STATES:
            records.extend(self._records_in(state))
        return sorted(records, key=lambda r: r.job_id)

    def counts(self) -> dict:
        return {state: len(self._paths_in(state)) for state in STATES}

    def load_result(self, record: JobRecord) -> dict | None:
        if record.result_path is None:
            return None
        try:
            return json.loads(Path(record.result_path).read_text())
        except (OSError, ValueError):
            return None
