"""Resilience subsystem: fault injection, deadlock forensics, verification.

Three pillars (ISSUE 3):

* :mod:`~repro.resilience.faults` — seeded deterministic
  :class:`FaultPlan`/:class:`FaultInjector` covering cache-line
  corruption, fill delays/drops, queue-transfer stalls/drops/corruption
  and CMAS trigger suppression.
* :mod:`~repro.resilience.watchdog` — :class:`ProgressWatchdog`, the
  structured replacement for the old "nudge one cycle" deadlock
  workaround; raises :class:`~repro.errors.DeadlockError` with a forensic
  occupancy dump.
* :mod:`~repro.resilience.oracle` — the co-simulation referee behind
  ``--verify``: commit-stream integrity plus a direct functional state
  diff (memory, registers, store order).

:mod:`~repro.resilience.campaign` composes them into fault-injection
campaigns proving graceful degradation (``hidisc faults``).
"""

from .campaign import CampaignOutcome, run_fault_campaign
from .faults import FAULT_KINDS, FaultInjector, FaultPlan, FaultSite
from .oracle import (
    check_commit_stream,
    diff_memory,
    diff_registers,
    diff_store_order,
    verified_run,
    verify_compiled,
)
from .watchdog import ProgressWatchdog, forensic_dump

__all__ = [
    "FAULT_KINDS",
    "CampaignOutcome",
    "FaultInjector",
    "FaultPlan",
    "FaultSite",
    "ProgressWatchdog",
    "check_commit_stream",
    "diff_memory",
    "diff_registers",
    "diff_store_order",
    "forensic_dump",
    "run_fault_campaign",
    "verified_run",
    "verify_compiled",
]
