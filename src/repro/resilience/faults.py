"""Deterministic fault injection for the timing and functional simulators.

A :class:`FaultPlan` is a seeded, fully reproducible list of
:class:`FaultSite`\\ s.  Each site names a *kind* and the ordinal of the
event it fires at (the *k*-th cache fill, the *k*-th queue-transfer issue,
the *k*-th CMAS fork attempt), so the same plan injects the same faults on
every replay — campaigns are diffable and failures bisectable.

Fault kinds and the layer they act on:

==================  ======================================================
``delay_fill``      timing: the k-th L1-miss fill takes ``arg`` extra
                    cycles (a flaky DRAM rank / contended channel).
``drop_fill``       timing: the k-th fill is lost and retried — the miss
                    pays the full round-trip twice.
``corrupt_line``    timing: the k-th fill arrives corrupt; ECC discards the
                    line, so the next touch re-misses.  Architecturally
                    safe by construction (data lives in main memory).
``stall_queue``     timing: the k-th LDQ/SDQ transfer is delayed ``arg``
                    cycles on the inter-processor wires.
``drop_transfer``   timing: the k-th LDQ/SDQ transfer is lost.  The
                    consumer can never wake, so the machine *must* end in
                    a :class:`~repro.errors.DeadlockError` with a forensic
                    dump — never a silently-wrong cycle count.
``corrupt_transfer``functional: the k-th queue push's payload is bit-
                    flipped (see :meth:`ArchQueue.schedule_faults`); the
                    run must fail workload verification or the oracle's
                    state diff with a typed error.
``suppress_trigger``timing: the k-th CMAS fork is suppressed — pure
                    graceful degradation (fewer prefetches, same result).
==================  ======================================================

The timing-side hooks live behind ``machine.faults`` / ``hierarchy.faults``
attribute tests that are ``None`` in normal runs, so the injector costs
nothing when absent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import ConfigError

#: Every fault kind, grouped by the event domain its ordinal counts.
FILL_KINDS = ("delay_fill", "drop_fill", "corrupt_line")
QUEUE_KINDS = ("stall_queue", "drop_transfer")
FORK_KINDS = ("suppress_trigger",)
FUNCTIONAL_KINDS = ("corrupt_transfer", "drop_transfer")
FAULT_KINDS = FILL_KINDS + QUEUE_KINDS + FORK_KINDS + ("corrupt_transfer",)


@dataclass(frozen=True)
class FaultSite:
    """One scheduled fault: *kind* fires at event ordinal *at* (0-based)."""

    kind: str
    at: int
    #: extra cycles for delay/stall kinds (ignored by the others).
    arg: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r} (expected one of "
                f"{', '.join(FAULT_KINDS)})"
            )
        if self.at < 0:
            raise ConfigError("fault ordinal must be >= 0")
        if self.arg < 0:
            raise ConfigError("fault arg must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic fault-injection schedule."""

    seed: int
    sites: tuple[FaultSite, ...] = ()

    @classmethod
    def random(cls, seed: int, count: int = 8,
               kinds: tuple[str, ...] = FAULT_KINDS,
               horizon: int = 2000, max_delay: int = 200) -> "FaultPlan":
        """Draw *count* sites uniformly over *kinds* and ``[0, horizon)``.

        The same ``(seed, count, kinds, horizon, max_delay)`` always yields
        the same plan.  Ordinals past the end of a run simply never fire;
        :meth:`FaultInjector.counts` reports what actually landed.
        """
        if count < 0:
            raise ConfigError("fault count must be >= 0")
        if horizon < 1:
            raise ConfigError("fault horizon must be >= 1")
        rng = random.Random(seed)
        sites = tuple(
            FaultSite(kind=rng.choice(kinds), at=rng.randrange(horizon),
                      arg=rng.randrange(1, max_delay + 1))
            for _ in range(count)
        )
        return cls(seed=seed, sites=sites)

    def describe(self) -> str:
        """One line per site, in domain-ordinal order."""
        if not self.sites:
            return f"fault plan seed={self.seed}: empty"
        lines = [f"fault plan seed={self.seed}: {len(self.sites)} sites"]
        for site in sorted(self.sites, key=lambda s: (s.kind, s.at)):
            arg = f" (+{site.arg} cycles)" if site.kind in (
                "delay_fill", "stall_queue") else ""
            lines.append(f"  {site.kind:>16s} @ event #{site.at}{arg}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def functional_schedules(self) -> dict[str, dict[int, str]]:
        """Per-queue ArchQueue fault schedules for the functional layer.

        Queue-domain drops and ``corrupt_transfer`` sites apply to the LDQ
        (the dominant transfer path); the ordinal is the push ordinal.
        """
        schedule: dict[int, str] = {}
        for site in self.sites:
            if site.kind == "drop_transfer":
                schedule[site.at] = "drop"
            elif site.kind == "corrupt_transfer":
                schedule.setdefault(site.at, "corrupt")
        return {"LDQ": schedule} if schedule else {}


class FaultInjector:
    """Runtime companion of one :class:`FaultPlan` for one timing run.

    The machine, its memory hierarchy and its cores each hold a reference
    and call the ``on_*`` hooks at their event sites; the injector counts
    event ordinals per domain and answers with the scheduled action.
    A fresh injector must be built per run (ordinal counters are stateful).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._fill_sites: dict[int, FaultSite] = {}
        self._queue_sites: dict[int, FaultSite] = {}
        self._fork_sites: dict[int, FaultSite] = {}
        for site in plan.sites:
            if site.kind in FILL_KINDS:
                self._fill_sites.setdefault(site.at, site)
            elif site.kind in QUEUE_KINDS:
                self._queue_sites.setdefault(site.at, site)
            elif site.kind in FORK_KINDS:
                self._fork_sites.setdefault(site.at, site)
            # corrupt_transfer is functional-only: timing carries no data.
        self._fills = 0
        self._queue_pushes = 0
        self._forks = 0
        #: kind -> number of faults that actually fired this run.
        self.counts: dict[str, int] = {}
        #: gids of queue pushes whose transfer was dropped (forensics).
        self.dropped_gids: list[int] = []

    def _fired(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # Hooks (hot paths guard on `faults is not None` before calling).
    # ------------------------------------------------------------------
    def on_fill(self, hierarchy, block: int, latency: int, now: int) -> int:
        """Called by the hierarchy for every L1-miss fill; returns the
        (possibly fault-adjusted) latency."""
        site = self._fill_sites.get(self._fills)
        self._fills += 1
        if site is None:
            return latency
        self._fired(site.kind)
        if site.kind == "delay_fill":
            return latency + site.arg
        if site.kind == "drop_fill":
            # The fill is lost; the retry pays the round trip again.
            return latency * 2
        # corrupt_line: ECC rejects the data when the fill lands — discard
        # the allocated line and the in-flight entry so the next touch
        # re-misses instead of consuming bad data.
        hierarchy.l1.invalidate_block(block)
        hierarchy._inflight.pop(block, None)
        hierarchy._inflight_prefetch.discard(block)
        return latency

    def on_queue_push(self, gid: int) -> int | None:
        """Called by a core when an LDQ/SDQ-writing instruction issues.

        Returns extra latency cycles, or ``None`` when the transfer is
        dropped (the push never completes; the watchdog converts the
        resulting starvation into a :class:`~repro.errors.DeadlockError`).
        """
        site = self._queue_sites.get(self._queue_pushes)
        self._queue_pushes += 1
        if site is None:
            return 0
        self._fired(site.kind)
        if site.kind == "stall_queue":
            return site.arg
        self.dropped_gids.append(gid)
        return None

    def on_fork(self) -> bool:
        """Called per CMAS fork attempt; True suppresses the fork."""
        site = self._fork_sites.get(self._forks)
        self._forks += 1
        if site is None:
            return False
        self._fired(site.kind)
        return True

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, int]:
        """Faults that actually fired, by kind (empty dict = none)."""
        return dict(self.counts)
