"""Structured deadlock/livelock detection for the timing machine.

The simulation loop used to paper over a zero-progress cycle by nudging the
clock one cycle and counting on the ``max_cycles`` guard to eventually turn
a genuine queue-plan deadlock into a generic error two billion cycles
later.  The :class:`ProgressWatchdog` replaces that:

* **Structural deadlock** — a cycle makes no progress *and* no wake-up
  event exists anywhere (nothing in flight, no future-ready instruction,
  no pending branch resolution).  By construction nothing can ever change
  again, so the watchdog raises immediately.  The "no event" probe is the
  machine's completion calendar (``Machine._skip_to_next_event``) — every
  in-flight completion is bucketed there, so the check is O(1) instead of
  a scan over ``complete_at``; an injected *dropped* completion never
  enters the calendar, which is exactly how a lost queue transfer starves
  its consumers into this error.
* **Livelock safety net** — events keep firing but no instruction has
  dispatched/issued/committed for ``window`` cycles (default
  ``MachineConfig.watchdog_window``).

Either way the raised :class:`~repro.errors.DeadlockError` carries a
forensic dump: an occupancy snapshot taken through the telemetry sampler,
every core's window-head (with per-dependence completion status), queue
occupancy, outstanding misses and any injected faults — enough to diagnose
the stuck transfer without re-running the simulation.
"""

from __future__ import annotations

from ..errors import DeadlockError
from ..telemetry import spans
from ..telemetry.sampler import take_sample


def forensic_dump(machine, now: int) -> dict:
    """Collect everything needed to diagnose a stuck machine."""
    complete_at = machine.complete_at
    cores: dict[str, dict] = {}
    for core in machine.cores:
        entry = None
        if core.window:
            head = core.window[0]
            entry = {
                "gid": head.gid,
                "pos": head.pos,
                "pc": machine.trace[head.pos].pc,
                "op": head.instr.op.mnemonic,
                "issued": head.issued,
                "min_ready": head.min_ready,
                "deps": [
                    {"gid": dep, "complete_at": complete_at[dep]}
                    for dep in head.deps
                ],
            }
        cores[core.name] = {
            "window": len(core.window),
            "instr_queue": len(core.instr_queue),
            "committed": core.stats.committed,
            "head": entry,
        }
    faults = machine.faults
    return {
        "cycle": now,
        "benchmark": machine.benchmark,
        "mode": machine.mode,
        "fetch_pos": machine._fetch_pos,
        "trace_length": len(machine.trace),
        "waiting_branch": machine._waiting_branch,
        "occupancy": take_sample(machine, now).as_dict(),
        "outstanding_misses": machine.hierarchy.outstanding_misses(now),
        "cores": cores,
        "faults_injected": faults.summary() if faults is not None else {},
        "dropped_transfer_gids": (
            list(faults.dropped_gids) if faults is not None else []
        ),
    }


def _render(dump: dict, reason: str) -> str:
    """Actionable multi-line message summarizing the dump."""
    lines = [
        f"{dump['benchmark'] or '<unnamed>'} on {dump['mode']} deadlocked "
        f"at cycle {dump['cycle']}: {reason}",
        f"  fetch {dump['fetch_pos']}/{dump['trace_length']}, "
        f"queues {dump['occupancy']['queues']}, "
        f"{dump['outstanding_misses']} misses in flight",
    ]
    for name, core in dump["cores"].items():
        head = core["head"]
        if head is None:
            lines.append(
                f"  {name}: window empty, instr queue {core['instr_queue']}"
            )
            continue
        blocked = [d for d in head["deps"] if d["complete_at"] is None]
        why = (
            f"waiting on gids {[d['gid'] for d in blocked]} "
            f"(never completing)" if blocked and not head["issued"]
            else "issued but its completion never lands"
            if head["issued"] else "waiting on in-flight producers"
        )
        lines.append(
            f"  {name}: head {head['op']} gid {head['gid']} "
            f"(pc {head['pc']}) {why}; window {core['window']}, "
            f"instr queue {core['instr_queue']}"
        )
    if dump["faults_injected"]:
        lines.append(f"  injected faults: {dump['faults_injected']}")
    if dump["dropped_transfer_gids"]:
        lines.append(
            f"  dropped queue transfers: gids "
            f"{dump['dropped_transfer_gids']}"
        )
    else:
        lines.append(
            "  no faults were injected — this is a queue-plan or "
            "slicing bug; inspect the dump's per-core heads"
        )
    return "\n".join(lines)


class ProgressWatchdog:
    """Tracks forward progress of one timing run; raises on starvation."""

    def __init__(self, window: int = 10_000) -> None:
        if window < 1:
            raise ValueError("watchdog window must be >= 1 cycle")
        self.window = window
        self._last_progress = 0

    def note_progress(self, now: int) -> None:
        self._last_progress = now

    def check_stall(self, machine, now: int, next_event: int | None) -> None:
        """Called on every zero-progress cycle.

        *next_event* is the next cycle at which anything could happen, or
        ``None`` when no wake-up event exists — a structural deadlock.
        """
        if next_event is None:
            raise self.deadlock(
                machine, now,
                "no wake-up events in flight — nothing can ever progress",
            )
        if now - self._last_progress >= self.window:
            raise self.deadlock(
                machine, now,
                f"no instruction dispatched, issued or committed for "
                f"{now - self._last_progress} cycles "
                f"(watchdog window {self.window})",
            )

    def deadlock(self, machine, now: int, reason: str) -> DeadlockError:
        """Build (not raise) the forensic :class:`DeadlockError`."""
        dump = forensic_dump(machine, now)
        dump["reason"] = reason
        spans.instant("deadlock", cat="watchdog",
                      benchmark=machine.benchmark, mode=machine.mode,
                      cycle=now, reason=reason)
        return DeadlockError(_render(dump, reason), dump=dump)
