"""Fault-injection campaigns: prove graceful degradation, run by run.

A campaign takes one compiled benchmark, one machine mode and one seeded
:class:`~repro.resilience.faults.FaultPlan`, and asserts the resilience
contract: the machine either **completes with a passing oracle diff** or
**raises a typed** :class:`~repro.errors.ReproError` **with forensics** —
silent divergence is the only failure.

Two phases per campaign run:

1. **Functional phase** — the plan's data-corrupting sites
   (``corrupt_transfer``, ``drop_transfer``) are armed on the decoupled
   functional executor's LDQ; a fired fault must surface as a
   :class:`~repro.errors.QueueProtocolError` (starved pop) or a failed
   workload/oracle check.
2. **Timing phase** — a :class:`~repro.resilience.faults.FaultInjector`
   rides the timing machine (fill delays/drops, line corruption, queue
   stalls/drops, trigger suppression), and the run is refereed by
   :func:`~repro.resilience.oracle.verified_run`.

Anything that is *not* a :class:`~repro.errors.ReproError` propagates —
that is a harness bug, not degradation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError
from ..sim.functional import DecoupledFunctionalSimulator
from ..telemetry import metrics, spans
from .faults import FaultInjector, FaultPlan
from .oracle import verified_run


@dataclass
class CampaignOutcome:
    """What one faulted run did."""

    benchmark: str
    mode: str
    plan_seed: int
    #: "completed" (oracle-clean) or "raised" (typed error).
    outcome: str = "completed"
    error_type: str | None = None
    error: str | None = None
    #: timing-phase faults that actually fired, by kind.
    fired: dict[str, int] = field(default_factory=dict)
    #: functional-phase queue fault counters (drops/corruptions).
    queue_faults: dict[str, int] = field(default_factory=dict)
    cycles: int = 0
    verified: bool = False

    @property
    def graceful(self) -> bool:
        """The resilience contract held (no silent divergence)."""
        return self.outcome == "completed" and self.verified \
            or self.outcome == "raised"

    def as_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "mode": self.mode,
            "plan_seed": self.plan_seed,
            "outcome": self.outcome,
            "error_type": self.error_type,
            "error": self.error,
            "fired": dict(self.fired),
            "queue_faults": dict(self.queue_faults),
            "cycles": self.cycles,
            "verified": self.verified,
            "graceful": self.graceful,
        }

    def summary(self) -> str:
        if self.outcome == "completed":
            detail = f"{self.cycles} cycles, oracle clean"
        else:
            detail = f"{self.error_type}: {(self.error or '').splitlines()[0]}"
        fired = f", fired {self.fired}" if self.fired else ""
        qf = f", queue faults {self.queue_faults}" if self.queue_faults else ""
        return (f"{self.benchmark:>14s}/{self.mode:<11s} "
                f"seed {self.plan_seed}: {self.outcome} ({detail}){fired}{qf}")


def run_fault_campaign(cw, config, mode: str, plan: FaultPlan,
                       max_cycles: int | None = None) -> CampaignOutcome:
    """Execute one faulted run of *cw* on *mode*; never returns silently
    wrong numbers — see the module docstring for the contract."""
    with spans.span("fault_campaign_cell", cat="faults", benchmark=cw.name,
                    mode=mode, seed=plan.seed) as sp:
        outcome = _run_fault_campaign(cw, config, mode, plan, max_cycles)
        sp.set(outcome=outcome.outcome)
        metrics.inc("campaign_cells")
        if outcome.outcome == "raised":
            metrics.inc("campaign_raised")
        return outcome


def _run_fault_campaign(cw, config, mode: str, plan: FaultPlan,
                        max_cycles: int | None) -> CampaignOutcome:
    outcome = CampaignOutcome(benchmark=cw.name, mode=mode,
                              plan_seed=plan.seed)

    # Phase 1: functional data faults (the timing model carries no data,
    # so payload corruption is injected where the values actually flow).
    schedules = plan.functional_schedules()
    if schedules:
        sim = DecoupledFunctionalSimulator(cw.compilation.decoupled)
        for name, schedule in schedules.items():
            queue = getattr(sim.queues, name.lower())
            queue.schedule_faults(schedule)
        try:
            state = sim.run()
            cw.workload.verify(state)
            if not sim.queues.ldq.empty or not sim.queues.sdq.empty:
                raise ReproError(
                    f"{cw.name}: queues not drained after faulted "
                    f"functional run"
                )
        except ReproError as exc:
            outcome.outcome = "raised"
            outcome.error_type = type(exc).__name__
            outcome.error = str(exc)
        for name in ("ldq", "sdq"):
            stats = getattr(sim.queues, name).stats
            if stats.drops or stats.corruptions:
                outcome.queue_faults[name.upper()] = (
                    stats.drops + stats.corruptions
                )
        if outcome.outcome == "raised":
            return outcome

    # Phase 2: timing faults under the co-simulation oracle.
    injector = FaultInjector(plan)
    try:
        result = verified_run(cw, config, mode, faults=injector,
                              max_cycles=max_cycles)
    except ReproError as exc:
        outcome.outcome = "raised"
        outcome.error_type = type(exc).__name__
        outcome.error = str(exc)
        outcome.fired = injector.summary()
        return outcome
    outcome.cycles = result.cycles
    outcome.verified = result.verified
    outcome.fired = injector.summary()
    return outcome
