"""Co-simulation oracle: check timing runs against the functional model.

The timing machines are trace-driven, so they cannot *invent* wrong data —
but a queue-protocol or slicing bug can silently commit instructions out
of order, twice, or not at all, and a fault-injection campaign needs an
independent referee.  The oracle checks two things:

* **Commit-stream integrity** (per timing run): with
  ``record_commits=True`` the machine logs every retirement; the oracle
  asserts that every trace position commits exactly once, in program
  order per core, with gid/pos agreement — the timing-mode analogue of
  "architectural state matches".
* **Functional state diff** (per compiled workload): the sequential golden
  model and the split-register-file decoupled executor are re-run and
  their final memories, final register files and dynamic *store order*
  are diffed directly (a stronger check than the symbol-level
  ``workload.verify``), and both are verified against the workload
  reference.

:func:`verified_run` bundles both behind the CLI's ``--verify`` flag:
run the timing model with commit recording, then referee.  Any mismatch
raises a typed :class:`~repro.errors.VerificationError` listing every
violation — a silent divergence cannot survive it.
"""

from __future__ import annotations

from ..errors import ReproError, VerificationError
from ..sim.functional import DecoupledFunctionalSimulator, FunctionalSimulator

#: Attribute used to memoize the functional diff on a CompiledWorkload
#: (the diff depends only on the compilation, not on the machine mode).
_MEMO_ATTR = "_oracle_mismatches"


# ----------------------------------------------------------------------
# State diffing.
# ----------------------------------------------------------------------

def diff_memory(expected, actual, limit: int = 8) -> list[str]:
    """Byte-level diff of two :class:`MainMemory` contents."""
    from ..sim.memory import PAGE_BITS, PAGE_SIZE

    mismatches: list[str] = []
    zero = bytes(PAGE_SIZE)
    indices = sorted(set(expected._pages) | set(actual._pages))
    for index in indices:
        a = bytes(expected._pages.get(index, b"")) or zero
        b = bytes(actual._pages.get(index, b"")) or zero
        if a == b:
            continue
        offset = next(i for i in range(PAGE_SIZE) if a[i] != b[i])
        address = (index << PAGE_BITS) + offset
        mismatches.append(
            f"memory differs at 0x{address:x}: expected byte "
            f"0x{a[offset]:02x}, got 0x{b[offset]:02x}"
        )
        if len(mismatches) >= limit:
            mismatches.append("... further memory mismatches suppressed")
            break
    return mismatches


def diff_registers(seq_regs, cp_regs, ap_regs, limit: int = 8) -> list[str]:
    """Check every sequential register value survives in CP or AP.

    Register liveness is split across the two files (CS values live on the
    CP, AS values on the AP), so the sequential final value must appear in
    at least one of them.
    """
    mismatches: list[str] = []
    for reg in range(1, len(seq_regs)):
        want = seq_regs[reg]
        if cp_regs[reg] == want or ap_regs[reg] == want:
            continue
        name = f"r{reg}" if reg < 32 else f"f{reg - 32}"
        mismatches.append(
            f"register {name}: sequential {want!r}, "
            f"CP {cp_regs[reg]!r}, AP {ap_regs[reg]!r}"
        )
        if len(mismatches) >= limit:
            mismatches.append("... further register mismatches suppressed")
            break
    return mismatches


def store_order(program, trace) -> list[int]:
    """Effective addresses of the trace's stores, in dynamic order."""
    text = program.text
    return [dyn.addr for dyn in trace if text[dyn.pc].is_store]


def diff_store_order(cw) -> list[str]:
    """The decoupled trace must store to the same addresses in the same
    order as the sequential trace (decoupling may never reorder memory
    writes — the SAQ/SDQ protocol serializes them)."""
    comp = cw.compilation
    seq = store_order(comp.original, cw.trace)
    dec = store_order(comp.decoupled, cw.decoupled_trace)
    if seq == dec:
        return []
    if len(seq) != len(dec):
        return [
            f"store count differs: sequential {len(seq)}, "
            f"decoupled {len(dec)}"
        ]
    k = next(i for i, (a, b) in enumerate(zip(seq, dec)) if a != b)
    return [
        f"store order diverges at store #{k}: sequential 0x{seq[k]:x}, "
        f"decoupled 0x{dec[k]:x}"
    ]


# ----------------------------------------------------------------------
# Functional oracle (per compiled workload).
# ----------------------------------------------------------------------

def verify_compiled(cw) -> list[str]:
    """Re-run both functional models and diff their final states.

    Returns the list of mismatches (empty = the compilation is sound).
    Results are memoized on *cw* — the diff is mode-independent, so a
    four-model ``--verify`` suite pays for it once per benchmark.
    """
    memo = getattr(cw, _MEMO_ATTR, None)
    if memo is not None:
        return list(memo)
    comp = cw.compilation
    mismatches: list[str] = []

    seq = FunctionalSimulator(comp.original)
    seq_state = seq.run()
    dec = DecoupledFunctionalSimulator(comp.decoupled)
    dec_state = dec.run()

    if not dec.queues.ldq.empty:
        mismatches.append(
            f"LDQ not drained: {len(dec.queues.ldq)} residual entries"
        )
    if not dec.queues.sdq.empty:
        mismatches.append(
            f"SDQ not drained: {len(dec.queues.sdq)} residual entries"
        )
    mismatches += diff_memory(seq_state.memory, dec_state.memory)
    mismatches += diff_registers(seq_state.regs, dec.cp_state.regs,
                                 dec.ap_state.regs)
    mismatches += diff_store_order(cw)
    for label, state in (("sequential", seq_state), ("decoupled", dec_state)):
        try:
            cw.workload.verify(state)
        except ReproError as exc:
            mismatches.append(f"{label} run fails workload reference: {exc}")
    try:
        setattr(cw, _MEMO_ATTR, tuple(mismatches))
    except AttributeError:  # slots/frozen safety — memoization is optional
        pass
    return mismatches


# ----------------------------------------------------------------------
# Commit-stream check (per timing run).
# ----------------------------------------------------------------------

def check_commit_stream(machine) -> list[str]:
    """Referee the recorded retirement log of one timing run."""
    log = machine.commit_log
    if log is None:
        return ["machine was run without record_commits=True — "
                "no commit log to verify"]
    n = len(machine.trace)
    mismatches: list[str] = []
    seen = bytearray(n)
    last_pos: dict[str, int] = {}
    for core_name, gid, pos in log:
        if core_name == "CMP":
            # CMAS copies retire outside the architectural stream.
            continue
        if gid != pos:
            mismatches.append(
                f"{core_name}: committed gid {gid} disagrees with trace "
                f"position {pos}"
            )
        if not 0 <= pos < n:
            mismatches.append(
                f"{core_name}: committed position {pos} outside trace "
                f"[0, {n})"
            )
            continue
        if seen[pos]:
            mismatches.append(
                f"{core_name}: trace position {pos} committed twice"
            )
        seen[pos] = 1
        prev = last_pos.get(core_name)
        if prev is not None and pos <= prev:
            mismatches.append(
                f"{core_name}: commit order violation — position {pos} "
                f"after {prev}"
            )
        last_pos[core_name] = pos
    missing = seen.count(0)
    if missing:
        first = seen.index(0)
        mismatches.append(
            f"{missing} trace positions never committed (first: {first})"
        )
    return mismatches


# ----------------------------------------------------------------------
# The --verify entry point.
# ----------------------------------------------------------------------

def verified_run(cw, config, mode, telemetry=None, faults=None,
                 max_cycles: int | None = None):
    """Run one timing model under the oracle; raise on any divergence.

    Returns the :class:`~repro.sim.RunResult` with ``verified=True`` set.
    Raises :class:`~repro.errors.VerificationError` listing every
    mismatch; watchdog/cycle-limit errors from the run itself propagate
    unchanged (they are already typed and forensic).
    """
    from ..experiments.runner import build_machine

    machine = build_machine(cw, config, mode, telemetry=telemetry,
                            faults=faults, record_commits=True)
    result = machine.run(max_cycles=max_cycles)
    mismatches = check_commit_stream(machine)
    mismatches += verify_compiled(cw)
    if mismatches:
        raise VerificationError(
            f"{cw.name}/{mode}: timing run diverged from the functional "
            f"oracle",
            mismatches,
        )
    result.verified = True
    return result
