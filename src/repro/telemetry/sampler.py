"""Periodic sampled timeseries of machine occupancy state.

The event stream answers "what happened"; the sampler answers "how full was
everything over time".  Every ``interval`` cycles it snapshots

* per-core scheduling-window and instruction-queue occupancy,
* LDQ/SDQ/SAQ occupancy (as tracked by the machine's issue-time counters),
* outstanding misses in flight in the memory hierarchy,

keeps the samples in memory (:attr:`Sampler.samples`) and mirrors them to
the active sink as counter tracks, so a Chrome trace shows queue-depth
timelines under the instruction lanes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .sinks import Sink


@dataclass
class Sample:
    """One snapshot of machine occupancy state."""

    cycle: int
    #: core name -> (window occupancy, instruction-queue occupancy)
    cores: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: queue name -> occupancy (LDQ/SDQ/SAQ)
    queues: dict[str, int] = field(default_factory=dict)
    outstanding_misses: int = 0

    def as_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "cores": {name: {"window": w, "instr_queue": q}
                      for name, (w, q) in self.cores.items()},
            "queues": dict(self.queues),
            "outstanding_misses": self.outstanding_misses,
        }


def take_sample(machine, now: int) -> Sample:
    """Snapshot *machine*'s occupancy state at cycle *now*.

    Shared by the periodic :class:`Sampler` and the resilience watchdog's
    forensic deadlock dumps (:mod:`repro.resilience.watchdog`).
    """
    sample = Sample(cycle=now)
    for core in machine.cores:
        sample.cores[core.name] = (len(core.window), len(core.instr_queue))
    sample.queues = dict(machine.queue_occupancy)
    sample.outstanding_misses = machine.hierarchy.outstanding_misses(now)
    return sample


class Sampler:
    """Fixed-interval occupancy sampler attached to one machine run."""

    def __init__(self, interval: int, sink: Sink | None = None) -> None:
        if interval < 1:
            raise ValueError("sample interval must be >= 1 cycle")
        self.interval = interval
        self.sink = sink if (sink is not None and sink.enabled) else None
        self.samples: list[Sample] = []
        #: next cycle at or after which :meth:`record` should run (the
        #: machine's clock can jump over dead time, so this is a floor,
        #: not an exact schedule).
        self.next_at = 0

    def record(self, machine, now: int) -> Sample:
        """Snapshot *machine* at cycle *now*; emits counters to the sink."""
        sample = take_sample(machine, now)
        self.samples.append(sample)
        self.next_at = now + self.interval

        sink = self.sink
        if sink is not None:
            for name, (window, iq) in sample.cores.items():
                sink.counter("occupancy", f"{name} window", now, window)
                sink.counter("occupancy", f"{name} iq", now, iq)
            for name, value in sample.queues.items():
                sink.counter("queues", name, now, value)
            sink.counter("memory", "outstanding_misses", now,
                         sample.outstanding_misses)
        return sample

    # ------------------------------------------------------------------
    def peak(self, queue: str) -> int:
        """Highest sampled occupancy of *queue* (0 if never sampled)."""
        return max((s.queues.get(queue, 0) for s in self.samples), default=0)

    def as_payload(self) -> list[dict]:
        return [s.as_dict() for s in self.samples]
