"""Live progress heartbeat for long simulations.

An opt-in status stream: simulated cycle, running IPC, LDQ/SDQ/SAQ
occupancy, and host throughput (simulated cycles per wall-clock second).
Piggybacks on the run loop's existing sampler check — when disabled (the
default) the loop pays nothing new.

On a TTY the heartbeat renders as a single in-place status line
(``\\r``-rewritten every beat); on anything else (pipes, files, test
streams) it falls back to one line per beat.  Either way the run loop and
:meth:`repro.telemetry.Telemetry.close` call :meth:`Heartbeat.finish` on
completion *and* on exceptions, which clears any in-progress status line
so subsequent output (results, tracebacks) never splices into it.
"""

from __future__ import annotations

import sys
import time


class StatusLine:
    """A single refreshing status line with the heartbeat's TTY contract.

    On a TTY (``live=True``) each :meth:`update` rewrites the line in
    place with ``\\r``, padding over any longer previous rendering; on
    anything else each update is one plain newline-terminated line, so
    control sequences never reach a log file or pipe.  :meth:`finish`
    clears an in-progress line (idempotent), leaving the cursor at
    column 0 so subsequent output never splices into stale status text.

    Extracted from :class:`Heartbeat` so other refreshers (``hidisc jobs
    top``) share the exact same rendering contract.
    """

    def __init__(self, stream=None, live: bool | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        if live is None:
            isatty = getattr(self.stream, "isatty", None)
            live = bool(isatty and isatty())
        self.live = live
        #: width of the currently-open ``\r`` status line (0 = none open).
        self._open_width = 0

    def update(self, text: str) -> None:
        if self.live:
            pad = max(self._open_width - len(text), 0)
            self.stream.write("\r" + text + " " * pad)
            self._open_width = len(text)
        else:
            self.stream.write(text + "\n")
        self.stream.flush()

    def finish(self) -> None:
        if not self._open_width:
            return
        self.stream.write("\r" + " " * self._open_width + "\r")
        self.stream.flush()
        self._open_width = 0


class Heartbeat:
    """Emits a status line every *interval* simulated cycles.

    Writes to *stream* (default ``sys.stderr``, so heartbeats never
    corrupt ``--json`` output on stdout).  Follows the Sampler's
    ``next_at`` contract: the run loop checks ``now >= next_at`` and calls
    :meth:`emit`, which does the measuring and schedules the next beat.

    *live* selects the in-place single-line rendering; ``None`` (default)
    auto-detects it from ``stream.isatty()``.
    """

    def __init__(self, interval: int, stream=None,
                 live: bool | None = None) -> None:
        if interval < 1:
            raise ValueError("heartbeat interval must be >= 1 cycle")
        self.interval = interval
        self._line = StatusLine(stream, live)
        self.next_at = interval
        self.emitted = 0
        self._last_cycle = 0
        self._last_time = time.perf_counter()

    @property
    def stream(self):
        return self._line.stream

    @property
    def live(self) -> bool:
        return self._line.live

    @property
    def _open_width(self) -> int:
        return self._line._open_width

    @_open_width.setter
    def _open_width(self, value: int) -> None:
        self._line._open_width = value

    def snapshot(self, machine, now: int) -> dict:
        """Measure *machine* at cycle *now* as a JSON-ready dict.

        The machine-readable twin of the rendered status line, sharing
        its field names — the service's per-job event streams
        (:mod:`repro.service`) emit their heartbeat records in this
        shape, so a consumer can parse simulator and job heartbeats with
        one schema.  Does not advance ``next_at`` or write anything.
        """
        host_now = time.perf_counter()
        dt = host_now - self._last_time
        cps = (now - self._last_cycle) / dt if dt > 0 else 0.0
        committed = sum(core.stats.committed for core in machine.cores)
        occ = machine.queue_occupancy
        return {
            "cycle": now,
            "ipc": committed / now if now else 0.0,
            "ldq": occ["LDQ"],
            "sdq": occ["SDQ"],
            "saq": occ["SAQ"],
            "host_cps": cps,
        }

    def emit(self, machine, now: int) -> None:
        """Measure *machine* at cycle *now* and write one status line.

        On a non-TTY stream (CI logs, pipes, the service's captured
        worker stderr) the line is plain ``text + "\\n"`` — no ``\\r``
        control sequences ever reach a log file.
        """
        host_now = time.perf_counter()
        snap = self.snapshot(machine, now)
        text = (
            f"[hb] cycle={snap['cycle']} ipc={snap['ipc']:.3f} "
            f"ldq={snap['ldq']} sdq={snap['sdq']} saq={snap['saq']} "
            f"host_cps={snap['host_cps']:,.0f}"
        )
        self._line.update(text)
        self.emitted += 1
        self._last_cycle = now
        self._last_time = host_now
        self.next_at = now + self.interval

    def finish(self) -> None:
        """Clear/terminate an in-progress status line (idempotent).

        Called by the run loop on completion and on exceptions, and by
        ``Telemetry.close()`` — after it, the cursor sits at column 0 on a
        blank line, so whatever prints next cannot splice into a stale
        heartbeat.
        """
        self._line.finish()
