"""Live progress heartbeat for long simulations.

An opt-in one-line-per-interval status stream: simulated cycle, running
IPC, LDQ/SDQ/SAQ occupancy, and host throughput (simulated cycles per
wall-clock second).  Piggybacks on the run loop's existing sampler check
— when disabled (the default) the loop pays nothing new.
"""

from __future__ import annotations

import sys
import time


class Heartbeat:
    """Emits a status line every *interval* simulated cycles.

    Writes to *stream* (default ``sys.stderr``, so heartbeats never
    corrupt ``--json`` output on stdout).  Follows the Sampler's
    ``next_at`` contract: the run loop checks ``now >= next_at`` and calls
    :meth:`emit`, which does the measuring and schedules the next beat.
    """

    def __init__(self, interval: int, stream=None) -> None:
        if interval < 1:
            raise ValueError("heartbeat interval must be >= 1 cycle")
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self.next_at = interval
        self.emitted = 0
        self._last_cycle = 0
        self._last_time = time.perf_counter()

    def emit(self, machine, now: int) -> None:
        """Measure *machine* at cycle *now* and write one status line."""
        host_now = time.perf_counter()
        dt = host_now - self._last_time
        cps = (now - self._last_cycle) / dt if dt > 0 else 0.0
        committed = sum(core.stats.committed for core in machine.cores)
        ipc = committed / now if now else 0.0
        occ = machine.queue_occupancy
        self.stream.write(
            f"[hb] cycle={now} ipc={ipc:.3f} "
            f"ldq={occ['LDQ']} sdq={occ['SDQ']} saq={occ['SAQ']} "
            f"host_cps={cps:,.0f}\n"
        )
        self.stream.flush()
        self.emitted += 1
        self._last_cycle = now
        self._last_time = host_now
        self.next_at = now + self.interval
