"""Differential analysis of run/suite JSON payloads.

``hidisc diff A B`` turns "the numbers moved, now what?" into one command:
it walks two payloads produced by any of the JSON-emitting subcommands
(``stats``, ``suite``, ``table1 --json``, ``lifecycle``) and reports every
leaf whose value differs — CPI-stack components, per-benchmark cycles,
queue stats — plus, when both payloads carry lifecycle records, the
**first divergent committed instruction** (gid and commit cycle), which is
the bisection-ready answer for scheduler-parity failures.

Wall-clock noise keys (:data:`IGNORED_KEYS`) are excluded so two runs of
the same configuration diff clean.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Leaf keys that legitimately differ between identical runs (host timing,
#: provenance stamps) — never reported as divergence.
IGNORED_KEYS: frozenset[str] = frozenset(
    {"elapsed_seconds", "prepare_seconds", "date", "python", "path", "out"}
)


def load_payload(path: str | Path):
    """Load a JSON payload, or a JSONL stream as a list of rows."""
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".jsonl":
        return [json.loads(line) for line in text.splitlines() if line]
    return json.loads(text)


def walk_diff(a, b, path: str = "", *, limit: int = 50) -> tuple[list[dict], int]:
    """Structurally compare *a* and *b*; returns (divergences, leaves_compared).

    Each divergence is ``{"path", "a", "b"}`` with a ``/``-separated path
    of dict keys and list indices.  Recording stops after *limit* entries
    (leaf counting continues), so pathological diffs stay readable.
    """
    out: list[dict] = []
    leaves = 0

    def note(p, va, vb):
        if len(out) < limit:
            out.append({"path": p or "(root)", "a": va, "b": vb})

    def recurse(x, y, p):
        nonlocal leaves
        if isinstance(x, dict) and isinstance(y, dict):
            for key in sorted(set(x) | set(y), key=str):
                if key in IGNORED_KEYS:
                    continue
                sub = f"{p}/{key}" if p else str(key)
                if key not in x:
                    leaves += 1
                    note(sub, None, y[key])
                elif key not in y:
                    leaves += 1
                    note(sub, x[key], None)
                else:
                    recurse(x[key], y[key], sub)
            return
        if isinstance(x, list) and isinstance(y, list):
            if len(x) != len(y):
                note(f"{p}/length" if p else "length", len(x), len(y))
            for i, (xi, yi) in enumerate(zip(x, y)):
                recurse(xi, yi, f"{p}/{i}" if p else str(i))
            leaves += abs(len(x) - len(y))
            return
        leaves += 1
        # Scalars (or mismatched container kinds).  Int-vs-float equality
        # is fine here — 2 == 2.0 is not a divergence worth reporting.
        if x != y:
            note(p, x, y)

    recurse(a, b, path)
    return out, leaves


def _lifecycle_rows(payload):
    """Extract lifecycle rows from a payload, if it carries any."""
    if isinstance(payload, list):
        rows = payload  # a raw lifecycle JSONL stream
    elif isinstance(payload, dict):
        rows = payload.get("lifecycle", {}).get("records")
    else:
        rows = None
    if rows and all(isinstance(r, dict) and "gid" in r and "commit" in r
                    for r in rows):
        return rows
    return None


def first_divergent_commit(rows_a: list[dict],
                           rows_b: list[dict]) -> dict | None:
    """First position where the two commit streams disagree, or None.

    Compares (gid, commit-cycle) pairs in commit order; a length mismatch
    past the common prefix is itself a divergence (one run committed more).
    """
    for i, (ra, rb) in enumerate(zip(rows_a, rows_b)):
        if ra["gid"] != rb["gid"] or ra["commit"] != rb["commit"]:
            return {"index": i,
                    "a": {"gid": ra["gid"], "commit": ra["commit"],
                          "pc": ra.get("pc"), "asm": ra.get("asm")},
                    "b": {"gid": rb["gid"], "commit": rb["commit"],
                          "pc": rb.get("pc"), "asm": rb.get("asm")}}
    if len(rows_a) != len(rows_b):
        i = min(len(rows_a), len(rows_b))
        longer = rows_a if len(rows_a) > len(rows_b) else rows_b
        extra = longer[i]
        side = "a" if longer is rows_a else "b"
        return {"index": i, "length_a": len(rows_a), "length_b": len(rows_b),
                side: {"gid": extra["gid"], "commit": extra["commit"],
                       "pc": extra.get("pc"), "asm": extra.get("asm")}}
    return None


def diff_payloads(a, b, *, limit: int = 50) -> dict:
    """Full differential report between two payloads.

    Returns ``{"identical", "leaves_compared", "divergences",
    "first_divergent_commit"}`` — the latter only meaningful when both
    payloads carry lifecycle records.
    """
    divergences, leaves = walk_diff(a, b, limit=limit)
    rows_a, rows_b = _lifecycle_rows(a), _lifecycle_rows(b)
    first = (first_divergent_commit(rows_a, rows_b)
             if rows_a is not None and rows_b is not None else None)
    return {
        "identical": not divergences and first is None,
        "leaves_compared": leaves,
        "divergences": divergences,
        "first_divergent_commit": first,
    }


def render_diff(report: dict, name_a: str = "A", name_b: str = "B") -> str:
    """Human-readable rendering of a :func:`diff_payloads` report."""
    lines: list[str] = []
    first = report["first_divergent_commit"]
    if first is not None:
        lines.append("first divergent committed instruction:")
        lines.append(f"  commit-stream index {first['index']}")
        for side, name in (("a", name_a), ("b", name_b)):
            info = first.get(side)
            if info is not None:
                asm = f"  {info['asm']}" if info.get("asm") else ""
                lines.append(f"  {name}: gid={info['gid']} "
                             f"commit_cycle={info['commit']}"
                             f" pc={info.get('pc')}{asm}")
        if "length_a" in first:
            lines.append(f"  commit counts: {name_a}={first['length_a']} "
                         f"{name_b}={first['length_b']}")
    divergences = report["divergences"]
    if divergences:
        lines.append(f"{len(divergences)} divergent value(s) "
                     f"({report['leaves_compared']} leaves compared):")
        for d in divergences:
            lines.append(f"  {d['path']}: {name_a}={d['a']!r} "
                         f"{name_b}={d['b']!r}")
    if not lines:
        lines.append(f"payloads identical "
                     f"({report['leaves_compared']} leaves compared)")
    return "\n".join(lines)
