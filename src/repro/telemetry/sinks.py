"""Pluggable telemetry sinks.

A sink receives the structured event stream of one simulation run.  Three
event shapes cover everything the timing models emit:

* **duration** — something occupied a track for ``dur`` cycles (an issued
  instruction on a core lane, a cache fill on the memory lane);
* **instant** — a point event (CMAS fork/drop, branch mispredict);
* **counter** — a sampled value on a named counter track (LDQ/SDQ/SAQ
  occupancy, window occupancy, outstanding misses).

``NullSink`` is the zero-overhead default: the machines test the class
attribute :attr:`Sink.enabled` once at construction and skip every emit
call when it is ``False``, so a run without telemetry never enters this
module.  ``ChromeTraceSink`` writes the Chrome/Perfetto ``trace_event``
JSON format (open the file at https://ui.perfetto.dev or in
``chrome://tracing``; one simulated cycle is rendered as one microsecond).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO


class Sink:
    """Interface (and documentation) of a telemetry sink."""

    #: Machines skip event emission entirely when this is False.
    enabled = True

    def duration(self, track: str, name: str, ts: int, dur: int,
                 args: dict | None = None) -> None:
        raise NotImplementedError

    def instant(self, track: str, name: str, ts: int,
                args: dict | None = None) -> None:
        raise NotImplementedError

    def counter(self, track: str, name: str, ts: int, value: int) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; further emits are undefined."""


class NullSink(Sink):
    """Discard everything (the default)."""

    enabled = False

    def duration(self, track, name, ts, dur, args=None) -> None:
        pass

    def instant(self, track, name, ts, args=None) -> None:
        pass

    def counter(self, track, name, ts, value) -> None:
        pass


#: Shared do-nothing sink; there is never a reason to make another.
NULL_SINK = NullSink()


class MemorySink(Sink):
    """Keep events in memory as tuples (tests and ad-hoc analysis).

    *max_events* bounds growth: once reached, further events are counted
    in :attr:`dropped` instead of stored (the oldest — usually the most
    interesting for a failure near the start — are kept).  A ``--verify``
    run with full telemetry can emit one event per dynamic instruction;
    without a cap that is the run's whole footprint in one list.
    """

    def __init__(self, max_events: int | None = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be >= 1 (or None)")
        self.max_events = max_events
        self.events: list[tuple] = []
        self.dropped = 0

    def _full(self) -> bool:
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return True
        return False

    def duration(self, track, name, ts, dur, args=None) -> None:
        if not self._full():
            self.events.append(("duration", track, name, ts, dur, args))

    def instant(self, track, name, ts, args=None) -> None:
        if not self._full():
            self.events.append(("instant", track, name, ts, args))

    def counter(self, track, name, ts, value) -> None:
        if not self._full():
            self.events.append(("counter", track, name, ts, value))

    def close(self) -> dict:
        """No resources to release; returns the capture summary."""
        return {"events": len(self.events), "dropped": self.dropped}

    def __repr__(self) -> str:
        cap = self.max_events if self.max_events is not None else "unbounded"
        return (f"MemorySink(events={len(self.events)}, cap={cap}, "
                f"dropped={self.dropped})")

    # convenience selectors -------------------------------------------------
    def of_kind(self, kind: str) -> list[tuple]:
        return [e for e in self.events if e[0] == kind]

    def tracks(self) -> set[str]:
        return {e[1] for e in self.events}


class TeeSink(Sink):
    """Fan one event stream out to several sinks."""

    def __init__(self, *sinks: Sink) -> None:
        self.sinks = [s for s in sinks if s.enabled]
        self.enabled = bool(self.sinks)

    def duration(self, track, name, ts, dur, args=None) -> None:
        for s in self.sinks:
            s.duration(track, name, ts, dur, args)

    def instant(self, track, name, ts, args=None) -> None:
        for s in self.sinks:
            s.instant(track, name, ts, args)

    def counter(self, track, name, ts, value) -> None:
        for s in self.sinks:
            s.counter(track, name, ts, value)

    def close(self) -> None:
        # Every child must get its flush even when an earlier one fails
        # (a full disk on one file must not lose the other's trace); the
        # first error is re-raised once all have been attempted.
        first_error: Exception | None = None
        for s in self.sinks:
            try:
                s.close()
            except Exception as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error


class JsonlSink(Sink):
    """One JSON object per line; trivially greppable / loadable with pandas."""

    def __init__(self, path: str | Path | IO[str]) -> None:
        if hasattr(path, "write"):
            self._fh: IO[str] = path  # type: ignore[assignment]
            self._owns = False
            self.path = None
        else:
            self.path = Path(path)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w")
            self._owns = True
        self.event_count = 0

    def _write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.event_count += 1

    def duration(self, track, name, ts, dur, args=None) -> None:
        rec = {"ev": "duration", "track": track, "name": name,
               "ts": ts, "dur": dur}
        if args:
            rec["args"] = args
        self._write(rec)

    def instant(self, track, name, ts, args=None) -> None:
        rec = {"ev": "instant", "track": track, "name": name, "ts": ts}
        if args:
            rec["args"] = args
        self._write(rec)

    def counter(self, track, name, ts, value) -> None:
        self._write({"ev": "counter", "track": track, "name": name,
                     "ts": ts, "value": value})

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class ChromeTraceSink(Sink):
    """Chrome/Perfetto ``trace_event`` JSON (the "JSON Array Format").

    Tracks map to threads of one process; counters become ``ph: "C"``
    counter tracks.  Timestamps are in microseconds in the format, so one
    simulated cycle displays as one microsecond.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._events: list[dict] = []
        self._tids: dict[str, int] = {}

    def _tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[track] = tid
        return tid

    @property
    def event_count(self) -> int:
        return len(self._events)

    def duration(self, track, name, ts, dur, args=None) -> None:
        self._events.append({
            "ph": "X", "pid": 0, "tid": self._tid(track), "cat": "sim",
            "name": name, "ts": ts, "dur": max(dur, 1),
            "args": args or {},
        })

    def instant(self, track, name, ts, args=None) -> None:
        self._events.append({
            "ph": "i", "pid": 0, "tid": self._tid(track), "cat": "sim",
            "name": name, "ts": ts, "s": "t", "args": args or {},
        })

    def counter(self, track, name, ts, value) -> None:
        # Counter tracks are identified by (pid, name); `track` becomes a
        # prefix so e.g. "queues/LDQ" groups next to "queues/SDQ".
        self._events.append({
            "ph": "C", "pid": 0, "cat": "sim",
            "name": f"{track}/{name}" if track else name,
            "ts": ts, "args": {"value": value},
        })

    def close(self) -> None:
        meta = [
            {"ph": "M", "pid": 0, "name": "process_name",
             "args": {"name": "hidisc-sim"}},
        ]
        for track, tid in sorted(self._tids.items(), key=lambda kv: kv[1]):
            meta.append({"ph": "M", "pid": 0, "tid": tid,
                         "name": "thread_name", "args": {"name": track}})
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(
            {"traceEvents": meta + self._events, "displayTimeUnit": "ms"},
        ) + "\n")
