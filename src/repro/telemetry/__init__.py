"""Cycle-level telemetry: event tracing, CPI stacks, occupancy timelines.

Typical use::

    from repro.telemetry import Telemetry, ChromeTraceSink

    tel = Telemetry(sink=ChromeTraceSink("run.json"), cpi=True,
                    sample_interval=128)
    result = Machine(config, program, trace, mode="hidisc",
                     queue_plan=qplan, cmas_plan=cplan,
                     telemetry=tel).run()
    tel.close()                      # writes run.json (open in Perfetto)
    print(result.cpi_stacks)         # components sum to result.cycles

Per-dynamic-instruction lifecycle tracing (Konata export, critical-path
attribution) lives in :mod:`repro.telemetry.lifecycle` /
:mod:`repro.telemetry.konata`, differential run analysis in
:mod:`repro.telemetry.diff`.  See :mod:`repro.telemetry.cpi` for the cycle
taxonomy and :mod:`repro.telemetry.sinks` for the available sinks.

Host-side *orchestration* observability (span tracing of the process-pool
grid, the metrics registry feeding the run ledger) lives in
:mod:`repro.telemetry.spans` and :mod:`repro.telemetry.metrics`.
"""

from . import metrics, spans

from .cpi import (
    CPI_COMPONENTS,
    LOD_COMPONENTS,
    MEMORY_COMPONENTS,
    check_stack,
    new_stack,
    render_cpi_stacks,
    stack_total,
)
from .diff import diff_payloads, first_divergent_commit, load_payload, render_diff
from .events import Telemetry
from .heartbeat import Heartbeat, StatusLine
from .konata import konata_lines, write_konata
from .lifecycle import (
    LIFECYCLE_COMPONENTS,
    LifecycleCollector,
    LifecycleRecord,
    breakdown_row,
    critical_path_by_pc,
    lifecycle_to_chrome,
    render_critical_path,
)
from .sampler import Sample, Sampler, take_sample
from .sinks import (
    NULL_SINK,
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    TeeSink,
)

__all__ = [
    "CPI_COMPONENTS",
    "ChromeTraceSink",
    "Heartbeat",
    "JsonlSink",
    "LIFECYCLE_COMPONENTS",
    "LOD_COMPONENTS",
    "LifecycleCollector",
    "LifecycleRecord",
    "MEMORY_COMPONENTS",
    "MemorySink",
    "NULL_SINK",
    "NullSink",
    "Sample",
    "Sampler",
    "Sink",
    "StatusLine",
    "TeeSink",
    "Telemetry",
    "breakdown_row",
    "check_stack",
    "critical_path_by_pc",
    "diff_payloads",
    "first_divergent_commit",
    "konata_lines",
    "lifecycle_to_chrome",
    "load_payload",
    "metrics",
    "new_stack",
    "render_cpi_stacks",
    "render_critical_path",
    "render_diff",
    "spans",
    "stack_total",
    "take_sample",
    "write_konata",
]
