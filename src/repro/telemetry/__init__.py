"""Cycle-level telemetry: event tracing, CPI stacks, occupancy timelines.

Typical use::

    from repro.telemetry import Telemetry, ChromeTraceSink

    tel = Telemetry(sink=ChromeTraceSink("run.json"), cpi=True,
                    sample_interval=128)
    result = Machine(config, program, trace, mode="hidisc",
                     queue_plan=qplan, cmas_plan=cplan,
                     telemetry=tel).run()
    tel.close()                      # writes run.json (open in Perfetto)
    print(result.cpi_stacks)         # components sum to result.cycles

See :mod:`repro.telemetry.cpi` for the cycle taxonomy and
:mod:`repro.telemetry.sinks` for the available sinks.
"""

from .cpi import (
    CPI_COMPONENTS,
    LOD_COMPONENTS,
    MEMORY_COMPONENTS,
    check_stack,
    new_stack,
    render_cpi_stacks,
    stack_total,
)
from .events import Telemetry
from .sampler import Sample, Sampler, take_sample
from .sinks import (
    NULL_SINK,
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    TeeSink,
)

__all__ = [
    "CPI_COMPONENTS",
    "ChromeTraceSink",
    "JsonlSink",
    "LOD_COMPONENTS",
    "MEMORY_COMPONENTS",
    "MemorySink",
    "NULL_SINK",
    "NullSink",
    "Sample",
    "Sampler",
    "Sink",
    "TeeSink",
    "Telemetry",
    "check_stack",
    "new_stack",
    "render_cpi_stacks",
    "stack_total",
    "take_sample",
]
