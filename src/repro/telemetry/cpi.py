"""CPI stacks: an exhaustive per-core cycle taxonomy.

Every simulated cycle of every core is attributed to exactly one component,
so the components of a core's stack **sum to the measured cycle count** —
the invariant the tests assert and the property that makes the stack a
trustworthy answer to "where did the cycles go?".

Components (one per cycle, classified at the retirement stage):

===================  =========================================================
``base``             at least one instruction retired this cycle
``frontend``         window empty/head not yet eligible: dispatch/fetch latency
``fu_contention``    head ready but starved of an FU, memory port or issue slot
``execute``          head issued in a multi-cycle non-memory FU, not yet done
``mem_l1``           head waiting on an L1 hit / store-buffer write port
``mem_l2``           head waiting on an L1-miss-L2-hit fill
``mem_mem``          head waiting on a fill from main memory
``branch_recovery``  core idle while the front end replays a mispredict
``ldq_empty``        head pops the LDQ before the AP pushed (LoD)
``sdq_empty``        head is a store awaiting its SDQ data from the CP (LoD)
``queue_full``       head pushes into a full architectural queue (LoD)
``data_dep``         head blocked on an ordinary register/memory dependence
``instr_queue_empty``core idle: the front end has not routed it any work
``drained``          core idle and the fetch stream is exhausted (run tail)
===================  =========================================================

The three ``ldq_empty``/``sdq_empty``/``queue_full`` components are the
loss-of-decoupling taxonomy the paper discusses in §5.3 — the same events
the legacy ``CoreStats`` counters track — extended here into a complete
accounting of all cycles.
"""

from __future__ import annotations

from collections.abc import Mapping

#: Canonical component order (presentation order for stacks and tables).
CPI_COMPONENTS: tuple[str, ...] = (
    "base",
    "frontend",
    "fu_contention",
    "execute",
    "mem_l1",
    "mem_l2",
    "mem_mem",
    "branch_recovery",
    "ldq_empty",
    "sdq_empty",
    "queue_full",
    "data_dep",
    "instr_queue_empty",
    "drained",
)

#: Components counted as loss-of-decoupling in the paper's §5.3 sense.
LOD_COMPONENTS: tuple[str, ...] = ("ldq_empty", "sdq_empty", "queue_full")

#: Components spent waiting on the memory hierarchy.
MEMORY_COMPONENTS: tuple[str, ...] = ("mem_l1", "mem_l2", "mem_mem")


def new_stack() -> dict[str, int]:
    """A zeroed CPI stack (plain dict: the timing hot path increments it)."""
    return dict.fromkeys(CPI_COMPONENTS, 0)


def stack_total(stack: Mapping[str, int]) -> int:
    return sum(stack.values())


def check_stack(stack: Mapping[str, int], cycles: int, core: str = "?") -> None:
    """Raise if the components do not sum to *cycles* (test/debug helper)."""
    total = stack_total(stack)
    if total != cycles:
        raise AssertionError(
            f"CPI stack of {core} sums to {total}, expected {cycles} "
            f"(delta {total - cycles}): {dict(stack)}"
        )


def render_cpi_stacks(stacks: Mapping[str, Mapping[str, int]],
                      cycles: int) -> str:
    """ASCII CPI-stack table: one column per core, cycles and % of total."""
    from ..utils import format_table

    cores = list(stacks)
    if not cores or cycles <= 0:
        return "(no CPI data — run with telemetry enabled)"
    headers = ["component"]
    for core in cores:
        headers += [core, "%"]
    rows: list[list[object]] = []
    for comp in CPI_COMPONENTS:
        if all(stacks[core].get(comp, 0) == 0 for core in cores):
            continue
        row: list[object] = [comp]
        for core in cores:
            v = stacks[core].get(comp, 0)
            row += [v, f"{100.0 * v / cycles:5.1f}"]
        rows.append(row)
    total_row: list[object] = ["total"]
    for core in cores:
        t = stack_total(stacks[core])
        total_row += [t, f"{100.0 * t / cycles:5.1f}"]
    rows.append(total_row)
    return format_table(headers, rows)
