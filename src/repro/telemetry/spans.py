"""Host-side orchestration span tracer.

The simulated machine has had structured telemetry since PR 1; the *host*
orchestration around it (process-pool grid, compilation cache, suite
checkpoints, retry/backoff, fault campaigns) only emitted ad-hoc progress
strings.  This module gives that layer the same treatment: hierarchical
**spans** (context-manager API, monotonic durations, parent/child nesting,
process-safe ids) plus point **instants**, exportable as Chrome/Perfetto
``trace_event`` JSON so a whole ``hidisc suite --jobs N`` renders as one
timeline — the orchestrator and every worker process on their own lanes.

Zero overhead when off (the default): the module-level :func:`span` /
:func:`instant` helpers check one global and return a shared no-op context
manager, so an untraced run never allocates a record.  Enabling
(:func:`enable`) also sets :data:`ENV_FLAG` in ``os.environ``, which pool
workers inherit; the worker entry points bracket each task with
:func:`begin_worker_task` / :func:`end_worker_task` so the task's spans
travel back to the parent inside the task result (see
:mod:`repro.experiments.parallel`) and are re-merged onto the parent's
timeline with their worker pid intact.

Clocks: durations are measured with ``time.perf_counter_ns`` (monotonic,
immune to wall-clock steps); span *start* stamps use ``time.time_ns`` so
spans from different processes align on one timeline.  Span ids embed the
pid (``"<pid:x>.<seq>"``), so ids from concurrent workers can never
collide.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Environment variable propagating "orchestration tracing is on" to pool
#: workers (set by :func:`enable`, cleared by :func:`disable`).
ENV_FLAG = "HIDISC_ORCH_TRACE"


@dataclass
class SpanRecord:
    """One completed span (or instant, when ``dur_ns`` is ``None``)."""

    name: str
    cat: str
    pid: int
    sid: str
    parent: str | None
    #: wall-clock start in nanoseconds (``time.time_ns``) — comparable
    #: across processes, which is what puts workers on one timeline.
    t0_ns: int
    #: monotonic duration in nanoseconds; ``None`` marks an instant.
    dur_ns: int | None = None
    args: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name, "cat": self.cat, "pid": self.pid,
            "sid": self.sid, "parent": self.parent, "t0_ns": self.t0_ns,
            "dur_ns": self.dur_ns, "args": dict(self.args),
        }


class _NullSpan:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


#: The one no-op span; there is never a reason to make another.
NULL_SPAN = _NullSpan()


class _Span:
    """A live span: records itself on the tracer when the block exits."""

    __slots__ = ("_tracer", "record", "_t0_pc")

    def __init__(self, tracer: "SpanTracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record
        self._t0_pc = 0

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. ``hit=True``)."""
        self.record.args.update(attrs)

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self.record.sid)
        self.record.t0_ns = time.time_ns()
        self._t0_pc = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.record.dur_ns = time.perf_counter_ns() - self._t0_pc
        if exc_type is not None:
            self.record.args["error"] = exc_type.__name__
        stack = self._tracer._stack
        if stack and stack[-1] == self.record.sid:
            stack.pop()
        self._tracer.records.append(self.record)
        return False


class SpanTracer:
    """Collects the span records of one process.

    Orchestration is single-threaded per process (the submission loop in
    the parent, one task at a time in a worker), so a plain nesting stack
    is sufficient for parent/child links.
    """

    def __init__(self) -> None:
        self.pid = os.getpid()
        self.records: list[SpanRecord] = []
        self._stack: list[str] = []
        self._seq = 0

    def _new_id(self) -> str:
        self._seq += 1
        return f"{self.pid:x}.{self._seq}"

    def span(self, name: str, cat: str = "orch", **args) -> _Span:
        record = SpanRecord(
            name=name, cat=cat, pid=self.pid, sid=self._new_id(),
            parent=self._stack[-1] if self._stack else None,
            t0_ns=0, args=args,
        )
        return _Span(self, record)

    def instant(self, name: str, cat: str = "orch", **args) -> None:
        self.records.append(SpanRecord(
            name=name, cat=cat, pid=self.pid, sid=self._new_id(),
            parent=self._stack[-1] if self._stack else None,
            t0_ns=time.time_ns(), dur_ns=None, args=args,
        ))

    def record_span(self, name: str, t0_ns: int, dur_ns: int,
                    cat: str = "orch", parent: str | None = None,
                    **args) -> SpanRecord:
        """Retro-record a span that already happened.

        For callers that learn a span's bounds after the fact (the service
        executor timing a grid cell inside a callback, the trace stitcher
        reconstructing queue-state residency from persisted events) —
        *t0_ns* is a ``time.time_ns`` stamp and *dur_ns* a plain
        difference of such stamps.  The span nests under the currently
        open span unless *parent* is given explicitly.
        """
        record = SpanRecord(
            name=name, cat=cat, pid=self.pid, sid=self._new_id(),
            parent=parent if parent is not None
            else (self._stack[-1] if self._stack else None),
            t0_ns=t0_ns, dur_ns=dur_ns, args=args,
        )
        self.records.append(record)
        return record

    def adopt(self, records) -> None:
        """Merge spans shipped back from a worker process.

        Records keep their own pid and ids (pid-prefixed, so they cannot
        collide with ours) — on export each worker renders as its own
        process lane.
        """
        self.records.extend(records)


# ----------------------------------------------------------------------
# Module-level tracer (the zero-overhead-when-off switch).

_TRACER: SpanTracer | None = None


def enable() -> SpanTracer:
    """Install a fresh tracer and flag worker processes to trace too."""
    global _TRACER
    _TRACER = SpanTracer()
    os.environ[ENV_FLAG] = "1"
    return _TRACER


def disable() -> None:
    """Drop the tracer and clear the worker flag (records survive on the
    tracer object :func:`enable` returned)."""
    global _TRACER
    _TRACER = None
    os.environ.pop(ENV_FLAG, None)


def current() -> SpanTracer | None:
    return _TRACER


def active() -> bool:
    return _TRACER is not None


def span(name: str, cat: str = "orch", **args):
    """Context manager for one orchestration span (no-op when off)."""
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, cat, **args)


def instant(name: str, cat: str = "orch", **args) -> None:
    """Record a point event (no-op when off)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.instant(name, cat, **args)


# ----------------------------------------------------------------------
# Worker-side bracketing (see repro.experiments.parallel).

def begin_worker_task() -> SpanTracer | None:
    """Install a fresh per-task tracer in a pool worker.

    Returns ``None`` when this process is already the tracing parent (the
    inline/serial path — its spans land on the parent tracer directly) or
    when orchestration tracing is off.  A fork-inherited parent tracer is
    recognised by its pid and replaced, never appended to: each task ships
    exactly its own spans back.
    """
    global _TRACER
    if _TRACER is not None and _TRACER.pid == os.getpid():
        return None
    if os.environ.get(ENV_FLAG) != "1":
        _TRACER = None
        return None
    _TRACER = SpanTracer()
    return _TRACER


def end_worker_task(tracer: SpanTracer | None):
    """Uninstall a :func:`begin_worker_task` tracer; return its records."""
    global _TRACER
    if tracer is None:
        return None
    if _TRACER is tracer:
        _TRACER = None
    return tracer.records


# ----------------------------------------------------------------------
# Export & summary.

def to_trace_events(records, main_pid: int | None = None,
                    lane_names: dict | None = None) -> list[dict]:
    """Chrome/Perfetto ``trace_event`` dicts for *records*.

    Each pid becomes its own process lane (the orchestrator plus one lane
    per worker); timestamps are microseconds since the earliest span in
    the set, so the whole run starts at t=0.  *lane_names* overrides the
    default lane title for specific pids (``{pid: "label"}``) — the
    service's job-trace stitcher uses it to label the client, queue and
    worker lanes.
    """
    records = list(records)
    if not records:
        return []
    epoch = min(r.t0_ns for r in records)
    pids: dict[int, None] = {}
    events: list[dict] = []
    for r in sorted(records, key=lambda r: (r.t0_ns, r.sid)):
        pids.setdefault(r.pid)
        ts = (r.t0_ns - epoch) / 1000.0
        if r.dur_ns is None:
            events.append({
                "ph": "i", "pid": r.pid, "tid": 0, "cat": r.cat,
                "name": r.name, "ts": ts, "s": "p", "args": dict(r.args),
            })
        else:
            events.append({
                "ph": "X", "pid": r.pid, "tid": 0, "cat": r.cat,
                "name": r.name, "ts": ts,
                "dur": max(r.dur_ns / 1000.0, 0.001),
                "args": dict(r.args, sid=r.sid, parent=r.parent),
            })
    meta: list[dict] = []
    for index, pid in enumerate(sorted(pids)):
        if lane_names and pid in lane_names:
            name = lane_names[pid]
            sort_index = list(lane_names).index(pid)
        else:
            name = ("hidisc orchestrator" if main_pid is not None
                    and pid == main_pid else f"hidisc worker {pid}")
            sort_index = 0 if name.endswith("orchestrator") else index + 1
        meta.append({"ph": "M", "pid": pid, "name": "process_name",
                     "args": {"name": name}})
        meta.append({"ph": "M", "pid": pid, "name": "process_sort_index",
                     "args": {"sort_index": sort_index}})
    return meta + events


def write_orchestration_trace(records, path: str | Path,
                              main_pid: int | None = None,
                              lane_names: dict | None = None) -> int:
    """Write *records* as a Perfetto-loadable trace at *path*.

    One event per line inside the ``traceEvents`` array, so the file is
    both a single valid JSON document and consumable line by line by
    streaming tools.  Returns the number of events written.
    """
    events = to_trace_events(records, main_pid=main_pid,
                             lane_names=lane_names)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        fh.write('{"traceEvents": [\n')
        for index, event in enumerate(events):
            comma = "," if index + 1 < len(events) else ""
            fh.write(json.dumps(event, separators=(",", ":")) + comma + "\n")
        fh.write("]}\n")
    return len(events)


def summarize(records) -> dict:
    """Ledger-ready digest of a span set: counts and total milliseconds
    per category, plus the slowest individual spans."""
    records = list(records)
    by_cat: dict[str, dict] = {}
    durated = [r for r in records if r.dur_ns is not None]
    for r in durated:
        entry = by_cat.setdefault(r.cat, {"count": 0, "ms": 0.0})
        entry["count"] += 1
        entry["ms"] += r.dur_ns / 1e6
    for entry in by_cat.values():
        entry["ms"] = round(entry["ms"], 3)
    slowest = sorted(durated, key=lambda r: r.dur_ns, reverse=True)[:5]
    return {
        "count": len(records),
        "by_category": {cat: by_cat[cat] for cat in sorted(by_cat)},
        "slowest": [
            {"name": r.name, "cat": r.cat,
             "ms": round(r.dur_ns / 1e6, 3),
             **({"args": dict(r.args)} if r.args else {})}
            for r in slowest
        ],
    }
