"""Host-side metrics registry: counters, gauges and histograms with labels.

The orchestration layer (cache, pool, checkpoints, campaigns) counts what
it does here — cache hit/miss traffic, pool retries and fallbacks,
queue-to-pool latency, completed grid cells, peak RSS — and the run ledger
(:mod:`repro.experiments.ledger`) persists a snapshot per run.

Three instrument kinds, all label-aware:

* **counter** — monotonically increasing; merged across workers by *sum*;
* **gauge** — last-set value; merged by *max* (the only merge that is
  order-independent and meaningful for "peak" style gauges);
* **histogram** — count/sum/min/max plus decade (power-of-ten) bucket
  counts, so merged distributions are deterministic regardless of worker
  completion order.

Worker processes never share a registry with the parent: the worker entry
points (:mod:`repro.experiments.parallel`) push a fresh **scope** around
each task, pop its snapshot, and ship it back inside the task result; the
parent merges snapshots as results land.  Because every merge operation
commutes, the merged totals are identical for any completion order — a
parallel run reports exactly the counters of its serial twin.

These are host-side instruments, incremented a handful of times per grid
cell; the simulated machine's hot loop never touches this module.
"""

from __future__ import annotations

import math
import sys

#: snapshot schema version (bump on incompatible layout changes).
SNAPSHOT_VERSION = 1


def render_key(name: str, labels: dict | None = None) -> str:
    """Canonical string form of a labelled series: ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def _bucket(value: float) -> str:
    """Decade bucket label for a histogram observation."""
    if value <= 0:
        return "<=0"
    exponent = math.floor(math.log10(value))
    return f"1e{exponent}..1e{exponent + 1}"


class MetricsRegistry:
    """One process's (or one scope's) metric series."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels) -> None:
        key = render_key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        self.gauges[render_key(name, labels)] = value

    def gauge_max(self, name: str, value: float, **labels) -> None:
        """Set a gauge only if *value* exceeds the current one."""
        key = render_key(name, labels)
        if value > self.gauges.get(key, float("-inf")):
            self.gauges[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        key = render_key(name, labels)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = {
                "count": 0, "sum": 0.0,
                "min": float("inf"), "max": float("-inf"), "buckets": {},
            }
        hist["count"] += 1
        hist["sum"] += value
        hist["min"] = min(hist["min"], value)
        hist["max"] = max(hist["max"], value)
        bucket = _bucket(value)
        hist["buckets"][bucket] = hist["buckets"].get(bucket, 0) + 1

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready, deterministically ordered dump of every series."""
        return {
            "version": SNAPSHOT_VERSION,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                key: {
                    "count": h["count"],
                    "sum": h["sum"],
                    "min": h["min"],
                    "max": h["max"],
                    "buckets": {b: h["buckets"][b]
                                for b in sorted(h["buckets"])},
                }
                for key, h in sorted(self.histograms.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry.

        Counters sum, gauges take the max, histograms combine — every
        operation commutes, so merge order cannot change the totals.
        """
        for key, value in snapshot.get("counters", {}).items():
            self.counters[key] = self.counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            if value > self.gauges.get(key, float("-inf")):
                self.gauges[key] = value
        for key, other in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(key)
            if hist is None:
                hist = self.histograms[key] = {
                    "count": 0, "sum": 0.0,
                    "min": float("inf"), "max": float("-inf"), "buckets": {},
                }
            hist["count"] += other["count"]
            hist["sum"] += other["sum"]
            hist["min"] = min(hist["min"], other["min"])
            hist["max"] = max(hist["max"], other["max"])
            for bucket, count in other.get("buckets", {}).items():
                hist["buckets"][bucket] = \
                    hist["buckets"].get(bucket, 0) + count

    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


# ----------------------------------------------------------------------
# Module-level scope stack.  The base registry belongs to the process;
# worker entry points push a scope per task so only that task's deltas
# travel back to the parent.

_STACK: list[MetricsRegistry] = [MetricsRegistry()]


def registry() -> MetricsRegistry:
    """The active registry (innermost scope)."""
    return _STACK[-1]


def inc(name: str, value: float = 1, **labels) -> None:
    _STACK[-1].inc(name, value, **labels)


def gauge(name: str, value: float, **labels) -> None:
    _STACK[-1].gauge(name, value, **labels)


def gauge_max(name: str, value: float, **labels) -> None:
    _STACK[-1].gauge_max(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    _STACK[-1].observe(name, value, **labels)


def snapshot() -> dict:
    return _STACK[-1].snapshot()


def merge(snap: dict) -> None:
    _STACK[-1].merge(snap)


def push_scope() -> MetricsRegistry:
    """Install a fresh registry capturing everything until the matching
    :func:`pop_scope` (used once per worker task)."""
    scope = MetricsRegistry()
    _STACK.append(scope)
    return scope


def pop_scope(scope: MetricsRegistry) -> dict:
    """Remove *scope* and return its snapshot (tolerant of imbalance)."""
    if scope in _STACK and len(_STACK) > 1:
        _STACK.remove(scope)
    return scope.snapshot()


def reset() -> None:
    """Drop every scope and series (one fresh base registry)."""
    _STACK[:] = [MetricsRegistry()]


# ----------------------------------------------------------------------

def record_peak_rss() -> float | None:
    """Record this process's peak RSS as a ``peak_rss_bytes`` gauge.

    Best-effort: returns the value in bytes, or ``None`` where the
    ``resource`` module is unavailable (non-POSIX platforms).
    """
    try:
        import resource
    except ImportError:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    peak_bytes = float(peak if sys.platform == "darwin" else peak * 1024)
    gauge_max("peak_rss_bytes", peak_bytes)
    return peak_bytes
