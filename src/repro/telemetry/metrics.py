"""Host-side metrics registry: counters, gauges and histograms with labels.

The orchestration layer (cache, pool, checkpoints, campaigns) counts what
it does here — cache hit/miss traffic, pool retries and fallbacks,
queue-to-pool latency, completed grid cells, peak RSS — and the run ledger
(:mod:`repro.experiments.ledger`) persists a snapshot per run.

Three instrument kinds, all label-aware:

* **counter** — monotonically increasing; merged across workers by *sum*;
* **gauge** — last-set value; merged by *max* (the only merge that is
  order-independent and meaningful for "peak" style gauges);
* **histogram** — count/sum/min/max plus decade (power-of-ten) bucket
  counts, so merged distributions are deterministic regardless of worker
  completion order.

Worker processes never share a registry with the parent: the worker entry
points (:mod:`repro.experiments.parallel`) push a fresh **scope** around
each task, pop its snapshot, and ship it back inside the task result; the
parent merges snapshots as results land.  Because every merge operation
commutes, the merged totals are identical for any completion order — a
parallel run reports exactly the counters of its serial twin.

These are host-side instruments, incremented a handful of times per grid
cell; the simulated machine's hot loop never touches this module.
"""

from __future__ import annotations

import math
import sys

#: snapshot schema version (bump on incompatible layout changes).
SNAPSHOT_VERSION = 1


def render_key(name: str, labels: dict | None = None) -> str:
    """Canonical string form of a labelled series: ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_key(key: str) -> tuple[str, dict]:
    """Inverse of :func:`render_key`: ``name{k=v,...}`` -> (name, labels).

    Label values in this registry are simple identifiers (state names,
    benchmark names, worker ids) — they never contain ``,`` or ``=``, so
    a plain split round-trips exactly.
    """
    if "{" not in key or not key.endswith("}"):
        return key, {}
    name, _, inner = key.partition("{")
    labels: dict[str, str] = {}
    for part in inner[:-1].split(","):
        if part:
            label, _, value = part.partition("=")
            labels[label] = value
    return name, labels


def _bucket(value: float) -> str:
    """Decade bucket label for a histogram observation."""
    if value <= 0:
        return "<=0"
    exponent = math.floor(math.log10(value))
    return f"1e{exponent}..1e{exponent + 1}"


class MetricsRegistry:
    """One process's (or one scope's) metric series."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels) -> None:
        key = render_key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        self.gauges[render_key(name, labels)] = value

    def gauge_max(self, name: str, value: float, **labels) -> None:
        """Set a gauge only if *value* exceeds the current one."""
        key = render_key(name, labels)
        if value > self.gauges.get(key, float("-inf")):
            self.gauges[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        key = render_key(name, labels)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = {
                "count": 0, "sum": 0.0,
                "min": float("inf"), "max": float("-inf"), "buckets": {},
            }
        hist["count"] += 1
        hist["sum"] += value
        hist["min"] = min(hist["min"], value)
        hist["max"] = max(hist["max"], value)
        bucket = _bucket(value)
        hist["buckets"][bucket] = hist["buckets"].get(bucket, 0) + 1

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready, deterministically ordered dump of every series."""
        return {
            "version": SNAPSHOT_VERSION,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                key: {
                    "count": h["count"],
                    "sum": h["sum"],
                    "min": h["min"],
                    "max": h["max"],
                    "buckets": {b: h["buckets"][b]
                                for b in sorted(h["buckets"])},
                }
                for key, h in sorted(self.histograms.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry.

        Counters sum, gauges take the max, histograms combine — every
        operation commutes, so merge order cannot change the totals.
        """
        for key, value in snapshot.get("counters", {}).items():
            self.counters[key] = self.counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            if value > self.gauges.get(key, float("-inf")):
                self.gauges[key] = value
        for key, other in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(key)
            if hist is None:
                hist = self.histograms[key] = {
                    "count": 0, "sum": 0.0,
                    "min": float("inf"), "max": float("-inf"), "buckets": {},
                }
            hist["count"] += other["count"]
            hist["sum"] += other["sum"]
            hist["min"] = min(hist["min"], other["min"])
            hist["max"] = max(hist["max"], other["max"])
            for bucket, count in other.get("buckets", {}).items():
                hist["buckets"][bucket] = \
                    hist["buckets"].get(bucket, 0) + count

    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


# ----------------------------------------------------------------------
# Module-level scope stack.  The base registry belongs to the process;
# worker entry points push a scope per task so only that task's deltas
# travel back to the parent.

_STACK: list[MetricsRegistry] = [MetricsRegistry()]


def registry() -> MetricsRegistry:
    """The active registry (innermost scope)."""
    return _STACK[-1]


def inc(name: str, value: float = 1, **labels) -> None:
    _STACK[-1].inc(name, value, **labels)


def gauge(name: str, value: float, **labels) -> None:
    _STACK[-1].gauge(name, value, **labels)


def gauge_max(name: str, value: float, **labels) -> None:
    _STACK[-1].gauge_max(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    _STACK[-1].observe(name, value, **labels)


def snapshot() -> dict:
    return _STACK[-1].snapshot()


def merge(snap: dict) -> None:
    _STACK[-1].merge(snap)


def push_scope() -> MetricsRegistry:
    """Install a fresh registry capturing everything until the matching
    :func:`pop_scope` (used once per worker task)."""
    scope = MetricsRegistry()
    _STACK.append(scope)
    return scope


def pop_scope(scope: MetricsRegistry) -> dict:
    """Remove *scope* and return its snapshot (tolerant of imbalance)."""
    if scope in _STACK and len(_STACK) > 1:
        _STACK.remove(scope)
    return scope.snapshot()


def reset() -> None:
    """Drop every scope and series (one fresh base registry)."""
    _STACK[:] = [MetricsRegistry()]


def combined_snapshot() -> dict:
    """Snapshot of the whole scope stack merged (base + open scopes).

    The base registry holds everything already absorbed; an open scope
    holds the in-flight deltas of the current task.  Merging both gives
    the process's true running totals — what a live scrape (the service
    worker's status file) should publish mid-job.
    """
    if len(_STACK) == 1:
        return _STACK[0].snapshot()
    merged = MetricsRegistry()
    for scope in list(_STACK):
        merged.merge(scope.snapshot())
    return merged.snapshot()


# ----------------------------------------------------------------------

def record_peak_rss() -> float | None:
    """Record this process's peak RSS as a ``peak_rss_bytes`` gauge.

    Best-effort: returns the value in bytes, or ``None`` where the
    ``resource`` module is unavailable (non-POSIX platforms).
    """
    try:
        import resource
    except ImportError:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    peak_bytes = float(peak if sys.platform == "darwin" else peak * 1024)
    gauge_max("peak_rss_bytes", peak_bytes)
    return peak_bytes


# ----------------------------------------------------------------------
# Prometheus text exposition (the service's GET /metrics).

def _prom_labels(labels: dict) -> str:
    """Prometheus label block ``{k="v",...}`` with value escaping."""
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        value = str(labels[key])
        value = value.replace("\\", "\\\\").replace('"', '\\"') \
                     .replace("\n", "\\n")
        parts.append(f'{key}="{value}"')
    return "{" + ",".join(parts) + "}"


def _bucket_bound(bucket: str) -> float:
    """Upper bound of a decade bucket label (``"<=0"`` or ``"1eA..1eB"``)."""
    if bucket == "<=0":
        return 0.0
    return float(bucket.split("..", 1)[1])


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    value = float(value)
    if value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in Prometheus text
    format (exposition format version 0.0.4).

    * counters and gauges become one sample per labelled series;
    * histograms expose the standard ``_bucket{le=...}`` (cumulative,
      derived from the registry's decade buckets), ``_sum`` and
      ``_count`` series, plus ``_min``/``_max`` gauges (this registry
      tracks them; Prometheus histograms do not);
    * output is deterministically ordered (sorted series, one ``# TYPE``
      header per metric family), so two scrapes of identical registries
      are byte-identical.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def emit_type(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key in sorted(snapshot.get("counters", {})):
        name, labels = parse_key(key)
        emit_type(name, "counter")
        value = snapshot["counters"][key]
        lines.append(f"{name}{_prom_labels(labels)} {_format_value(value)}")
    for key in sorted(snapshot.get("gauges", {})):
        name, labels = parse_key(key)
        emit_type(name, "gauge")
        value = snapshot["gauges"][key]
        lines.append(f"{name}{_prom_labels(labels)} {_format_value(value)}")
    for key in sorted(snapshot.get("histograms", {})):
        name, labels = parse_key(key)
        hist = snapshot["histograms"][key]
        emit_type(name, "histogram")
        cumulative = 0
        buckets = sorted(hist.get("buckets", {}).items(),
                         key=lambda item: _bucket_bound(item[0]))
        for bucket, count in buckets:
            cumulative += count
            bound = _format_value(_bucket_bound(bucket))
            lines.append(f"{name}_bucket"
                         f"{_prom_labels(dict(labels, le=bound))} "
                         f"{cumulative}")
        lines.append(f"{name}_bucket{_prom_labels(dict(labels, le='+Inf'))} "
                     f"{hist['count']}")
        lines.append(f"{name}_sum{_prom_labels(labels)} "
                     f"{_format_value(hist['sum'])}")
        lines.append(f"{name}_count{_prom_labels(labels)} {hist['count']}")
        if hist["count"]:
            emit_type(f"{name}_min", "gauge")
            lines.append(f"{name}_min{_prom_labels(labels)} "
                         f"{_format_value(hist['min'])}")
            emit_type(f"{name}_max", "gauge")
            lines.append(f"{name}_max{_prom_labels(labels)} "
                         f"{_format_value(hist['max'])}")
    return "\n".join(lines) + "\n" if lines else ""
