"""Per-dynamic-instruction lifecycle tracing.

Aggregate telemetry (CPI stacks, occupancy samples) says *how many* cycles
went where; this module records *which* cycles: for every committed
dynamic instruction, the cycle it was fetched, dispatched into the window,
became dependence-free (ready), issued, completed and retired.  That is the
raw material of every decoupled-architecture analysis — AP/CP slack, queue
wait intervals, and the critical-path question "which loads does the AP
runahead actually hide?".

Capture rides the event-driven scheduler's existing stage transitions (see
:mod:`repro.sim.core` and :mod:`repro.sim.decoupled`) behind the same
latched-flag guards as the rest of the telemetry package: a run without a
:class:`LifecycleCollector` pays one ``is None`` test per transition, and a
run with one only appends to plain-slot records — it never influences
scheduling, so capture is cycle-neutral by construction (asserted by the
tests against the sched-parity fixtures).

Storage is a bounded ring buffer (``max_records``; oldest committed records
drop first, counted in :attr:`LifecycleCollector.dropped`) and/or a
streaming JSONL sink for runs too long to hold in memory.

Consumers:

* :func:`repro.telemetry.konata.write_konata` — pipeline-viewer export;
* :func:`lifecycle_to_chrome` — per-instruction Chrome/Perfetto spans;
* :func:`critical_path_by_pc` / :func:`render_critical_path` — the
  commit-latency decomposition, summarized per static instruction.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

from ..isa.disasm import disassemble_instruction
from ..utils import format_table

#: Commit-latency components (each committed instruction's
#: ``commit - fetch`` interval decomposes exactly into these).
LIFECYCLE_COMPONENTS: tuple[str, ...] = (
    "frontend",        # fetched, waiting for a window slot (dispatch)
    "data_wait",       # dispatched, waiting on register/memory producers
    "ldq_wait",        # dispatched, waiting on an AP push into the LDQ
    "sdq_wait",        # store waiting on its SDQ data from the CP
    "queue_full_wait", # push blocked on architectural-queue capacity
    "select_wait",     # dependence-free, waiting for an FU/issue slot
    "execute",         # in a non-memory functional unit
    "mem_l1",          # memory access satisfied by L1 / store buffer
    "mem_l2",          # memory access filled from L2
    "mem_mem",         # memory access filled from main memory
    "commit_wait",     # complete, waiting behind the in-order window head
)

_WAIT_BY_CLASS = {
    "ldq_empty": "ldq_wait",
    "sdq_empty": "sdq_wait",
    "queue_full": "queue_full_wait",
}

_MEM_KEY = {"l1": "mem_l1", "l2": "mem_l2", "mem": "mem_mem"}


class LifecycleRecord:
    """Stage cycles of one dynamic instruction (filled in as it flows)."""

    __slots__ = ("gid", "pos", "core", "fetch", "dispatch", "ready",
                 "issue", "complete", "commit", "mem_latency")

    def __init__(self, gid: int, pos: int, core: str, fetch: int):
        self.gid = gid
        self.pos = pos
        self.core = core
        self.fetch = fetch
        self.dispatch = -1
        self.ready = -1
        self.issue = -1
        self.complete = -1
        self.commit = -1
        #: raw access latency for memory operations (0 for non-memory);
        #: classified into an L1/L2/memory level at export time.
        self.mem_latency = 0


class LifecycleCollector:
    """Receives stage-transition hooks from one machine run.

    One collector observes exactly one run (like a
    :class:`~repro.telemetry.sampler.Sampler`); :meth:`bind` is called by
    the machine at construction and refuses a second run.  Committed
    records accumulate in :attr:`records` (a ring buffer when
    *max_records* is set — the newest window is kept and
    :attr:`dropped` counts evictions) and stream to *jsonl_path* as one
    JSON object per line when given.
    """

    def __init__(self, max_records: int | None = None,
                 jsonl_path: str | Path | None = None) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be >= 1 (or None)")
        self.max_records = max_records
        self.records: deque[LifecycleRecord] = deque(maxlen=max_records)
        self.committed = 0
        self._inflight: dict[int, LifecycleRecord] = {}
        self._trace = None
        self._decoded = None
        self._lat_l1 = 1
        self._lat_l1l2 = 13
        self.benchmark = ""
        self.mode = ""
        self._jsonl_path = Path(jsonl_path) if jsonl_path is not None else None
        self._fh = None
        self.streamed = 0
        if self._jsonl_path is not None:
            self._jsonl_path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self._jsonl_path.open("w")

    @property
    def dropped(self) -> int:
        """Committed records evicted by the ring cap."""
        return self.committed - len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LifecycleCollector(records={len(self.records)}, "
                f"committed={self.committed}, dropped={self.dropped}, "
                f"inflight={len(self._inflight)})")

    # ------------------------------------------------------------------
    # Machine-facing hooks (hot path when enabled; see repro.sim.core).
    # ------------------------------------------------------------------
    def bind(self, machine) -> None:
        """Latch the run's static context (called once by the machine)."""
        if self._trace is not None:
            raise ValueError(
                "a LifecycleCollector observes exactly one run; "
                "create a fresh collector per machine"
            )
        self._trace = machine.trace
        self._decoded = machine.decoded
        l1 = machine.hierarchy.l1.config.latency
        self._lat_l1 = l1
        self._lat_l1l2 = l1 + machine.hierarchy.l2.config.latency
        self.benchmark = machine.benchmark
        self.mode = machine.mode

    def on_fetch(self, gid: int, pos: int, core: str, now: int) -> None:
        self._inflight[gid] = LifecycleRecord(gid, pos, core, now)

    def on_dispatch(self, gid: int, now: int, ready: bool) -> None:
        rec = self._inflight.get(gid)
        if rec is not None:
            rec.dispatch = now
            if ready:
                rec.ready = now

    def on_ready(self, gid: int, now: int) -> None:
        rec = self._inflight.get(gid)
        if rec is not None and rec.ready < 0:
            rec.ready = now

    def on_issue(self, gid: int, now: int, latency: int,
                 is_mem: bool) -> None:
        rec = self._inflight.get(gid)
        if rec is not None:
            rec.issue = now
            rec.complete = now + latency
            if is_mem:
                rec.mem_latency = latency

    def on_commit(self, gid: int, now: int) -> None:
        rec = self._inflight.pop(gid, None)
        if rec is None:
            return
        rec.commit = now
        self.committed += 1
        self.records.append(rec)
        if self._fh is not None:
            self._fh.write(json.dumps(self.row(rec),
                                      separators=(",", ":")) + "\n")
            self.streamed += 1

    def close(self) -> dict:
        """Flush the JSONL stream; returns a capture summary."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        return {"committed": self.committed, "kept": len(self.records),
                "dropped": self.dropped, "streamed": self.streamed}

    # ------------------------------------------------------------------
    # Export: resolved row dicts (the shape every consumer reads).
    # ------------------------------------------------------------------
    def mem_level(self, rec: LifecycleRecord) -> str:
        """'' for non-memory; else the level that served the access."""
        lat = rec.mem_latency
        if not lat:
            return ""
        if lat <= self._lat_l1:
            return "l1"
        if lat <= self._lat_l1l2:
            return "l2"
        return "mem"

    def row(self, rec: LifecycleRecord) -> dict:
        """One record as a plain JSON-ready dict (pc and disasm resolved)."""
        pc = self._trace[rec.pos].pc
        d = self._decoded[pc]
        return {
            "gid": rec.gid, "pos": rec.pos, "pc": pc, "core": rec.core,
            "asm": disassemble_instruction(d.instr),
            "fetch": rec.fetch, "dispatch": rec.dispatch,
            "ready": rec.ready, "issue": rec.issue,
            "complete": rec.complete, "commit": rec.commit,
            "mem": self.mem_level(rec), "class": d.block_class,
        }

    def rows(self) -> list[dict]:
        """All retained records, in commit order."""
        return [self.row(rec) for rec in self.records]


# ----------------------------------------------------------------------
# Critical-path attribution.
# ----------------------------------------------------------------------
def breakdown_row(row: dict) -> dict[str, int]:
    """Decompose one committed row's ``commit - fetch`` latency.

    Returns a dict over :data:`LIFECYCLE_COMPONENTS` whose values sum
    exactly to ``commit - fetch``: front-end wait, producer wait (split by
    the instruction's static stall class into data/LDQ/SDQ/queue-full),
    FU-select wait, execution or memory latency (by serving level), and
    the in-order commit stall behind the window head.
    """
    out = dict.fromkeys(LIFECYCLE_COMPONENTS, 0)
    out["frontend"] = row["dispatch"] - row["fetch"]
    wait_key = _WAIT_BY_CLASS.get(row.get("class"), "data_wait")
    out[wait_key] = row["ready"] - row["dispatch"]
    out["select_wait"] = row["issue"] - row["ready"]
    latency = row["complete"] - row["issue"]
    mem = row.get("mem")
    out[_MEM_KEY[mem] if mem else "execute"] = latency
    out["commit_wait"] = row["commit"] - row["complete"]
    return out


def critical_path_by_pc(rows: list[dict]) -> list[dict]:
    """Aggregate :func:`breakdown_row` per (core, static pc).

    Returns one summary dict per static instruction per core — count,
    per-component cycle totals, and the grand total — sorted by total
    descending, so the head of the list is where commit latency
    concentrates (and, on a HiDISC run, where to look for loads the AP
    runahead does or does not hide).
    """
    agg: dict[tuple[str, int], dict] = {}
    for row in rows:
        key = (row["core"], row["pc"])
        entry = agg.get(key)
        if entry is None:
            entry = agg[key] = {
                "core": row["core"], "pc": row["pc"], "asm": row["asm"],
                "count": 0, "total": 0,
                **dict.fromkeys(LIFECYCLE_COMPONENTS, 0),
            }
        parts = breakdown_row(row)
        entry["count"] += 1
        for comp, cycles in parts.items():
            entry[comp] += cycles
        entry["total"] += row["commit"] - row["fetch"]
    return sorted(agg.values(), key=lambda e: (-e["total"], e["core"],
                                               e["pc"]))


def render_critical_path(summary: list[dict], limit: int = 12) -> str:
    """ASCII table of the top-*limit* static instructions by total cycles."""
    if not summary:
        return "(no lifecycle records — run with a LifecycleCollector)"
    headers = ["core", "pc", "instruction", "n", "frontend", "data",
               "ldq", "sdq", "qfull", "select", "exec", "mem", "commit",
               "total"]
    rows: list[list[object]] = []
    for e in summary[:limit]:
        rows.append([
            e["core"], e["pc"], e["asm"], e["count"], e["frontend"],
            e["data_wait"], e["ldq_wait"], e["sdq_wait"],
            e["queue_full_wait"], e["select_wait"], e["execute"],
            e["mem_l1"] + e["mem_l2"] + e["mem_mem"], e["commit_wait"],
            e["total"],
        ])
    return format_table(headers, rows)


# ----------------------------------------------------------------------
# Chrome trace export (per-instruction spans).
# ----------------------------------------------------------------------
def lifecycle_to_chrome(rows: list[dict], sink) -> int:
    """Emit one fetch-to-commit span per committed instruction.

    Each span lands on a per-core ``<core> pipeline`` track and carries
    the full stage timestamps plus the non-zero breakdown components in
    its args, so Perfetto's slice pane shows exactly where that dynamic
    instruction's latency went.  Returns the number of spans emitted.
    """
    for row in rows:
        args = {k: row[k] for k in ("gid", "pos", "pc", "fetch", "dispatch",
                                    "ready", "issue", "complete", "commit")}
        args["breakdown"] = {comp: cycles
                             for comp, cycles in breakdown_row(row).items()
                             if cycles}
        sink.duration(f"{row['core']} pipeline", row["asm"], row["fetch"],
                      max(row["commit"] - row["fetch"], 1), args)
    return len(rows)
