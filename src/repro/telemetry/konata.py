"""Konata pipeline-viewer export.

Konata (https://github.com/shioyadan/Konata) renders gem5/Onikiri2-style
pipeline logs as a scrollable cycle-by-instruction grid — exactly the view
that makes decoupled execution legible: the AP's loads issuing ahead,
the CP consuming LDQ values cycles later, CMAS slices overlapping both.

:func:`write_konata` serializes resolved lifecycle rows (see
:meth:`repro.telemetry.lifecycle.LifecycleCollector.rows`) into the
``Kanata 0004`` text format.  Each dynamic instruction becomes one Konata
instruction with five stages:

========  ==========================================
``F``     fetch → dispatch (front-end / fetch queue)
``D``     dispatch → ready (producer / queue waits)
``R``     ready → issue (FU select wait)
``X``     issue → complete (execute or memory access)
``C``     complete → commit (in-order retire wait)
========  ==========================================

Zero-length phases are skipped (Konata treats a same-cycle ``S``/``E``
pair as noise), and instructions retire in commit order, matching the
collector's ring ordering.
"""

from __future__ import annotations

from pathlib import Path

#: Stage lane names in pipeline order, keyed by (start_field, end_field).
_STAGES: tuple[tuple[str, str, str], ...] = (
    ("F", "fetch", "dispatch"),
    ("D", "dispatch", "ready"),
    ("R", "ready", "issue"),
    ("X", "issue", "complete"),
    ("C", "complete", "commit"),
)


def konata_lines(rows: list[dict]) -> list[str]:
    """Render resolved lifecycle rows as Kanata-format lines.

    *rows* must be in commit order (as produced by
    ``LifecycleCollector.rows()``); the Konata uid/retire ids are assigned
    from that order so the viewer's retirement sequence matches the
    machine's.
    """
    # Konata's file commands are cycle-ordered: every command applies at
    # the current simulation cycle, advanced by C directives.  Emit each
    # instruction's commands tagged with (cycle, serial) and sort — the
    # serial keeps same-cycle commands in a deterministic, valid order
    # (I/L before the stage starts that reference the uid).
    tids: dict[str, int] = {}
    tagged: list[tuple[int, int, str]] = []
    serial = 0
    for uid, row in enumerate(rows):
        tid = tids.setdefault(row["core"], len(tids))
        start = row["fetch"]
        tagged.append((start, serial, f"I\t{uid}\t{row['gid']}\t{tid}"))
        serial += 1
        tagged.append(
            (start, serial, f"L\t{uid}\t0\t{row['pc']}: {row['asm']}"))
        serial += 1
        detail = (f"gid={row['gid']} core={row['core']} pos={row['pos']}"
                  + (f" mem={row['mem']}" if row["mem"] else ""))
        tagged.append((start, serial, f"L\t{uid}\t1\t{detail}"))
        serial += 1
        for lane, begin_key, end_key in _STAGES:
            begin, end = row[begin_key], row[end_key]
            if end <= begin:
                continue  # zero-length phase — no box to draw
            tagged.append((begin, serial, f"S\t{uid}\t0\t{lane}"))
            serial += 1
            tagged.append((end, serial, f"E\t{uid}\t0\t{lane}"))
            serial += 1
        tagged.append((row["commit"], serial, f"R\t{uid}\t{uid}\t0"))
        serial += 1
    tagged.sort()

    lines = ["Kanata\t0004"]
    cycle: int | None = None
    for at, _, text in tagged:
        if cycle is None:
            lines.append(f"C=\t{at}")
            cycle = at
        elif at != cycle:
            lines.append(f"C\t{at - cycle}")
            cycle = at
        lines.append(text)
    return lines


def write_konata(rows: list[dict], path: str | Path) -> int:
    """Write *rows* to *path* in Kanata format; returns instruction count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        fh.write("\n".join(konata_lines(rows)) + "\n")
    return len(rows)
