"""The telemetry bus: one object carrying a run's observability configuration.

A :class:`Telemetry` instance bundles the orthogonal collectors:

* an event **sink** (:mod:`repro.telemetry.sinks`) for the structured event
  stream — instruction issue spans, cache fills, CMAS forks, mispredicts;
* the **CPI stack** switch — per-core exhaustive cycle attribution
  (:mod:`repro.telemetry.cpi`);
* the occupancy **sampler** interval (:mod:`repro.telemetry.sampler`);
* a per-dynamic-instruction **lifecycle** collector
  (:mod:`repro.telemetry.lifecycle`);
* a live **heartbeat** (:mod:`repro.telemetry.heartbeat`) for long runs.

Pass one to :class:`repro.sim.Machine` (or ``run_model``/``run_suite``).
``Machine`` reads the flags once at construction, so a ``None`` telemetry
(or one with everything off) leaves the timing hot path untouched.  One
``Telemetry`` may be reused across runs when only CPI stacks are collected;
give each traced run its own sink/sampler/lifecycle collector.
"""

from __future__ import annotations

from pathlib import Path

from ..config import TelemetryConfig
from .heartbeat import Heartbeat
from .lifecycle import LifecycleCollector
from .sampler import Sampler
from .sinks import NULL_SINK, ChromeTraceSink, JsonlSink, Sink


class Telemetry:
    """Observability configuration + collectors for simulation runs."""

    def __init__(self, sink: Sink | None = None, cpi: bool = True,
                 sample_interval: int = 0,
                 lifecycle: LifecycleCollector | None = None,
                 heartbeat: Heartbeat | None = None) -> None:
        self.sink: Sink = sink if sink is not None else NULL_SINK
        self.cpi = cpi
        self.sample_interval = sample_interval
        #: per-dynamic-instruction stage records (one collector per run).
        self.lifecycle = lifecycle
        #: live progress line for long runs (opt-in; writes to stderr).
        self.heartbeat = heartbeat
        #: Samplers of every run observed through this telemetry object,
        #: in run order (usually one).
        self.samplers: list[Sampler] = []

    @property
    def events_on(self) -> bool:
        return self.sink.enabled

    def new_sampler(self) -> Sampler | None:
        """Called by the machine at run start; one sampler per run."""
        if self.sample_interval <= 0:
            return None
        sampler = Sampler(self.sample_interval, self.sink)
        self.samplers.append(sampler)
        return sampler

    @property
    def samples(self):
        """Samples of the most recent run (empty list when sampling off)."""
        return self.samplers[-1].samples if self.samplers else []

    def close(self) -> None:
        """Flush the sink and lifecycle stream (writes traces to disk),
        and clear any in-progress heartbeat status line."""
        if self.heartbeat is not None:
            self.heartbeat.finish()
        self.sink.close()
        if self.lifecycle is not None:
            self.lifecycle.close()

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: TelemetryConfig,
                    trace_path: str | Path | None = None,
                    lifecycle_jsonl: str | Path | None = None) -> "Telemetry":
        """Build a telemetry object from a :class:`TelemetryConfig`.

        *trace_path* selects the sink: ``None`` means no event stream
        (CPI/sampling only); otherwise the configured ``trace_format``
        decides between Chrome ``trace_event`` JSON and JSONL.
        *lifecycle_jsonl* streams the lifecycle records there in addition
        to the configured ring buffer.
        """
        sink: Sink | None = None
        if trace_path is not None:
            if config.trace_format == "jsonl":
                sink = JsonlSink(trace_path)
            else:
                sink = ChromeTraceSink(trace_path)
        lifecycle: LifecycleCollector | None = None
        if config.lifecycle or lifecycle_jsonl is not None:
            lifecycle = LifecycleCollector(
                max_records=config.lifecycle_max_records or None,
                jsonl_path=lifecycle_jsonl,
            )
        heartbeat: Heartbeat | None = None
        if config.heartbeat_interval:
            heartbeat = Heartbeat(config.heartbeat_interval)
        return cls(sink=sink, cpi=config.cpi,
                   sample_interval=config.sample_interval,
                   lifecycle=lifecycle, heartbeat=heartbeat)
