"""Reproduction of *HiDISC: A Decoupled Architecture for Data-Intensive
Applications* (Ro, Gaudiot, Crago, Despain — IPDPS 2003).

Package map:

* :mod:`repro.isa` — the 64-bit RISC instruction set.
* :mod:`repro.asm` — assembler and program-builder DSL.
* :mod:`repro.slicer` — the HiDISC compiler (stream separation, CMAS).
* :mod:`repro.sim` — functional and cycle-level timing simulation.
* :mod:`repro.workloads` — the seven DIS benchmarks.
* :mod:`repro.experiments` — the harness regenerating every table/figure.
* :mod:`repro.telemetry` — event tracing, CPI stacks, occupancy sampling.

Quickstart::

    from repro import MachineConfig, assemble, compile_hidisc
    from repro.sim import Machine, generate_trace

    program = assemble(SOURCE)
    config = MachineConfig()
    comp = compile_hidisc(program, config)
    trace, _ = generate_trace(program)
    base = Machine(config, comp.original, trace, mode="superscalar").run()
"""

from .asm import Program, ProgramBuilder, assemble
from .config import (
    FIGURE10_LATENCIES,
    CacheConfig,
    CoreConfig,
    MachineConfig,
    SamplingPlan,
    TelemetryConfig,
)
from .errors import ReproError
from .slicer import compile_hidisc
from .telemetry import Telemetry

__version__ = "1.2.0"

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "FIGURE10_LATENCIES",
    "MachineConfig",
    "Program",
    "ProgramBuilder",
    "ReproError",
    "SamplingPlan",
    "Telemetry",
    "TelemetryConfig",
    "__version__",
    "assemble",
    "compile_hidisc",
]
