"""Run the whole benchmark suite once; every figure reads from the result.

Figures 8 and 9 and Table 2 are different views of the same 7x4 grid of
simulations, so the suite runs the grid once and the figure modules format
it.  Figure 10 needs its own latency sweep (see
:mod:`repro.experiments.figure10`), reusing the suite's compiled
workloads.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from ..config import MachineConfig, SamplingPlan
from ..errors import ConfigError, SimulationError
from ..telemetry import Telemetry, metrics, spans
from ..workloads import Workload, all_workloads, quick_workloads
from .cache import RunCache, prepare_cached
from .checkpoint import SuiteCheckpoint
from .models import MODEL_ORDER
from .runner import BenchmarkResults, CompiledWorkload, run_model
from . import interrupt

ProgressFn = Callable[[str], None]

#: Per-cell completion hook: ``on_cell(benchmark, mode, resumed)`` fires
#: after each grid cell is checkpointed (or loaded from a checkpoint).
#: The service worker uses it for job events, lease-freshness checks and
#: cancellation polls; tests use it to interrupt at exact cell counts.
CellFn = Callable[[str, str, bool], None]


@dataclass
class SuiteResult:
    """The 7-benchmark x 4-model simulation grid."""

    config: MachineConfig
    quick: bool
    benchmarks: dict[str, BenchmarkResults] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def names(self) -> list[str]:
        return list(self.benchmarks)

    def _require_benchmarks(self, what: str) -> None:
        if not self.benchmarks:
            raise SimulationError(
                f"cannot compute {what} of an empty suite — no benchmarks "
                f"were simulated"
            )

    def mean_speedup(self, mode: str) -> float:
        """Arithmetic mean speedup over the baseline (paper's Table 2)."""
        self._require_benchmarks("mean speedup")
        values = [b.speedup(mode) for b in self.benchmarks.values()]
        return sum(values) / len(values)

    def mean_miss_reduction(self, mode: str) -> float:
        """Mean fraction of L1 demand misses eliminated vs the baseline."""
        self._require_benchmarks("mean miss reduction")
        values = [1.0 - b.miss_ratio(mode) for b in self.benchmarks.values()]
        return sum(values) / len(values)

    def to_payload(self) -> dict:
        """JSON-ready nested dict of the whole grid."""
        out: dict = {"quick": self.quick, "elapsed_seconds": self.elapsed_seconds,
                     "benchmarks": {}}
        for name, bench in self.benchmarks.items():
            entry: dict = {"work_instructions": bench.compiled.work, "models": {}}
            for mode, result in bench.results.items():
                cell = {
                    "cycles": result.cycles,
                    "ipc": result.ipc,
                    "l1_demand_miss_rate": result.l1_demand_miss_rate,
                    "speedup": result.speedup_over(bench.baseline),
                    "lod_cycles": result.loss_of_decoupling_cycles(),
                    "lod_breakdown": result.stall_breakdown(),
                    "cpi_stack": result.cpi_stacks,
                    "cmas_threads": result.cmas_threads_forked,
                }
                if result.sampled:
                    cell["sampled"] = True
                    cell["sampling"] = result.sampling
                entry["models"][mode] = cell
            out["benchmarks"][name] = entry
        return out


def run_suite(
    config: MachineConfig | None = None,
    quick: bool = False,
    seed: int = 2003,
    modes: tuple[str, ...] = MODEL_ORDER,
    workloads: Iterable[Workload] | None = None,
    progress: ProgressFn | None = None,
    telemetry: Telemetry | None = None,
    cpi_stacks: bool = True,
    jobs: int = 1,
    cache: RunCache | None = None,
    task_timeout: float | None = None,
    verify: bool = False,
    resume: bool = False,
    on_cell: CellFn | None = None,
    sampling: SamplingPlan | None = None,
) -> SuiteResult:
    """Prepare and simulate every benchmark on every model.

    CPI stacks are collected by default (``cpi_stacks=True``) so the suite
    JSON payload carries the cycle attribution of every run; pass an
    explicit *telemetry* object instead for event tracing or sampling.

    ``jobs > 1`` fans ``prepare()`` out per benchmark and ``run_model()``
    out per (benchmark, model) cell over worker processes; results are
    assembled deterministically in grid order, so the payload is identical
    to a serial run modulo ``elapsed_seconds``.  Each worker constructs
    its own CPI-stack telemetry; an explicit *telemetry* object (sinks,
    samplers) is process-local, so it forces serial execution.
    ``cache`` memoizes compilations on disk (see
    :mod:`repro.experiments.cache`); *task_timeout* bounds each parallel
    task in seconds, after which it is recomputed in-process.

    When a *cache* is given, every completed grid cell is checkpointed
    into ``<cache>/suites/<suite-key>/`` the moment it finishes;
    ``resume=True`` loads the checkpointed cells of an interrupted run
    and simulates only the missing ones (the simulators are
    deterministic, so the resumed payload is identical to an
    uninterrupted run modulo ``elapsed_seconds``).  ``verify=True``
    referees every cell with the co-simulation oracle
    (:func:`repro.resilience.verified_run`).

    *on_cell* fires after every cell lands (computed-and-checkpointed or
    resumed), and the loops poll :func:`repro.experiments.interrupt.poll`
    at the same boundaries — under a
    :class:`~repro.experiments.interrupt.GracefulInterrupt` a SIGINT/
    SIGTERM therefore stops the suite *between* cells with every
    completed cell safely on disk.

    *sampling* runs every grid cell through the sampled-interval driver
    (:mod:`repro.sim.sampling`): results carry ``sampled=True`` and the
    extrapolation metadata, and the checkpoint directory is keyed on the
    plan so sampled and full cells never alias.  Mutually exclusive with
    *verify* (the oracle needs the full commit stream).
    """
    if sampling is not None and verify:
        from ..errors import SamplingError

        raise SamplingError(
            "--verify needs full-detail simulation; drop --sample to "
            "referee runs with the co-simulation oracle"
        )
    config = config if config is not None else MachineConfig()
    if workloads is None:
        workloads = quick_workloads(seed) if quick else all_workloads(seed)
    workloads = list(workloads)
    if resume and cache is None:
        raise ConfigError(
            "suite resume needs the run cache for its checkpoints — "
            "drop --no-cache or pass a RunCache"
        )
    checkpoint = (
        SuiteCheckpoint.for_suite(cache, config, workloads, modes,
                                  sampling=sampling)
        if cache is not None else None
    )
    if resume and progress:
        found = len(checkpoint.cells())
        progress(f"resuming: {found} checkpointed cells under "
                 f"{checkpoint.root}")
    if jobs != 1 and telemetry is not None:
        if progress:
            progress("explicit telemetry object is process-local; "
                     "running serially")
        jobs = 1
    if telemetry is None and cpi_stacks:
        telemetry = Telemetry(cpi=True)
    start = time.perf_counter()
    suite = SuiteResult(config=config, quick=quick)
    with spans.span("run_suite", cat="suite", benchmarks=len(workloads),
                    modes=len(modes), jobs=jobs, resume=resume):
        if jobs != 1:
            _run_suite_parallel(suite, workloads, config, modes, progress,
                                cpi=cpi_stacks, jobs=jobs, cache=cache,
                                task_timeout=task_timeout, verify=verify,
                                checkpoint=checkpoint, resume=resume,
                                on_cell=on_cell, sampling=sampling)
            suite.elapsed_seconds = time.perf_counter() - start
            return suite
        for workload in workloads:
            interrupt.poll()
            if progress:
                progress(f"preparing {workload.name} ...")
            compiled = prepare_cached(workload, config, cache)
            if progress:
                progress(
                    f"  compiled in {compiled.prepare_seconds:.1f}s "
                    f"({compiled.work} dynamic instructions); simulating ..."
                )
            bench = BenchmarkResults(compiled=compiled)
            for mode in modes:
                interrupt.poll()
                result = (
                    checkpoint.load(workload.name, mode)
                    if resume and checkpoint is not None else None
                )
                resumed = result is not None
                if result is None:
                    result = run_model(compiled, config, mode,
                                       telemetry=telemetry, verify=verify,
                                       sampling=sampling)
                    metrics.inc("cells_completed")
                    if checkpoint is not None:
                        checkpoint.store(workload.name, mode, result)
                else:
                    metrics.inc("cells_resumed")
                    if progress:
                        progress(f"  {workload.name}/{mode}: resumed from "
                                 f"checkpoint")
                if on_cell is not None:
                    on_cell(workload.name, mode, resumed)
                bench.results[mode] = result
            suite.benchmarks[workload.name] = bench
            if progress:
                base = bench.baseline
                progress(
                    f"  {workload.name}: baseline {base.cycles} cycles "
                    f"(IPC {base.ipc:.2f}), hidisc speedup "
                    f"{bench.speedup('hidisc'):.3f}"
                    if "hidisc" in bench.results
                    else f"  {workload.name}: done"
                )
        suite.elapsed_seconds = time.perf_counter() - start
        return suite


def _run_suite_parallel(suite: SuiteResult, workloads: list[Workload],
                        config: MachineConfig, modes: tuple[str, ...],
                        progress: ProgressFn | None, cpi: bool, jobs: int,
                        cache: RunCache | None,
                        task_timeout: float | None,
                        verify: bool = False,
                        checkpoint: SuiteCheckpoint | None = None,
                        resume: bool = False,
                        on_cell: CellFn | None = None,
                        sampling: SamplingPlan | None = None) -> None:
    """Fan the suite grid out over worker processes (deterministic order).

    Each completed cell is checkpointed from the parent the moment its
    result lands (via ``run_tasks``'s *on_result* hook), so an
    interruption at any point loses at most the in-flight cells; with
    *resume*, checkpointed cells are loaded up front and never submitted.
    """
    from .parallel import (
        Task,
        clear_shared,
        prepare_many,
        run_model_task,
        run_tasks,
        share_compiled,
    )

    if progress:
        progress(f"preparing {len(workloads)} benchmarks "
                 f"(jobs={jobs}) ...")
    compiled = prepare_many(workloads, config, jobs=jobs, cache=cache,
                            timeout=task_timeout, progress=progress)

    grid = [(cw, mode) for cw in compiled for mode in modes]
    cells: dict[int, object] = {}
    if resume and checkpoint is not None:
        for index, (cw, mode) in enumerate(grid):
            result = checkpoint.load(cw.name, mode)
            if result is not None:
                cells[index] = result
                if on_cell is not None:
                    on_cell(cw.name, mode, True)
        if cells:
            metrics.inc("cells_resumed", len(cells))
        if progress and cells:
            progress(f"  resumed {len(cells)}/{len(grid)} cells from "
                     f"checkpoint")
    missing = [index for index in range(len(grid)) if index not in cells]
    if progress:
        progress(f"simulating {len(missing)} grid cells (jobs={jobs}) ...")
    if missing:
        tasks = [
            Task(label=f"{grid[index][0].name}/{grid[index][1]}",
                 fn=run_model_task,
                 args=(share_compiled(grid[index][0]), config,
                       grid[index][1], cpi, verify, sampling))
            for index in missing
        ]

        def on_result(task_index: int, result) -> None:
            grid_index = missing[task_index]
            cells[grid_index] = result
            metrics.inc("cells_completed")
            cw, mode = grid[grid_index]
            if checkpoint is not None:
                checkpoint.store(cw.name, mode, result)
            if on_cell is not None:
                on_cell(cw.name, mode, False)

        try:
            run_tasks(tasks, jobs=jobs, timeout=task_timeout,
                      progress=progress, on_result=on_result)
        finally:
            clear_shared()
    for index, (cw, mode) in enumerate(grid):
        bench = suite.benchmarks.get(cw.name)
        if bench is None:
            bench = BenchmarkResults(compiled=cw)
            suite.benchmarks[cw.name] = bench
        bench.results[mode] = cells[index]


def prepare_suite_workload(name: str, config: MachineConfig,
                           quick: bool = False,
                           seed: int = 2003,
                           cache: RunCache | None = None) -> CompiledWorkload:
    """Prepare a single benchmark by name (used by Figure 10 and tests)."""
    from ..workloads import get_workload

    return prepare_cached(get_workload(name, quick=quick, seed=seed),
                          config, cache)
