"""Run the whole benchmark suite once; every figure reads from the result.

Figures 8 and 9 and Table 2 are different views of the same 7x4 grid of
simulations, so the suite runs the grid once and the figure modules format
it.  Figure 10 needs its own latency sweep (see
:mod:`repro.experiments.figure10`), reusing the suite's compiled
workloads.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from ..config import MachineConfig
from ..errors import SimulationError
from ..telemetry import Telemetry
from ..workloads import Workload, all_workloads, quick_workloads
from .cache import RunCache, prepare_cached
from .models import MODEL_ORDER
from .runner import BenchmarkResults, CompiledWorkload, prepare, run_benchmark

ProgressFn = Callable[[str], None]


@dataclass
class SuiteResult:
    """The 7-benchmark x 4-model simulation grid."""

    config: MachineConfig
    quick: bool
    benchmarks: dict[str, BenchmarkResults] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def names(self) -> list[str]:
        return list(self.benchmarks)

    def _require_benchmarks(self, what: str) -> None:
        if not self.benchmarks:
            raise SimulationError(
                f"cannot compute {what} of an empty suite — no benchmarks "
                f"were simulated"
            )

    def mean_speedup(self, mode: str) -> float:
        """Arithmetic mean speedup over the baseline (paper's Table 2)."""
        self._require_benchmarks("mean speedup")
        values = [b.speedup(mode) for b in self.benchmarks.values()]
        return sum(values) / len(values)

    def mean_miss_reduction(self, mode: str) -> float:
        """Mean fraction of L1 demand misses eliminated vs the baseline."""
        self._require_benchmarks("mean miss reduction")
        values = [1.0 - b.miss_ratio(mode) for b in self.benchmarks.values()]
        return sum(values) / len(values)

    def to_payload(self) -> dict:
        """JSON-ready nested dict of the whole grid."""
        out: dict = {"quick": self.quick, "elapsed_seconds": self.elapsed_seconds,
                     "benchmarks": {}}
        for name, bench in self.benchmarks.items():
            entry: dict = {"work_instructions": bench.compiled.work, "models": {}}
            for mode, result in bench.results.items():
                entry["models"][mode] = {
                    "cycles": result.cycles,
                    "ipc": result.ipc,
                    "l1_demand_miss_rate": result.l1_demand_miss_rate,
                    "speedup": result.speedup_over(bench.baseline),
                    "lod_cycles": result.loss_of_decoupling_cycles(),
                    "lod_breakdown": result.stall_breakdown(),
                    "cpi_stack": result.cpi_stacks,
                    "cmas_threads": result.cmas_threads_forked,
                }
            out["benchmarks"][name] = entry
        return out


def run_suite(
    config: MachineConfig | None = None,
    quick: bool = False,
    seed: int = 2003,
    modes: tuple[str, ...] = MODEL_ORDER,
    workloads: Iterable[Workload] | None = None,
    progress: ProgressFn | None = None,
    telemetry: Telemetry | None = None,
    cpi_stacks: bool = True,
    jobs: int = 1,
    cache: RunCache | None = None,
    task_timeout: float | None = None,
) -> SuiteResult:
    """Prepare and simulate every benchmark on every model.

    CPI stacks are collected by default (``cpi_stacks=True``) so the suite
    JSON payload carries the cycle attribution of every run; pass an
    explicit *telemetry* object instead for event tracing or sampling.

    ``jobs > 1`` fans ``prepare()`` out per benchmark and ``run_model()``
    out per (benchmark, model) cell over worker processes; results are
    assembled deterministically in grid order, so the payload is identical
    to a serial run modulo ``elapsed_seconds``.  Each worker constructs
    its own CPI-stack telemetry; an explicit *telemetry* object (sinks,
    samplers) is process-local, so it forces serial execution.
    ``cache`` memoizes compilations on disk (see
    :mod:`repro.experiments.cache`); *task_timeout* bounds each parallel
    task in seconds, after which it is recomputed in-process.
    """
    config = config if config is not None else MachineConfig()
    if workloads is None:
        workloads = quick_workloads(seed) if quick else all_workloads(seed)
    workloads = list(workloads)
    if jobs != 1 and telemetry is not None:
        if progress:
            progress("explicit telemetry object is process-local; "
                     "running serially")
        jobs = 1
    if telemetry is None and cpi_stacks:
        telemetry = Telemetry(cpi=True)
    start = time.perf_counter()
    suite = SuiteResult(config=config, quick=quick)
    if jobs != 1:
        _run_suite_parallel(suite, workloads, config, modes, progress,
                            cpi=cpi_stacks, jobs=jobs, cache=cache,
                            task_timeout=task_timeout)
        suite.elapsed_seconds = time.perf_counter() - start
        return suite
    for workload in workloads:
        if progress:
            progress(f"preparing {workload.name} ...")
        compiled = prepare_cached(workload, config, cache)
        if progress:
            progress(
                f"  compiled in {compiled.prepare_seconds:.1f}s "
                f"({compiled.work} dynamic instructions); simulating ..."
            )
        bench = run_benchmark(compiled, config, modes=modes,
                              telemetry=telemetry)
        suite.benchmarks[workload.name] = bench
        if progress:
            base = bench.baseline
            progress(
                f"  {workload.name}: baseline {base.cycles} cycles "
                f"(IPC {base.ipc:.2f}), hidisc speedup "
                f"{bench.speedup('hidisc'):.3f}"
                if "hidisc" in bench.results else f"  {workload.name}: done"
            )
    suite.elapsed_seconds = time.perf_counter() - start
    return suite


def _run_suite_parallel(suite: SuiteResult, workloads: list[Workload],
                        config: MachineConfig, modes: tuple[str, ...],
                        progress: ProgressFn | None, cpi: bool, jobs: int,
                        cache: RunCache | None,
                        task_timeout: float | None) -> None:
    """Fan the suite grid out over worker processes (deterministic order)."""
    from .parallel import (
        Task,
        clear_shared,
        prepare_many,
        run_model_task,
        run_tasks,
        share_compiled,
    )

    if progress:
        progress(f"preparing {len(workloads)} benchmarks "
                 f"(jobs={jobs}) ...")
    compiled = prepare_many(workloads, config, jobs=jobs, cache=cache,
                            timeout=task_timeout, progress=progress)
    if progress:
        progress(f"simulating {len(compiled) * len(modes)} grid cells "
                 f"(jobs={jobs}) ...")
    tasks = [
        Task(label=f"{cw.name}/{mode}", fn=run_model_task,
             args=(share_compiled(cw), config, mode, cpi))
        for cw in compiled
        for mode in modes
    ]
    try:
        results = run_tasks(tasks, jobs=jobs, timeout=task_timeout,
                            progress=progress)
    finally:
        clear_shared()
    cursor = iter(results)
    for cw in compiled:
        bench = BenchmarkResults(compiled=cw)
        for mode in modes:
            bench.results[mode] = next(cursor)
        suite.benchmarks[cw.name] = bench


def prepare_suite_workload(name: str, config: MachineConfig,
                           quick: bool = False,
                           seed: int = 2003,
                           cache: RunCache | None = None) -> CompiledWorkload:
    """Prepare a single benchmark by name (used by Figure 10 and tests)."""
    from ..workloads import get_workload

    return prepare_cached(get_workload(name, quick=quick, seed=seed),
                          config, cache)
