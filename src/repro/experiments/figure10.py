"""Figure 10: latency tolerance — IPC versus (L2, memory) latency.

The paper sweeps (L2 latency / memory latency) over 4/40, 8/80, 12/120 and
16/160 for the Pointer and Neighborhood stressmarks, plotting IPC of all
four models.  Shape targets: the CMP-bearing models stay nearly flat
(paper: HiDISC loses only 1.8% on Pointer / 4.8% on Neighborhood from the
shortest to the longest latency) while the baseline and CP+AP degrade
steeply (20.3% / 13.9%).

Compilation and traces are latency-independent, so each benchmark is
prepared once and replayed at every latency point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import FIGURE10_LATENCIES, MachineConfig, SamplingPlan
from ..errors import SimulationError
from .cache import RunCache, compile_key
from .models import MODEL_LABELS, MODEL_ORDER, PAPER
from .reporting import render_table
from .runner import CompiledWorkload, run_model
from .suite import ProgressFn

#: Benchmarks the paper sweeps.
FIGURE10_BENCHMARKS = ("pointer", "neighborhood")


@dataclass
class Figure10:
    """IPC grid: benchmark -> model -> [IPC per latency point]."""

    latencies: tuple[tuple[int, int], ...]
    ipc: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def degradation(self, benchmark: str, mode: str) -> float:
        """Fractional IPC loss from the shortest to the longest latency."""
        series = self.ipc[benchmark][mode]
        if series[0] == 0:
            return 0.0
        return 1.0 - series[-1] / series[0]

    def render(self) -> str:
        blocks = []
        for name, by_model in self.ipc.items():
            rows = []
            for mode in MODEL_ORDER:
                if mode not in by_model:
                    continue
                rows.append(
                    [MODEL_LABELS[mode]]
                    + [f"{v:.3f}" for v in by_model[mode]]
                    + [f"-{self.degradation(name, mode) * 100:.1f}%"]
                )
            header = ["Model"] + [
                f"{l2}/{mem}" for l2, mem in self.latencies
            ] + ["degradation"]
            paper_base = PAPER.figure10_degradation.get((name, "superscalar"))
            paper_hd = PAPER.figure10_degradation.get((name, "hidisc"))
            note = ""
            if paper_base is not None:
                note = (f"  (paper: superscalar -{paper_base * 100:.1f}%, "
                        f"HiDISC -{paper_hd * 100:.1f}%)")
            blocks.append(f"{name} — IPC vs L2/memory latency{note}\n"
                          + render_table(header, rows))
        return ("Figure 10: latency tolerance for various memory latencies\n"
                + "\n\n".join(blocks))


def figure10(
    config: MachineConfig | None = None,
    quick: bool = False,
    seed: int = 2003,
    benchmarks: tuple[str, ...] = FIGURE10_BENCHMARKS,
    latencies: tuple[tuple[int, int], ...] = FIGURE10_LATENCIES,
    modes: tuple[str, ...] = MODEL_ORDER,
    progress: ProgressFn | None = None,
    compiled: dict[str, CompiledWorkload] | None = None,
    jobs: int = 1,
    cache: RunCache | None = None,
    task_timeout: float | None = None,
    sampling: SamplingPlan | None = None,
) -> Figure10:
    """Run the latency sweep.

    Pass *compiled* (name -> :class:`CompiledWorkload`) to reuse
    preparations from a prior suite run — each entry's fingerprint is
    checked against the sweep's own (config, quick, seed), and a mismatch
    raises :class:`SimulationError` rather than silently replaying a
    compilation prepared under different settings (stale CMAS trigger
    distance, wrong workload size, ...).

    ``jobs > 1`` fans preparation and the (benchmark, latency, model)
    cells out over worker processes; *cache* memoizes compilations.
    *sampling* runs every sweep cell through the sampled-interval driver
    (``hidisc figure10 --sample`` — the sampled-vs-full recipe in
    EXPERIMENTS.md compares the two sweeps point by point).
    """
    base_config = config if config is not None else MachineConfig()
    from ..workloads import get_workload

    workloads = [get_workload(name, quick=quick, seed=seed)
                 for name in benchmarks]
    by_name: dict[str, CompiledWorkload] = {}
    missing = []
    for workload in workloads:
        expected = compile_key(workload, base_config)
        if compiled is not None and workload.name in compiled:
            cw = compiled[workload.name]
            if cw.fingerprint != expected:
                raise SimulationError(
                    f"figure10: compiled workload {workload.name!r} was "
                    f"prepared under a different workload/config/version "
                    f"(fingerprint {cw.fingerprint[:12] or '<unset>'}..., "
                    f"expected {expected[:12]}...) — re-prepare with the "
                    f"sweep's quick/seed/config settings"
                )
            by_name[workload.name] = cw
        else:
            missing.append(workload)

    if missing:
        from .parallel import prepare_many

        if progress and jobs == 1:
            for workload in missing:
                progress(f"preparing {workload.name} ...")
        for cw in prepare_many(missing, base_config, jobs=jobs, cache=cache,
                               timeout=task_timeout, progress=progress):
            by_name[cw.name] = cw

    out = Figure10(latencies=latencies)
    cells = [
        (name, l2_latency, memory_latency, mode)
        for name in benchmarks
        for l2_latency, memory_latency in latencies
        for mode in modes
    ]
    for name in benchmarks:
        out.ipc[name] = {mode: [] for mode in modes}

    if jobs != 1:
        from .parallel import Task, clear_shared, run_model_task, run_tasks
        from .parallel import share_compiled

        refs = {name: share_compiled(cw) for name, cw in by_name.items()}
        tasks = [
            Task(label=f"{name}@{l2}/{mem}/{mode}", fn=run_model_task,
                 args=(refs[name], base_config.with_latency(l2, mem),
                       mode, False, False, sampling))
            for name, l2, mem, mode in cells
        ]
        try:
            results = run_tasks(tasks, jobs=jobs, timeout=task_timeout,
                                progress=progress)
        finally:
            clear_shared()
        for (name, _l2, _mem, mode), result in zip(cells, results):
            out.ipc[name][mode].append(result.ipc)
        return out

    for name in benchmarks:
        cw = by_name[name]
        for l2_latency, memory_latency in latencies:
            point = base_config.with_latency(l2_latency, memory_latency)
            if progress:
                progress(f"  {name} @ L2={l2_latency}, mem={memory_latency}")
            for mode in modes:
                result = run_model(cw, point, mode, sampling=sampling)
                out.ipc[name][mode].append(result.ipc)
    return out
