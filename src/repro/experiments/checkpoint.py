"""Crash-resumable experiment suites: per-cell checkpoints in the run cache.

A full-scale suite is hours of simulation; a crash (OOM kill, machine
reboot, Ctrl-C) used to throw all completed cells away.  This module
checkpoints the grid **after every completed cell**, so ``hidisc suite
--resume`` replays only the missing cells and produces a payload identical
to an uninterrupted run (modulo ``elapsed_seconds``).

Design mirrors :mod:`repro.experiments.cache`:

* **Content-addressed suite keys.**  :func:`suite_key` hashes the package
  version, the machine-config fingerprint, the mode tuple and every
  workload fingerprint — any change in scale, seed, configuration or code
  version lands in a different checkpoint directory, so ``--resume`` can
  never mix cells from incompatible runs.
* **Atomic per-cell stores.**  Each completed :class:`RunResult` is
  pickled to ``<cache>/suites/<key>/<benchmark>__<mode>.pkl`` via
  write-temp-then-rename; a crash mid-store never publishes a torn cell.
* **Corruption tolerance.**  An unreadable or unpicklable cell is deleted
  and reported as missing — the resume recomputes it.  Like the run cache,
  checkpoints accelerate; they are never a correctness dependency.

The simulators are deterministic, so a recomputed cell is bit-identical to
the crashed run's would-have-been result — resuming cannot change any
number in the payload.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections.abc import Sequence
from pathlib import Path

from ..config import MachineConfig, SamplingPlan
from ..telemetry import metrics, spans
from ..workloads import Workload
from .cache import (
    ENTRY_SUFFIX,
    SUITES_DIR,
    RunCache,
    config_fingerprint,
    workload_fingerprint,
)

#: Separator between benchmark and mode in cell file names (benchmark
#: names are identifiers, so a double underscore cannot collide).
_CELL_SEP = "__"


def suite_key(config: MachineConfig, workloads: Sequence[Workload],
              modes: Sequence[str],
              sampling: "SamplingPlan | None" = None) -> str:
    """Content-addressed identity of one suite grid.

    *sampling* (a :class:`~repro.config.SamplingPlan`, or ``None`` for
    full-detail runs) is part of the identity: sampled and full results —
    and results from different plans — land in different checkpoint
    directories and can never alias.
    """
    from .. import __version__

    text = "\x1f".join(
        ("hidisc-suite", __version__, config_fingerprint(config),
         ",".join(modes), f"sampling={sampling!r}")
        + tuple(workload_fingerprint(w) for w in workloads)
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class SuiteCheckpoint:
    """Per-cell checkpoint store for one suite grid.

    Construct via :meth:`for_suite` (which derives the directory from the
    run cache and the suite identity) or directly with an explicit root.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.stores = 0
        self.loads = 0
        self.corrupt = 0

    @classmethod
    def for_suite(cls, cache: RunCache, config: MachineConfig,
                  workloads: Sequence[Workload],
                  modes: Sequence[str],
                  sampling: "SamplingPlan | None" = None) -> "SuiteCheckpoint":
        key = suite_key(config, workloads, modes, sampling=sampling)
        return cls(cache.root / SUITES_DIR / key)

    # ------------------------------------------------------------------
    def cell_path(self, benchmark: str, mode: str) -> Path:
        return self.root / f"{benchmark}{_CELL_SEP}{mode}{ENTRY_SUFFIX}"

    def store(self, benchmark: str, mode: str, result) -> None:
        """Atomically persist one completed cell (best-effort, like the
        run cache: an unwritable directory degrades to a no-op)."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root,
                                       suffix=ENTRY_SUFFIX + ".tmp")
        except OSError:
            return
        try:
            with spans.span("checkpoint_store", cat="checkpoint",
                            cell=f"{benchmark}/{mode}"):
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self.cell_path(benchmark, mode))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        metrics.inc("checkpoint_stores")

    def load(self, benchmark: str, mode: str):
        """Return the checkpointed :class:`RunResult`, or ``None``.

        Unreadable or unpicklable cells are deleted and reported missing
        (the resume recomputes them).
        """
        path = self.cell_path(benchmark, mode)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            result = pickle.loads(blob)
        except Exception:
            result = None
        if result is None or getattr(result, "benchmark", None) != benchmark:
            self.corrupt += 1
            metrics.inc("checkpoint_corrupt")
            spans.instant("checkpoint_corrupt_cell", cat="checkpoint",
                          cell=f"{benchmark}/{mode}")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.loads += 1
        metrics.inc("checkpoint_replayed")
        spans.instant("checkpoint_replay", cat="checkpoint",
                      cell=f"{benchmark}/{mode}")
        return result

    # ------------------------------------------------------------------
    def cells(self) -> list[Path]:
        """Checkpointed cell files (sorted for determinism)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob(f"*{ENTRY_SUFFIX}"))

    def clear(self) -> int:
        """Delete every cell (after a suite completes); returns count."""
        removed = 0
        for path in self.cells():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        try:
            self.root.rmdir()
        except OSError:
            pass
        return removed
