"""Command-line interface: regenerate any table or figure of the paper,
or profile a single run with the telemetry subsystem.

Installed as the ``hidisc`` console script::

    hidisc table1
    hidisc figure8 --quick
    hidisc all --json results.json --jobs 4
    hidisc suite --quick --jobs 2
    hidisc suite --quick --verify          # co-simulation oracle on
    hidisc suite --resume                  # replay only missing cells
    hidisc faults --quick --fault-seed 7   # seeded fault campaign
    hidisc stats --quick --bench pointer --model hidisc
    hidisc trace --quick --bench pointer --out trace.json
    hidisc lifecycle --quick --bench pointer --out run.kanata
    hidisc diff run_a.json run_b.json      # first divergent commit + values
    hidisc cache stats
    hidisc cache clear
    hidisc runs list                       # recent runs from the ledger
    hidisc runs report                     # latest run + regression check
    hidisc bench                           # perf snapshot -> BENCH_<date>.json
    hidisc serve --workers 2               # durable simulation service
    hidisc submit --quick --wait           # queue a suite job, await it
    hidisc jobs                            # list jobs; 'jobs <id>' inspects
    hidisc jobs top                        # live fleet status (Ctrl-C quits)
    hidisc jobs trace <id>                 # stitch one job's Perfetto trace
    hidisc cancel <job_id>                 # request cancellation

Suite-family commands and ``faults`` stop gracefully on SIGINT/SIGTERM:
the first signal finishes and checkpoints the in-flight grid cell, the
ledger records ``outcome: "interrupted"``, and the process exits 130;
``--resume`` then continues without recomputing (a second signal aborts
hard).  ``hidisc serve`` extends the same discipline to a daemon — see
:mod:`repro.service` and DESIGN §9.

Experiment commands run compilations through a persistent on-disk cache
(``--cache-dir``, default ``$HIDISC_CACHE_DIR`` or ``~/.cache/hidisc``;
``--no-cache`` disables it) and fan the simulation grid out over worker
processes with ``--jobs N`` (0 = all CPUs).  Suite runs checkpoint every
completed grid cell into the cache, so an interrupted run continues with
``--resume``.

Every experiment run appends one record to the ledger
(``<cache-dir>/ledger.jsonl``; see :mod:`repro.experiments.ledger`) —
``hidisc runs list|show|report`` renders it.  ``--orch-trace PATH``
additionally records the host orchestration (compilation, pool rounds,
cache and checkpoint traffic) as a Perfetto-loadable timeline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace

from ..config import MachineConfig, SamplingPlan, TelemetryConfig
from ..errors import ConfigError, InterruptedRun
from ..telemetry import (
    ChromeTraceSink,
    Heartbeat,
    LifecycleCollector,
    Telemetry,
    critical_path_by_pc,
    diff_payloads,
    lifecycle_to_chrome,
    load_payload,
    metrics,
    render_critical_path,
    render_diff,
    spans,
    write_konata,
)
from ..workloads import WORKLOADS_BY_NAME, get_workload
from . import interrupt as interrupt_mod
from .cache import RunCache, prepare_cached
from .interrupt import GracefulInterrupt
from .figure8 import figure8
from .figure9 import figure9
from .figure10 import figure10
from .ledger import (
    RunLedger,
    build_record,
    ledger_path,
    new_run_id,
    render_regressions,
    render_run_report,
    render_runs_list,
)
from .models import MODEL_ORDER, sampling_label
from .reporting import render_run_stats, write_json
from .runner import run_model
from .suite import run_suite
from .table1 import table1
from .table2 import table2

_COMMANDS = ("table1", "table2", "figure8", "figure9", "figure10", "all",
             "suite", "stats", "trace", "lifecycle", "diff", "cache",
             "faults", "bench", "runs", "fuzz", "serve", "submit", "jobs",
             "cancel")

_CACHE_ACTIONS = ("stats", "clear")

_RUNS_ACTIONS = ("list", "show", "report")

#: Commands that append a ledger record (experiment runs — not the
#: bookkeeping commands that merely inspect caches/ledgers/payloads).
_LEDGER_COMMANDS = frozenset(
    {"table2", "figure8", "figure9", "figure10", "all", "suite",
     "stats", "trace", "lifecycle", "faults", "fuzz", "serve"}
)

#: Commands whose long-running grids get graceful SIGINT/SIGTERM
#: handling: first signal stops at the next cell boundary (everything
#: completed so far is checkpointed; the ledger records
#: ``outcome: "interrupted"``), second signal aborts hard.  ``serve``
#: manages its own interrupt context (it must drain workers first).
_INTERRUPTIBLE = frozenset(
    {"table2", "figure8", "figure9", "figure10", "all", "suite", "faults"}
)

#: lifecycle output defaults per format (when --out is not given).
_LIFECYCLE_OUT = {"kanata": "hidisc.kanata",
                  "jsonl": "hidisc_lifecycle.jsonl",
                  "chrome": "hidisc_lifecycle.json"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hidisc",
        description="Reproduce the evaluation of 'HiDISC: A Decoupled "
                    "Architecture for Data-Intensive Applications' "
                    "(IPDPS 2003).",
    )
    parser.add_argument("command", choices=_COMMANDS,
                        help="which table/figure to regenerate, 'suite' for "
                             "the raw benchmark grid, 'stats'/'trace'/"
                             "'lifecycle' to profile one run, 'diff' to "
                             "compare two result payloads, 'cache' to "
                             "manage the run cache, or 'faults' to run a "
                             "seeded fault-injection campaign")
    parser.add_argument("cache_action", nargs="?",
                        help="for 'hidisc cache': 'stats' (default) or "
                             "'clear'; for 'hidisc runs': 'list' "
                             "(default), 'show' or 'report'; for "
                             "'hidisc diff': the first payload path; for "
                             "'hidisc jobs': a job id, 'top' or 'trace'; "
                             "for 'hidisc cancel': a job id")
    parser.add_argument("diff_b", nargs="?", metavar="payload_b",
                        help="for 'hidisc diff': the second payload path; "
                             "for 'hidisc runs show|report': a run-id "
                             "prefix (default: the newest run); for "
                             "'hidisc jobs trace': the job id (prefixes "
                             "accepted)")
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down inputs (seconds instead of minutes)")
    parser.add_argument("--seed", type=int, default=2003,
                        help="workload generator seed (default 2003)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also dump raw results as JSON")
    parser.add_argument("--no-progress", action="store_true",
                        help="suppress progress messages on stderr")
    parser.add_argument("--jobs", type=_non_negative, default=1,
                        metavar="N",
                        help="worker processes for the experiment grid "
                             "(default 1 = serial, 0 = all CPUs)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent compilation cache")
    parser.add_argument("--cache-dir", metavar="PATH", default=None,
                        help="run-cache directory (default $HIDISC_CACHE_DIR "
                             "or ~/.cache/hidisc)")
    parser.add_argument("--verify", action="store_true",
                        help="referee every timing run with the "
                             "co-simulation oracle (commit-stream "
                             "integrity + functional state diff)")
    parser.add_argument("--resume", action="store_true",
                        help="for 'suite'-family commands: load the "
                             "checkpointed cells of an interrupted run "
                             "and simulate only the missing ones")
    parser.add_argument("--max-cycles", type=_positive, default=None,
                        metavar="N",
                        help="cycle budget per timing run (default "
                             f"{MachineConfig().max_cycles}; a run "
                             "exceeding it raises CycleLimitError)")
    parser.add_argument("--orch-trace", metavar="PATH", default=None,
                        help="record host orchestration spans (prepare, "
                             "pool rounds, cache/checkpoint traffic, "
                             "per-worker lanes) and write a "
                             "Perfetto-loadable trace_event JSON here")
    parser.add_argument("--limit", type=_positive, default=20, metavar="N",
                        help="for 'hidisc runs list': newest N ledger "
                             "entries to show (default 20)")
    injection = parser.add_argument_group(
        "faults options", "seeded fault-injection campaigns "
                          "(repro.resilience)")
    injection.add_argument("--fault-seed", type=int, default=2003,
                           metavar="SEED",
                           help="FaultPlan seed (default 2003); the same "
                                "seed always injects the same faults")
    injection.add_argument("--fault-count", type=_non_negative, default=8,
                           metavar="N",
                           help="number of fault sites to draw "
                                "(default 8)")
    injection.add_argument("--fault-benches", metavar="NAMES", default=None,
                           help="comma-separated benchmark names to "
                                "campaign over (default: every suite "
                                "benchmark)")
    profiling = parser.add_argument_group(
        "stats/trace/lifecycle options",
        "single-run telemetry (repro.telemetry)")
    profiling.add_argument("--bench", default="pointer",
                           choices=sorted(WORKLOADS_BY_NAME),
                           help="benchmark to profile (default pointer)")
    profiling.add_argument("--model", default="hidisc", choices=MODEL_ORDER,
                           help="machine model to profile (default hidisc)")
    profiling.add_argument("--out", metavar="PATH", default=None,
                           help="output file (default hidisc_trace.json for "
                                "'trace'; for 'lifecycle' it follows the "
                                "format: hidisc.kanata / "
                                "hidisc_lifecycle.jsonl / "
                                "hidisc_lifecycle.json)")
    profiling.add_argument("--format", dest="trace_format", default=None,
                           choices=("chrome", "jsonl", "kanata"),
                           help="output format: Chrome/Perfetto trace_event "
                                "JSON, JSONL, or (lifecycle only) a Konata "
                                "pipeline-viewer log (default: chrome for "
                                "'trace', kanata for 'lifecycle')")
    profiling.add_argument("--occupancy-interval", type=_non_negative,
                           default=128, metavar="CYCLES",
                           help="occupancy sampling period in cycles, "
                                "0 disables (default 128)")
    profiling.add_argument("--heartbeat", type=_non_negative, default=0,
                           metavar="CYCLES",
                           help="emit a live status line (cycle, IPC, queue "
                                "depths, host cycles/s) on stderr every N "
                                "simulated cycles; 0 disables (default)")
    profiling.add_argument("--lifecycle-limit", type=_non_negative,
                           default=0, metavar="N",
                           help="keep only the newest N lifecycle records "
                                "(ring buffer); 0 keeps all (default)")
    profiling.add_argument("--top", type=_positive, default=12, metavar="N",
                           help="rows in the critical-path table "
                                "(default 12)")
    defaults = SamplingPlan()
    sampling = parser.add_argument_group(
        "sampling options",
        "SMARTS-style sampled simulation (repro.sim.sampling): "
        "fast-forward by functional warming, simulate short detailed "
        "windows, extrapolate cycles with a measured confidence "
        "interval.  Valid for suite-family commands and 'stats'; "
        "mutually exclusive with --verify and 'faults'.")
    sampling.add_argument("--sample", action="store_true",
                          help="run every timing simulation through the "
                               "sampled-interval driver (results carry "
                               "sampled=True plus the exact schedule and "
                               "error bars)")
    sampling.add_argument("--sample-interval", type=_positive, default=None,
                          metavar="N",
                          help="sampling period in trace positions "
                               f"(default {defaults.interval_length})")
    sampling.add_argument("--sample-detail", type=_positive, default=None,
                          metavar="N",
                          help="detailed-window length per period "
                               f"(default {defaults.detail_length})")
    sampling.add_argument("--sample-warmup", type=_positive, default=None,
                          metavar="N",
                          help="detailed warm-up positions before each "
                               f"window (default {defaults.warmup_length})")
    sampling.add_argument("--sample-error-budget", type=float, default=None,
                          metavar="FRAC",
                          help="relative 95%% CI target on cycles; the "
                               "driver densifies the schedule (or degrades "
                               "to exact simulation) until it is met "
                               f"(default {defaults.error_budget})")
    sampling.add_argument("--sample-seed", type=int, default=None,
                          metavar="SEED",
                          help="schedule-offset RNG seed "
                               f"(default {defaults.seed})")
    fuzzing = parser.add_argument_group(
        "fuzz options", "differential program fuzzing (repro.fuzz)")
    fuzzing.add_argument("--runs", type=_positive, default=50, metavar="N",
                         help="number of seeded random programs to draw "
                              "(default 50); --seed selects the first")
    fuzzing.add_argument("--fuzz-size", type=_positive, default=24,
                         metavar="N",
                         help="approximate top-level statements per "
                              "generated program (default 24)")
    fuzzing.add_argument("--shrink", action="store_true",
                         help="delta-debug each failing program to a "
                              "minimal repro before reporting it")
    fuzzing.add_argument("--corpus", metavar="DIR", default=None,
                         help="write each (shrunk) failing program as a "
                              "replayable JSON repro into this directory")
    fuzzing.add_argument("--inject-fault", metavar="NAME", default=None,
                         help="self-test: deliberately perturb one "
                              "fast-path dispatch entry (see repro.fuzz."
                              "harness.FAULTS); the campaign must then "
                              "FIND divergences — exit 0 iff it does")
    service = parser.add_argument_group(
        "service options", "durable simulation service (repro.service): "
                           "'hidisc serve' runs the daemon, "
                           "'submit'/'jobs'/'cancel' are its clients")
    service.add_argument("--host", default="127.0.0.1",
                         help="serve: interface to bind (default 127.0.0.1)")
    service.add_argument("--port", type=_non_negative, default=8203,
                         help="serve: TCP port (default 8203; 0 picks a "
                              "free port and prints it)")
    service.add_argument("--url", default=None, metavar="URL",
                         help="submit/jobs/cancel: service endpoint "
                              "(default $HIDISC_SERVICE_URL or "
                              "http://127.0.0.1:8203)")
    service.add_argument("--workers", type=_non_negative, default=2,
                         metavar="N",
                         help="serve: worker processes to supervise "
                              "(default 2)")
    service.add_argument("--lease-ttl", type=float, default=30.0,
                         metavar="SECONDS",
                         help="serve: job lease time-to-live; a worker "
                              "silent this long loses its job to the "
                              "reaper (default 30)")
    service.add_argument("--max-depth", type=_positive, default=64,
                         metavar="N",
                         help="serve: admission control — reject new jobs "
                              "(HTTP 429) past this many pending "
                              "(default 64)")
    service.add_argument("--job-attempts", type=_positive, default=3,
                         metavar="N",
                         help="serve: executions (failures + expired "
                              "leases) before a job is quarantined as "
                              "poison (default 3)")
    service.add_argument("--retry-backoff", type=float, default=0.5,
                         metavar="SECONDS",
                         help="serve: base delay before retrying a failed "
                              "job, doubling per attempt (default 0.5)")
    service.add_argument("--drain-grace", type=float, default=30.0,
                         metavar="SECONDS",
                         help="serve: how long a SIGTERM'd worker may take "
                              "to checkpoint and release its job before "
                              "being killed (default 30)")
    service.add_argument("--benchmarks", metavar="NAMES", default=None,
                         help="submit: comma-separated benchmark names "
                              "(default: the full suite for the chosen "
                              "scale)")
    service.add_argument("--modes", metavar="MODELS", default=None,
                         help="submit: comma-separated machine models "
                              f"(default: all of {', '.join(MODEL_ORDER)})")
    service.add_argument("--cell-delay", type=float, default=0.0,
                         metavar="SECONDS",
                         help="submit: sleep after each freshly computed "
                              "grid cell (testing hook for kill-timing; "
                              "default 0)")
    service.add_argument("--follow", action="store_true",
                         help="submit/jobs <id>: stream the job's JSONL "
                              "events until it reaches a terminal state")
    service.add_argument("--wait", action="store_true",
                         help="submit: block until the job is terminal; "
                              "exit 0 iff it completed")
    service.add_argument("--interval", type=float, default=2.0,
                         metavar="SECONDS",
                         help="jobs top: refresh period (default 2.0)")
    service.add_argument("--iterations", type=_non_negative, default=0,
                         metavar="N",
                         help="jobs top: stop after N refreshes "
                              "(default 0 = until Ctrl-C)")
    bench = parser.add_argument_group(
        "bench options", "simulator performance snapshots "
                         "(benchmarks/record.py)")
    bench.add_argument("--bench-filter", metavar="EXPR", default=None,
                       help="pytest -k filter selecting benchmark "
                            "scenarios (default: all)")
    bench.add_argument("--bench-dir", metavar="DIR", default=None,
                       help="directory for the BENCH_<date>.json snapshot "
                            "(default: repository root)")
    return parser


def _run_bench(args, payload: dict) -> int:
    """The 'bench' command: run the pytest-benchmark suite and append a
    BENCH_<date>.json snapshot (see benchmarks/record.py)."""
    import importlib.util
    from pathlib import Path

    record_py = (Path(__file__).resolve().parents[3]
                 / "benchmarks" / "record.py")
    if not record_py.exists():
        print(f"hidisc bench: {record_py} not found (the benchmark "
              f"harness ships with the repository, not the installed "
              f"package)", file=sys.stderr)
        return 2
    spec = importlib.util.spec_from_file_location("_hidisc_bench_record",
                                                  record_py)
    record = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(record)

    raw = record.run_benchmarks(keyword=args.bench_filter)
    snapshot = record.snapshot_from(raw)
    out_dir = Path(args.bench_dir) if args.bench_dir else None
    path = record.append_snapshot(snapshot, out_dir)
    for name, entry in sorted(snapshot["scenarios"].items()):
        rate = entry.get("cycles_per_second")
        rate_text = f"  {rate:>12,.0f} cycles/s" if rate else ""
        print(f"{name:40s} {entry['mean_seconds'] * 1e3:9.2f} ms{rate_text}")
    print(f"snapshot ({len(snapshot['scenarios'])} scenarios, commit "
          f"{snapshot['commit']}) appended to {path}")
    payload["bench"] = snapshot
    return 0


#: Commands that accept --sample (grid/sweep runs plus single-run stats).
_SAMPLED_COMMANDS = frozenset(
    {"table2", "figure8", "figure9", "figure10", "all", "suite", "stats"}
)

#: The --sample-* tuning flags and the SamplingPlan fields they override.
_SAMPLE_TUNING = (
    ("sample_interval", "interval_length"),
    ("sample_detail", "detail_length"),
    ("sample_warmup", "warmup_length"),
    ("sample_error_budget", "error_budget"),
    ("sample_seed", "seed"),
)


def _sampling_plan(args) -> SamplingPlan | None:
    """The SamplingPlan the flags describe, or None when --sample is off.

    ``SamplingPlan.__post_init__`` validates the combination (positive
    lengths, detail + warmup fitting inside the interval, budget in
    (0, 1)), so nonsense flag combinations fail at parse time, not three
    benchmarks into a grid.
    """
    if not args.sample:
        return None
    overrides = {field: getattr(args, attr)
                 for attr, field in _SAMPLE_TUNING
                 if getattr(args, attr) is not None}
    return SamplingPlan(**overrides)


def _non_negative(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _positive(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _profile_single(args, config: MachineConfig, progress,
                    telemetry: Telemetry, cache: RunCache | None):
    """Shared stats/trace path: compile one benchmark, run one model."""
    workload = get_workload(args.bench, quick=args.quick, seed=args.seed)
    if progress:
        progress(f"preparing {workload.name} ...")
    compiled = prepare_cached(workload, config, cache)
    if progress:
        progress(f"  compiled in {compiled.prepare_seconds:.1f}s "
                 f"({compiled.work} dynamic instructions); "
                 f"simulating {args.model} ...")
    return run_model(compiled, config, args.model, telemetry=telemetry,
                     verify=args.verify, sampling=_sampling_plan(args))


def _run_faults(args, config: MachineConfig, progress,
                cache: RunCache | None, payload: dict) -> int:
    """The 'faults' command: a seeded campaign over benchmarks x models.

    Returns the process exit code: 0 when every run degraded gracefully
    (completed with a passing oracle diff, or raised a typed error),
    1 otherwise.
    """
    from ..resilience import FaultPlan, run_fault_campaign
    from ..workloads import all_workloads, quick_workloads

    workloads = (quick_workloads(args.seed) if args.quick
                 else all_workloads(args.seed))
    if args.fault_benches is not None:
        wanted = [name.strip() for name in args.fault_benches.split(",")
                  if name.strip()]
        by_name = {w.name: w for w in workloads}
        unknown = [name for name in wanted if name not in by_name]
        if unknown:
            raise SystemExit(
                f"hidisc faults: unknown benchmark(s) "
                f"{', '.join(unknown)} (have: {', '.join(sorted(by_name))})"
            )
        workloads = [by_name[name] for name in wanted]

    plan = FaultPlan.random(args.fault_seed, count=args.fault_count)
    print(plan.describe())
    outcomes = []
    for workload in workloads:
        interrupt_mod.poll()
        if progress:
            progress(f"preparing {workload.name} ...")
        compiled = prepare_cached(workload, config, cache)
        for mode in MODEL_ORDER:
            interrupt_mod.poll()
            outcome = run_fault_campaign(compiled, config, mode, plan,
                                         max_cycles=args.max_cycles)
            print(outcome.summary())
            outcomes.append(outcome)
    graceful = all(outcome.graceful for outcome in outcomes)
    payload["faults"] = {
        "plan_seed": plan.seed,
        "sites": len(plan.sites),
        "graceful": graceful,
        "outcomes": [outcome.as_dict() for outcome in outcomes],
    }
    completed = sum(1 for o in outcomes if o.outcome == "completed")
    raised = len(outcomes) - completed
    print(f"\nfault campaign: {len(outcomes)} runs, {completed} completed "
          f"under the oracle, {raised} raised typed errors — "
          f"{'all graceful' if graceful else 'GRACEFUL-DEGRADATION FAILURE'}")
    return 0 if graceful else 1


def _run_fuzz(args, config: MachineConfig, progress, payload: dict) -> int:
    """The 'fuzz' command: a differential fuzzing campaign.

    Exit code semantics flip with --inject-fault: a clean toolchain run
    passes when *zero* divergences are found, while a deliberately
    perturbed run passes when the harness *does* find them (the
    detection self-test).
    """
    from ..fuzz import FAULTS, run_fuzz_campaign

    if args.inject_fault is not None and args.inject_fault not in FAULTS:
        raise SystemExit(
            f"hidisc fuzz: unknown fault {args.inject_fault!r} "
            f"(have: {', '.join(sorted(FAULTS))})"
        )
    report = run_fuzz_campaign(
        seed=args.seed, runs=args.runs, config=config, size=args.fuzz_size,
        shrink=args.shrink, corpus_dir=args.corpus,
        fault=args.inject_fault, progress=progress,
    )
    payload["fuzz"] = report
    found = report["divergences"]
    for entry in found:
        stmts = (f"{entry['statements_original']} -> {entry['statements']}"
                 if entry["statements"] != entry["statements_original"]
                 else str(entry["statements"]))
        print(f"[{entry['kind']}] seed={entry['seed']} "
              f"({stmts} statements): {entry['detail']}")
        if entry.get("first_divergent"):
            print(f"  first divergent commit: {entry['first_divergent']}")
    mode = (f"fault {args.inject_fault!r} injected"
            if args.inject_fault else "clean toolchain")
    print(f"\nfuzz campaign ({mode}): {report['runs']} programs, "
          f"{len(found)} divergence(s) in "
          f"{report['elapsed_seconds']:.1f}s"
          + (f"; {len(report['corpus'])} repro(s) in {args.corpus}"
             if args.corpus else ""))
    if args.inject_fault is not None:
        ok = bool(found)
        print("detection self-test " + ("PASSED" if ok else
                                        "FAILED: fault went unnoticed"))
        return 0 if ok else 1
    return 0 if not found else 1


def _run_lifecycle(args, config: MachineConfig, progress,
                   cache: RunCache | None, payload: dict) -> int:
    """The 'lifecycle' command: per-instruction stage tracing + export.

    Runs one benchmark/model with a :class:`LifecycleCollector`, writes
    the records in the requested format (Konata pipeline log, Chrome
    per-instruction spans, or raw JSONL) and prints the critical-path
    attribution table.
    """
    fmt = args.trace_format or "kanata"
    out = args.out or _LIFECYCLE_OUT[fmt]
    lifecycle = LifecycleCollector(
        max_records=args.lifecycle_limit or None,
        jsonl_path=out if fmt == "jsonl" else None,
    )
    heartbeat = Heartbeat(args.heartbeat) if args.heartbeat else None
    telemetry = Telemetry(cpi=True, sample_interval=args.occupancy_interval,
                          lifecycle=lifecycle, heartbeat=heartbeat)
    result = _profile_single(args, config, progress, telemetry, cache)
    telemetry.close()

    rows = lifecycle.rows()
    if fmt == "kanata":
        write_konata(rows, out)
        hint = " — open in Konata (https://github.com/shioyadan/Konata)"
    elif fmt == "chrome":
        sink = ChromeTraceSink(out)
        lifecycle_to_chrome(rows, sink)
        sink.close()
        hint = " — open in https://ui.perfetto.dev or chrome://tracing"
    else:  # jsonl — already streamed by the collector at commit time
        hint = ""

    summary = critical_path_by_pc(rows)
    print(render_run_stats(result))
    print(f"\nCritical-path attribution (top {args.top} static "
          f"instructions by total commit latency):")
    print(render_critical_path(summary, limit=args.top))
    dropped = (f", {lifecycle.dropped} dropped by --lifecycle-limit"
               if lifecycle.dropped else "")
    print(f"\n{lifecycle.committed} instructions captured{dropped}; "
          f"{len(rows)} written to {out} ({fmt}){hint}")
    payload["lifecycle"] = {
        "benchmark": result.benchmark,
        "model": result.machine,
        "cycles": result.cycles,
        "captured": lifecycle.committed,
        "dropped": lifecycle.dropped,
        "format": fmt,
        "records": rows,
        "critical_path": summary[:args.top],
    }
    payload["stats"] = _stats_payload(result, telemetry)
    return 0


def _run_diff(args, payload: dict) -> int:
    """The 'diff' command: compare two run/suite JSON payloads.

    Returns 0 when the payloads are identical (modulo wall-clock keys),
    1 when they diverge — so CI can gate on it directly.
    """
    path_a, path_b = args.cache_action, args.diff_b
    a = load_payload(path_a)
    b = load_payload(path_b)
    report = diff_payloads(a, b)
    print(f"diff {path_a} vs {path_b}:")
    print(render_diff(report, name_a=path_a, name_b=path_b))
    payload["diff"] = report
    return 0 if report["identical"] else 1


def _run_runs(args, payload: dict) -> int:
    """The 'runs' command: render the persistent run ledger.

    ``list`` shows the newest entries, ``show`` dumps one record as JSON,
    ``report`` renders its metrics/span digest plus a regression check
    against the most recent earlier run of the same command.
    """
    ledger = RunLedger(ledger_path(RunCache(args.cache_dir).root))
    action = args.cache_action or "list"
    if action == "list":
        entries = ledger.entries(limit=args.limit)
        print(f"ledger at {ledger.path}:")
        print(render_runs_list(entries))
        payload["runs"] = entries
        return 0
    if args.diff_b:
        entry = ledger.find(args.diff_b)
        if entry is None:
            print(f"hidisc runs {action}: no ledger entry matching "
                  f"{args.diff_b!r} in {ledger.path}", file=sys.stderr)
            return 2
    else:
        newest = ledger.entries(limit=1)
        if not newest:
            print(f"hidisc runs {action}: ledger at {ledger.path} is "
                  f"empty — run any experiment command first",
                  file=sys.stderr)
            return 2
        entry = newest[-1]
    if action == "show":
        print(json.dumps(entry, indent=2, sort_keys=True))
        payload["runs"] = [entry]
        return 0
    print(render_run_report(entry))
    baseline = ledger.baseline_for(entry)
    print()
    if baseline is not None:
        print(render_regressions(entry, baseline))
    else:
        print("no earlier run of the same command to compare against")
    payload["runs"] = [entry]
    payload["baseline"] = baseline
    return 0


def _service_url(args) -> str:
    return (args.url or os.environ.get("HIDISC_SERVICE_URL")
            or "http://127.0.0.1:8203")


def _split_names(text: str | None) -> list[str] | None:
    if text is None:
        return None
    names = [name.strip() for name in text.split(",") if name.strip()]
    return names or None


def _submit_spec(args) -> dict:
    spec: dict = {"kind": "suite", "quick": args.quick, "seed": args.seed,
                  "verify": args.verify}
    benchmarks = _split_names(args.benchmarks)
    if benchmarks is not None:
        spec["benchmarks"] = benchmarks
    modes = _split_names(args.modes)
    if modes is not None:
        spec["modes"] = modes
    if args.cell_delay:
        spec["cell_delay"] = args.cell_delay
    return spec


def _run_serve(args, progress, payload: dict) -> int:
    """The 'serve' command: run the durable simulation service daemon.

    SIGTERM/SIGINT drains gracefully: workers finish/checkpoint their
    in-flight cell, release their jobs back to pending, and the daemon
    exits 0; nothing is left in ``leased/``.  A later ``hidisc serve``
    resumes released jobs from their suite checkpoints.
    """
    from ..service import SERVICE_DIR, ServiceServer

    root = RunCache(args.cache_dir).root / SERVICE_DIR
    server = ServiceServer(
        root, host=args.host, port=args.port, workers=args.workers,
        lease_ttl=args.lease_ttl, max_depth=args.max_depth,
        max_attempts=args.job_attempts, retry_backoff=args.retry_backoff,
        drain_grace=args.drain_grace)
    server.start()
    with GracefulInterrupt() as interrupt_ctx:
        code = server.serve_forever(interrupt_ctx=interrupt_ctx)
    payload["serve"] = server.health()
    return code


def _event_line(event: dict) -> str:
    kind = event.get("kind", "?")
    rest = {k: v for k, v in event.items() if k not in ("kind", "t")}
    detail = " ".join(f"{k}={v}" for k, v in sorted(rest.items()))
    return f"[{event.get('t', 0):.3f}] {kind}" + (f" {detail}" if detail
                                                  else "")


def _run_jobs_trace(args, payload: dict) -> int:
    """'jobs trace <id>': stitch one job's cross-process Perfetto trace.

    Reads the spool directly (job traces are about durable history, so
    no running daemon is required — the same cache dir the service used
    is enough) and writes a single trace with client, queue and worker
    lanes, plus a span digest on stdout.
    """
    from ..errors import ServiceError
    from ..service import SERVICE_DIR, JobQueue, resolve_job_id, \
        stitch_job_trace

    queue = JobQueue(RunCache(args.cache_dir).root / SERVICE_DIR)
    out = args.out or "hidisc_job_trace.json"
    try:
        job_id = resolve_job_id(queue, args.diff_b)
        records, lane_names = stitch_job_trace(queue, job_id)
    except ServiceError as exc:
        print(f"hidisc jobs trace: {exc}", file=sys.stderr)
        return 2
    count = spans.write_orchestration_trace(records, out,
                                            lane_names=lane_names)
    digest = spans.summarize(records)
    lanes = len(lane_names)
    print(f"job {job_id}: {count} events across {lanes} lanes "
          f"written to {out} — open in https://ui.perfetto.dev")
    for cat in sorted(digest["by_category"]):
        entry = digest["by_category"][cat]
        print(f"  {cat:12s} {entry['count']:5d} spans "
              f"{entry['ms']:10.1f} ms total")
    payload["job_trace"] = {"job_id": job_id, "path": out,
                            "events": count, "lanes": lanes,
                            "summary": digest}
    return 0


def _run_service_client(args, payload: dict) -> int:
    """'submit', 'jobs' and 'cancel': thin clients for a running daemon."""
    from ..errors import BackpressureError, ServiceError
    from ..service import ServiceClient, run_top

    client = ServiceClient(_service_url(args))
    try:
        if args.command == "cancel":
            response = client.cancel(args.cache_action)
            print(f"job {response['job_id']}: cancellation requested "
                  f"(state: {response['state']})")
            payload["cancel"] = response
            return 0
        if args.command == "jobs":
            if args.cache_action == "top":
                return run_top(client, interval=args.interval,
                               iterations=args.iterations)
            if args.cache_action is None:
                jobs = client.jobs()
                payload["jobs"] = jobs
                if not jobs:
                    print("no jobs")
                    return 0
                for job in jobs:
                    grid = (",".join(job["benchmarks"])
                            if job.get("benchmarks") else "suite")
                    state = job["state"] + (f"/{job['outcome']}"
                                            if job.get("outcome") else "")
                    print(f"{job['job_id']}  {state:22s} "
                          f"attempts={job['attempts']} "
                          f"cells={job['cells_done']}  {grid} "
                          f"x {','.join(job.get('modes') or [])}"
                          + ("  [quick]" if job.get("quick") else ""))
                return 0
            if args.follow:
                for event in client.events(args.cache_action, follow=True):
                    print(_event_line(event))
            record = client.job(args.cache_action)
            payload["job"] = record
            print(json.dumps(record, indent=2, sort_keys=True))
            return 0
        # submit — send a trace context beside the spec so the stitched
        # job trace gets a client lane; it never affects dedup.
        trace = {"pid": os.getpid(), "span": f"{os.getpid():x}.submit",
                 "t_ns": time.time_ns()}
        response = client.submit(_submit_spec(args), trace=trace)
        job_id = response["job_id"]
        payload["submit"] = response
        if response.get("created"):
            print(f"job {job_id}: submitted")
        else:
            print(f"job {job_id}: joined an identical in-flight job "
                  f"({response.get('submitted')} submissions share it)")
        if not (args.follow or args.wait):
            return 0
        if args.follow:
            for event in client.events(job_id, follow=True):
                print(_event_line(event))
            record = client.job(job_id)
        else:
            record = client.wait(job_id)
        payload["job"] = record
        state, job_outcome = record.get("state"), record.get("outcome")
        print(f"job {job_id}: {state}"
              + (f" ({job_outcome})" if job_outcome else ""))
        if record.get("error"):
            print(f"  error: {record['error']}", file=sys.stderr)
        if state == "done":
            payload["result"] = client.result(job_id)
            return 0
        return 1
    except BackpressureError as exc:
        print(f"hidisc {args.command}: {exc}", file=sys.stderr)
        return 75  # EX_TEMPFAIL: retry after the backlog drains
    except ServiceError as exc:
        print(f"hidisc {args.command}: {exc}", file=sys.stderr)
        return 2


def _stats_payload(result, telemetry: Telemetry) -> dict:
    return {
        "machine": result.machine,
        "benchmark": result.benchmark,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "work_instructions": result.work_instructions,
        "committed": dict(result.committed),
        "cpi_stacks": result.cpi_stacks,
        "lod_cycles": result.loss_of_decoupling_cycles(),
        "lod_breakdown": result.stall_breakdown(),
        "l1": result.l1.as_dict(),
        "l2": result.l2.as_dict(),
        "cmas_threads_forked": result.cmas_threads_forked,
        "cmas_threads_dropped": result.cmas_threads_dropped,
        "samples": [s.as_dict() for s in telemetry.samples],
    }


def _validate(parser: argparse.ArgumentParser, args) -> None:
    if args.command == "cache":
        if (args.cache_action is not None
                and args.cache_action not in _CACHE_ACTIONS):
            parser.error(f"unknown cache action {args.cache_action!r} "
                         f"(expected {' or '.join(_CACHE_ACTIONS)})")
        if args.diff_b is not None:
            parser.error(f"unexpected argument {args.diff_b!r} after "
                         f"'cache {args.cache_action}'")
    elif args.command == "runs":
        if (args.cache_action is not None
                and args.cache_action not in _RUNS_ACTIONS):
            parser.error(f"unknown runs action {args.cache_action!r} "
                         f"(expected {', '.join(_RUNS_ACTIONS)})")
        if args.diff_b is not None and (args.cache_action or "list") == "list":
            parser.error(f"unexpected argument {args.diff_b!r} after "
                         f"'runs list' (run ids select 'show'/'report')")
    elif args.command == "diff":
        if args.cache_action is None or args.diff_b is None:
            parser.error("diff needs two payload paths: "
                         "hidisc diff <payload_a> <payload_b>")
    elif args.command == "jobs":
        if args.cache_action == "trace":
            if args.diff_b is None:
                parser.error("jobs trace needs a job id: "
                             "hidisc jobs trace <job_id>")
        elif args.diff_b is not None:
            parser.error(f"unexpected argument {args.diff_b!r} after "
                         f"'jobs {args.cache_action}'")
    elif args.command == "cancel":
        if args.cache_action is None:
            parser.error("cancel needs a job id: hidisc cancel <job_id>")
        if args.diff_b is not None:
            parser.error(f"unexpected argument {args.diff_b!r} after "
                         f"'cancel {args.cache_action}'")
    elif args.cache_action is not None:
        parser.error(f"'{args.cache_action}' is only valid after 'cache', "
                     f"'runs', 'jobs' or 'cancel'")
    if args.command == "serve" and args.no_cache:
        parser.error("the service spool lives in the run cache — "
                     "'hidisc serve' cannot run with --no-cache")
    if args.trace_format == "kanata" and args.command != "lifecycle":
        parser.error("--format kanata is only valid for 'hidisc lifecycle'")
    tuning = [f"--{attr.replace('_', '-')}" for attr, _ in _SAMPLE_TUNING
              if getattr(args, attr) is not None]
    if tuning and not args.sample:
        noun = "makes" if len(tuning) == 1 else "make"
        parser.error(f"{', '.join(tuning)} only {noun} sense together "
                     f"with --sample")
    if args.sample:
        if args.command not in _SAMPLED_COMMANDS:
            parser.error(f"--sample is not valid for '{args.command}' "
                         f"(sampled runs work for "
                         f"{', '.join(sorted(_SAMPLED_COMMANDS))}; "
                         f"'trace'/'lifecycle'/'faults' need every cycle "
                         f"simulated in detail)")
        if args.verify:
            parser.error("--sample and --verify are mutually exclusive: "
                         "the co-simulation oracle needs the full commit "
                         "stream")
        try:
            _sampling_plan(args)
        except ConfigError as exc:
            parser.error(f"invalid sampling plan: {exc}")


def _finalize(args, argv, config: MachineConfig, cache: RunCache | None,
              tracer, run_id: str, outcome: str, code: int,
              elapsed: float, progress) -> None:
    """Post-run bookkeeping: flush the orchestration trace and append the
    ledger record (both best-effort; never raises into the exit path)."""
    metrics.record_peak_rss()
    snapshot = metrics.snapshot()
    span_summary = None
    if tracer is not None:
        spans.disable()
        count = spans.write_orchestration_trace(
            tracer.records, args.orch_trace, main_pid=os.getpid())
        span_summary = spans.summarize(tracer.records)
        if progress:
            progress(f"orchestration trace written to {args.orch_trace} "
                     f"({count} events) — open in https://ui.perfetto.dev")
    if cache is None or args.command not in _LEDGER_COMMANDS:
        return
    record = build_record(
        run_id=run_id,
        command=args.command,
        argv=list(argv) if argv is not None else sys.argv[1:],
        outcome=outcome,
        exit_code=code,
        elapsed_seconds=elapsed,
        config=config,
        metrics_snapshot=snapshot,
        spans_summary=span_summary,
        extra={"quick": args.quick, "jobs": args.jobs},
    )
    RunLedger(ledger_path(cache.root)).append(record)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate(parser, args)
    config = MachineConfig()
    if args.max_cycles is not None:
        config = replace(config, max_cycles=args.max_cycles)
    progress = None if args.no_progress else (
        lambda msg: print(msg, file=sys.stderr, flush=True)
    )
    cache = None if args.no_cache else RunCache(args.cache_dir)

    metrics.reset()
    tracer = spans.enable() if args.orch_trace else None
    run_id = new_run_id()
    start = time.perf_counter()
    outcome, code = "ok", 0
    try:
        with GracefulInterrupt(enabled=args.command in _INTERRUPTIBLE):
            code = _dispatch(args, config, progress, cache)
        if code:
            outcome = f"exit:{code}"
        return code
    except InterruptedRun as exc:
        outcome = "interrupted"
        code = 130
        print(f"\nhidisc {args.command}: {exc}", file=sys.stderr)
        return code
    except SystemExit as exc:
        code = exc.code if isinstance(exc.code, int) else 2
        outcome = f"exit:{code}"
        raise
    except BaseException as exc:
        outcome = f"error:{type(exc).__name__}"
        code = 1
        raise
    finally:
        _finalize(args, argv, config, cache, tracer, run_id, outcome, code,
                  time.perf_counter() - start, progress)


def _dispatch(args, config: MachineConfig, progress,
              cache: RunCache | None) -> int:
    payload: dict = {}
    if args.command == "cache":
        cache = RunCache(args.cache_dir)
        if args.cache_action == "clear":
            removed = cache.clear()
            print(f"cache cleared: {removed} entries removed from "
                  f"{cache.root}")
            payload["cache"] = {"cleared": removed, "root": str(cache.root)}
        else:
            stats = cache.stats()
            print(f"cache at {stats['root']}: {stats['entries']} entries, "
                  f"{stats['total_bytes']} bytes; suite checkpoints: "
                  f"{stats['suite_cells']} cells, "
                  f"{stats['suite_bytes']} bytes; service spool: "
                  f"{stats['service_files']} files, "
                  f"{stats['service_bytes']} bytes")
            payload["cache"] = stats

    if args.command == "runs":
        code = _run_runs(args, payload)
        if args.json:
            path = write_json(args.json, payload)
            print(f"\nraw results written to {path}", file=sys.stderr)
        return code

    if args.command == "serve":
        code = _run_serve(args, progress, payload)
        if args.json:
            path = write_json(args.json, payload)
            print(f"\nraw results written to {path}", file=sys.stderr)
        return code

    if args.command == "jobs" and args.cache_action == "trace":
        code = _run_jobs_trace(args, payload)
        if args.json:
            path = write_json(args.json, payload)
            print(f"\nraw results written to {path}", file=sys.stderr)
        return code

    if args.command in ("submit", "jobs", "cancel"):
        code = _run_service_client(args, payload)
        if args.json:
            path = write_json(args.json, payload)
            print(f"\nraw results written to {path}", file=sys.stderr)
        return code

    if args.command == "table1":
        print("Table 1: Simulation parameters")
        print(table1(config))
        payload["table1"] = [list(row) for row in config.describe()]

    if args.command == "stats":
        telemetry = Telemetry.from_config(
            TelemetryConfig(cpi=True, sample_interval=args.occupancy_interval,
                            heartbeat_interval=args.heartbeat)
        )
        result = _profile_single(args, config, progress, telemetry, cache)
        print(render_run_stats(result))
        payload["stats"] = _stats_payload(result, telemetry)

    if args.command == "trace":
        fmt = args.trace_format or "chrome"
        out = args.out or "hidisc_trace.json"
        telemetry = Telemetry.from_config(
            TelemetryConfig(cpi=True, sample_interval=args.occupancy_interval,
                            trace_format=fmt,
                            heartbeat_interval=args.heartbeat),
            trace_path=out,
        )
        result = _profile_single(args, config, progress, telemetry, cache)
        telemetry.close()
        print(render_run_stats(result))
        count = getattr(telemetry.sink, "event_count", None)
        suffix = f" ({count} events)" if count is not None else ""
        hint = (" — open in https://ui.perfetto.dev or chrome://tracing"
                if fmt == "chrome" else "")
        print(f"\ntrace written to {out}{suffix}{hint}")
        payload["trace"] = {"path": str(out),
                            "format": fmt,
                            "events": count}
        payload["stats"] = _stats_payload(result, telemetry)

    if args.command == "lifecycle":
        code = _run_lifecycle(args, config, progress, cache, payload)
        if args.json:
            path = write_json(args.json, payload)
            print(f"\nraw results written to {path}", file=sys.stderr)
        return code

    if args.command == "diff":
        code = _run_diff(args, payload)
        if args.json:
            path = write_json(args.json, payload)
            print(f"\nraw results written to {path}", file=sys.stderr)
        return code

    if args.command == "faults":
        code = _run_faults(args, config, progress, cache, payload)
        if args.json:
            path = write_json(args.json, payload)
            print(f"\nraw results written to {path}", file=sys.stderr)
        return code

    if args.command == "fuzz":
        code = _run_fuzz(args, config, progress, payload)
        if args.json:
            path = write_json(args.json, payload)
            print(f"\nraw results written to {path}", file=sys.stderr)
        return code

    if args.command == "bench":
        code = _run_bench(args, payload)
        if args.json:
            path = write_json(args.json, payload)
            print(f"\nraw results written to {path}", file=sys.stderr)
        return code

    if args.command in ("table2", "figure8", "figure9", "all", "suite"):
        suite = run_suite(config, quick=args.quick, seed=args.seed,
                          progress=progress, jobs=args.jobs, cache=cache,
                          verify=args.verify, resume=args.resume,
                          sampling=_sampling_plan(args))
        payload["suite"] = suite.to_payload()
        if args.command == "suite":
            for bench in suite.benchmarks.values():
                for result in bench.results.values():
                    label = sampling_label(result)
                    suffix = f"  [{label}]" if label != "full" else ""
                    print(result.summary() + suffix)
            print(f"\nsuite of {len(suite.benchmarks)} benchmarks in "
                  f"{suite.elapsed_seconds:.1f}s "
                  f"(mean HiDISC speedup "
                  f"{suite.mean_speedup('hidisc'):.3f})")
        if args.command in ("figure8", "all"):
            print(figure8(suite).render())
            print()
        if args.command in ("table2", "all"):
            print(table2(suite).render())
            print()
        if args.command in ("figure9", "all"):
            print(figure9(suite).render())
            print()
        compiled = {name: bench.compiled
                    for name, bench in suite.benchmarks.items()}
    else:
        compiled = None

    if args.command in ("figure10", "all"):
        fig10 = figure10(config, quick=args.quick, seed=args.seed,
                         progress=progress, compiled=compiled,
                         jobs=args.jobs, cache=cache,
                         sampling=_sampling_plan(args))
        payload["figure10"] = {
            "latencies": list(fig10.latencies),
            "ipc": fig10.ipc,
        }
        print(fig10.render())

    if args.command == "all":
        print("\nTable 1: Simulation parameters")
        print(table1(config))

    if args.json:
        path = write_json(args.json, payload)
        print(f"\nraw results written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
