"""Command-line interface: regenerate any table or figure of the paper,
or profile a single run with the telemetry subsystem.

Installed as the ``hidisc`` console script::

    hidisc table1
    hidisc figure8 --quick
    hidisc all --json results.json --jobs 4
    hidisc suite --quick --jobs 2
    hidisc stats --quick --bench pointer --model hidisc
    hidisc trace --quick --bench pointer --out trace.json
    hidisc cache stats
    hidisc cache clear

Experiment commands run compilations through a persistent on-disk cache
(``--cache-dir``, default ``$HIDISC_CACHE_DIR`` or ``~/.cache/hidisc``;
``--no-cache`` disables it) and fan the simulation grid out over worker
processes with ``--jobs N`` (0 = all CPUs).
"""

from __future__ import annotations

import argparse
import sys

from ..config import MachineConfig, TelemetryConfig
from ..telemetry import Telemetry
from ..workloads import WORKLOADS_BY_NAME, get_workload
from .cache import RunCache, prepare_cached
from .figure8 import figure8
from .figure9 import figure9
from .figure10 import figure10
from .models import MODEL_ORDER
from .reporting import render_run_stats, write_json
from .runner import run_model
from .suite import run_suite
from .table1 import table1
from .table2 import table2

_COMMANDS = ("table1", "table2", "figure8", "figure9", "figure10", "all",
             "suite", "stats", "trace", "cache")

_CACHE_ACTIONS = ("stats", "clear")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hidisc",
        description="Reproduce the evaluation of 'HiDISC: A Decoupled "
                    "Architecture for Data-Intensive Applications' "
                    "(IPDPS 2003).",
    )
    parser.add_argument("command", choices=_COMMANDS,
                        help="which table/figure to regenerate, 'suite' for "
                             "the raw benchmark grid, 'stats'/'trace' to "
                             "profile one run, or 'cache' to manage the "
                             "run cache")
    parser.add_argument("cache_action", nargs="?", choices=_CACHE_ACTIONS,
                        help="for 'hidisc cache': 'stats' (default) or "
                             "'clear'")
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down inputs (seconds instead of minutes)")
    parser.add_argument("--seed", type=int, default=2003,
                        help="workload generator seed (default 2003)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also dump raw results as JSON")
    parser.add_argument("--no-progress", action="store_true",
                        help="suppress progress messages on stderr")
    parser.add_argument("--jobs", type=_non_negative, default=1,
                        metavar="N",
                        help="worker processes for the experiment grid "
                             "(default 1 = serial, 0 = all CPUs)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent compilation cache")
    parser.add_argument("--cache-dir", metavar="PATH", default=None,
                        help="run-cache directory (default $HIDISC_CACHE_DIR "
                             "or ~/.cache/hidisc)")
    profiling = parser.add_argument_group(
        "stats/trace options", "single-run telemetry (repro.telemetry)")
    profiling.add_argument("--bench", default="pointer",
                           choices=sorted(WORKLOADS_BY_NAME),
                           help="benchmark to profile (default pointer)")
    profiling.add_argument("--model", default="hidisc", choices=MODEL_ORDER,
                           help="machine model to profile (default hidisc)")
    profiling.add_argument("--out", metavar="PATH", default="hidisc_trace.json",
                           help="trace output file (default hidisc_trace.json)")
    profiling.add_argument("--format", dest="trace_format", default="chrome",
                           choices=("chrome", "jsonl"),
                           help="trace file format: Chrome/Perfetto "
                                "trace_event JSON or JSONL (default chrome)")
    profiling.add_argument("--sample-interval", type=_non_negative,
                           default=128, metavar="CYCLES",
                           help="occupancy sampling period in cycles, "
                                "0 disables (default 128)")
    return parser


def _non_negative(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _profile_single(args, config: MachineConfig, progress,
                    telemetry: Telemetry, cache: RunCache | None):
    """Shared stats/trace path: compile one benchmark, run one model."""
    workload = get_workload(args.bench, quick=args.quick, seed=args.seed)
    if progress:
        progress(f"preparing {workload.name} ...")
    compiled = prepare_cached(workload, config, cache)
    if progress:
        progress(f"  compiled in {compiled.prepare_seconds:.1f}s "
                 f"({compiled.work} dynamic instructions); "
                 f"simulating {args.model} ...")
    return run_model(compiled, config, args.model, telemetry=telemetry)


def _stats_payload(result, telemetry: Telemetry) -> dict:
    return {
        "machine": result.machine,
        "benchmark": result.benchmark,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "work_instructions": result.work_instructions,
        "committed": dict(result.committed),
        "cpi_stacks": result.cpi_stacks,
        "lod_cycles": result.loss_of_decoupling_cycles(),
        "lod_breakdown": result.stall_breakdown(),
        "l1": result.l1.as_dict(),
        "l2": result.l2.as_dict(),
        "cmas_threads_forked": result.cmas_threads_forked,
        "cmas_threads_dropped": result.cmas_threads_dropped,
        "samples": [s.as_dict() for s in telemetry.samples],
    }


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cache_action is not None and args.command != "cache":
        parser.error(f"'{args.cache_action}' is only valid after 'cache'")
    config = MachineConfig()
    progress = None if args.no_progress else (
        lambda msg: print(msg, file=sys.stderr, flush=True)
    )
    cache = None if args.no_cache else RunCache(args.cache_dir)

    payload: dict = {}
    if args.command == "cache":
        cache = RunCache(args.cache_dir)
        if args.cache_action == "clear":
            removed = cache.clear()
            print(f"cache cleared: {removed} entries removed from "
                  f"{cache.root}")
            payload["cache"] = {"cleared": removed, "root": str(cache.root)}
        else:
            stats = cache.stats()
            print(f"cache at {stats['root']}: {stats['entries']} entries, "
                  f"{stats['total_bytes']} bytes")
            payload["cache"] = stats

    if args.command == "table1":
        print("Table 1: Simulation parameters")
        print(table1(config))
        payload["table1"] = [list(row) for row in config.describe()]

    if args.command == "stats":
        telemetry = Telemetry.from_config(
            TelemetryConfig(cpi=True, sample_interval=args.sample_interval)
        )
        result = _profile_single(args, config, progress, telemetry, cache)
        print(render_run_stats(result))
        payload["stats"] = _stats_payload(result, telemetry)

    if args.command == "trace":
        telemetry = Telemetry.from_config(
            TelemetryConfig(cpi=True, sample_interval=args.sample_interval,
                            trace_format=args.trace_format),
            trace_path=args.out,
        )
        result = _profile_single(args, config, progress, telemetry, cache)
        telemetry.close()
        print(render_run_stats(result))
        count = getattr(telemetry.sink, "event_count", None)
        suffix = f" ({count} events)" if count is not None else ""
        hint = (" — open in https://ui.perfetto.dev or chrome://tracing"
                if args.trace_format == "chrome" else "")
        print(f"\ntrace written to {args.out}{suffix}{hint}")
        payload["trace"] = {"path": str(args.out),
                            "format": args.trace_format,
                            "events": count}
        payload["stats"] = _stats_payload(result, telemetry)

    if args.command in ("table2", "figure8", "figure9", "all", "suite"):
        suite = run_suite(config, quick=args.quick, seed=args.seed,
                          progress=progress, jobs=args.jobs, cache=cache)
        payload["suite"] = suite.to_payload()
        if args.command == "suite":
            for bench in suite.benchmarks.values():
                for result in bench.results.values():
                    print(result.summary())
            print(f"\nsuite of {len(suite.benchmarks)} benchmarks in "
                  f"{suite.elapsed_seconds:.1f}s "
                  f"(mean HiDISC speedup "
                  f"{suite.mean_speedup('hidisc'):.3f})")
        if args.command in ("figure8", "all"):
            print(figure8(suite).render())
            print()
        if args.command in ("table2", "all"):
            print(table2(suite).render())
            print()
        if args.command in ("figure9", "all"):
            print(figure9(suite).render())
            print()
        compiled = {name: bench.compiled
                    for name, bench in suite.benchmarks.items()}
    else:
        compiled = None

    if args.command in ("figure10", "all"):
        fig10 = figure10(config, quick=args.quick, seed=args.seed,
                         progress=progress, compiled=compiled,
                         jobs=args.jobs, cache=cache)
        payload["figure10"] = {
            "latencies": list(fig10.latencies),
            "ipc": fig10.ipc,
        }
        print(fig10.render())

    if args.command == "all":
        print("\nTable 1: Simulation parameters")
        print(table1(config))

    if args.json:
        path = write_json(args.json, payload)
        print(f"\nraw results written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
