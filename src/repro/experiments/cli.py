"""Command-line interface: regenerate any table or figure of the paper,
or profile a single run with the telemetry subsystem.

Installed as the ``hidisc`` console script::

    hidisc table1
    hidisc figure8 --quick
    hidisc all --json results.json
    hidisc stats --quick --bench pointer --model hidisc
    hidisc trace --quick --bench pointer --out trace.json
"""

from __future__ import annotations

import argparse
import sys

from ..config import MachineConfig, TelemetryConfig
from ..telemetry import Telemetry
from ..workloads import WORKLOADS_BY_NAME, get_workload
from .figure8 import figure8
from .figure9 import figure9
from .figure10 import figure10
from .models import MODEL_ORDER
from .reporting import render_run_stats, write_json
from .runner import prepare, run_model
from .suite import run_suite
from .table1 import table1
from .table2 import table2

_COMMANDS = ("table1", "table2", "figure8", "figure9", "figure10", "all",
             "stats", "trace")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hidisc",
        description="Reproduce the evaluation of 'HiDISC: A Decoupled "
                    "Architecture for Data-Intensive Applications' "
                    "(IPDPS 2003).",
    )
    parser.add_argument("command", choices=_COMMANDS,
                        help="which table/figure to regenerate, or "
                             "'stats'/'trace' to profile one run")
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down inputs (seconds instead of minutes)")
    parser.add_argument("--seed", type=int, default=2003,
                        help="workload generator seed (default 2003)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also dump raw results as JSON")
    parser.add_argument("--no-progress", action="store_true",
                        help="suppress progress messages on stderr")
    profiling = parser.add_argument_group(
        "stats/trace options", "single-run telemetry (repro.telemetry)")
    profiling.add_argument("--bench", default="pointer",
                           choices=sorted(WORKLOADS_BY_NAME),
                           help="benchmark to profile (default pointer)")
    profiling.add_argument("--model", default="hidisc", choices=MODEL_ORDER,
                           help="machine model to profile (default hidisc)")
    profiling.add_argument("--out", metavar="PATH", default="hidisc_trace.json",
                           help="trace output file (default hidisc_trace.json)")
    profiling.add_argument("--format", dest="trace_format", default="chrome",
                           choices=("chrome", "jsonl"),
                           help="trace file format: Chrome/Perfetto "
                                "trace_event JSON or JSONL (default chrome)")
    profiling.add_argument("--sample-interval", type=_non_negative,
                           default=128, metavar="CYCLES",
                           help="occupancy sampling period in cycles, "
                                "0 disables (default 128)")
    return parser


def _non_negative(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _profile_single(args, config: MachineConfig, progress,
                    telemetry: Telemetry):
    """Shared stats/trace path: compile one benchmark, run one model."""
    workload = get_workload(args.bench, quick=args.quick, seed=args.seed)
    if progress:
        progress(f"preparing {workload.name} ...")
    compiled = prepare(workload, config)
    if progress:
        progress(f"  compiled in {compiled.prepare_seconds:.1f}s "
                 f"({compiled.work} dynamic instructions); "
                 f"simulating {args.model} ...")
    return run_model(compiled, config, args.model, telemetry=telemetry)


def _stats_payload(result, telemetry: Telemetry) -> dict:
    return {
        "machine": result.machine,
        "benchmark": result.benchmark,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "work_instructions": result.work_instructions,
        "committed": dict(result.committed),
        "cpi_stacks": result.cpi_stacks,
        "lod_cycles": result.loss_of_decoupling_cycles(),
        "lod_breakdown": result.stall_breakdown(),
        "l1": result.l1.as_dict(),
        "l2": result.l2.as_dict(),
        "cmas_threads_forked": result.cmas_threads_forked,
        "cmas_threads_dropped": result.cmas_threads_dropped,
        "samples": [s.as_dict() for s in telemetry.samples],
    }


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = MachineConfig()
    progress = None if args.no_progress else (
        lambda msg: print(msg, file=sys.stderr, flush=True)
    )

    payload: dict = {}
    if args.command == "table1":
        print("Table 1: Simulation parameters")
        print(table1(config))
        payload["table1"] = [list(row) for row in config.describe()]

    if args.command == "stats":
        telemetry = Telemetry.from_config(
            TelemetryConfig(cpi=True, sample_interval=args.sample_interval)
        )
        result = _profile_single(args, config, progress, telemetry)
        print(render_run_stats(result))
        payload["stats"] = _stats_payload(result, telemetry)

    if args.command == "trace":
        telemetry = Telemetry.from_config(
            TelemetryConfig(cpi=True, sample_interval=args.sample_interval,
                            trace_format=args.trace_format),
            trace_path=args.out,
        )
        result = _profile_single(args, config, progress, telemetry)
        telemetry.close()
        print(render_run_stats(result))
        count = getattr(telemetry.sink, "event_count", None)
        suffix = f" ({count} events)" if count is not None else ""
        hint = (" — open in https://ui.perfetto.dev or chrome://tracing"
                if args.trace_format == "chrome" else "")
        print(f"\ntrace written to {args.out}{suffix}{hint}")
        payload["trace"] = {"path": str(args.out),
                            "format": args.trace_format,
                            "events": count}
        payload["stats"] = _stats_payload(result, telemetry)

    if args.command in ("table2", "figure8", "figure9", "all"):
        suite = run_suite(config, quick=args.quick, seed=args.seed,
                          progress=progress)
        payload["suite"] = suite.to_payload()
        if args.command in ("figure8", "all"):
            print(figure8(suite).render())
            print()
        if args.command in ("table2", "all"):
            print(table2(suite).render())
            print()
        if args.command in ("figure9", "all"):
            print(figure9(suite).render())
            print()
        compiled = {name: bench.compiled
                    for name, bench in suite.benchmarks.items()}
    else:
        compiled = None

    if args.command in ("figure10", "all"):
        fig10 = figure10(config, quick=args.quick, seed=args.seed,
                         progress=progress, compiled=compiled)
        payload["figure10"] = {
            "latencies": list(fig10.latencies),
            "ipc": fig10.ipc,
        }
        print(fig10.render())

    if args.command == "all":
        print("\nTable 1: Simulation parameters")
        print(table1(config))

    if args.json:
        path = write_json(args.json, payload)
        print(f"\nraw results written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
