"""Command-line interface: regenerate any table or figure of the paper.

Installed as the ``hidisc`` console script::

    hidisc table1
    hidisc figure8 --quick
    hidisc all --json results.json
"""

from __future__ import annotations

import argparse
import sys

from ..config import MachineConfig
from .figure8 import figure8
from .figure9 import figure9
from .figure10 import figure10
from .reporting import write_json
from .suite import run_suite
from .table1 import table1
from .table2 import table2

_COMMANDS = ("table1", "table2", "figure8", "figure9", "figure10", "all")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hidisc",
        description="Reproduce the evaluation of 'HiDISC: A Decoupled "
                    "Architecture for Data-Intensive Applications' "
                    "(IPDPS 2003).",
    )
    parser.add_argument("command", choices=_COMMANDS,
                        help="which table/figure to regenerate")
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down inputs (seconds instead of minutes)")
    parser.add_argument("--seed", type=int, default=2003,
                        help="workload generator seed (default 2003)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also dump raw results as JSON")
    parser.add_argument("--no-progress", action="store_true",
                        help="suppress progress messages on stderr")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = MachineConfig()
    progress = None if args.no_progress else (
        lambda msg: print(msg, file=sys.stderr, flush=True)
    )

    if args.command == "table1":
        print("Table 1: Simulation parameters")
        print(table1(config))
        return 0

    payload: dict = {}
    if args.command in ("table2", "figure8", "figure9", "all"):
        suite = run_suite(config, quick=args.quick, seed=args.seed,
                          progress=progress)
        payload["suite"] = suite.to_payload()
        if args.command in ("figure8", "all"):
            print(figure8(suite).render())
            print()
        if args.command in ("table2", "all"):
            print(table2(suite).render())
            print()
        if args.command in ("figure9", "all"):
            print(figure9(suite).render())
            print()
        compiled = {name: bench.compiled
                    for name, bench in suite.benchmarks.items()}
    else:
        compiled = None

    if args.command in ("figure10", "all"):
        fig10 = figure10(config, quick=args.quick, seed=args.seed,
                         progress=progress, compiled=compiled)
        payload["figure10"] = {
            "latencies": list(fig10.latencies),
            "ipc": fig10.ipc,
        }
        print(fig10.render())

    if args.command == "all":
        print("\nTable 1: Simulation parameters")
        print(table1(config))

    if args.json:
        path = write_json(args.json, payload)
        print(f"\nraw results written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
