"""Persistent run cache: content-addressed store for compiled workloads.

``prepare()`` is the expensive, latency-independent half of every
experiment (functional execution, HiDISC compilation, decoupled trace
generation, queue/CMAS planning).  Its output depends only on the workload
identity, the machine configuration, and the package version — so it can
be memoized on disk and shared between ``run_suite``, ``figure10``, the
single-run ``stats``/``trace`` commands, and repeated invocations.

Design:

* **Content-addressed keys.**  :func:`compile_key` hashes the workload's
  class and scalar construction parameters (name, seed, and the size
  parameters that distinguish ``--quick`` from paper-scale inputs), the
  full ``repr`` of the frozen :class:`~repro.config.MachineConfig` (so a
  changed CMAS trigger distance or latency point misses), and
  ``repro.__version__`` (so upgrades never replay stale compilations).
* **Atomic writes.**  Entries are pickled to a temporary file in the cache
  directory and ``os.replace``-d into place, so concurrent workers (the
  parallel grid runs one ``prepare`` per process) and interrupted runs can
  never publish a half-written entry.
* **Corruption tolerance.**  A load that fails to read, unpickle, or match
  its fingerprint is treated as a miss: the bad file is deleted and the
  caller recomputes.  The cache is an accelerator, never a correctness
  dependency.

The CLI exposes the store as ``hidisc cache stats`` / ``hidisc cache
clear`` and every experiment command honours ``--no-cache`` and
``--cache-dir`` (default ``$HIDISC_CACHE_DIR``, falling back to
``~/.cache/hidisc``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

from ..config import MachineConfig
from ..telemetry import metrics, spans
from ..workloads import Workload

#: Environment variable overriding the default cache directory.
CACHE_ENV = "HIDISC_CACHE_DIR"

#: Suffix of cache entry files.
ENTRY_SUFFIX = ".pkl"

#: Subdirectory of the cache root holding suite checkpoints (see
#: :mod:`repro.experiments.checkpoint`).
SUITES_DIR = "suites"

#: Subdirectory of the cache root holding the simulation service's spool
#: (job records, event streams, results, span files — see
#: :mod:`repro.service.queue`).  Defined here, beside the other cache
#: layout constants, so the cache can account the service footprint
#: without importing the service package.
SERVICE_DIR = "service"


def default_cache_dir() -> Path:
    """``$HIDISC_CACHE_DIR``, else ``$XDG_CACHE_HOME/hidisc``, else
    ``~/.cache/hidisc``."""
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "hidisc"


def workload_fingerprint(workload: Workload) -> str:
    """Deterministic identity of one workload instance.

    Covers the class and every scalar constructor attribute — which
    includes ``seed`` and the size parameters, so quick and paper-scale
    instances of the same benchmark never collide.  (Generated data arrays
    are derived deterministically from these scalars and need not be
    hashed.)
    """
    cls = type(workload)
    params = {
        key: value
        for key, value in sorted(vars(workload).items())
        if isinstance(value, (bool, int, float, str))
    }
    return f"{cls.__module__}.{cls.__qualname__}:{workload.name}:{params!r}"


def config_fingerprint(config: MachineConfig) -> str:
    """Deterministic identity of a machine configuration.

    ``MachineConfig`` is a tree of frozen dataclasses, so ``repr`` is a
    complete, stable rendering of every field (cache geometry, latencies,
    CMAS trigger distance, per-core resources, ...).
    """
    return repr(config)


def compile_key(workload: Workload, config: MachineConfig) -> str:
    """Content-addressed cache key for ``prepare(workload, config)``."""
    from .. import __version__

    text = "\x1f".join(
        ("hidisc-compile", __version__,
         workload_fingerprint(workload), config_fingerprint(config))
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class RunCache:
    """On-disk store of :class:`~repro.experiments.runner.CompiledWorkload`
    entries, keyed by :func:`compile_key`.

    Instances also count their own traffic (hits/misses/stores/corrupt
    evictions) for ``hidisc cache stats`` and tests.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{ENTRY_SUFFIX}"

    def load(self, key: str):
        """Return the cached object for *key*, or ``None`` on miss.

        Unreadable, unpicklable or wrongly-fingerprinted entries are
        deleted and reported as misses — the caller recomputes.
        """
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            metrics.inc("cache_misses")
            spans.instant("cache_miss", cat="cache", key=key[:12])
            return None
        with spans.span("cache_load", cat="cache", key=key[:12]) as span:
            try:
                obj = pickle.loads(blob)
            except Exception:
                obj = None
            if obj is None or getattr(obj, "fingerprint", None) != key:
                self.corrupt += 1
                self.misses += 1
                metrics.inc("cache_corrupt")
                metrics.inc("cache_misses")
                span.set(hit=False, corrupt=True)
                try:
                    path.unlink()
                except OSError:
                    pass
                return None
            self.hits += 1
            metrics.inc("cache_hits")
            span.set(hit=True)
        return obj

    def store(self, key: str, obj) -> None:
        """Atomically persist *obj* under *key* (write temp + rename).

        Best-effort: an unwritable cache directory degrades to a no-op
        rather than failing the experiment.
        """
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root,
                                       suffix=ENTRY_SUFFIX + ".tmp")
        except OSError:
            return
        try:
            with spans.span("cache_store", cat="cache", key=key[:12]):
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self.path_for(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        metrics.inc("cache_stores")

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """Entry files currently in the store (sorted for determinism)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob(f"*{ENTRY_SUFFIX}"))

    def suite_cells(self) -> list[Path]:
        """Checkpoint cell files under ``suites/`` (all suite keys)."""
        suites = self.root / SUITES_DIR
        if not suites.is_dir():
            return []
        return sorted(suites.rglob(f"*{ENTRY_SUFFIX}"))

    def service_files(self) -> list[Path]:
        """Files in the service spool under ``service/`` (job records,
        event streams, results, spans, worker status)."""
        service = self.root / SERVICE_DIR
        if not service.is_dir():
            return []
        return sorted(p for p in service.rglob("*") if p.is_file())

    def stats(self) -> dict:
        """Store contents + this instance's traffic counters.

        Accounts every part of the on-disk footprint: the compilation
        entries at the root, the per-cell suite checkpoints under
        ``suites/`` (which ``clear()`` also removes), and the service
        spool under ``service/`` (which ``clear()`` leaves alone — it is
        live queue state, not a cache).
        """
        entries = self.entries()
        cells = self.suite_cells()
        service = self.service_files()

        def safe_size(path: Path) -> int:
            try:
                return path.stat().st_size
            except OSError:
                return 0

        return {
            "root": str(self.root),
            "entries": len(entries),
            "total_bytes": sum(p.stat().st_size for p in entries),
            "suite_cells": len(cells),
            "suite_bytes": sum(p.stat().st_size for p in cells),
            "service_files": len(service),
            "service_bytes": sum(safe_size(p) for p in service),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }

    def clear(self) -> int:
        """Delete every entry (including suite checkpoint cells); return
        how many files were removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for cell in self.suite_cells():
            try:
                cell.unlink()
                removed += 1
            except OSError:
                pass
        suites = self.root / SUITES_DIR
        if suites.is_dir():
            for directory in sorted(suites.iterdir()):
                if directory.is_dir():
                    try:
                        directory.rmdir()
                    except OSError:
                        pass
        return removed


def prepare_cached(workload: Workload, config: MachineConfig,
                   cache: RunCache | None = None):
    """:func:`~repro.experiments.runner.prepare`, memoized through *cache*.

    ``cache=None`` means no caching (plain ``prepare``).  On a hit the
    stored :class:`CompiledWorkload` is returned with ``prepare_seconds``
    reflecting the original compilation, so reports stay meaningful.
    """
    from .runner import prepare

    if cache is None:
        return prepare(workload, config)
    key = compile_key(workload, config)
    compiled = cache.load(key)
    if compiled is not None:
        return compiled
    compiled = prepare(workload, config)
    cache.store(key, compiled)
    return compiled
