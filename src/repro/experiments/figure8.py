"""Figure 8: speed-up of each model over the baseline superscalar.

The paper plots, per benchmark, four normalised performance bars
(superscalar = 1.0, CP+AP, CP+CMP, HiDISC).  Shape targets: HiDISC best on
most benchmarks (all but Neighborhood, where CP+CMP edges it); CP+AP close
to the baseline and *below* it on Neighborhood; the CMP-bearing models
supplying most of the gain; Field gaining from decoupling but not from the
CMP.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads import WORKLOADS_BY_NAME
from .models import MODEL_LABELS, MODEL_ORDER
from .reporting import percent, render_bars, render_table
from .suite import SuiteResult


@dataclass
class Figure8:
    """Normalised performance per (benchmark, model)."""

    suite: SuiteResult

    def speedups(self) -> dict[str, dict[str, float]]:
        """benchmark -> model -> speedup over baseline."""
        out: dict[str, dict[str, float]] = {}
        for name, bench in self.suite.benchmarks.items():
            out[name] = {mode: bench.speedup(mode) for mode in MODEL_ORDER
                         if mode in bench.results}
        return out

    def best_model(self, benchmark: str) -> str:
        bench = self.suite.benchmarks[benchmark]
        return max(bench.results, key=lambda m: bench.speedup(m))

    def render(self) -> str:
        rows = []
        data = self.speedups()
        for name, by_model in data.items():
            label = WORKLOADS_BY_NAME[name].label
            rows.append(
                [label] + [f"{by_model[m]:.3f}" for m in MODEL_ORDER]
                + [MODEL_LABELS[self.best_model(name)]]
            )
        mean_row = ["MEAN"] + [
            f"{self.suite.mean_speedup(m):.3f}" for m in MODEL_ORDER
        ] + [""]
        table = render_table(
            ["Benchmark"] + [MODEL_LABELS[m] for m in MODEL_ORDER] + ["Best"],
            rows + [mean_row],
        )
        bars = render_bars({
            WORKLOADS_BY_NAME[name].label: {
                MODEL_LABELS[m]: v for m, v in by_model.items()
            }
            for name, by_model in data.items()
        })
        headline = (
            f"HiDISC mean speedup: "
            f"{percent(self.suite.mean_speedup('hidisc'))} "
            f"(paper: +11.9%, upper bound +18.5% on Update)"
        )
        return "\n".join([
            "Figure 8: speed-up compared to the baseline superscalar",
            table, "", bars, "", headline,
        ])


def figure8(suite: SuiteResult) -> Figure8:
    """Build the Figure 8 view of a suite run."""
    return Figure8(suite=suite)
