"""Benchmark orchestration: compile once, simulate every model.

:func:`prepare` runs the expensive, latency-independent work for one
benchmark — functional execution (with verification against the workload's
reference), HiDISC compilation (with separation validation), decoupled
trace generation (verified again) and queue/CMAS planning.  The resulting
:class:`CompiledWorkload` can then be replayed through any machine model at
any memory-latency point with :func:`run_model`, which is what the
Figure 10 sweep exploits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..config import MachineConfig, SamplingPlan
from ..errors import SamplingError, SimulationError
from ..sim import (
    CmasPlan,
    Machine,
    QueuePlan,
    RunResult,
    build_cmas_plan,
    build_queue_plan,
    run_sampled,
)
from ..sim.functional import DecoupledFunctionalSimulator, DynInstr, FunctionalSimulator
from ..slicer import HidiscCompilation, compile_hidisc, validate_separation
from ..telemetry import Telemetry, spans
from ..workloads import Workload, check_ap_executable
from .cache import compile_key


@dataclass
class CompiledWorkload:
    """Everything latency-independent about one benchmark."""

    workload: Workload
    compilation: HidiscCompilation
    trace: list[DynInstr]
    decoupled_trace: list[DynInstr]
    queue_plan: QueuePlan
    cmas_plan_original: CmasPlan
    cmas_plan_decoupled: CmasPlan
    #: measurement-window start, per trace (trace position after which
    #: statistics count; aligned across traces at the same memory access,
    #: since memory operations are 1:1 between the two).
    warmup_pos_original: int = 0
    warmup_pos_decoupled: int = 0
    prepare_seconds: float = 0.0
    #: content-addressed identity of (workload, config, package version)
    #: this compilation was prepared under — the run-cache key (see
    #: :func:`repro.experiments.cache.compile_key`).  Consumers that replay
    #: a compilation (Figure 10) verify it to reject stale artefacts.
    fingerprint: str = ""

    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def work(self) -> int:
        """Original-program dynamic instructions inside the measurement
        window (the unit of work for IPC/speedup)."""
        return len(self.trace) - self.warmup_pos_original


def _warmup_positions(workload: Workload, program, dprogram,
                      trace: list[DynInstr],
                      dtrace: list[DynInstr]) -> tuple[int, int]:
    """Trace positions where measurement starts, aligned at the same
    memory operation in both traces."""
    fraction = workload.warmup_fraction
    if fraction <= 0.0:
        return 0, 0

    def mem_positions(text, tr):
        return [i for i, dyn in enumerate(tr) if text[dyn.pc].is_mem]

    mems = mem_positions(program.text, trace)
    dmems = mem_positions(dprogram.text, dtrace)
    if len(mems) != len(dmems):
        raise SimulationError(
            f"{workload.name}: memory-operation counts diverge between "
            f"traces ({len(mems)} vs {len(dmems)})"
        )
    if not mems:
        return 0, 0
    k = min(len(mems) - 1, int(len(mems) * fraction))
    return mems[k], dmems[k]


def prepare(workload: Workload, config: MachineConfig,
            verify: bool = True) -> CompiledWorkload:
    """Compile and functionally validate one benchmark."""
    with spans.span("prepare", cat="compile", benchmark=workload.name):
        return _prepare(workload, config, verify)


def _prepare(workload: Workload, config: MachineConfig,
             verify: bool) -> CompiledWorkload:
    start = time.perf_counter()
    program = workload.program

    trace: list[DynInstr] = []
    seq = FunctionalSimulator(program)
    seq_state = seq.run(trace=trace)
    if verify:
        workload.verify(seq_state)

    comp = compile_hidisc(program, config, trace=trace)
    validate_separation(comp.separation)
    check_ap_executable(comp.decoupled, ap_has_fp=config.ap.has_fp)

    dtrace: list[DynInstr] = []
    dec = DecoupledFunctionalSimulator(comp.decoupled)
    dec_state = dec.run(trace=dtrace)
    if verify:
        workload.verify(dec_state)
        if not dec.queues.ldq.empty or not dec.queues.sdq.empty:
            raise SimulationError(
                f"{workload.name}: queues not drained after decoupled run"
            )

    warm_orig, warm_dec = _warmup_positions(
        workload, comp.original, comp.decoupled, trace, dtrace
    )
    return CompiledWorkload(
        workload=workload,
        compilation=comp,
        trace=trace,
        decoupled_trace=dtrace,
        queue_plan=build_queue_plan(comp.decoupled, dtrace),
        cmas_plan_original=build_cmas_plan(
            comp.original, trace, config.cmas.trigger_distance
        ),
        cmas_plan_decoupled=build_cmas_plan(
            comp.decoupled, dtrace, config.cmas.trigger_distance
        ),
        warmup_pos_original=warm_orig,
        warmup_pos_decoupled=warm_dec,
        prepare_seconds=time.perf_counter() - start,
        fingerprint=compile_key(workload, config),
    )


def model_pieces(cw: CompiledWorkload, mode: str) -> dict:
    """Which program/trace/plans/warmup each machine model replays.

    The single place that knows the mode -> artefact mapping;
    :func:`build_machine` (full runs, oracle, fault campaigns) and the
    sampled path of :func:`run_model` both consume it.
    """
    comp = cw.compilation
    if mode == "superscalar":
        return dict(program=comp.original, trace=cw.trace,
                    warmup_pos=cw.warmup_pos_original)
    if mode == "cp_ap":
        return dict(program=comp.decoupled, trace=cw.decoupled_trace,
                    queue_plan=cw.queue_plan,
                    warmup_pos=cw.warmup_pos_decoupled)
    if mode == "cp_cmp":
        return dict(program=comp.original, trace=cw.trace,
                    cmas_plan=cw.cmas_plan_original,
                    warmup_pos=cw.warmup_pos_original)
    if mode == "hidisc":
        return dict(program=comp.decoupled, trace=cw.decoupled_trace,
                    queue_plan=cw.queue_plan,
                    cmas_plan=cw.cmas_plan_decoupled,
                    warmup_pos=cw.warmup_pos_decoupled)
    raise SimulationError(f"unknown model {mode!r}")


def build_machine(cw: CompiledWorkload, config: MachineConfig, mode: str,
                  telemetry: Telemetry | None = None,
                  faults=None, record_commits: bool = False) -> Machine:
    """Construct (without running) the machine for one grid cell."""
    pieces = model_pieces(cw, mode)
    program = pieces.pop("program")
    trace = pieces.pop("trace")
    return Machine(config, program, trace, mode=mode,
                   work_instructions=cw.work, benchmark=cw.name,
                   telemetry=telemetry, faults=faults,
                   record_commits=record_commits, **pieces)


def run_model(cw: CompiledWorkload, config: MachineConfig, mode: str,
              telemetry: Telemetry | None = None,
              verify: bool = False, faults=None,
              max_cycles: int | None = None,
              sampling: SamplingPlan | None = None) -> RunResult:
    """Replay one compiled benchmark through one machine model.

    ``verify=True`` runs under the co-simulation oracle
    (:func:`repro.resilience.verified_run`): commit-stream integrity plus
    the functional state diff, raising
    :class:`~repro.errors.VerificationError` on any divergence.  *faults*
    attaches a :class:`~repro.resilience.FaultInjector`; *max_cycles*
    overrides ``config.max_cycles`` for this run only.  *sampling* runs the
    cell through :func:`repro.sim.sampling.run_sampled` (extrapolated
    result, ``sampled=True``); it is mutually exclusive with *verify* and
    *faults*, which both need every cycle simulated in detail.
    """
    with spans.span("run_model", cat="simulate", benchmark=cw.name,
                    mode=mode, verify=verify, sampled=sampling is not None):
        if sampling is not None:
            if verify:
                raise SamplingError(
                    f"{cw.name}/{mode}: the co-simulation oracle needs the "
                    f"full commit stream — run --verify without --sample"
                )
            if faults is not None:
                raise SamplingError(
                    f"{cw.name}/{mode}: fault injection keys off absolute "
                    f"event ordinals, which sampling skips — fault runs "
                    f"force full-detail mode"
                )
            return run_sampled(config, sampling, mode=mode,
                               work_instructions=cw.work, benchmark=cw.name,
                               telemetry=telemetry, max_cycles=max_cycles,
                               **model_pieces(cw, mode))
        if verify:
            from ..resilience.oracle import verified_run

            return verified_run(cw, config, mode, telemetry=telemetry,
                                faults=faults, max_cycles=max_cycles)
        machine = build_machine(cw, config, mode, telemetry=telemetry,
                                faults=faults)
        return machine.run(max_cycles=max_cycles)


@dataclass
class BenchmarkResults:
    """All model results for one benchmark at one configuration."""

    compiled: CompiledWorkload
    results: dict[str, RunResult] = field(default_factory=dict)

    @property
    def baseline(self) -> RunResult:
        try:
            return self.results["superscalar"]
        except KeyError:
            raise SimulationError(
                f"{self.compiled.name}: no 'superscalar' baseline among the "
                f"simulated modes {sorted(self.results)} — speedups and "
                f"miss-rate ratios need the baseline model"
            ) from None

    def speedup(self, mode: str) -> float:
        return self.results[mode].speedup_over(self.baseline)

    def miss_ratio(self, mode: str) -> float:
        return self.results[mode].miss_rate_ratio(self.baseline)


def run_benchmark(cw: CompiledWorkload, config: MachineConfig,
                  modes: tuple[str, ...] = ("superscalar", "cp_ap",
                                            "cp_cmp", "hidisc"),
                  telemetry: Telemetry | None = None,
                  jobs: int = 1,
                  task_timeout: float | None = None,
                  verify: bool = False) -> BenchmarkResults:
    """Run *modes* on one compiled benchmark.

    ``jobs > 1`` fans the models out over worker processes; results
    assemble in *modes* order.  A caller-supplied *telemetry* object is
    process-local, so it forces serial execution (matching the serial
    path, the parallel path collects no CPI stacks unless the caller asks
    for telemetry — use :func:`repro.experiments.suite.run_suite` for
    parallel runs with stacks).
    """
    out = BenchmarkResults(compiled=cw)
    if jobs > 1 and telemetry is None and len(modes) > 1:
        from .parallel import (
            Task,
            clear_shared,
            run_model_task,
            run_tasks,
            share_compiled,
        )

        ref = share_compiled(cw)
        tasks = [Task(label=f"{cw.name}/{mode}", fn=run_model_task,
                      args=(ref, config, mode, False, verify))
                 for mode in modes]
        try:
            results = run_tasks(tasks, jobs=jobs, timeout=task_timeout)
        finally:
            clear_shared()
        for mode, result in zip(modes, results):
            out.results[mode] = result
        return out
    for mode in modes:
        out.results[mode] = run_model(cw, config, mode, telemetry=telemetry,
                                      verify=verify)
    return out
