"""The four architecture models of the paper's §5.3.

=================  ==========================================================
``superscalar``    baseline 8-issue out-of-order (sim-outorder equivalent)
``cp_ap``          conventional access/execute decoupled (CP + AP)
``cp_cmp``         single stream + CMAS prefetching (≈ DDMT / speculative
                   precomputation)
``hidisc``         the complete HiDISC (decoupling + prefetching)
=================  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass

#: Presentation order used in every figure.
MODEL_ORDER = ("superscalar", "cp_ap", "cp_cmp", "hidisc")

#: Figure legends as printed in the paper.
MODEL_LABELS = {
    "superscalar": "Superscalar",
    "cp_ap": "CP+AP",
    "cp_cmp": "CP+CMP",
    "hidisc": "HiDISC",
}

#: Table 2 rows ("Characteristic" column).
MODEL_CHARACTERISTICS = {
    "cp_ap": "Access/execute decoupling",
    "cp_cmp": "Cache prefetching",
    "hidisc": "Decoupling and prefetching",
}


def sampling_label(result) -> str:
    """Render a :class:`~repro.sim.RunResult`'s sampling provenance.

    Full-detail runs render as ``"full"``; sampled runs name the interval
    count and the measured 95% confidence interval so tables and ledger
    records can distinguish an exact number from an extrapolated one.
    """
    if not getattr(result, "sampled", False):
        return "full"
    meta = result.sampling or {}
    if meta.get("exact"):
        reason = ("variance degraded to full detail"
                  if meta.get("refinements") else "region fits one interval")
        return f"sampled (exact: {reason})"
    ci = meta.get("cycles_rel_ci95", 0.0)
    return (f"sampled ({meta.get('intervals', '?')} intervals, "
            f"±{100.0 * ci:.2f}% CI95)")


@dataclass(frozen=True)
class PaperNumbers:
    """The paper's reported values, for paper-vs-measured reporting."""

    #: Table 2 average speedups over the baseline.
    table2_speedup = {"cp_ap": 1.013, "cp_cmp": 1.107, "hidisc": 1.119}
    #: §5.3 headline: average cache-miss elimination.
    mean_miss_reduction = 0.171
    #: §5.3: best-case numbers.
    best_speedup = ("update", 1.185)
    best_miss_reduction = ("transitive", 0.267)
    #: Figure 10 degradation from shortest to longest latency.
    figure10_degradation = {
        ("pointer", "hidisc"): 0.018,
        ("pointer", "superscalar"): 0.203,
        ("neighborhood", "hidisc"): 0.048,
        ("neighborhood", "superscalar"): 0.139,
    }


PAPER = PaperNumbers()
