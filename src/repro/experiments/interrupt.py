"""Graceful SIGINT/SIGTERM handling for long experiment runs.

A full-scale suite is hours of simulation.  Before this module, an
interrupt killed the process wherever it happened to be — possibly
mid-``pickle.dump`` of a checkpoint cell or mid-append of a ledger record.
:class:`GracefulInterrupt` turns the *first* signal into a deferred stop:
the handler only sets a flag, and the experiment loops call :func:`poll`
at cell boundaries, which raises :class:`~repro.errors.InterruptedRun`
at the next safe point.  Completed cells are already checkpointed
(:mod:`repro.experiments.checkpoint`), so the CLI can append a ledger
record with ``outcome: "interrupted"`` and exit cleanly; ``--resume``
continues from exactly where the run stopped.  A *second* signal aborts
hard (the default handler is restored and re-raised), so a wedged run can
still be killed.

The service worker processes (:mod:`repro.service.worker`) reuse the same
context manager for their drain path: SIGTERM → finish the in-flight
cell → checkpoint → requeue the job → exit 0.

Signal handlers are process-global and only installable from the main
thread; :class:`GracefulInterrupt` degrades to an inert no-op anywhere
else (worker threads, embedded callers), so library code can call
:func:`poll` unconditionally.
"""

from __future__ import annotations

import signal
import sys
import threading

from ..errors import InterruptedRun

#: The innermost active handler (process-global, like signal disposition).
_current: "GracefulInterrupt | None" = None

#: Signals a graceful handler intercepts.
_SIGNALS = (signal.SIGINT, signal.SIGTERM)


class GracefulInterrupt:
    """Context manager deferring SIGINT/SIGTERM to the next :func:`poll`.

    ``enabled=False`` (or entering from a non-main thread) makes the
    context a no-op, so callers can wrap code unconditionally.  *stream*
    receives the one-line "stopping at the next cell" note (default
    ``sys.stderr``).
    """

    def __init__(self, enabled: bool = True, stream=None) -> None:
        self.enabled = enabled
        self.stream = stream if stream is not None else sys.stderr
        #: name of the first signal seen ("SIGINT"/"SIGTERM"), or None.
        self.triggered: str | None = None
        self._previous: dict[int, object] = {}
        self._installed = False

    # ------------------------------------------------------------------
    def _handle(self, signum, frame) -> None:
        name = signal.Signals(signum).name
        if self.triggered is not None:
            # Second signal: abort hard through the original disposition.
            self._restore()
            raise KeyboardInterrupt(name)
        self.triggered = name
        try:
            self.stream.write(
                f"\n{name} received — finishing the in-flight cell, "
                f"checkpointing, and stopping (signal again to abort "
                f"hard)\n"
            )
            self.stream.flush()
        except (OSError, ValueError):
            pass

    def poll(self) -> None:
        """Raise :class:`InterruptedRun` if a signal has been seen."""
        if self.triggered is not None:
            raise InterruptedRun(self.triggered)

    # ------------------------------------------------------------------
    def __enter__(self) -> "GracefulInterrupt":
        global _current
        if not self.enabled or \
                threading.current_thread() is not threading.main_thread():
            return self
        for signum in _SIGNALS:
            self._previous[signum] = signal.getsignal(signum)
            signal.signal(signum, self._handle)
        self._installed = True
        _current = self
        return self

    def _restore(self) -> None:
        global _current
        if not self._installed:
            return
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError, TypeError):
                pass
        self._installed = False
        if _current is self:
            _current = None

    def __exit__(self, *exc) -> None:
        self._restore()


def current() -> GracefulInterrupt | None:
    """The active graceful-interrupt context, if any."""
    return _current


def poll() -> None:
    """Raise :class:`InterruptedRun` if the active context saw a signal.

    Safe to call from anywhere — a no-op when no graceful handler is
    installed, so library loops need no conditional.
    """
    if _current is not None:
        _current.poll()
