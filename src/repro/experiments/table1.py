"""Table 1: simulation parameters.

The table is generated from the live :class:`~repro.config.MachineConfig`
defaults, so it can never drift from what the simulator actually uses.
"""

from __future__ import annotations

from ..config import MachineConfig
from .reporting import render_table


def table1(config: MachineConfig | None = None) -> str:
    """Render Table 1 for *config* (defaults reproduce the paper)."""
    config = config if config is not None else MachineConfig()
    return render_table(["Parameter", "Value"], config.describe())


def main() -> None:  # pragma: no cover - thin CLI shim
    print("Table 1: Simulation parameters")
    print(table1())
