"""Rendering helpers: ASCII tables, bar charts, JSON export.

The harness prints the same rows/series the paper's figures plot; the bar
renderer gives a terminal-friendly visual of Figures 8 and 9.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from pathlib import Path

from ..telemetry.cpi import render_cpi_stacks  # noqa: F401  (re-export)
from ..utils import format_table


def render_bars(series: Mapping[str, Mapping[str, float]],
                value_format: str = "{:5.3f}",
                width: int = 40,
                baseline: float = 1.0) -> str:
    """Grouped horizontal bar chart.

    *series* maps group label (benchmark) -> {bar label (model): value}.
    Bars are scaled to the global maximum; a ``|`` marks the baseline.
    """
    all_values = [v for bars in series.values() for v in bars.values()]
    if not all_values:
        return "(no data)"
    peak = max(max(all_values), baseline)
    lines: list[str] = []
    for group, bars in series.items():
        lines.append(f"{group}")
        for label, value in bars.items():
            filled = int(round(width * value / peak))
            mark = int(round(width * baseline / peak))
            bar = ""
            for i in range(width):
                if i < filled:
                    bar += "#"
                elif i == mark:
                    bar += "|"
                else:
                    bar += " "
            lines.append(f"  {label:<12s} {value_format.format(value)} {bar}")
    return "\n".join(lines)


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """ASCII table (thin wrapper, re-exported for the figure modules)."""
    return format_table(headers, rows)


def write_json(path: str | Path, payload: object) -> Path:
    """Serialise *payload* (nested dicts/lists/floats) to *path*."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def percent(value: float) -> str:
    """Format a ratio as a signed percentage ('+11.9%')."""
    return f"{(value - 1.0) * 100:+.1f}%"


def render_run_stats(result) -> str:
    """Full text report of one run: summary, CPI stack, LoD breakdown.

    *result* is a :class:`repro.sim.RunResult`; the CPI-stack table is
    rendered when the run was telemetry-enabled.
    """
    lines = [result.summary().strip(), ""]
    if result.cpi_stacks:
        lines.append(f"CPI stack ({result.cycles} cycles/core; "
                     "components sum to cycles):")
        lines.append(render_cpi_stacks(result.cpi_stacks, result.cycles))
        lines.append("")
    breakdown = result.stall_breakdown()
    if any(any(v for v in per_core.values())
           for per_core in breakdown.values()):
        rows = [
            [core, c["ldq_empty"], c["sdq_empty"], c["queue_full"]]
            for core, c in breakdown.items()
        ]
        lines.append("Loss-of-decoupling stalls (cycles at retirement):")
        lines.append(format_table(
            ["core", "ldq_empty", "sdq_empty", "queue_full"], rows))
    return "\n".join(lines)
