"""Rendering helpers: ASCII tables, bar charts, JSON export.

The harness prints the same rows/series the paper's figures plot; the bar
renderer gives a terminal-friendly visual of Figures 8 and 9.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from pathlib import Path

from ..utils import format_table


def render_bars(series: Mapping[str, Mapping[str, float]],
                value_format: str = "{:5.3f}",
                width: int = 40,
                baseline: float = 1.0) -> str:
    """Grouped horizontal bar chart.

    *series* maps group label (benchmark) -> {bar label (model): value}.
    Bars are scaled to the global maximum; a ``|`` marks the baseline.
    """
    all_values = [v for bars in series.values() for v in bars.values()]
    if not all_values:
        return "(no data)"
    peak = max(max(all_values), baseline)
    lines: list[str] = []
    for group, bars in series.items():
        lines.append(f"{group}")
        for label, value in bars.items():
            filled = int(round(width * value / peak))
            mark = int(round(width * baseline / peak))
            bar = ""
            for i in range(width):
                if i < filled:
                    bar += "#"
                elif i == mark:
                    bar += "|"
                else:
                    bar += " "
            lines.append(f"  {label:<12s} {value_format.format(value)} {bar}")
    return "\n".join(lines)


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """ASCII table (thin wrapper, re-exported for the figure modules)."""
    return format_table(headers, rows)


def write_json(path: str | Path, payload: object) -> Path:
    """Serialise *payload* (nested dicts/lists/floats) to *path*."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def percent(value: float) -> str:
    """Format a ratio as a signed percentage ('+11.9%')."""
    return f"{(value - 1.0) * 100:+.1f}%"
