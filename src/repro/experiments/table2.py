"""Table 2: average speed-up of the three HiDISC-family models.

Paper values: CP+AP 1.3%, CP+CMP 10.7%, HiDISC 11.9%.  The shape to hold:
decoupling alone contributes little, prefetching supplies most of the
gain, and the full HiDISC is best.
"""

from __future__ import annotations

from dataclasses import dataclass

from .models import MODEL_CHARACTERISTICS, MODEL_LABELS, PAPER
from .reporting import percent, render_table
from .suite import SuiteResult


@dataclass
class Table2:
    """Mean speedups per model."""

    suite: SuiteResult

    def means(self) -> dict[str, float]:
        return {
            mode: self.suite.mean_speedup(mode)
            for mode in ("cp_ap", "cp_cmp", "hidisc")
        }

    def ordering_holds(self) -> bool:
        """The paper's ordering: CP+AP << CP+CMP <= HiDISC."""
        m = self.means()
        return m["cp_ap"] < m["cp_cmp"] and m["cp_cmp"] <= m["hidisc"] * 1.02

    def render(self) -> str:
        rows = []
        for mode, mean in self.means().items():
            rows.append([
                MODEL_LABELS[mode],
                MODEL_CHARACTERISTICS[mode],
                percent(mean),
                percent(PAPER.table2_speedup[mode]),
            ])
        table = render_table(
            ["Configuration", "Characteristic", "Speed-up (measured)",
             "Speed-up (paper)"],
            rows,
        )
        return "\n".join([
            "Table 2: average speed-up of the three architecture models",
            table,
        ])


def table2(suite: SuiteResult) -> Table2:
    """Build the Table 2 view of a suite run."""
    return Table2(suite=suite)
