"""Process-pool execution of the experiment grid.

Every cell of the paper's evaluation is independent once ``prepare()`` has
run: the 7-benchmark x 4-model suite grid and the Figure-10
(2 benchmark x 4 latency x 4 model) sweep are embarrassingly parallel.
This module provides the fan-out machinery the suite and Figure 10 build
on:

* :func:`run_tasks` — submit a list of picklable :class:`Task`\\ s to a
  ``ProcessPoolExecutor`` and return their results **in task order**
  (deterministic grid assembly regardless of completion order), with an
  optional per-task timeout, **bounded retry with exponential backoff**
  for pool-infrastructure failures (a worker killed by the OS, a task
  timeout: the pool is rebuilt and only the unfinished cells resubmitted,
  up to *retries* times), and automatic **serial in-process fallback**
  once retries are exhausted — so a flaky pool can slow a run down but
  never fail or corrupt it.  Genuine simulation errors raised by a task
  are *not* swallowed — they propagate immediately, exactly as in serial
  execution (deterministic failures fail fast; only infrastructure
  failures retry).  An *on_result* callback sees each ``(index, result)``
  the moment it lands, which is how the suite checkpoints every completed
  grid cell before the next one runs.
* :func:`prepare_task` / :func:`run_model_task` — the module-level worker
  entry points.  Each worker constructs its own
  :class:`~repro.telemetry.Telemetry` (CPI stacks travel back inside the
  returned :class:`~repro.sim.RunResult`), and cache stores are atomic,
  so concurrent workers preparing the same benchmark race benignly.

Telemetry objects carrying sinks or samplers are process-local and not
shared with workers; callers that pass a custom telemetry instance run
serially (see :func:`repro.experiments.suite.run_suite`).
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..config import MachineConfig
from ..errors import ConfigError
from ..telemetry import metrics, spans
from ..workloads import Workload
from . import interrupt

ProgressFn = Callable[[str], None]

#: Slot marker for "not computed yet" (``None`` is a legal task result).
_UNSET = object()

#: Parent-side registry of compiled workloads, inherited by forked pool
#: workers.  Shipping a ``CompiledWorkload`` (multi-megabyte traces) to a
#: worker per grid cell would make the quick grid IPC-bound; with the
#: ``fork`` start method the children see this dict for free, so tasks
#: carry only a string key.  On platforms without ``fork`` the object
#: itself is passed (see :func:`share_compiled`).
_SHARED_COMPILED: dict[str, object] = {}


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods() and \
        multiprocessing.get_start_method(allow_none=True) in (None, "fork")


def share_compiled(compiled) -> object:
    """Return a task-argument reference for *compiled*.

    With a fork-based pool, registers the object in the parent and
    returns its key (workers inherit the registry at fork time — register
    **before** :func:`run_tasks` submits anything).  Otherwise returns the
    object itself, to be pickled per task.
    """
    if not _fork_available():
        return compiled
    key = compiled.fingerprint or f"anon-{id(compiled):x}"
    _SHARED_COMPILED[key] = compiled
    return key


def _resolve_compiled(ref):
    return _SHARED_COMPILED[ref] if isinstance(ref, str) else ref


def clear_shared() -> None:
    """Drop the shared-compiled registry (call after the grid is done, so
    long-lived processes don't accumulate traces)."""
    _SHARED_COMPILED.clear()


@dataclass(frozen=True)
class Task:
    """One unit of grid work: a picklable callable plus its arguments."""

    label: str
    fn: Callable
    args: tuple


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all CPUs."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    return jobs


# ----------------------------------------------------------------------
# Worker entry points (module-level so they pickle).

def _observed(fn):
    """Bracket a worker entry point with a per-task span tracer and
    metrics scope (:func:`repro.telemetry.spans.begin_worker_task`), so
    the task's observations ship back to the parent as ``host_spans`` /
    ``host_metrics`` attributes on the result and re-merge onto the
    orchestrator's timeline (see :func:`_absorb_observations`).

    When orchestration tracing is off (the default) the bracket resolves
    to ``None`` immediately and the task runs exactly as before.
    """
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        tracer = spans.begin_worker_task()
        if tracer is None:
            return fn(*args, **kwargs)
        scope = metrics.push_scope()
        try:
            with tracer.span(fn.__name__, cat="pool"):
                result = fn(*args, **kwargs)
        finally:
            metrics.record_peak_rss()
            snap = metrics.pop_scope(scope)
            records = spans.end_worker_task(tracer)
        try:
            result.host_spans = [r.as_dict() for r in records]
            result.host_metrics = snap
        except AttributeError:
            pass
        return result
    return wrapper


def _absorb_observations(result, submitted_ns: int | None = None) -> None:
    """Merge a worker result's shipped spans/metrics into this process.

    Strips the transport attributes afterwards, so checkpointed cells
    pickle clean and a resumed suite can never double-count a task's
    observations.  *submitted_ns* (the parent-side ``time.time_ns`` at
    submission) turns the gap to the worker's first span into the
    ``queue_to_pool_seconds`` histogram.
    """
    snap = getattr(result, "host_metrics", None)
    if snap is not None:
        metrics.merge(snap)
        try:
            del result.host_metrics
        except AttributeError:
            pass
    shipped = getattr(result, "host_spans", None)
    if shipped is None:
        return
    records = [spans.SpanRecord(**d) for d in shipped]
    tracer = spans.current()
    if tracer is not None:
        tracer.adopt(records)
    if submitted_ns is not None and records:
        wait = (min(r.t0_ns for r in records) - submitted_ns) / 1e9
        if wait >= 0:
            metrics.observe("queue_to_pool_seconds", wait)
    try:
        del result.host_spans
    except AttributeError:
        pass


@_observed
def prepare_task(workload: Workload, config: MachineConfig,
                 cache_dir: str | None):
    """Worker: compile one benchmark, reading/writing the cache if given."""
    from .cache import RunCache, prepare_cached

    cache = RunCache(cache_dir) if cache_dir is not None else None
    return prepare_cached(workload, config, cache)


@_observed
def run_model_task(compiled, config: MachineConfig, mode: str, cpi: bool,
                   verify: bool = False, sampling=None):
    """Worker: replay one compiled benchmark through one machine model.

    *compiled* is a :class:`CompiledWorkload` or a :func:`share_compiled`
    key resolved against the fork-inherited registry.  A fresh
    :class:`Telemetry` is built in-process when CPI stacks are requested;
    the stacks return inside the :class:`RunResult`.  ``verify=True``
    referees the run with the co-simulation oracle (see
    :func:`repro.resilience.verified_run`).
    """
    from ..telemetry import Telemetry
    from .runner import run_model

    telemetry = Telemetry(cpi=True) if cpi else None
    return run_model(_resolve_compiled(compiled), config, mode,
                     telemetry=telemetry, verify=verify, sampling=sampling)


# ----------------------------------------------------------------------

def _run_inline(task: Task, progress: ProgressFn | None) -> object:
    result = task.fn(*task.args)
    if progress:
        progress(f"  {task.label}: done")
    return result


def _run_pool_round(tasks: Sequence[Task], pending: Sequence[int],
                    jobs: int, timeout: float | None,
                    progress: ProgressFn | None,
                    deliver: Callable[[int, object], None],
                    submitted: dict[int, int] | None = None) -> bool:
    """One process-pool attempt over the *pending* task indices.

    Delivers every result that lands (including salvage of
    already-finished futures after a failure).  Returns True if the pool
    infrastructure broke (worker death, timeout) and some tasks remain
    undone; task-raised exceptions propagate unchanged.  *submitted*
    (if given) records each index's submission wall-stamp for
    queue-latency accounting.
    """
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
    broken = False
    try:
        futures: dict[int, object] = {}
        for index in pending:
            if submitted is not None:
                submitted[index] = time.time_ns()
            futures[index] = pool.submit(tasks[index].fn,
                                         *tasks[index].args)
        for index, future in futures.items():
            # A graceful interrupt stops between results: everything
            # delivered so far is checkpointed by on_result; undelivered
            # futures are cancelled by the shutdown below.
            interrupt.poll()
            try:
                result = future.result(timeout=timeout)
            except (BrokenProcessPool, FuturesTimeoutError, OSError) as exc:
                broken = True
                metrics.inc("pool_worker_failures")
                spans.instant("worker_failure", cat="pool",
                              task=tasks[index].label,
                              error=type(exc).__name__)
                if progress:
                    progress(
                        f"  {tasks[index].label}: worker failed "
                        f"({type(exc).__name__})"
                    )
                break
            deliver(index, result)
            if progress:
                progress(f"  {tasks[index].label}: done")
        if broken:
            # Salvage whatever already finished; cancel the rest.
            for index, future in futures.items():
                if future.done() and not future.cancelled():
                    try:
                        deliver(index, future.result(timeout=0))
                    except (BrokenProcessPool, FuturesTimeoutError,
                            OSError):
                        pass
                else:
                    future.cancel()
    finally:
        pool.shutdown(wait=not broken, cancel_futures=True)
    return broken


def run_tasks(tasks: Sequence[Task] | Iterable[Task], jobs: int = 1,
              timeout: float | None = None,
              progress: ProgressFn | None = None,
              retries: int = 1, backoff: float = 0.25,
              on_result: Callable[[int, object], None] | None = None) -> list:
    """Run *tasks* and return their results in task order.

    ``jobs <= 1`` (after :func:`resolve_jobs`) executes inline.  Otherwise
    tasks are fanned out on a ``ProcessPoolExecutor``; *timeout* bounds
    each task's wall-clock wait in seconds.

    Pool-infrastructure failures (worker crash, timeout) are **transient**:
    already-finished results are salvaged, the pool is rebuilt and only
    the unfinished cells are resubmitted, up to *retries* times with
    exponential backoff (``backoff * 2**attempt`` seconds); when retries
    are exhausted the remaining cells run serially in-process.  Exceptions
    raised *by a task itself* are **deterministic** and propagate
    immediately — a failing simulation is never retried.

    *on_result* (if given) is called with ``(task_index, result)`` as each
    result lands — delivery order is completion order, exactly once per
    task — so callers can checkpoint incrementally.
    """
    tasks = list(tasks)
    jobs = min(resolve_jobs(jobs), len(tasks))
    results: list = [_UNSET] * len(tasks)
    #: per-index submission wall-stamp, for queue_to_pool_seconds.
    submitted: dict[int, int] = {}

    def deliver(index: int, value) -> None:
        if results[index] is _UNSET:
            _absorb_observations(value, submitted.get(index))
            if on_result is not None:
                on_result(index, value)
        results[index] = value

    with spans.span("run_tasks", cat="pool", tasks=len(tasks), jobs=jobs):
        if jobs <= 1:
            for index, task in enumerate(tasks):
                interrupt.poll()
                deliver(index, _run_inline(task, progress))
            return results

        attempt = 0
        while True:
            pending = [i for i in range(len(tasks))
                       if results[i] is _UNSET]
            if not pending:
                return results
            with spans.span("pool_round", cat="pool",
                            pending=len(pending), attempt=attempt):
                broken = _run_pool_round(tasks, pending, jobs, timeout,
                                         progress, deliver, submitted)
            if not broken:
                return results
            if attempt >= retries:
                break
            delay = backoff * (2 ** attempt)
            attempt += 1
            metrics.inc("pool_retries")
            remaining = sum(1 for r in results if r is _UNSET)
            if progress:
                progress(
                    f"  rebuilding worker pool for {remaining} unfinished "
                    f"tasks (retry {attempt}/{retries}, backoff {delay:.2f}s)"
                )
            with spans.span("backoff", cat="pool", attempt=attempt,
                            delay_s=delay):
                if delay > 0:
                    time.sleep(delay)

        remaining = sum(1 for r in results if r is _UNSET)
        if remaining:
            metrics.inc("pool_fallback_tasks", remaining)
        if progress and remaining:
            progress(f"  retries exhausted; computing {remaining} remaining "
                     f"tasks serially in-process")
        with spans.span("serial_fallback", cat="pool", tasks=remaining):
            for index, task in enumerate(tasks):
                if results[index] is _UNSET:
                    interrupt.poll()
                    deliver(index, _run_inline(task, progress))
        return results


# ----------------------------------------------------------------------

def prepare_many(workloads: Sequence[Workload], config: MachineConfig,
                 jobs: int = 1, cache=None,
                 timeout: float | None = None,
                 progress: ProgressFn | None = None) -> list:
    """Compile *workloads* (in order), fanning misses out over *jobs*.

    The cache is probed in the parent first, so warm entries never touch
    the pool (and a fully warm run performs zero ``prepare()`` calls);
    only the misses are submitted as worker tasks, which store their
    results back into the cache as they finish.
    """
    from .cache import compile_key

    compiled: list = [None] * len(workloads)
    miss_indices: list[int] = []
    for index, workload in enumerate(workloads):
        entry = cache.load(compile_key(workload, config)) \
            if cache is not None else None
        if entry is not None:
            if progress:
                progress(f"  prepare {workload.name}: cached")
            compiled[index] = entry
        else:
            miss_indices.append(index)

    if miss_indices:
        cache_dir = str(cache.root) if cache is not None else None
        tasks = [
            Task(label=f"prepare {workloads[i].name}", fn=prepare_task,
                 args=(workloads[i], config, cache_dir))
            for i in miss_indices
        ]
        fresh = run_tasks(tasks, jobs=jobs, timeout=timeout,
                          progress=progress)
        for index, cw in zip(miss_indices, fresh):
            compiled[index] = cw
    return compiled
