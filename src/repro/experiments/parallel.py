"""Process-pool execution of the experiment grid.

Every cell of the paper's evaluation is independent once ``prepare()`` has
run: the 7-benchmark x 4-model suite grid and the Figure-10
(2 benchmark x 4 latency x 4 model) sweep are embarrassingly parallel.
This module provides the fan-out machinery the suite and Figure 10 build
on:

* :func:`run_tasks` — submit a list of picklable :class:`Task`\\ s to a
  ``ProcessPoolExecutor`` and return their results **in task order**
  (deterministic grid assembly regardless of completion order), with an
  optional per-task timeout and automatic **serial in-process fallback**:
  if a worker process dies (``BrokenProcessPool``) or a task times out,
  already-finished results are salvaged and every unfinished cell is
  recomputed in the parent, so a flaky pool can slow a run down but never
  fail or corrupt it.  Genuine simulation errors raised by a task are
  *not* swallowed — they propagate exactly as in serial execution.
* :func:`prepare_task` / :func:`run_model_task` — the module-level worker
  entry points.  Each worker constructs its own
  :class:`~repro.telemetry.Telemetry` (CPI stacks travel back inside the
  returned :class:`~repro.sim.RunResult`), and cache stores are atomic,
  so concurrent workers preparing the same benchmark race benignly.

Telemetry objects carrying sinks or samplers are process-local and not
shared with workers; callers that pass a custom telemetry instance run
serially (see :func:`repro.experiments.suite.run_suite`).
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..config import MachineConfig
from ..errors import ConfigError
from ..workloads import Workload

ProgressFn = Callable[[str], None]

#: Slot marker for "not computed yet" (``None`` is a legal task result).
_UNSET = object()

#: Parent-side registry of compiled workloads, inherited by forked pool
#: workers.  Shipping a ``CompiledWorkload`` (multi-megabyte traces) to a
#: worker per grid cell would make the quick grid IPC-bound; with the
#: ``fork`` start method the children see this dict for free, so tasks
#: carry only a string key.  On platforms without ``fork`` the object
#: itself is passed (see :func:`share_compiled`).
_SHARED_COMPILED: dict[str, object] = {}


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods() and \
        multiprocessing.get_start_method(allow_none=True) in (None, "fork")


def share_compiled(compiled) -> object:
    """Return a task-argument reference for *compiled*.

    With a fork-based pool, registers the object in the parent and
    returns its key (workers inherit the registry at fork time — register
    **before** :func:`run_tasks` submits anything).  Otherwise returns the
    object itself, to be pickled per task.
    """
    if not _fork_available():
        return compiled
    key = compiled.fingerprint or f"anon-{id(compiled):x}"
    _SHARED_COMPILED[key] = compiled
    return key


def _resolve_compiled(ref):
    return _SHARED_COMPILED[ref] if isinstance(ref, str) else ref


def clear_shared() -> None:
    """Drop the shared-compiled registry (call after the grid is done, so
    long-lived processes don't accumulate traces)."""
    _SHARED_COMPILED.clear()


@dataclass(frozen=True)
class Task:
    """One unit of grid work: a picklable callable plus its arguments."""

    label: str
    fn: Callable
    args: tuple


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all CPUs."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    return jobs


# ----------------------------------------------------------------------
# Worker entry points (module-level so they pickle).

def prepare_task(workload: Workload, config: MachineConfig,
                 cache_dir: str | None):
    """Worker: compile one benchmark, reading/writing the cache if given."""
    from .cache import RunCache, prepare_cached

    cache = RunCache(cache_dir) if cache_dir is not None else None
    return prepare_cached(workload, config, cache)


def run_model_task(compiled, config: MachineConfig, mode: str, cpi: bool):
    """Worker: replay one compiled benchmark through one machine model.

    *compiled* is a :class:`CompiledWorkload` or a :func:`share_compiled`
    key resolved against the fork-inherited registry.  A fresh
    :class:`Telemetry` is built in-process when CPI stacks are requested;
    the stacks return inside the :class:`RunResult`.
    """
    from ..telemetry import Telemetry
    from .runner import run_model

    telemetry = Telemetry(cpi=True) if cpi else None
    return run_model(_resolve_compiled(compiled), config, mode,
                     telemetry=telemetry)


# ----------------------------------------------------------------------

def _run_inline(task: Task, progress: ProgressFn | None) -> object:
    result = task.fn(*task.args)
    if progress:
        progress(f"  {task.label}: done")
    return result


def run_tasks(tasks: Sequence[Task] | Iterable[Task], jobs: int = 1,
              timeout: float | None = None,
              progress: ProgressFn | None = None) -> list:
    """Run *tasks* and return their results in task order.

    ``jobs <= 1`` (after :func:`resolve_jobs`) executes inline.  Otherwise
    tasks are fanned out on a ``ProcessPoolExecutor``; *timeout* bounds
    each task's wall-clock wait in seconds.  Pool-infrastructure failures
    (worker crash, timeout) trigger the serial fallback for every cell
    that has no result yet; exceptions raised *by the task itself*
    propagate unchanged.
    """
    tasks = list(tasks)
    jobs = min(resolve_jobs(jobs), len(tasks))
    if jobs <= 1:
        return [_run_inline(task, progress) for task in tasks]

    results: list = [_UNSET] * len(tasks)
    pool = ProcessPoolExecutor(max_workers=jobs)
    broken = False
    try:
        futures = [pool.submit(task.fn, *task.args) for task in tasks]
        for index, (task, future) in enumerate(zip(tasks, futures)):
            try:
                results[index] = future.result(timeout=timeout)
            except (BrokenProcessPool, FuturesTimeoutError, OSError) as exc:
                broken = True
                if progress:
                    progress(
                        f"  {task.label}: worker failed "
                        f"({type(exc).__name__}); falling back to serial "
                        f"in-process execution"
                    )
                break
            else:
                if progress:
                    progress(f"  {task.label}: done")
        if broken:
            # Salvage whatever already finished; cancel the rest.
            for index, future in enumerate(futures):
                if results[index] is _UNSET and future.done():
                    try:
                        results[index] = future.result(timeout=0)
                    except (BrokenProcessPool, FuturesTimeoutError,
                            OSError):
                        pass
                else:
                    future.cancel()
    finally:
        pool.shutdown(wait=not broken, cancel_futures=True)

    for index, task in enumerate(tasks):
        if results[index] is _UNSET:
            results[index] = _run_inline(task, progress)
    return results


# ----------------------------------------------------------------------

def prepare_many(workloads: Sequence[Workload], config: MachineConfig,
                 jobs: int = 1, cache=None,
                 timeout: float | None = None,
                 progress: ProgressFn | None = None) -> list:
    """Compile *workloads* (in order), fanning misses out over *jobs*.

    The cache is probed in the parent first, so warm entries never touch
    the pool (and a fully warm run performs zero ``prepare()`` calls);
    only the misses are submitted as worker tasks, which store their
    results back into the cache as they finish.
    """
    from .cache import compile_key

    compiled: list = [None] * len(workloads)
    miss_indices: list[int] = []
    for index, workload in enumerate(workloads):
        entry = cache.load(compile_key(workload, config)) \
            if cache is not None else None
        if entry is not None:
            if progress:
                progress(f"  prepare {workload.name}: cached")
            compiled[index] = entry
        else:
            miss_indices.append(index)

    if miss_indices:
        cache_dir = str(cache.root) if cache is not None else None
        tasks = [
            Task(label=f"prepare {workloads[i].name}", fn=prepare_task,
                 args=(workloads[i], config, cache_dir))
            for i in miss_indices
        ]
        fresh = run_tasks(tasks, jobs=jobs, timeout=timeout,
                          progress=progress)
        for index, cw in zip(miss_indices, fresh):
            compiled[index] = cw
    return compiled
