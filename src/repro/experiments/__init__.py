"""Experiment harness: one module per table/figure of the paper.

* :mod:`repro.experiments.table1` — simulation parameters.
* :mod:`repro.experiments.figure8` — speed-up over the baseline.
* :mod:`repro.experiments.table2` — mean speed-up per model.
* :mod:`repro.experiments.figure9` — L1 miss-rate reduction.
* :mod:`repro.experiments.figure10` — IPC vs memory latency.
* :mod:`repro.experiments.cache` — persistent compilation (run) cache.
* :mod:`repro.experiments.checkpoint` — crash-resumable suite checkpoints.
* :mod:`repro.experiments.ledger` — append-only per-run ledger.
* :mod:`repro.experiments.parallel` — process-pool grid execution.
* :mod:`repro.experiments.interrupt` — graceful SIGINT/SIGTERM stops.
* :mod:`repro.experiments.cli` — the ``hidisc`` command.
"""

from .cache import RunCache, compile_key, prepare_cached
from .checkpoint import SuiteCheckpoint, suite_key
from .interrupt import GracefulInterrupt
from .ledger import RunLedger, ledger_path, locked_append, new_run_id
from .figure8 import Figure8, figure8
from .figure9 import Figure9, figure9
from .figure10 import FIGURE10_BENCHMARKS, Figure10, figure10
from .models import MODEL_LABELS, MODEL_ORDER, PAPER
from .parallel import Task, run_tasks
from .runner import (
    BenchmarkResults,
    CompiledWorkload,
    build_machine,
    model_pieces,
    prepare,
    run_benchmark,
    run_model,
)
from .suite import SuiteResult, run_suite
from .table1 import table1
from .table2 import Table2, table2

__all__ = [
    "BenchmarkResults",
    "CompiledWorkload",
    "FIGURE10_BENCHMARKS",
    "Figure10",
    "Figure8",
    "Figure9",
    "GracefulInterrupt",
    "MODEL_LABELS",
    "MODEL_ORDER",
    "PAPER",
    "RunCache",
    "RunLedger",
    "SuiteCheckpoint",
    "SuiteResult",
    "Table2",
    "Task",
    "build_machine",
    "compile_key",
    "figure10",
    "figure8",
    "figure9",
    "ledger_path",
    "locked_append",
    "model_pieces",
    "new_run_id",
    "prepare",
    "prepare_cached",
    "run_benchmark",
    "run_model",
    "run_suite",
    "run_tasks",
    "suite_key",
    "table1",
    "table2",
]
