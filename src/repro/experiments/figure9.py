"""Figure 9: reduction of the L1 demand-miss rate versus the baseline.

The paper plots, per benchmark, the cache miss rate of CP+AP, CP+CMP and
HiDISC normalised to the superscalar's (1.0 = no change; lower is better).
Shape targets: the CMP-bearing models cut misses substantially (mean
elimination around the paper's 17.1%), Transitive Closure showing the
largest cut (paper: 26.7%), and CP+AP staying near 1.0 (decoupling alone
does not change what misses).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads import WORKLOADS_BY_NAME
from .models import MODEL_LABELS, PAPER
from .reporting import render_bars, render_table
from .suite import SuiteResult

_MODES = ("cp_ap", "cp_cmp", "hidisc")


@dataclass
class Figure9:
    """Normalised L1 demand miss rates per (benchmark, model)."""

    suite: SuiteResult

    def ratios(self) -> dict[str, dict[str, float]]:
        """benchmark -> model -> miss-rate ratio vs baseline."""
        out: dict[str, dict[str, float]] = {}
        for name, bench in self.suite.benchmarks.items():
            out[name] = {
                mode: bench.miss_ratio(mode)
                for mode in _MODES if mode in bench.results
            }
        return out

    def best_reduction(self) -> tuple[str, float]:
        """(benchmark, eliminated fraction) with the largest HiDISC cut."""
        best_name, best_cut = "", 0.0
        for name, by_model in self.ratios().items():
            cut = 1.0 - by_model["hidisc"]
            if cut > best_cut:
                best_name, best_cut = name, cut
        return best_name, best_cut

    def render(self) -> str:
        data = self.ratios()
        rows = []
        for name, by_model in data.items():
            base = self.suite.benchmarks[name].baseline
            rows.append(
                [WORKLOADS_BY_NAME[name].label,
                 f"{base.l1_demand_miss_rate:.4f}"]
                + [f"{by_model[m]:.3f}" for m in _MODES]
            )
        table = render_table(
            ["Benchmark", "Baseline miss rate"]
            + [MODEL_LABELS[m] for m in _MODES],
            rows,
        )
        bars = render_bars({
            WORKLOADS_BY_NAME[name].label: {
                MODEL_LABELS[m]: v for m, v in by_model.items()
            }
            for name, by_model in data.items()
        })
        mean_cut = self.suite.mean_miss_reduction("hidisc")
        best_name, best_cut = self.best_reduction()
        headline = (
            f"HiDISC eliminates {mean_cut * 100:.1f}% of L1 demand misses on "
            f"average (paper: {PAPER.mean_miss_reduction * 100:.1f}%); best "
            f"case {best_name} at {best_cut * 100:.1f}% "
            f"(paper: Transitive Closure, 26.7%)"
        )
        return "\n".join([
            "Figure 9: L1 miss rate relative to the baseline superscalar "
            "(lower is better)",
            table, "", bars, "", headline,
        ])


def figure9(suite: SuiteResult) -> Figure9:
    """Build the Figure 9 view of a suite run."""
    return Figure9(suite=suite)
