"""Persistent run ledger: one append-only JSONL record per run.

Every experiment invocation (suite, figures, stats/trace/lifecycle,
faults) appends one line to ``<cache-dir>/ledger.jsonl`` describing what
ran and how it behaved: command and argv, config fingerprint, package
version and git commit, outcome, wall-clock, the merged metrics snapshot
(:mod:`repro.telemetry.metrics`) and — when orchestration tracing was on —
the span summary (:mod:`repro.telemetry.spans`).  ``hidisc runs
list|show|report`` renders the ledger; a future ``hidisc serve`` streams
the same records as its wire format.

Durability model mirrors the run cache's pragmatism: appends take an
exclusive ``fcntl.flock`` on the ledger file and write one
``\\n``-terminated line (see :func:`locked_append` — the simulation
service makes concurrent writers the norm, and O_APPEND alone does not
guarantee untorn lines across every filesystem), an unwritable ledger
degrades to a no-op, and unparsable lines are skipped on read — the
ledger observes runs, it is never a correctness dependency.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from datetime import datetime, timezone
from pathlib import Path

try:  # pragma: no cover - absent only on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

from ..config import MachineConfig
from .cache import config_fingerprint

#: Ledger file name under the cache directory.
LEDGER_FILENAME = "ledger.jsonl"


def ledger_path(cache_root: str | Path) -> Path:
    return Path(cache_root) / LEDGER_FILENAME


def locked_append(path: str | Path, line: str) -> bool:
    """Append one ``\\n``-terminated *line* under an exclusive flock.

    The write itself happens in append mode, so even on the (non-POSIX)
    platforms where ``fcntl`` is unavailable lines still land at the end;
    the lock additionally serializes concurrent writers so a reader can
    never observe an interleaved or torn line.  Returns False (no-op)
    when the path is unwritable — shared with the service's per-job event
    streams, which have the same many-writers/one-file shape.
    """
    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as fh:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                fh.write(line.rstrip("\n") + "\n")
                fh.flush()
            finally:
                if fcntl is not None:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
    except OSError:
        return False
    return True


def new_run_id() -> str:
    """Process-safe, time-sortable run identifier."""
    return f"{time.time_ns():x}-{os.getpid():x}"


def _git_commit() -> str | None:
    """Best-effort short commit hash of the working tree (None outside a
    repository or without git)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
        if proc.returncode == 0:
            return proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return None


def build_record(*, run_id: str, command: str, argv: list[str],
                 outcome: str, exit_code: int,
                 elapsed_seconds: float, config: MachineConfig,
                 metrics_snapshot: dict, spans_summary: dict | None = None,
                 extra: dict | None = None) -> dict:
    """Assemble one ledger record (pure; :meth:`RunLedger.append` persists)."""
    from .. import __version__

    counters = metrics_snapshot.get("counters", {})
    cells = counters.get("cells_completed", 0) + \
        counters.get("cells_resumed", 0)
    record = {
        "run_id": run_id,
        "time": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "command": command,
        "argv": list(argv),
        "version": __version__,
        "git": _git_commit(),
        "config": hashlib.sha256(
            config_fingerprint(config).encode("utf-8")).hexdigest()[:16],
        "outcome": outcome,
        "exit_code": exit_code,
        "elapsed_seconds": round(elapsed_seconds, 3),
        "cells": cells,
        "cells_per_second": round(cells / elapsed_seconds, 3)
        if elapsed_seconds > 0 else 0.0,
        "metrics": metrics_snapshot,
        "spans": spans_summary or {},
    }
    if extra:
        record.update(extra)
    return record


class RunLedger:
    """Append-only JSONL store of run records."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append(self, record: dict) -> bool:
        """Persist one record; best-effort (False when unwritable).

        Serialized against concurrent appenders (service workers, parallel
        CLI invocations sharing a cache dir) via :func:`locked_append`.
        """
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        return locked_append(self.path, line)

    def entries(self, limit: int | None = None) -> list[dict]:
        """Records in append (chronological) order, newest last.

        Unparsable lines (torn writes, manual edits) are skipped; *limit*
        keeps only the newest N.
        """
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return []
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "run_id" in record:
                records.append(record)
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return records

    def find(self, run_id_prefix: str) -> dict | None:
        """Newest record whose run_id starts with *run_id_prefix*."""
        for record in reversed(self.entries()):
            if str(record.get("run_id", "")).startswith(run_id_prefix):
                return record
        return None

    def baseline_for(self, record: dict) -> dict | None:
        """The most recent *earlier* record of the same command — the
        natural comparison point for regression reports."""
        candidates = self.entries()
        try:
            position = next(
                i for i, r in enumerate(candidates)
                if r.get("run_id") == record.get("run_id")
            )
        except StopIteration:
            position = len(candidates)
        for other in reversed(candidates[:position]):
            if other.get("command") == record.get("command"):
                return other
        return None


# ----------------------------------------------------------------------
# Rendering (hidisc runs list|show|report).

def _hit_rate(record: dict) -> float | None:
    counters = record.get("metrics", {}).get("counters", {})
    hits = counters.get("cache_hits", 0)
    misses = counters.get("cache_misses", 0)
    if hits + misses == 0:
        return None
    return hits / (hits + misses)


def render_runs_list(records: list[dict]) -> str:
    """One line per run, newest last (like a shell history)."""
    if not records:
        return "ledger is empty — run any experiment command to record one"
    header = (f"{'run id':14s} {'when (UTC)':20s} {'command':10s} "
              f"{'outcome':14s} {'elapsed':>9s} {'cells':>6s} "
              f"{'cache':>6s}")
    lines = [header, "-" * len(header)]
    for record in records:
        rate = _hit_rate(record)
        lines.append(
            f"{str(record.get('run_id', '?'))[:14]:14s} "
            f"{str(record.get('time', '?'))[:19]:20s} "
            f"{str(record.get('command', '?')):10s} "
            f"{str(record.get('outcome', '?'))[:14]:14s} "
            f"{record.get('elapsed_seconds', 0.0):8.1f}s "
            f"{record.get('cells', 0):6d} "
            + (f"{rate * 100:5.0f}%" if rate is not None else "     -")
        )
    return "\n".join(lines)


def render_run_report(record: dict) -> str:
    """Full per-run report: identity, metrics, span summary."""
    lines = [
        f"run {record.get('run_id')} — hidisc {record.get('command')} "
        f"({record.get('outcome')}, exit {record.get('exit_code')})",
        f"  at {record.get('time')}  version {record.get('version')}"
        + (f"  commit {record['git']}" if record.get("git") else "")
        + f"  config {record.get('config')}",
        f"  argv: {' '.join(record.get('argv', [])) or '(none)'}",
        f"  elapsed {record.get('elapsed_seconds', 0.0):.1f}s, "
        f"{record.get('cells', 0)} cells "
        f"({record.get('cells_per_second', 0.0):.2f} cells/s)",
    ]
    if record.get("job_id"):
        # Service-executed suites carry their job identity (see
        # repro.service.worker._append_ledger).
        lines.append(
            f"  service job {record['job_id']} on "
            f"{record.get('worker', 'unknown worker')} "
            f"(attempts {record.get('attempts', 0)}, "
            f"{record.get('cells_done', 0)} cells reported)")
    metrics_snapshot = record.get("metrics", {})
    counters = metrics_snapshot.get("counters", {})
    if counters:
        lines.append("  counters:")
        for key in sorted(counters):
            lines.append(f"    {key:32s} {counters[key]:>12g}")
    gauges = metrics_snapshot.get("gauges", {})
    for key in sorted(gauges):
        lines.append(f"  gauge {key} = {gauges[key]:g}")
    for key, hist in sorted(metrics_snapshot.get("histograms", {}).items()):
        mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
        lines.append(
            f"  histogram {key}: n={hist['count']} mean={mean:.4g} "
            f"min={hist['min']:.4g} max={hist['max']:.4g}"
        )
    span_summary = record.get("spans") or {}
    by_category = span_summary.get("by_category", {})
    if by_category:
        lines.append(f"  spans ({span_summary.get('count', 0)} records):")
        for cat in sorted(by_category):
            entry = by_category[cat]
            lines.append(f"    {cat:12s} {entry['count']:6d} spans "
                         f"{entry['ms']:10.1f} ms total")
        slowest = span_summary.get("slowest", [])
        if slowest:
            lines.append("  slowest spans:")
            for item in slowest:
                lines.append(f"    {item['name']:24s} [{item['cat']}] "
                             f"{item['ms']:10.1f} ms")
    return "\n".join(lines)


def render_regressions(record: dict, baseline: dict) -> str:
    """Compare *record* against a prior ledger entry of the same command."""

    def delta(cur: float, base: float) -> str:
        if base == 0:
            return "(new)" if cur else "(=)"
        change = (cur - base) / base * 100.0
        return f"({change:+.0f}%)"

    lines = [
        f"vs run {str(baseline.get('run_id'))[:14]} "
        f"at {str(baseline.get('time'))[:19]}:"
    ]
    cur_elapsed = record.get("elapsed_seconds", 0.0)
    base_elapsed = baseline.get("elapsed_seconds", 0.0)
    lines.append(f"  elapsed        {cur_elapsed:8.1f}s vs "
                 f"{base_elapsed:8.1f}s {delta(cur_elapsed, base_elapsed)}")
    cur_rate = record.get("cells_per_second", 0.0)
    base_rate = baseline.get("cells_per_second", 0.0)
    lines.append(f"  cells/sec      {cur_rate:8.2f}  vs "
                 f"{base_rate:8.2f}  {delta(cur_rate, base_rate)}")
    cur_hit, base_hit = _hit_rate(record), _hit_rate(baseline)
    if cur_hit is not None or base_hit is not None:
        lines.append(
            f"  cache hit-rate {100 * (cur_hit or 0.0):7.0f}%  vs "
            f"{100 * (base_hit or 0.0):7.0f}%"
        )
    cur_counters = record.get("metrics", {}).get("counters", {})
    base_counters = baseline.get("metrics", {}).get("counters", {})
    watched = ("pool_retries", "pool_fallback_tasks", "pool_worker_failures",
               "cache_corrupt", "checkpoint_corrupt")
    for key in watched:
        cur, base = cur_counters.get(key, 0), base_counters.get(key, 0)
        if cur or base:
            lines.append(f"  {key:14s} {cur:8g}  vs {base:8g}  "
                         f"{delta(cur, base)}")
    regressions = []
    if base_elapsed > 0 and cur_elapsed > base_elapsed * 1.25:
        regressions.append(
            f"elapsed {cur_elapsed:.1f}s is "
            f"{(cur_elapsed / base_elapsed - 1) * 100:.0f}% over baseline")
    if base_hit is not None and cur_hit is not None \
            and cur_hit < base_hit - 0.25:
        regressions.append(
            f"cache hit-rate fell {100 * (base_hit - cur_hit):.0f} points")
    for key in ("pool_retries", "pool_worker_failures"):
        if cur_counters.get(key, 0) > base_counters.get(key, 0):
            regressions.append(f"{key} increased")
    if regressions:
        lines.append("  REGRESSIONS: " + "; ".join(regressions))
    else:
        lines.append("  no regressions vs baseline")
    return "\n".join(lines)
