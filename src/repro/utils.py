"""Small shared helpers: fixed-width integer arithmetic and formatting.

The simulator models a 64-bit machine on top of Python's unbounded ints.
All architectural integer state is kept in *signed 64-bit canonical form*
(the unique representative in ``[-2**63, 2**63)``); these helpers perform
the wrapping that real hardware does implicitly.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Sequence

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63
_MASK32 = (1 << 32) - 1
_SIGN32 = 1 << 31

U64_MAX = _MASK64
I64_MIN = -_SIGN64
I64_MAX = _SIGN64 - 1


def to_signed64(value: int) -> int:
    """Wrap *value* to the canonical signed 64-bit representative."""
    value &= _MASK64
    return value - (1 << 64) if value & _SIGN64 else value


def to_unsigned64(value: int) -> int:
    """Return *value* interpreted as an unsigned 64-bit quantity."""
    return value & _MASK64


def to_signed32(value: int) -> int:
    """Wrap *value* to the canonical signed 32-bit representative."""
    value &= _MASK32
    return value - (1 << 32) if value & _SIGN32 else value


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend the low *bits* bits of *value* to a Python int."""
    mask = (1 << bits) - 1
    value &= mask
    sign = 1 << (bits - 1)
    return value - (1 << bits) if value & sign else value


def float_to_bits(value: float) -> int:
    """Raw IEEE-754 binary64 bits of *value*, as a signed 64-bit int."""
    return to_signed64(struct.unpack("<q", struct.pack("<d", value))[0])


def bits_to_float(bits: int) -> float:
    """Reinterpret signed 64-bit *bits* as an IEEE-754 binary64 float."""
    return struct.unpack("<d", struct.pack("<q", to_signed64(bits)))[0]


def align_down(value: int, alignment: int) -> int:
    """Round *value* down to a multiple of *alignment* (a power of two)."""
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to a multiple of *alignment* (a power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)


def is_power_of_two(value: int) -> bool:
    """True iff *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Exact integer log2; raises ``ValueError`` for non-powers of two."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for speedup aggregation)."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geometric_mean requires positive values, got {v}")
        product *= v
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain average; the paper reports arithmetic means of speedups."""
    if not values:
        raise ValueError("arithmetic_mean of empty sequence")
    return sum(values) / len(values)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table (used by the experiment reporting layer)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    lines = [sep]
    lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
    lines.append(sep)
    for row in str_rows:
        lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
    lines.append(sep)
    return "\n".join(lines)
