"""Machine configuration (the paper's Table 1).

Every simulated machine is described by a :class:`MachineConfig`.  The
defaults reproduce Table 1 of the paper exactly:

======================================  =======================================
Branch predict mode                     bimodal
Branch table size                       2048
Issue/commit width                      8
Instruction scheduling window           64 (superscalar); AP 64 / CP 16
Integer functional units                4 x ALU, 1 x MUL/DIV
Floating point functional units         4 x ALU, 1 x MUL/DIV
Memory ports                            2 per accessing processor
Data L1 cache                           256 sets, 32 B blocks, 4-way, LRU
L1 latency                              1 cycle
Unified L2 cache                        1024 sets, 64 B blocks, 4-way, LRU
L2 latency                              12 cycles
Memory access latency                   120 cycles
======================================  =======================================

Figure 10 varies ``(l2_latency, memory_latency)`` over
``(4, 40), (8, 80), (12, 120), (16, 160)``; use :meth:`MachineConfig.with_latency`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError
from .utils import is_power_of_two


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache level."""

    sets: int
    block_bytes: int
    ways: int
    latency: int
    name: str = "cache"

    def __post_init__(self) -> None:
        if not is_power_of_two(self.sets):
            raise ConfigError(f"{self.name}: sets must be a power of two, got {self.sets}")
        if not is_power_of_two(self.block_bytes):
            raise ConfigError(
                f"{self.name}: block size must be a power of two, got {self.block_bytes}"
            )
        if self.ways < 1:
            raise ConfigError(f"{self.name}: ways must be >= 1, got {self.ways}")
        if self.latency < 0:
            raise ConfigError(f"{self.name}: latency must be >= 0, got {self.latency}")

    @property
    def capacity_bytes(self) -> int:
        """Total data capacity in bytes."""
        return self.sets * self.block_bytes * self.ways


@dataclass(frozen=True)
class CoreConfig:
    """Pipeline resources of one processor (CP, AP, CMP or superscalar)."""

    name: str
    window: int = 64
    issue_width: int = 8
    commit_width: int = 8
    int_alus: int = 4
    int_muldivs: int = 1
    fp_alus: int = 4
    fp_muldivs: int = 1
    mem_ports: int = 2
    has_lsu: bool = True
    has_fp: bool = True

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigError(f"{self.name}: window must be >= 1")
        if self.issue_width < 1 or self.commit_width < 1:
            raise ConfigError(f"{self.name}: widths must be >= 1")
        if self.has_lsu and self.mem_ports < 1:
            raise ConfigError(f"{self.name}: an LSU-bearing core needs >= 1 memory port")


@dataclass(frozen=True)
class BranchConfig:
    """Branch predictor parameters (bimodal, Table 1)."""

    kind: str = "bimodal"
    table_size: int = 2048
    btb_size: int = 512
    mispredict_penalty: int = 3

    def __post_init__(self) -> None:
        if self.kind not in ("bimodal", "gshare", "taken", "nottaken", "perfect"):
            raise ConfigError(f"unknown branch predictor kind {self.kind!r}")
        if not is_power_of_two(self.table_size):
            raise ConfigError("branch table size must be a power of two")
        if not is_power_of_two(self.btb_size):
            raise ConfigError("BTB size must be a power of two")


@dataclass(frozen=True)
class QueueConfig:
    """Architectural queue depths (LDQ/SDQ/SAQ and instruction queues)."""

    ldq_entries: int = 32
    sdq_entries: int = 32
    saq_entries: int = 32
    instr_queue_entries: int = 64

    def __post_init__(self) -> None:
        for attr in ("ldq_entries", "sdq_entries", "saq_entries", "instr_queue_entries"):
            if getattr(self, attr) < 1:
                raise ConfigError(f"{attr} must be >= 1")


@dataclass(frozen=True)
class CmasConfig:
    """CMAS (Cache Miss Access Slice) selection and triggering parameters."""

    trigger_distance: int = 512
    miss_rate_threshold: float = 0.05
    #: hardware CMAS contexts.  Each forked thread is one probable-miss
    #: slice (a handful of instructions), so the CMP needs enough contexts
    #: to keep one outstanding miss per context; 16 matches the MSHR-depth
    #: assumptions of the speculative-precomputation literature (the paper
    #: does not size the CMP's thread storage).
    max_contexts: int = 16
    prefetch_into_l1: bool = True

    def __post_init__(self) -> None:
        if self.trigger_distance < 1:
            raise ConfigError("trigger_distance must be >= 1")
        if not (0.0 <= self.miss_rate_threshold <= 1.0):
            raise ConfigError("miss_rate_threshold must be in [0, 1]")
        if self.max_contexts < 1:
            raise ConfigError("max_contexts must be >= 1")


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability knobs (see :mod:`repro.telemetry`).

    This is declarative configuration only; the runtime collector object
    (sink, sampler storage) is :class:`repro.telemetry.Telemetry`, built
    from one of these with :meth:`repro.telemetry.Telemetry.from_config`.
    """

    #: collect per-core CPI stacks (exhaustive cycle attribution).
    cpi: bool = True
    #: occupancy-sampling period in cycles; 0 disables sampling.
    sample_interval: int = 0
    #: event-trace file format: Chrome ``trace_event`` JSON or JSONL.
    trace_format: str = "chrome"
    #: capture per-dynamic-instruction lifecycle records
    #: (:mod:`repro.telemetry.lifecycle`).
    lifecycle: bool = False
    #: lifecycle ring-buffer capacity; 0 keeps every committed record.
    lifecycle_max_records: int = 0
    #: heartbeat period in cycles (one live status line per period on
    #: stderr); 0 disables the heartbeat.
    heartbeat_interval: int = 0

    def __post_init__(self) -> None:
        if self.sample_interval < 0:
            raise ConfigError("sample_interval must be >= 0")
        if self.trace_format not in ("chrome", "jsonl"):
            raise ConfigError(
                f"unknown trace format {self.trace_format!r} "
                "(expected 'chrome' or 'jsonl')"
            )
        if self.lifecycle_max_records < 0:
            raise ConfigError("lifecycle_max_records must be >= 0")
        if self.heartbeat_interval < 0:
            raise ConfigError("heartbeat_interval must be >= 0")


@dataclass(frozen=True)
class SamplingPlan:
    """Schedule for SMARTS-style sampled timing simulation.

    The post-warmup trace is divided into sampling periods of
    ``interval_length`` dynamic instructions.  Inside each period one
    window of ``detail_length`` instructions runs through the full timing
    machine (preceded by ``warmup_length`` instructions of detailed
    execution whose statistics are discarded); everything outside the
    detailed windows is fast-forwarded functionally while a lightweight
    probe keeps the caches and the branch predictor warm.  The window
    position is drawn independently per period (stratified sampling —
    a fixed offset aliases with periodic program structure); ``seed``
    fixes those draws, so a given (workload, config, plan) triple is
    fully deterministic.  ``error_budget`` is the relative 95% CI the
    extrapolated cycle count must meet: the driver densifies the
    schedule (halving the interval, or jumping straight to the density
    the measured variance predicts) until the CI fits, degrading to
    exact full-detail simulation when sampling cannot win.
    """

    interval_length: int = 20_000
    detail_length: int = 2_000
    warmup_length: int = 1_000
    seed: int = 2003
    error_budget: float = 0.03

    def __post_init__(self) -> None:
        if self.interval_length < 1:
            raise ConfigError("sampling interval_length must be >= 1")
        if not (0 < self.detail_length <= self.interval_length):
            raise ConfigError(
                "sampling detail_length must be in [1, interval_length]; got "
                f"{self.detail_length} with interval {self.interval_length}"
            )
        if self.warmup_length < 0:
            raise ConfigError("sampling warmup_length must be >= 0")
        if not (0.0 < self.error_budget < 1.0):
            raise ConfigError(
                "sampling error_budget is a relative CI target and must be "
                f"in (0, 1); got {self.error_budget}"
            )


# Table 1 cache defaults.
DEFAULT_L1 = CacheConfig(sets=256, block_bytes=32, ways=4, latency=1, name="L1D")
DEFAULT_L2 = CacheConfig(sets=1024, block_bytes=64, ways=4, latency=12, name="L2")


@dataclass(frozen=True)
class MachineConfig:
    """Complete configuration of a simulated machine (Table 1 defaults)."""

    fetch_width: int = 8
    l1: CacheConfig = DEFAULT_L1
    l2: CacheConfig = DEFAULT_L2
    memory_latency: int = 120
    #: cycle budget for one timing run; exceeding it raises
    #: :class:`~repro.errors.CycleLimitError` (override per run with
    #: ``Machine.run(max_cycles=...)`` or globally with ``--max-cycles``).
    max_cycles: int = 2_000_000_000
    #: no-progress window (cycles) after which the
    #: :class:`~repro.resilience.ProgressWatchdog` declares a livelock.
    watchdog_window: int = 10_000
    branch: BranchConfig = field(default_factory=BranchConfig)
    queues: QueueConfig = field(default_factory=QueueConfig)
    cmas: CmasConfig = field(default_factory=CmasConfig)

    # Per-processor resources.  The baseline superscalar uses `superscalar`;
    # the decoupled machine uses `cp`, `ap` and `cmp`.
    superscalar: CoreConfig = field(
        default_factory=lambda: CoreConfig(name="superscalar", window=64)
    )
    cp: CoreConfig = field(
        default_factory=lambda: CoreConfig(
            name="CP", window=16, has_lsu=False, mem_ports=0
        )
    )
    ap: CoreConfig = field(
        default_factory=lambda: CoreConfig(
            name="AP", window=64, has_fp=False, fp_alus=0, fp_muldivs=0
        )
    )
    cmp: CoreConfig = field(
        default_factory=lambda: CoreConfig(
            name="CMP", window=64, issue_width=4, commit_width=4,
            has_fp=False, fp_alus=0, fp_muldivs=0,
        )
    )

    def __post_init__(self) -> None:
        if self.fetch_width < 1:
            raise ConfigError("fetch_width must be >= 1")
        if self.memory_latency < 1:
            raise ConfigError("memory_latency must be >= 1")
        if self.max_cycles < 1:
            raise ConfigError("max_cycles must be >= 1")
        if self.watchdog_window < 1:
            raise ConfigError("watchdog_window must be >= 1")

    def with_latency(self, l2_latency: int, memory_latency: int) -> "MachineConfig":
        """Return a copy with new L2/memory latencies (Figure 10 sweeps)."""
        return replace(
            self,
            l2=replace(self.l2, latency=l2_latency),
            memory_latency=memory_latency,
        )

    def describe(self) -> list[tuple[str, str]]:
        """Human-readable (parameter, value) rows — regenerates Table 1."""
        return [
            ("Branch predict mode", self.branch.kind),
            ("Branch table size", str(self.branch.table_size)),
            ("Issue/commit width", str(self.superscalar.issue_width)),
            (
                "Instruction scheduling window size",
                f"{self.superscalar.window} (superscalar); "
                f"AP {self.ap.window} / CP {self.cp.window}",
            ),
            (
                "Integer functional units",
                f"ALU (x {self.superscalar.int_alus}), MUL/DIV",
            ),
            (
                "Floating point functional units",
                f"ALU (x {self.superscalar.fp_alus}), MUL/DIV",
            ),
            (
                "Number of memory ports",
                f"{self.superscalar.mem_ports} for superscalar / "
                f"{self.ap.mem_ports} for each of AP and CMP",
            ),
            (
                "Data L1 cache configuration",
                f"{self.l1.sets} sets, {self.l1.block_bytes} block, "
                f"{self.l1.ways}-way set associative, LRU",
            ),
            ("Data L1 cache latency", f"{self.l1.latency} CPU clock cycle"),
            (
                "Unified L2 cache configuration",
                f"{self.l2.sets} sets, {self.l2.block_bytes} block, "
                f"{self.l2.ways}-way set associative, LRU",
            ),
            ("L2 cache latency", f"{self.l2.latency} CPU clock cycles"),
            ("Memory access latency", f"{self.memory_latency} CPU clock cycles"),
        ]


#: Latency points simulated in Figure 10, as (l2_latency, memory_latency).
FIGURE10_LATENCIES: tuple[tuple[int, int], ...] = ((4, 40), (8, 80), (12, 120), (16, 160))
