"""Binary encoding of instructions.

Instructions are packed into 64-bit words::

    bits 63..57   opcode        (7 bits, stable declaration order)
    bits 56..51   rd            (6 bits, register id 0..63)
    bits 50..45   rs1
    bits 44..39   rs2
    bits 38..29   flags         (annotation bits, see below)
    bits 28..0    imm / target  (29-bit two's complement)

The flag bits persist the HiDISC annotation field (the paper stores its
annotations in spare bits of the SimpleScalar binary the same way):

    bit 0  stream valid (separated)
    bit 1  stream == AS
    bit 2  cmas
    bit 3  trigger
    bit 4  sdq_data
    bit 5  probable_miss
    bit 6  to_ldq (load also writes the LDQ)
    bit 7  to_sdq (CS result also goes to the SDQ)
    bit 8  ldq_rs1 (operand rs1 reads the LDQ)
    bit 9  ldq_rs2 (operand rs2 reads the LDQ)

``imm`` and ``target`` share the low field: control-flow formats store the
target there, every other format stores the immediate.  Immediates outside
29 bits cannot be encoded (the builder materialises larger constants with
shift/or sequences; the 128 MiB simulated address space fits comfortably).
"""

from __future__ import annotations

from ..errors import EncodingError
from .instruction import Annotations, Instruction, Stream
from .opcodes import CODE_TO_OP, OP_TO_CODE, Format

_IMM_MIN = -(1 << 28)
_IMM_MAX = (1 << 28) - 1

_F_SEPARATED = 1 << 0
_F_AS = 1 << 1
_F_CMAS = 1 << 2
_F_TRIGGER = 1 << 3
_F_SDQ = 1 << 4
_F_MISS = 1 << 5
_F_TOLDQ = 1 << 6
_F_TOSDQ = 1 << 7
_F_LDQ_RS1 = 1 << 8
_F_LDQ_RS2 = 1 << 9


def _encode_flags(ann: Annotations) -> int:
    flags = 0
    if ann.stream is not Stream.NONE:
        flags |= _F_SEPARATED
        if ann.stream is Stream.AS:
            flags |= _F_AS
    if ann.cmas:
        flags |= _F_CMAS
    if ann.trigger:
        flags |= _F_TRIGGER
    if ann.sdq_data:
        flags |= _F_SDQ
    if ann.probable_miss:
        flags |= _F_MISS
    if ann.to_ldq:
        flags |= _F_TOLDQ
    if ann.to_sdq:
        flags |= _F_TOSDQ
    if ann.ldq_rs1:
        flags |= _F_LDQ_RS1
    if ann.ldq_rs2:
        flags |= _F_LDQ_RS2
    return flags


def _decode_flags(flags: int) -> Annotations:
    if flags & _F_SEPARATED:
        stream = Stream.AS if flags & _F_AS else Stream.CS
    else:
        stream = Stream.NONE
    return Annotations(
        stream=stream,
        cmas=bool(flags & _F_CMAS),
        probable_miss=bool(flags & _F_MISS),
        trigger=bool(flags & _F_TRIGGER),
        sdq_data=bool(flags & _F_SDQ),
        to_ldq=bool(flags & _F_TOLDQ),
        to_sdq=bool(flags & _F_TOSDQ),
        ldq_rs1=bool(flags & _F_LDQ_RS1),
        ldq_rs2=bool(flags & _F_LDQ_RS2),
    )


def encode_instruction(instr: Instruction) -> int:
    """Encode *instr* into a 64-bit word."""
    code = OP_TO_CODE[instr.op]
    if code > 0x7F:
        raise EncodingError(f"opcode space exhausted for {instr.op}")
    fmt = instr.op.info.fmt
    low = instr.target if fmt in (Format.BRANCH, Format.BRANCH1, Format.JUMP) else instr.imm
    if not (_IMM_MIN <= low <= _IMM_MAX):
        raise EncodingError(
            f"immediate/target {low} of {instr.op.mnemonic} does not fit in 29 bits"
        )
    for name, reg in (("rd", instr.rd), ("rs1", instr.rs1), ("rs2", instr.rs2)):
        if not (0 <= reg < 64):
            raise EncodingError(f"{instr.op.mnemonic}: {name}={reg} out of range")
    flags = _encode_flags(instr.ann)
    word = (
        (code << 57)
        | (instr.rd << 51)
        | (instr.rs1 << 45)
        | (instr.rs2 << 39)
        | (flags << 29)
        | (low & 0x1FFFFFFF)
    )
    return word


def decode_instruction(word: int) -> Instruction:
    """Decode a 64-bit word back into an :class:`Instruction`."""
    if not (0 <= word < (1 << 64)):
        raise EncodingError(f"instruction word {word:#x} out of range")
    code = (word >> 57) & 0x7F
    try:
        op = CODE_TO_OP[code]
    except KeyError:
        raise EncodingError(f"unknown opcode {code}") from None
    rd = (word >> 51) & 0x3F
    rs1 = (word >> 45) & 0x3F
    rs2 = (word >> 39) & 0x3F
    flags = (word >> 29) & 0x3FF
    low = word & 0x1FFFFFFF
    if low & 0x10000000:
        low -= 1 << 29
    instr = Instruction(op=op, rd=rd, rs1=rs1, rs2=rs2, ann=_decode_flags(flags))
    if op.info.fmt in (Format.BRANCH, Format.BRANCH1, Format.JUMP):
        instr.target = low
    else:
        instr.imm = low
    return instr


def encode_program_text(instructions: list[Instruction]) -> bytes:
    """Encode a text segment to little-endian bytes (8 bytes/instruction)."""
    out = bytearray()
    for instr in instructions:
        out += encode_instruction(instr).to_bytes(8, "little")
    return bytes(out)


def decode_program_text(blob: bytes) -> list[Instruction]:
    """Inverse of :func:`encode_program_text`."""
    if len(blob) % 8:
        raise EncodingError("text segment length is not a multiple of 8")
    return [
        decode_instruction(int.from_bytes(blob[i : i + 8], "little"))
        for i in range(0, len(blob), 8)
    ]
