"""The :class:`Instruction` record and its HiDISC annotations.

An instruction is a plain mutable dataclass: the assembler creates it, the
HiDISC compiler (:mod:`repro.slicer`) *annotates* it in place (stream,
CMAS/trigger marks, SDQ store flag), and the simulators read it.

Branch/jump targets are **instruction indices** into the program's text
segment, not byte addresses — the reproduction keeps the PC in units of
instructions (documented substitution; nothing in the paper depends on
instruction byte addressing).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from . import registers
from .opcodes import FP_CMP_OPS, FP_DEST_OPS, Format, Op


class Stream(enum.Enum):
    """HiDISC stream assignment of an instruction."""

    NONE = "none"   # not yet separated
    CS = "CS"       # Computation Stream (executes on the CP)
    AS = "AS"       # Access Stream (executes on the AP)


@dataclass
class Annotations:
    """HiDISC annotation fields (the paper's binary 'annotation field')."""

    stream: Stream = Stream.NONE
    cmas: bool = False        # instruction belongs to a Cache Miss Access Slice
    probable_miss: bool = False  # profile says this load likely misses
    trigger: bool = False     # separator forks a CMAS context here
    sdq_data: bool = False    # store data comes from the SDQ, not rs2
    to_ldq: bool = False      # load also deposits its result in the LDQ
    #                           (the paper's "$LDQ" destination, Figure 6)
    to_sdq: bool = False      # CS instruction also deposits its result in
    #                           the SDQ (the paper's "$SDQ" destination)
    ldq_rs1: bool = False     # CS operand rs1 is read from the LDQ
    ldq_rs2: bool = False     # CS operand rs2 is read from the LDQ
    #                           (the paper's "$LDQ" source operands)

    def copy(self) -> "Annotations":
        return replace(self)


@dataclass
class Instruction:
    """One static instruction.

    Field use by format (see :class:`repro.isa.opcodes.Format`):

    ========  ==========================================================
    R3        ``rd <- rs1 op rs2``
    R2        ``rd <- op rs1``
    RI        ``rd <- rs1 op imm``
    LI        ``rd <- imm``
    LOAD      ``rd <- mem[rs1 + imm]``
    STORE     ``mem[rs1 + imm] <- rs2``
    BRANCH    ``if rs1 op rs2: pc <- target``
    BRANCH1   ``if rs1 op 0: pc <- target``
    JUMP      ``pc <- target`` (JAL also writes ``ra``)
    JREG      ``pc <- rs1``
    PUSH      queue <- ``rs1``
    POP       ``rd`` <- queue
    NONE      no operands
    ========  ==========================================================
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: int = 0
    ann: Annotations = field(default_factory=Annotations)
    #: Source-level comment / label, carried through for diagnostics.
    comment: str = ""

    # ------------------------------------------------------------------
    # Dependence queries (used by the slicer and the timing cores).
    # ------------------------------------------------------------------
    def dest_reg(self) -> int | None:
        """Register written by this instruction, or ``None``.

        ``r0`` writes are reported as ``None`` (they are architectural
        no-ops), so dependence analysis never creates edges through ``r0``.
        """
        fmt = self.op.info.fmt
        if fmt in (Format.R3, Format.R2, Format.RI, Format.LI, Format.LOAD,
                   Format.POP):
            return None if self.rd == registers.ZERO else self.rd
        if self.op is Op.JAL:
            return registers.NAME_TO_REG["ra"]
        return None

    def source_regs(self) -> tuple[int, ...]:
        """Registers read by this instruction (``r0`` excluded)."""
        fmt = self.op.info.fmt
        if fmt == Format.R3:
            srcs = (self.rs1, self.rs2)
        elif fmt in (Format.R2, Format.RI):
            srcs = (self.rs1,)
        elif fmt == Format.LOAD:
            srcs = (self.rs1,)
        elif fmt == Format.STORE:
            if self.ann.sdq_data:
                srcs = (self.rs1,)          # data arrives through the SDQ
            else:
                srcs = (self.rs1, self.rs2)
        elif fmt == Format.BRANCH:
            srcs = (self.rs1, self.rs2)
        elif fmt in (Format.BRANCH1, Format.JREG, Format.PUSH):
            srcs = (self.rs1,)
        else:  # LI, JUMP, POP, NONE
            srcs = ()
        return tuple(s for s in srcs if s != registers.ZERO)

    # ------------------------------------------------------------------
    # Classification helpers.
    # ------------------------------------------------------------------
    @property
    def is_load(self) -> bool:
        return self.op.info.is_load

    @property
    def is_store(self) -> bool:
        return self.op.info.is_store

    @property
    def is_mem(self) -> bool:
        info = self.op.info
        return info.is_load or info.is_store

    @property
    def is_control(self) -> bool:
        return self.op.info.is_control

    @property
    def is_branch(self) -> bool:
        """Conditional branch (outcome unknown until execute)."""
        return self.op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BEQZ, Op.BNEZ)

    @property
    def is_comm(self) -> bool:
        info = self.op.info
        return info.reads_ldq or info.writes_ldq or info.writes_sdq

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check that register operands live in the right register file.

        Raises ``ValueError`` on the first violation.  This catches builder
        mistakes early (e.g. an FP add reading an integer register).
        """
        op = self.op
        info = op.info
        fmt = info.fmt

        def want_fp(regid: int, what: str, fp: bool) -> None:
            ok = registers.is_fp_reg(regid) if fp else registers.is_int_reg(regid)
            if not ok:
                kind = "FP" if fp else "integer"
                raise ValueError(
                    f"{op.mnemonic}: {what} must be an {kind} register, "
                    f"got {registers.reg_name(regid) if 0 <= regid < registers.NUM_REGS else regid}"
                )

        if fmt in (Format.R3, Format.R2):
            if op in FP_CMP_OPS:
                # FP compares and FTOI write an integer register.
                want_fp(self.rd, "rd", fp=False)
                want_fp(self.rs1, "rs1", fp=True)
                if fmt == Format.R3:
                    want_fp(self.rs2, "rs2", fp=True)
            elif op is Op.ITOF:
                want_fp(self.rd, "rd", fp=True)
                want_fp(self.rs1, "rs1", fp=False)
            elif info.is_fp:
                want_fp(self.rd, "rd", fp=True)
                want_fp(self.rs1, "rs1", fp=True)
                if fmt == Format.R3:
                    want_fp(self.rs2, "rs2", fp=True)
            else:
                want_fp(self.rd, "rd", fp=False)
                want_fp(self.rs1, "rs1", fp=False)
                if fmt == Format.R3:
                    want_fp(self.rs2, "rs2", fp=False)
        elif fmt in (Format.RI, Format.LI):
            want_fp(self.rd, "rd", fp=False)
            if fmt == Format.RI:
                want_fp(self.rs1, "rs1", fp=False)
        elif fmt == Format.LOAD:
            want_fp(self.rd, "rd", fp=info.is_fp)
            want_fp(self.rs1, "base", fp=False)
        elif fmt == Format.STORE:
            want_fp(self.rs1, "base", fp=False)
            want_fp(self.rs2, "data", fp=info.is_fp)
        elif fmt in (Format.BRANCH, Format.BRANCH1):
            want_fp(self.rs1, "rs1", fp=False)
            if fmt == Format.BRANCH:
                want_fp(self.rs2, "rs2", fp=False)
        elif fmt == Format.JREG:
            want_fp(self.rs1, "rs1", fp=False)
        elif fmt == Format.PUSH:
            want_fp(self.rs1, "rs1", fp=info.is_fp)
        elif fmt == Format.POP:
            want_fp(self.rd, "rd", fp=info.is_fp)

    def copy(self) -> "Instruction":
        """Deep-enough copy (annotations are duplicated, not shared)."""
        return Instruction(
            op=self.op, rd=self.rd, rs1=self.rs1, rs2=self.rs2, imm=self.imm,
            target=self.target, ann=self.ann.copy(), comment=self.comment,
        )

    def __str__(self) -> str:  # pragma: no cover - convenience only
        from .disasm import disassemble_instruction

        return disassemble_instruction(self)


def writes_fp_dest(op: Op) -> bool:
    """True iff *op*'s destination register is a floating-point register."""
    return op in FP_DEST_OPS
