"""Opcode definitions and static metadata.

Each opcode carries the metadata every other layer needs:

* its *format* (how the operand fields are interpreted),
* its *functional-unit class* and execution latency (timing simulation),
* classification predicates (is it a load? a store? control? FP?), and
* the memory access width for loads/stores.

The metadata lives in one table so the assembler, slicer, functional
simulator and timing cores can never disagree about an instruction's shape.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Format(enum.Enum):
    """Operand-field interpretation of an instruction."""

    R3 = "r3"          # op rd, rs1, rs2
    R2 = "r2"          # op rd, rs1            (unary: neg, abs, mov, cvt)
    RI = "ri"          # op rd, rs1, imm
    LI = "li"          # op rd, imm            (load immediate)
    LOAD = "load"      # op rd, imm(rs1)
    STORE = "store"    # op rs2, imm(rs1)      (rs2 is the data register)
    BRANCH = "branch"  # op rs1, rs2, target
    BRANCH1 = "br1"    # op rs1, target        (beqz/bnez)
    JUMP = "jump"      # op target
    JREG = "jreg"      # op rs1                (jr)
    PUSH = "push"      # op rs1                (queue push)
    POP = "pop"        # op rd                 (queue pop)
    NONE = "none"      # op                    (nop, halt)


class FuClass(enum.Enum):
    """Functional unit pool an opcode executes on."""

    IALU = "ialu"
    IMULDIV = "imuldiv"
    FALU = "falu"
    FMULDIV = "fmuldiv"
    LSU = "lsu"
    NONE = "none"      # zero-latency pseudo ops (nop/halt) and queue moves


@dataclass(frozen=True)
class OpInfo:
    """Static metadata of one opcode."""

    mnemonic: str
    fmt: Format
    fu: FuClass
    latency: int
    is_load: bool = False
    is_store: bool = False
    is_control: bool = False
    is_fp: bool = False          # produces / consumes FP registers
    mem_bytes: int = 0           # access width for loads and stores
    reads_ldq: bool = False      # POP_LDQ*
    writes_ldq: bool = False     # PUSH_LDQ*
    writes_sdq: bool = False     # PUSH_SDQ*


class Op(enum.Enum):
    """All opcodes of the reproduction ISA.

    The value of each member is its :class:`OpInfo`; use ``Op.ADD.info``.
    """

    # --- integer ALU -----------------------------------------------------
    ADD = OpInfo("add", Format.R3, FuClass.IALU, 1)
    SUB = OpInfo("sub", Format.R3, FuClass.IALU, 1)
    MUL = OpInfo("mul", Format.R3, FuClass.IMULDIV, 3)
    DIV = OpInfo("div", Format.R3, FuClass.IMULDIV, 20)
    REM = OpInfo("rem", Format.R3, FuClass.IMULDIV, 20)
    AND = OpInfo("and", Format.R3, FuClass.IALU, 1)
    OR = OpInfo("or", Format.R3, FuClass.IALU, 1)
    XOR = OpInfo("xor", Format.R3, FuClass.IALU, 1)
    NOR = OpInfo("nor", Format.R3, FuClass.IALU, 1)
    SLL = OpInfo("sll", Format.R3, FuClass.IALU, 1)
    SRL = OpInfo("srl", Format.R3, FuClass.IALU, 1)
    SRA = OpInfo("sra", Format.R3, FuClass.IALU, 1)
    SLT = OpInfo("slt", Format.R3, FuClass.IALU, 1)
    SLTU = OpInfo("sltu", Format.R3, FuClass.IALU, 1)

    # --- integer ALU with immediate --------------------------------------
    ADDI = OpInfo("addi", Format.RI, FuClass.IALU, 1)
    MULI = OpInfo("muli", Format.RI, FuClass.IMULDIV, 3)
    ANDI = OpInfo("andi", Format.RI, FuClass.IALU, 1)
    ORI = OpInfo("ori", Format.RI, FuClass.IALU, 1)
    XORI = OpInfo("xori", Format.RI, FuClass.IALU, 1)
    SLLI = OpInfo("slli", Format.RI, FuClass.IALU, 1)
    SRLI = OpInfo("srli", Format.RI, FuClass.IALU, 1)
    SRAI = OpInfo("srai", Format.RI, FuClass.IALU, 1)
    SLTI = OpInfo("slti", Format.RI, FuClass.IALU, 1)
    LI = OpInfo("li", Format.LI, FuClass.IALU, 1)
    MOV = OpInfo("mov", Format.R2, FuClass.IALU, 1)

    # --- floating point ---------------------------------------------------
    FADD = OpInfo("fadd", Format.R3, FuClass.FALU, 2, is_fp=True)
    FSUB = OpInfo("fsub", Format.R3, FuClass.FALU, 2, is_fp=True)
    FMUL = OpInfo("fmul", Format.R3, FuClass.FMULDIV, 4, is_fp=True)
    FDIV = OpInfo("fdiv", Format.R3, FuClass.FMULDIV, 12, is_fp=True)
    FNEG = OpInfo("fneg", Format.R2, FuClass.FALU, 2, is_fp=True)
    FABS = OpInfo("fabs", Format.R2, FuClass.FALU, 2, is_fp=True)
    FSQRT = OpInfo("fsqrt", Format.R2, FuClass.FMULDIV, 24, is_fp=True)
    FMOV = OpInfo("fmov", Format.R2, FuClass.FALU, 2, is_fp=True)
    FMIN = OpInfo("fmin", Format.R3, FuClass.FALU, 2, is_fp=True)
    FMAX = OpInfo("fmax", Format.R3, FuClass.FALU, 2, is_fp=True)
    # FP compares write an *integer* register; conversions cross the files.
    FEQ = OpInfo("feq", Format.R3, FuClass.FALU, 2, is_fp=True)
    FLT = OpInfo("flt", Format.R3, FuClass.FALU, 2, is_fp=True)
    FLE = OpInfo("fle", Format.R3, FuClass.FALU, 2, is_fp=True)
    ITOF = OpInfo("itof", Format.R2, FuClass.FALU, 2, is_fp=True)
    FTOI = OpInfo("ftoi", Format.R2, FuClass.FALU, 2, is_fp=True)

    # --- memory ------------------------------------------------------------
    LD = OpInfo("ld", Format.LOAD, FuClass.LSU, 1, is_load=True, mem_bytes=8)
    LW = OpInfo("lw", Format.LOAD, FuClass.LSU, 1, is_load=True, mem_bytes=4)
    LBU = OpInfo("lbu", Format.LOAD, FuClass.LSU, 1, is_load=True, mem_bytes=1)
    SD = OpInfo("sd", Format.STORE, FuClass.LSU, 1, is_store=True, mem_bytes=8)
    SW = OpInfo("sw", Format.STORE, FuClass.LSU, 1, is_store=True, mem_bytes=4)
    SB = OpInfo("sb", Format.STORE, FuClass.LSU, 1, is_store=True, mem_bytes=1)
    FLD = OpInfo("fld", Format.LOAD, FuClass.LSU, 1, is_load=True, is_fp=True,
                 mem_bytes=8)
    FSD = OpInfo("fsd", Format.STORE, FuClass.LSU, 1, is_store=True, is_fp=True,
                 mem_bytes=8)

    # --- control -----------------------------------------------------------
    BEQ = OpInfo("beq", Format.BRANCH, FuClass.IALU, 1, is_control=True)
    BNE = OpInfo("bne", Format.BRANCH, FuClass.IALU, 1, is_control=True)
    BLT = OpInfo("blt", Format.BRANCH, FuClass.IALU, 1, is_control=True)
    BGE = OpInfo("bge", Format.BRANCH, FuClass.IALU, 1, is_control=True)
    BEQZ = OpInfo("beqz", Format.BRANCH1, FuClass.IALU, 1, is_control=True)
    BNEZ = OpInfo("bnez", Format.BRANCH1, FuClass.IALU, 1, is_control=True)
    J = OpInfo("j", Format.JUMP, FuClass.IALU, 1, is_control=True)
    JAL = OpInfo("jal", Format.JUMP, FuClass.IALU, 1, is_control=True)
    JR = OpInfo("jr", Format.JREG, FuClass.IALU, 1, is_control=True)
    HALT = OpInfo("halt", Format.NONE, FuClass.NONE, 1, is_control=True)
    NOP = OpInfo("nop", Format.NONE, FuClass.NONE, 1)

    # --- HiDISC communication (inserted by the slicer) ----------------------
    # AP-side: push an integer/FP register value to the Load Data Queue.
    PUSH_LDQ = OpInfo("push.ldq", Format.PUSH, FuClass.IALU, 1, writes_ldq=True)
    PUSH_LDQF = OpInfo("push.ldqf", Format.PUSH, FuClass.IALU, 1, is_fp=True,
                       writes_ldq=True)
    # CP-side: pop the Load Data Queue into a register.
    POP_LDQ = OpInfo("pop.ldq", Format.POP, FuClass.IALU, 1, reads_ldq=True)
    POP_LDQF = OpInfo("pop.ldqf", Format.POP, FuClass.IALU, 1, is_fp=True,
                      reads_ldq=True)
    # CP-side: push store data to the Store Data Queue.
    PUSH_SDQ = OpInfo("push.sdq", Format.PUSH, FuClass.IALU, 1, writes_sdq=True)
    PUSH_SDQF = OpInfo("push.sdqf", Format.PUSH, FuClass.IALU, 1, is_fp=True,
                       writes_sdq=True)

    @property
    def info(self) -> OpInfo:
        """The :class:`OpInfo` metadata record of this opcode."""
        return self.value

    @property
    def mnemonic(self) -> str:
        return self.value.mnemonic


#: mnemonic -> opcode, for the assembler.
MNEMONIC_TO_OP: dict[str, Op] = {op.info.mnemonic: op for op in Op}

#: Stable numbering used by the binary encoder (order of declaration).
OP_TO_CODE: dict[Op, int] = {op: i for i, op in enumerate(Op)}
CODE_TO_OP: dict[int, Op] = {i: op for op, i in OP_TO_CODE.items()}

#: Opcodes whose result register is an FP register.
FP_DEST_OPS = frozenset(
    op for op in Op
    if op.info.is_fp and op not in (Op.FEQ, Op.FLT, Op.FLE, Op.FTOI,
                                    Op.SD, Op.SW, Op.SB, Op.FSD,
                                    Op.PUSH_LDQF, Op.PUSH_SDQF)
)

#: FP compare / FP->int ops: FP sources, integer destination.
FP_CMP_OPS = frozenset((Op.FEQ, Op.FLT, Op.FLE, Op.FTOI))

COMM_OPS = frozenset(
    (Op.PUSH_LDQ, Op.PUSH_LDQF, Op.POP_LDQ, Op.POP_LDQF, Op.PUSH_SDQ, Op.PUSH_SDQF)
)
