"""Register file specification.

The reproduction ISA is a 64-bit PISA/MIPS-flavoured RISC with

* 32 integer registers ``r0``-``r31`` (``r0`` hardwired to zero), and
* 32 floating-point registers ``f0``-``f31`` (IEEE binary64).

Internally a register is a small integer *register id*: ``0..31`` are the
integer registers and ``32..63`` the FP registers.  This keeps dependence
analysis and the timing simulators' scoreboards flat and fast.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Register id of the hardwired-zero register.
ZERO = 0

#: First floating point register id.
FP_BASE = NUM_INT_REGS

# Conventional ABI aliases (MIPS-style, used by the assembler and
# disassembler; the hardware does not care).
_INT_ALIASES = {
    "zero": 0,
    "at": 1,
    "v0": 2, "v1": 3,
    "a0": 4, "a1": 5, "a2": 6, "a3": 7,
    "t0": 8, "t1": 9, "t2": 10, "t3": 11, "t4": 12, "t5": 13, "t6": 14, "t7": 15,
    "s0": 16, "s1": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "t8": 24, "t9": 25,
    "k0": 26, "k1": 27,
    "gp": 28, "sp": 29, "fp": 30, "ra": 31,
}

#: name -> register id, including both raw (``r5``/``f3``) and ABI names.
NAME_TO_REG: dict[str, int] = {}
for _i in range(NUM_INT_REGS):
    NAME_TO_REG[f"r{_i}"] = _i
for _i in range(NUM_FP_REGS):
    NAME_TO_REG[f"f{_i}"] = FP_BASE + _i
NAME_TO_REG.update(_INT_ALIASES)

#: register id -> canonical display name.
REG_TO_NAME: dict[int, str] = {}
for _i in range(NUM_INT_REGS):
    REG_TO_NAME[_i] = f"r{_i}"
for _i in range(NUM_FP_REGS):
    REG_TO_NAME[FP_BASE + _i] = f"f{_i}"


def is_int_reg(reg: int) -> bool:
    """True iff *reg* is an integer register id."""
    return 0 <= reg < NUM_INT_REGS


def is_fp_reg(reg: int) -> bool:
    """True iff *reg* is a floating-point register id."""
    return FP_BASE <= reg < NUM_REGS


def reg_name(reg: int) -> str:
    """Canonical name (``r7`` / ``f2``) of register id *reg*."""
    try:
        return REG_TO_NAME[reg]
    except KeyError:
        raise ValueError(f"invalid register id {reg}") from None


def parse_reg(name: str) -> int:
    """Parse a register name (``$t0``, ``r4``, ``f11``...) to a register id."""
    name = name.strip().lstrip("$").lower()
    try:
        return NAME_TO_REG[name]
    except KeyError:
        raise ValueError(f"unknown register name {name!r}") from None
