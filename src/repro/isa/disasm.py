"""Disassembler: turn instructions back into readable assembly text.

Used by the examples (to reproduce the paper's Figures 5-7 style listings),
by error messages, and round-trip-tested against the assembler.
"""

from __future__ import annotations

from collections.abc import Sequence

from .instruction import Instruction, Stream
from .opcodes import Format
from .registers import reg_name


def disassemble_instruction(instr: Instruction) -> str:
    """Render one instruction as assembly text (no annotations)."""
    op = instr.op
    fmt = op.info.fmt
    m = op.mnemonic
    if fmt == Format.R3:
        return f"{m} {reg_name(instr.rd)}, {reg_name(instr.rs1)}, {reg_name(instr.rs2)}"
    if fmt == Format.R2:
        return f"{m} {reg_name(instr.rd)}, {reg_name(instr.rs1)}"
    if fmt == Format.RI:
        return f"{m} {reg_name(instr.rd)}, {reg_name(instr.rs1)}, {instr.imm}"
    if fmt == Format.LI:
        return f"{m} {reg_name(instr.rd)}, {instr.imm}"
    if fmt == Format.LOAD:
        return f"{m} {reg_name(instr.rd)}, {instr.imm}({reg_name(instr.rs1)})"
    if fmt == Format.STORE:
        data = "$SDQ" if instr.ann.sdq_data else reg_name(instr.rs2)
        return f"{m} {data}, {instr.imm}({reg_name(instr.rs1)})"
    if fmt == Format.BRANCH:
        return f"{m} {reg_name(instr.rs1)}, {reg_name(instr.rs2)}, {instr.target}"
    if fmt == Format.BRANCH1:
        return f"{m} {reg_name(instr.rs1)}, {instr.target}"
    if fmt == Format.JUMP:
        return f"{m} {instr.target}"
    if fmt == Format.JREG:
        return f"{m} {reg_name(instr.rs1)}"
    if fmt == Format.PUSH:
        return f"{m} {reg_name(instr.rs1)}"
    if fmt == Format.POP:
        return f"{m} {reg_name(instr.rd)}"
    return m  # NONE


def annotation_tag(instr: Instruction) -> str:
    """Short tag describing the HiDISC annotations, e.g. ``[AS,cmas,trig]``."""
    parts: list[str] = []
    if instr.ann.stream is not Stream.NONE:
        parts.append(instr.ann.stream.value)
    if instr.ann.cmas:
        parts.append("cmas")
    if instr.ann.probable_miss:
        parts.append("miss")
    if instr.ann.trigger:
        parts.append("trig")
    if instr.ann.sdq_data:
        parts.append("sdq")
    return f"[{','.join(parts)}]" if parts else ""


def disassemble(
    instructions: Sequence[Instruction],
    with_annotations: bool = False,
    with_index: bool = True,
) -> str:
    """Disassemble a whole text segment to a multi-line listing."""
    lines = []
    for i, instr in enumerate(instructions):
        text = disassemble_instruction(instr)
        prefix = f"{i:5d}:  " if with_index else ""
        suffix = ""
        if with_annotations:
            tag = annotation_tag(instr)
            if tag:
                suffix = " " * max(1, 30 - len(text)) + tag
        if instr.comment:
            suffix += f"  ; {instr.comment}"
        lines.append(f"{prefix}{text}{suffix}")
    return "\n".join(lines)
