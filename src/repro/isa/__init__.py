"""The reproduction ISA: a 64-bit PISA/MIPS-flavoured RISC.

Public surface:

* :mod:`repro.isa.registers` — register file layout and naming.
* :class:`repro.isa.Op` / :class:`repro.isa.OpInfo` — opcodes and metadata.
* :class:`repro.isa.Instruction` — the static instruction record, carrying
  the HiDISC annotation field (:class:`repro.isa.Annotations`).
* :mod:`repro.isa.encoding` — 64-bit binary encode/decode.
* :mod:`repro.isa.disasm` — disassembly for listings and diagnostics.
"""

from .instruction import Annotations, Instruction, Stream
from .opcodes import COMM_OPS, FP_CMP_OPS, FP_DEST_OPS, Format, FuClass, Op, OpInfo
from .registers import (
    FP_BASE,
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_REGS,
    ZERO,
    is_fp_reg,
    is_int_reg,
    parse_reg,
    reg_name,
)

__all__ = [
    "Annotations",
    "COMM_OPS",
    "FP_BASE",
    "FP_CMP_OPS",
    "FP_DEST_OPS",
    "Format",
    "FuClass",
    "Instruction",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "NUM_REGS",
    "Op",
    "OpInfo",
    "Stream",
    "ZERO",
    "is_fp_reg",
    "is_int_reg",
    "parse_reg",
    "reg_name",
]
