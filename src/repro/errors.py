"""Exception hierarchy for the HiDISC reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch simulator problems without masking genuine Python bugs
(``TypeError`` etc. propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class AssemblyError(ReproError):
    """Raised by the assembler for malformed source text.

    Carries the line number when available so messages are actionable.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded/decoded."""


class SimulationError(ReproError):
    """Raised for illegal operations during simulation (bad address, ...)."""


class CycleLimitError(SimulationError):
    """A timing simulation exceeded its cycle budget.

    Carries enough context (benchmark, machine mode, the limit) that the
    message names the knob to raise: ``MachineConfig.max_cycles`` /
    ``hidisc --max-cycles``.
    """

    def __init__(self, benchmark: str, mode: str, max_cycles: int,
                 cycle: int | None = None):
        self.benchmark = benchmark
        self.mode = mode
        self.max_cycles = max_cycles
        super().__init__(
            f"{benchmark or '<unnamed>'}: exceeded {max_cycles} cycles on "
            f"{mode} — raise the limit with MachineConfig.max_cycles or "
            f"the --max-cycles CLI flag if the workload is genuinely this "
            f"long"
        )


class DeadlockError(SimulationError):
    """The timing machine made no progress and never can again.

    Raised by :class:`repro.resilience.ProgressWatchdog` with a forensic
    *dump* (per-core window heads, queue occupancy, outstanding misses,
    injected faults) so a queue-plan bug or an injected transfer drop can
    be diagnosed from the exception alone.
    """

    def __init__(self, message: str, dump: dict | None = None):
        self.dump = dump if dump is not None else {}
        super().__init__(message)


class VerificationError(SimulationError):
    """Timing-mode execution diverged from the functional oracle.

    Carries the individual *mismatches* (register, memory page, store
    order or commit-stream violations) found by
    :mod:`repro.resilience.oracle`.
    """

    def __init__(self, message: str, mismatches: list[str] | None = None):
        self.mismatches = list(mismatches) if mismatches else []
        detail = ""
        if self.mismatches:
            shown = self.mismatches[:8]
            detail = "\n  - " + "\n  - ".join(shown)
            if len(self.mismatches) > len(shown):
                detail += f"\n  ... and {len(self.mismatches) - len(shown)} more"
        super().__init__(message + detail)


class SamplingError(SimulationError):
    """Sampled simulation was requested in an unsupported combination.

    Fault injection and the co-simulation oracle both need every cycle
    simulated in detail (faults key off absolute event ordinals; the
    oracle replays the full commit stream), so combining them with a
    :class:`~repro.config.SamplingPlan` raises this instead of silently
    producing results that look verified but are not.
    """


class MemoryFault(SimulationError):
    """Out-of-range or misaligned memory access."""

    def __init__(self, address: int, reason: str = "out of range"):
        self.address = address
        super().__init__(f"memory fault at 0x{address:x}: {reason}")


class QueueProtocolError(SimulationError):
    """Queue pop on empty / push on full in a context where that is a bug
    (functional checking), as opposed to a stall (timing simulation)."""


class SlicingError(ReproError):
    """Raised when stream separation produces an inconsistent program."""


class ValidationError(SlicingError):
    """An annotated program violates a HiDISC invariant."""


class ConfigError(ReproError):
    """Invalid machine or experiment configuration."""


class InterruptedRun(ReproError):
    """A run was stopped at a safe point by SIGINT/SIGTERM.

    Raised by :func:`repro.experiments.interrupt.poll` at cell boundaries
    once a graceful-interrupt handler has seen a signal — completed cells
    are already checkpointed, so a subsequent ``--resume`` (or a service
    worker re-claiming the job) continues without recomputing them.
    Carries the *signal* name so ledger records and job events can say
    what stopped the run.
    """

    def __init__(self, signal_name: str = "SIGINT"):
        self.signal_name = signal_name
        super().__init__(
            f"run interrupted by {signal_name} — completed cells are "
            f"checkpointed; resume with --resume (or let the service "
            f"re-lease the job) to continue without recomputation"
        )


class ServiceError(ReproError):
    """Job-service failure (queue, lease, worker, or HTTP front end)."""


class BackpressureError(ServiceError):
    """A job submission was rejected by admission control.

    Carries the configured *depth* limit so clients can render an
    actionable message (and an HTTP 429 with a Retry-After hint).
    """

    def __init__(self, depth: int, limit: int):
        self.depth = depth
        self.limit = limit
        super().__init__(
            f"job queue is full ({depth} pending >= limit {limit}) — "
            f"retry after the backlog drains or raise --max-depth"
        )


class JobCancelled(ServiceError):
    """A leased job observed its cancellation marker and stopped."""


class WorkloadError(ReproError):
    """Workload construction or self-check failure."""
