"""Exception hierarchy for the HiDISC reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch simulator problems without masking genuine Python bugs
(``TypeError`` etc. propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class AssemblyError(ReproError):
    """Raised by the assembler for malformed source text.

    Carries the line number when available so messages are actionable.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded/decoded."""


class SimulationError(ReproError):
    """Raised for illegal operations during simulation (bad address, ...)."""


class MemoryFault(SimulationError):
    """Out-of-range or misaligned memory access."""

    def __init__(self, address: int, reason: str = "out of range"):
        self.address = address
        super().__init__(f"memory fault at 0x{address:x}: {reason}")


class QueueProtocolError(SimulationError):
    """Queue pop on empty / push on full in a context where that is a bug
    (functional checking), as opposed to a stall (timing simulation)."""


class SlicingError(ReproError):
    """Raised when stream separation produces an inconsistent program."""


class ValidationError(SlicingError):
    """An annotated program violates a HiDISC invariant."""


class ConfigError(ReproError):
    """Invalid machine or experiment configuration."""


class WorkloadError(ReproError):
    """Workload construction or self-check failure."""
