"""The trace-driven out-of-order-window timing core.

One :class:`TimingCore` models one processor (superscalar, CP, AP or CMP):

* **dispatch** — pull instructions from the core's instruction queue into
  the scheduling window (the RUU in SimpleScalar terms), computing the
  dependence edges at that moment: register dependences via a per-core
  last-writer map, memory dependences via a last-store map, and queue
  dependences (LDQ/SDQ matching and capacity) from the machine's
  :class:`~repro.sim.trace.QueuePlan`.
* **issue** — oldest-first wakeup/select, limited by issue width,
  functional-unit issue bandwidth and memory ports.  Memory operations
  access the shared :class:`~repro.sim.hierarchy.MemoryHierarchy` at issue
  time and complete when the (possibly merged) fill lands.
* **commit** — in-order retirement, up to the commit width.

Scheduling is **event-driven** (wakeup lists, not polling): every window
entry carries a ``pending`` count of incomplete producers, computed once at
dispatch; for each still-incomplete producer the entry registers on the
machine's per-gid wakeup list.  When a completion lands (the machine's
completion calendar fires the producer's bucket — see
:meth:`repro.sim.decoupled.Machine._land_completions`), waiting consumers
decrement ``pending`` and, on reaching zero, move into the core's
age-ordered **ready pool**.  ``issue`` therefore walks only ready entries
— never the whole window — and stall classification reads the head's
cached counters instead of re-polling every dependence.

This is cycle-for-cycle identical to the old polling scheduler: readiness
is monotonic (``complete_at`` is written exactly once per gid, always in
the strict future, and ``min_ready`` is non-decreasing in dispatch order
within a core), so pushing readiness at completion time selects exactly
the entries the per-cycle re-scan used to find.

All cross-instruction communication goes through the machine-owned
``complete_at`` array indexed by *global id*, so dependences freely cross
cores (a CP pop waits on an AP push) and CMAS copies on the CMP wait on
nothing outside their own thread.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush

from ..config import CoreConfig
from ..isa.instruction import Instruction
from ..telemetry.cpi import new_stack
from .fu import FuPools

_STORE_GRANULE = ~7  # memory dependences tracked at 8-byte granularity


class WindowEntry:
    """One in-flight instruction in a core's scheduling window."""

    __slots__ = ("gid", "seq", "pos", "instr", "addr", "deps", "min_ready",
                 "issued", "is_prefetch", "wait_class", "pending",
                 "block_class", "owner", "d")

    def __init__(self, gid: int, pos: int, instr: Instruction, addr: int,
                 deps: list[int], min_ready: int, is_prefetch: bool,
                 seq: int = 0):
        self.gid = gid
        #: per-core dispatch sequence number — the age order the ready pool
        #: and issue arbitration preserve.
        self.seq = seq
        self.pos = pos
        self.instr = instr
        self.addr = addr
        self.deps = deps
        self.min_ready = min_ready
        self.issued = False
        self.is_prefetch = is_prefetch
        #: CPI-stack bucket to charge while this entry stalls retirement
        #: after issue ('mem_l1'/'mem_l2'/'mem_mem'; None means 'execute').
        #: Only filled in when CPI telemetry is on.
        self.wait_class: str | None = None
        #: number of producers whose completion has not yet landed; the
        #: entry enters the ready pool when this reaches zero.
        self.pending = 0
        #: lazily cached dependence-stall classification ('ldq_empty',
        #: 'queue_full', 'sdq_empty' or 'data_dep') — computed from static
        #: flags on first use, so repeated stall cycles pay one attribute
        #: read instead of re-deriving it.
        self.block_class: str | None = None
        #: owning TimingCore (set at dispatch; the machine's completion
        #: landing uses it to route woken entries into the right pool).
        self.owner = None
        #: the static :class:`~repro.sim.decode.DecodedOp` record for this
        #: instruction (set at dispatch; issue and telemetry read the
        #: pre-resolved FU index, latency and queue flags from it).
        self.d = None


class CoreStats:
    """Per-core pipeline statistics."""

    __slots__ = ("committed", "issued_mem", "stall_cycles",
                 "ldq_empty_stalls", "sdq_empty_stalls", "queue_full_stalls",
                 "max_window")

    def __init__(self) -> None:
        self.committed = 0
        self.issued_mem = 0
        self.stall_cycles = 0
        self.ldq_empty_stalls = 0
        self.sdq_empty_stalls = 0
        self.queue_full_stalls = 0
        self.max_window = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class TimingCore:
    """One processor's pipeline; see the module docstring."""

    def __init__(self, name: str, config: CoreConfig, machine) -> None:
        self.name = name
        self.config = config
        self.machine = machine
        self.fu = FuPools(config)
        self.window: deque[WindowEntry] = deque()
        #: age-ordered pool of dispatched, dependence-free entries awaiting
        #: an issue slot: a heap of (seq, entry), so the oldest ready entry
        #: is always at the top.
        self.ready: list[tuple[int, WindowEntry]] = []
        self._seq = 0
        #: (gid, pos, min_ready, thread_last_writer-or-None) awaiting dispatch
        self.instr_queue: deque = deque()
        self.instr_queue_capacity = machine.instr_queue_capacity(name)
        self.last_writer: dict[int, int] = {}
        self.last_store: dict[int, int] = {}
        self.stats = CoreStats()
        self.is_prefetch_core = name == "CMP"
        # Telemetry switches, latched once so the disabled hot path pays a
        # single attribute test (the machine sets its _tel_* flags before
        # constructing cores).
        self._cpi_on: bool = getattr(machine, "_tel_cpi", False)
        self._events_on: bool = getattr(machine, "_tel_events", False)
        # CMAS copies on the CMP run outside the LDQ/SDQ protocol, so the
        # CMP never moves queue occupancy.
        self._q_track: bool = (getattr(machine, "_tel_queues", False)
                               and not self.is_prefetch_core)
        #: per-dynamic-instruction lifecycle collector (None in normal
        #: runs; a pure observer — it never feeds back into scheduling).
        self._life = getattr(machine, "_life", None)
        self._tel_issue: bool = (self._events_on or self._q_track
                                 or self._life is not None)
        # Resilience hooks, latched like the telemetry switches (both are
        # None in normal runs, so the hot paths pay one local test).
        self._faults = getattr(machine, "faults", None)
        self._commit_log = getattr(machine, "commit_log", None)
        self.cpi: dict[str, int] = new_stack()
        self._last_bucket = "frontend"
        self._committed_now = 0
        l1 = machine.hierarchy.l1.config.latency
        self._lat_l1 = l1
        self._lat_l1l2 = l1 + machine.hierarchy.l2.config.latency

    # ------------------------------------------------------------------
    def queue_has_room(self, count: int = 1) -> bool:
        return len(self.instr_queue) + count <= self.instr_queue_capacity

    def enqueue(self, gid: int, pos: int, min_ready: int,
                extra_deps: tuple[int, ...] = ()) -> None:
        self.instr_queue.append((gid, pos, min_ready, extra_deps))

    @property
    def drained(self) -> bool:
        return not self.instr_queue and not self.window

    # ------------------------------------------------------------------
    def dispatch(self, now: int) -> int:
        """Move instructions from the queue into the window; returns count.

        Besides building the dependence edges, dispatch *registers* the
        entry for wakeup: producers whose completion has not landed yet get
        the entry appended to their wakeup list, and entries with no such
        producer go straight into the ready pool.
        """
        machine = self.machine
        trace = machine.trace
        decoded = machine.decoded
        plan = machine.queue_plan
        complete_at = machine.complete_at
        wakeup = machine.wakeup
        instr_queue = self.instr_queue
        window = self.window
        ready = self.ready
        lw = self.last_writer
        last_store = self.last_store
        is_prefetch = self.is_prefetch_core
        # CMAS copies on the CMP run outside the LDQ/SDQ protocol (the CMP
        # only updates cache state) and carry no memory-order edges.
        use_plan = plan is not None and not is_prefetch
        track_mem = not is_prefetch
        q_track = self._q_track
        life = self._life
        ldq_cap = machine.ldq_capacity
        sdq_cap = machine.sdq_capacity
        pop = instr_queue.popleft
        seq = self._seq
        dispatched = 0
        width = self.config.issue_width
        window_cap = self.config.window
        while (instr_queue and dispatched < width
               and len(window) < window_cap):
            gid, pos, min_ready, extra_deps = pop()
            dyn = trace[pos]
            d = decoded[dyn.pc]
            deps: list[int] = list(extra_deps) if extra_deps else []
            # Register sources — "$LDQ"-flagged operands were dropped from
            # ``d.srcs`` at decode (their value arrives through the queue).
            for reg in d.srcs:
                producer = lw.get(reg)
                if producer is not None:
                    deps.append(producer)
            if use_plan and d.has_queue:
                if d.reads_ldq_any:
                    deps.extend(plan.ldq_match[pos])
                elif d.ldq_push:
                    slot = plan.ldq_push_seq[pos] - ldq_cap
                    if slot >= 0:
                        deps.append(plan.ldq_pop_pos[slot])
                if d.sdq_push:
                    slot = plan.sdq_push_seq[pos] - sdq_cap
                    if slot >= 0:
                        deps.append(plan.sdq_pop_pos[slot])
                elif d.sdq_pop:
                    deps.append(plan.sdq_match[pos])
            if q_track and d.sdq_pop:
                # The store's address sits in the SAQ from dispatch until
                # the SDQ data arrives and the store issues.
                machine.queue_delta("SAQ", 1, now)
            if track_mem and d.is_mem:
                granule = dyn.addr & _STORE_GRANULE
                producer = last_store.get(granule)
                if producer is not None:
                    deps.append(producer)
                if d.is_store:
                    last_store[granule] = gid
            dest = d.dest
            if dest is not None:
                lw[dest] = gid
            entry = WindowEntry(gid, pos, d.instr, dyn.addr, deps, min_ready,
                                is_prefetch, seq)
            entry.owner = self
            entry.d = d
            entry.block_class = d.block_class
            seq += 1
            # Wakeup registration: count producers whose completion has not
            # landed; each one holds a reference back to this entry.
            pending = 0
            for dep in deps:
                t = complete_at[dep]
                if t is None or t > now:
                    pending += 1
                    waiters = wakeup.get(dep)
                    if waiters is None:
                        wakeup[dep] = [entry]
                    else:
                        waiters.append(entry)
            entry.pending = pending
            if not pending:
                heappush(ready, (entry.seq, entry))
            window.append(entry)
            if life is not None:
                life.on_dispatch(gid, now, not pending)
            dispatched += 1
        self._seq = seq
        if len(window) > self.stats.max_window:
            self.stats.max_window = len(window)
        return dispatched

    # ------------------------------------------------------------------
    def issue(self, now: int) -> int:
        """Oldest-first select over the ready pool; returns number issued.

        Entries here have no outstanding dependences, so the only per-entry
        checks left are ``min_ready`` (a front-end pipeline floor that is
        non-decreasing in age order — once the head is too young, everything
        younger is too) and FU/port arbitration.  FU-starved entries stay in
        the pool for the next cycle.
        """
        ready = self.ready
        if not ready:
            return 0
        if ready[0][1].min_ready > now:
            return 0
        machine = self.machine
        complete_at = machine.complete_at
        calendar = machine.calendar
        cal_heap = machine.cal_heap
        hierarchy = machine.hierarchy
        access = hierarchy.access
        stats = self.stats
        cpi_on = self._cpi_on
        tel_issue = self._tel_issue
        lat_l1 = self._lat_l1
        faults = self._faults if not self.is_prefetch_core else None
        self.fu.new_cycle()
        fu_take = self.fu.take_idx
        issued = 0
        width = self.config.issue_width
        deferred: list[tuple[int, WindowEntry]] | None = None
        while ready and issued < width:
            item = ready[0]
            entry = item[1]
            if entry.min_ready > now:
                break
            heappop(ready)
            d = entry.d
            if not fu_take(d.fu):
                if deferred is None:
                    deferred = [item]
                else:
                    deferred.append(item)
                continue
            if d.is_mem:
                is_store = d.is_store
                latency = access(
                    entry.addr, is_write=is_store, now=now,
                    is_prefetch=entry.is_prefetch,
                )
                if is_store:
                    # Stores drain through a store buffer: the pipeline does
                    # not wait for the fill, only for the L1 write port.
                    latency = lat_l1
                stats.issued_mem += 1
                if cpi_on:
                    if latency <= lat_l1:
                        entry.wait_class = "mem_l1"
                    elif latency <= self._lat_l1l2:
                        entry.wait_class = "mem_l2"
                    else:
                        entry.wait_class = "mem_mem"
            else:
                latency = d.latency
            if faults is not None and d.queue_push:
                extra = faults.on_queue_push(entry.gid)
                if extra is None:
                    # Transfer dropped: the completion never lands, so the
                    # consumer starves and the watchdog raises a forensic
                    # DeadlockError — never a silent result.
                    entry.issued = True
                    issued += 1
                    continue
                latency += extra
            entry.issued = True
            gid = entry.gid
            t = now + latency
            complete_at[gid] = t
            # Completion calendar: bucket this completion so the machine
            # lands it (and wakes its consumers) exactly at cycle t.
            bucket = calendar.get(t)
            if bucket is None:
                calendar[t] = [gid]
                heappush(cal_heap, t)
            else:
                bucket.append(gid)
            issued += 1
            if tel_issue:
                self._on_issue(entry, d, now, latency)
            if d.is_control:
                machine.note_branch_issue(gid, t)
        if deferred:
            for item in deferred:
                heappush(ready, item)
        return issued

    def _on_issue(self, entry: WindowEntry, d, now: int,
                  latency: int) -> None:
        """Telemetry tap at issue: event emission + queue-flow counters."""
        machine = self.machine
        if self._life is not None:
            self._life.on_issue(entry.gid, now, latency, d.is_mem)
        if self._events_on:
            args = {"gid": entry.gid, "pos": entry.pos}
            if d.is_mem:
                args["addr"] = entry.addr
            machine.sink.duration(self.name, d.mnemonic, now, latency, args)
        if self._q_track:
            if d.ldq_push:
                machine.queue_delta("LDQ", 1, now)
            if d.ldq_pops:
                machine.queue_delta("LDQ", -d.ldq_pops, now)
            if d.sdq_push:
                machine.queue_delta("SDQ", 1, now)
            elif d.sdq_pop:
                machine.queue_delta("SDQ", -1, now)
                machine.queue_delta("SAQ", -1, now)

    # ------------------------------------------------------------------
    def commit(self, now: int) -> int:
        """In-order retirement from the window head; returns count."""
        complete_at = self.machine.complete_at
        commit_log = self._commit_log
        life = self._life
        committed = 0
        window = self.window
        pop = window.popleft
        while window and committed < self.config.commit_width:
            head = window[0]
            t = complete_at[head.gid] if head.issued else None
            if t is None or t > now:
                break
            pop()
            committed += 1
            if commit_log is not None:
                commit_log.append((self.name, head.gid, head.pos))
            if life is not None:
                life.on_commit(head.gid, now)
        self.stats.committed += committed
        self._committed_now = committed
        if committed == 0 and window:
            self.stats.stall_cycles += 1
            self._attribute_stall(window[0], now)
        return committed

    @staticmethod
    def _block_reason(head: WindowEntry) -> str:
        """Why a dependence-blocked head is blocked (from static flags)."""
        info = head.instr.op.info
        ann = head.instr.ann
        if info.reads_ldq or ann.ldq_rs1 or ann.ldq_rs2:
            return "ldq_empty"
        if info.writes_ldq or info.writes_sdq or ann.to_ldq or ann.to_sdq:
            return "queue_full"
        if head.instr.is_store and ann.sdq_data:
            return "sdq_empty"
        return "data_dep"

    def _attribute_stall(self, head: WindowEntry, now: int) -> None:
        """Classify why the window head has not retired (LoD accounting).

        The head's ``pending`` counter already says whether a producer's
        completion is outstanding, and the blocked-reason is a static
        property of the instruction, cached on first use — no dependence
        re-polling.
        """
        if head.issued or not head.pending:
            return
        reason = head.block_class
        if reason is None:
            reason = head.block_class = self._block_reason(head)
        if reason == "ldq_empty":
            self.stats.ldq_empty_stalls += 1
        elif reason == "queue_full":
            self.stats.queue_full_stalls += 1
        elif reason == "sdq_empty":
            self.stats.sdq_empty_stalls += 1

    # ------------------------------------------------------------------
    # CPI-stack accounting (telemetry; see repro.telemetry.cpi).
    # ------------------------------------------------------------------
    def reset_cpi(self) -> None:
        self.cpi = new_stack()

    def classify_cycle(self, now: int) -> None:
        """Charge this cycle to exactly one CPI-stack component.

        Called by the machine once per simulated cycle (the machine
        replicates the last classification across dead-time clock skips,
        where by construction nothing changes), so the components of
        :attr:`cpi` always sum to the measured cycle count.
        """
        if self._committed_now:
            self.cpi["base"] += 1
            self._last_bucket = "base"
            return
        machine = self.machine
        window = self.window
        if not window:
            if self.instr_queue:
                bucket = "frontend"
            elif machine.fetch_done:
                bucket = "drained"
            elif machine._waiting_branch is not None:
                bucket = "branch_recovery"
            else:
                bucket = "instr_queue_empty"
        else:
            head = window[0]
            if head.issued:
                bucket = head.wait_class or "execute"
            elif head.min_ready > now:
                bucket = "frontend"
            elif not head.pending:
                bucket = "fu_contention"
            else:
                bucket = head.block_class
                if bucket is None:
                    bucket = head.block_class = self._block_reason(head)
        self.cpi[bucket] += 1
        self._last_bucket = bucket
