"""The trace-driven out-of-order-window timing core.

One :class:`TimingCore` models one processor (superscalar, CP, AP or CMP):

* **dispatch** — pull instructions from the core's instruction queue into
  the scheduling window (the RUU in SimpleScalar terms), computing the
  dependence edges at that moment: register dependences via a per-core
  last-writer map, memory dependences via a last-store map, and queue
  dependences (LDQ/SDQ matching and capacity) from the machine's
  :class:`~repro.sim.trace.QueuePlan`.
* **issue** — oldest-first wakeup/select over the window, limited by issue
  width, functional-unit issue bandwidth and memory ports.  Memory
  operations access the shared :class:`~repro.sim.hierarchy.MemoryHierarchy`
  at issue time and complete when the (possibly merged) fill lands.
* **commit** — in-order retirement, up to the commit width.

All cross-instruction communication goes through the machine-owned
``complete_at`` array indexed by *global id*, so dependences freely cross
cores (a CP pop waits on an AP push) and CMAS copies on the CMP wait on
nothing outside their own thread.
"""

from __future__ import annotations

from collections import deque

from ..config import CoreConfig
from ..isa.instruction import Instruction
from ..isa.opcodes import FuClass, Op
from ..telemetry.cpi import new_stack
from .fu import FuPools

_STORE_GRANULE = ~7  # memory dependences tracked at 8-byte granularity


class WindowEntry:
    """One in-flight instruction in a core's scheduling window."""

    __slots__ = ("gid", "pos", "instr", "addr", "deps", "min_ready",
                 "issued", "is_prefetch", "wait_class")

    def __init__(self, gid: int, pos: int, instr: Instruction, addr: int,
                 deps: list[int], min_ready: int, is_prefetch: bool):
        self.gid = gid
        self.pos = pos
        self.instr = instr
        self.addr = addr
        self.deps = deps
        self.min_ready = min_ready
        self.issued = False
        self.is_prefetch = is_prefetch
        #: CPI-stack bucket to charge while this entry stalls retirement
        #: after issue ('mem_l1'/'mem_l2'/'mem_mem'; None means 'execute').
        #: Only filled in when CPI telemetry is on.
        self.wait_class: str | None = None


class CoreStats:
    """Per-core pipeline statistics."""

    __slots__ = ("committed", "issued_mem", "stall_cycles",
                 "ldq_empty_stalls", "sdq_empty_stalls", "queue_full_stalls",
                 "max_window")

    def __init__(self) -> None:
        self.committed = 0
        self.issued_mem = 0
        self.stall_cycles = 0
        self.ldq_empty_stalls = 0
        self.sdq_empty_stalls = 0
        self.queue_full_stalls = 0
        self.max_window = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class TimingCore:
    """One processor's pipeline; see the module docstring."""

    def __init__(self, name: str, config: CoreConfig, machine) -> None:
        self.name = name
        self.config = config
        self.machine = machine
        self.fu = FuPools(config)
        self.window: deque[WindowEntry] = deque()
        #: (gid, pos, min_ready, thread_last_writer-or-None) awaiting dispatch
        self.instr_queue: deque = deque()
        self.instr_queue_capacity = machine.instr_queue_capacity(name)
        self.last_writer: dict[int, int] = {}
        self.last_store: dict[int, int] = {}
        self.stats = CoreStats()
        self.is_prefetch_core = name == "CMP"
        # Telemetry switches, latched once so the disabled hot path pays a
        # single attribute test (the machine sets its _tel_* flags before
        # constructing cores).
        self._cpi_on: bool = getattr(machine, "_tel_cpi", False)
        self._events_on: bool = getattr(machine, "_tel_events", False)
        # CMAS copies on the CMP run outside the LDQ/SDQ protocol, so the
        # CMP never moves queue occupancy.
        self._q_track: bool = (getattr(machine, "_tel_queues", False)
                               and not self.is_prefetch_core)
        self._tel_issue: bool = self._events_on or self._q_track
        # Resilience hooks, latched like the telemetry switches (both are
        # None in normal runs, so the hot paths pay one local test).
        self._faults = getattr(machine, "faults", None)
        self._commit_log = getattr(machine, "commit_log", None)
        self.cpi: dict[str, int] = new_stack()
        self._last_bucket = "frontend"
        self._committed_now = 0
        l1 = machine.hierarchy.l1.config.latency
        self._lat_l1 = l1
        self._lat_l1l2 = l1 + machine.hierarchy.l2.config.latency

    # ------------------------------------------------------------------
    def queue_has_room(self, count: int = 1) -> bool:
        return len(self.instr_queue) + count <= self.instr_queue_capacity

    def enqueue(self, gid: int, pos: int, min_ready: int,
                extra_deps: tuple[int, ...] = ()) -> None:
        self.instr_queue.append((gid, pos, min_ready, extra_deps))

    @property
    def drained(self) -> bool:
        return not self.instr_queue and not self.window

    # ------------------------------------------------------------------
    def dispatch(self, now: int) -> int:
        """Move instructions from the queue into the window; returns count."""
        machine = self.machine
        trace = machine.trace
        text = machine.text_for(self)
        plan = machine.queue_plan
        dispatched = 0
        width = self.config.issue_width
        while (self.instr_queue and dispatched < width
               and len(self.window) < self.config.window):
            gid, pos, min_ready, extra_deps = self.instr_queue[0]
            dyn = trace[pos]
            instr = text[dyn.pc]
            lw = self.last_writer
            ann = instr.ann
            deps: list[int] = list(extra_deps) if extra_deps else []
            # Register sources — "$LDQ"-flagged operands take their value
            # (and dependence) from the queue instead of the register file.
            if ann.ldq_rs1 or ann.ldq_rs2:
                srcs = [
                    reg for reg, flagged in
                    ((instr.rs1, ann.ldq_rs1), (instr.rs2, ann.ldq_rs2))
                    if not flagged and reg != 0
                    and reg in set(instr.source_regs())
                ]
            else:
                srcs = instr.source_regs()
            for reg in srcs:
                producer = lw.get(reg)
                if producer is not None:
                    deps.append(producer)
            info = instr.op.info
            # Queue dependences: CMAS copies on the CMP run outside the
            # LDQ/SDQ protocol (the CMP only updates cache state).
            if plan is not None and not self.is_prefetch_core:
                if info.reads_ldq or ann.ldq_rs1 or ann.ldq_rs2:
                    deps.extend(plan.ldq_match[pos])
                elif info.writes_ldq or (instr.is_load and ann.to_ldq):
                    seq = plan.ldq_push_seq[pos]
                    slot = seq - machine.ldq_capacity
                    if slot >= 0:
                        deps.append(plan.ldq_pop_pos[slot])
                if info.writes_sdq or ann.to_sdq:
                    seq = plan.sdq_push_seq[pos]
                    slot = seq - machine.sdq_capacity
                    if slot >= 0:
                        deps.append(plan.sdq_pop_pos[slot])
                elif instr.is_store and ann.sdq_data:
                    deps.append(plan.sdq_match[pos])
            is_prefetch = self.is_prefetch_core
            if instr.is_mem and not is_prefetch:
                granule = dyn.addr & _STORE_GRANULE
                producer = self.last_store.get(granule)
                if producer is not None:
                    deps.append(producer)
                if instr.is_store:
                    self.last_store[granule] = gid
            dest = instr.dest_reg()
            if dest is not None:
                lw[dest] = gid
            if self._q_track and instr.is_store and ann.sdq_data:
                # The store's address sits in the SAQ from dispatch until
                # the SDQ data arrives and the store issues.
                machine.queue_delta("SAQ", 1, now)
            self.instr_queue.popleft()
            self.window.append(
                WindowEntry(gid, pos, instr, dyn.addr, deps, min_ready,
                            is_prefetch)
            )
            dispatched += 1
        if len(self.window) > self.stats.max_window:
            self.stats.max_window = len(self.window)
        return dispatched

    # ------------------------------------------------------------------
    def issue(self, now: int) -> int:
        """Wakeup/select over the window; returns number issued."""
        machine = self.machine
        complete_at = machine.complete_at
        hierarchy = machine.hierarchy
        self.fu.new_cycle()
        issued = 0
        width = self.config.issue_width
        for entry in self.window:
            if issued >= width:
                break
            if entry.issued or entry.min_ready > now:
                continue
            ready = True
            for dep in entry.deps:
                t = complete_at[dep]
                if t is None or t > now:
                    ready = False
                    break
            if not ready:
                continue
            info = entry.instr.op.info
            fu = info.fu
            if not self.fu.take(fu):
                continue
            if info.is_load or info.is_store:
                latency = hierarchy.access(
                    entry.addr, is_write=info.is_store, now=now,
                    is_prefetch=entry.is_prefetch,
                )
                if info.is_store:
                    # Stores drain through a store buffer: the pipeline does
                    # not wait for the fill, only for the L1 write port.
                    latency = hierarchy.l1.config.latency
                self.stats.issued_mem += 1
                if self._cpi_on:
                    if latency <= self._lat_l1:
                        entry.wait_class = "mem_l1"
                    elif latency <= self._lat_l1l2:
                        entry.wait_class = "mem_l2"
                    else:
                        entry.wait_class = "mem_mem"
            else:
                latency = info.latency
            if self._faults is not None and not self.is_prefetch_core:
                ann = entry.instr.ann
                if (info.writes_ldq or info.writes_sdq or ann.to_sdq
                        or (info.is_load and ann.to_ldq)):
                    extra = self._faults.on_queue_push(entry.gid)
                    if extra is None:
                        # Transfer dropped: the completion never lands, so
                        # the consumer starves and the watchdog raises a
                        # forensic DeadlockError — never a silent result.
                        entry.issued = True
                        issued += 1
                        continue
                    latency += extra
            entry.issued = True
            complete_at[entry.gid] = now + latency
            issued += 1
            if self._tel_issue:
                self._on_issue(entry, info, now, latency)
            if entry.instr.is_control:
                machine.note_branch_issue(entry.gid, now + latency)
        return issued

    def _on_issue(self, entry: WindowEntry, info, now: int,
                  latency: int) -> None:
        """Telemetry tap at issue: event emission + queue-flow counters."""
        machine = self.machine
        instr = entry.instr
        if self._events_on:
            args = {"gid": entry.gid, "pos": entry.pos}
            if info.is_load or info.is_store:
                args["addr"] = entry.addr
            machine.sink.duration(self.name, instr.op.mnemonic, now,
                                  latency, args)
        if self._q_track:
            ann = instr.ann
            if info.writes_ldq or (info.is_load and ann.to_ldq):
                machine.queue_delta("LDQ", 1, now)
            pops = int(info.reads_ldq) + int(ann.ldq_rs1) + int(ann.ldq_rs2)
            if pops:
                machine.queue_delta("LDQ", -pops, now)
            if info.writes_sdq or ann.to_sdq:
                machine.queue_delta("SDQ", 1, now)
            elif info.is_store and ann.sdq_data:
                machine.queue_delta("SDQ", -1, now)
                machine.queue_delta("SAQ", -1, now)

    # ------------------------------------------------------------------
    def commit(self, now: int) -> int:
        """In-order retirement from the window head; returns count."""
        complete_at = self.machine.complete_at
        committed = 0
        window = self.window
        while window and committed < self.config.commit_width:
            head = window[0]
            t = complete_at[head.gid] if head.issued else None
            if t is None or t > now:
                break
            window.popleft()
            committed += 1
            if self._commit_log is not None:
                self._commit_log.append((self.name, head.gid, head.pos))
        self.stats.committed += committed
        self._committed_now = committed
        if committed == 0 and window:
            self.stats.stall_cycles += 1
            self._attribute_stall(window[0], now)
        return committed

    def _attribute_stall(self, head: WindowEntry, now: int) -> None:
        """Classify why the window head has not retired (LoD accounting)."""
        if head.issued:
            return
        complete_at = self.machine.complete_at
        info = head.instr.op.info
        blocked = any(
            complete_at[d] is None or complete_at[d] > now for d in head.deps
        )
        if not blocked:
            return
        ann = head.instr.ann
        if info.reads_ldq or ann.ldq_rs1 or ann.ldq_rs2:
            self.stats.ldq_empty_stalls += 1
        elif info.writes_ldq or info.writes_sdq or ann.to_ldq or ann.to_sdq:
            self.stats.queue_full_stalls += 1
        elif head.instr.is_store and ann.sdq_data:
            self.stats.sdq_empty_stalls += 1

    # ------------------------------------------------------------------
    # CPI-stack accounting (telemetry; see repro.telemetry.cpi).
    # ------------------------------------------------------------------
    def reset_cpi(self) -> None:
        self.cpi = new_stack()

    def classify_cycle(self, now: int) -> None:
        """Charge this cycle to exactly one CPI-stack component.

        Called by the machine once per simulated cycle (the machine
        replicates the last classification across dead-time clock skips,
        where by construction nothing changes), so the components of
        :attr:`cpi` always sum to the measured cycle count.
        """
        if self._committed_now:
            self.cpi["base"] += 1
            self._last_bucket = "base"
            return
        machine = self.machine
        window = self.window
        if not window:
            if self.instr_queue:
                bucket = "frontend"
            elif machine.fetch_done:
                bucket = "drained"
            elif machine._waiting_branch is not None:
                bucket = "branch_recovery"
            else:
                bucket = "instr_queue_empty"
        else:
            head = window[0]
            if head.issued:
                bucket = head.wait_class or "execute"
            elif head.min_ready > now:
                bucket = "frontend"
            else:
                complete_at = machine.complete_at
                blocked = False
                for dep in head.deps:
                    t = complete_at[dep]
                    if t is None or t > now:
                        blocked = True
                        break
                if not blocked:
                    bucket = "fu_contention"
                else:
                    info = head.instr.op.info
                    ann = head.instr.ann
                    if info.reads_ldq or ann.ldq_rs1 or ann.ldq_rs2:
                        bucket = "ldq_empty"
                    elif (info.writes_ldq or info.writes_sdq
                          or ann.to_ldq or ann.to_sdq):
                        bucket = "queue_full"
                    elif head.instr.is_store and ann.sdq_data:
                        bucket = "sdq_empty"
                    else:
                        bucket = "data_dep"
        self.cpi[bucket] += 1
        self._last_bucket = bucket
