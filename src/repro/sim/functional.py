"""Functional (architectural) simulation.

Two executors live here:

* :class:`FunctionalSimulator` — the golden model.  Executes a program
  sequentially on one architectural state, optionally recording the dynamic
  trace that drives the timing simulators.

* :class:`DecoupledFunctionalSimulator` — executes an *annotated* program
  with **two register files** (CP and AP) connected only by the LDQ/SDQ
  queues, exactly like the real HiDISC datapath.  Each instruction executes
  on its stream's register file; values cross streams only through explicit
  communication instructions.  Running this and comparing final memory with
  the golden model is the soundness check for the stream separation
  (DESIGN.md "Separation soundness").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..asm.program import DATA_BASE, MEMORY_BYTES, STACK_TOP, Program
from ..errors import SimulationError
from ..isa.instruction import Instruction, Stream
from ..isa.opcodes import Op
from ..isa.registers import NAME_TO_REG, ZERO
from ..utils import sign_extend, to_signed64, to_unsigned64
from .memory import MainMemory
from .queues import QueueSet


class ArchState:
    """Registers + memory + pc of one logical processor."""

    __slots__ = ("regs", "memory", "pc", "halted")

    def __init__(self, memory: MainMemory):
        # Indices 0..31 integer registers (Python ints, canonical signed
        # 64-bit), 32..63 FP registers (Python floats).
        self.regs: list = [0] * 32 + [0.0] * 32
        self.memory = memory
        self.pc = 0
        self.halted = False

    def copy_registers_from(self, other: "ArchState") -> None:
        self.regs[:] = other.regs


def load_program(program: Program, memory: MainMemory | None = None) -> ArchState:
    """Create an architectural state with the program's data image loaded."""
    if memory is None:
        memory = MainMemory(MEMORY_BYTES)
    if program.data:
        memory.write_bytes(DATA_BASE, bytes(program.data))
    state = ArchState(memory)
    state.regs[NAME_TO_REG["sp"]] = STACK_TOP - 64
    state.pc = program.entry
    return state


@dataclass
class DynInstr:
    """One dynamic instruction instance (a trace record).

    ``pc`` is the static instruction index; ``addr`` the effective byte
    address for memory operations (-1 otherwise); ``next_pc`` the *actual*
    next instruction index (the branch oracle for the timing front-end).
    """

    __slots__ = ("pc", "addr", "next_pc")

    pc: int
    addr: int
    next_pc: int


class _Halt(Exception):
    """Internal signal: the program executed HALT."""


class FunctionalSimulator:
    """Sequential golden-model executor."""

    def __init__(self, program: Program, state: ArchState | None = None):
        self.program = program
        self.state = state if state is not None else load_program(program)
        self.instructions_executed = 0

    # ------------------------------------------------------------------
    def run(self, max_steps: int = 50_000_000,
            trace: list[DynInstr] | None = None,
            fast: bool = True) -> ArchState:
        """Run to HALT (or *max_steps*); optionally record the trace.

        *fast* selects the dispatch-table interpreter (pre-bound per-opcode
        step closures); ``fast=False`` forces the legacy if/elif loop.  The
        two are architecturally equivalent (pinned by
        ``tests/test_functional_fast.py``).
        """
        state = self.state
        text = self.program.text
        n = len(text)
        steps = 0
        if fast:
            table = [_compile_step(pc, instr, state, None)
                     for pc, instr in enumerate(text)]
            append = trace.append if trace is not None else None
            pc = state.pc
            try:
                while not state.halted:
                    if steps >= max_steps:
                        raise SimulationError(
                            f"{self.program.name}: exceeded {max_steps} "
                            f"steps (infinite loop?)"
                        )
                    if not 0 <= pc < n:
                        raise SimulationError(f"pc {pc} outside text segment")
                    addr, next_pc = table[pc]()
                    if append is not None:
                        append(DynInstr(pc, addr, next_pc))
                    state.pc = pc = next_pc
                    steps += 1
            except _Halt:
                state.halted = True
                if append is not None:
                    append(DynInstr(state.pc, -1, state.pc))
                steps += 1
            self.instructions_executed += steps
            return state
        try:
            while not state.halted:
                if steps >= max_steps:
                    raise SimulationError(
                        f"{self.program.name}: exceeded {max_steps} steps "
                        f"(infinite loop?)"
                    )
                pc = state.pc
                if not (0 <= pc < n):
                    raise SimulationError(f"pc {pc} outside text segment")
                instr = text[pc]
                addr, next_pc = _execute(instr, state, None)
                if trace is not None:
                    trace.append(DynInstr(pc, addr, next_pc))
                state.pc = next_pc
                steps += 1
        except _Halt:
            state.halted = True
            if trace is not None:
                trace.append(DynInstr(state.pc, -1, state.pc))
            steps += 1
        self.instructions_executed += steps
        return state


class DecoupledFunctionalSimulator:
    """Execute an annotated program on split CP/AP register files.

    The interleaved (sequential) instruction order is preserved — this is a
    *functional* model of the separator + two processors, not a timing
    model.  Architectural memory is shared (only the AP touches it).
    """

    def __init__(self, program: Program, queue_capacity: int = 10**9):
        self.program = program
        memory = MainMemory(MEMORY_BYTES)
        if program.data:
            memory.write_bytes(DATA_BASE, bytes(program.data))
        self.ap_state = ArchState(memory)
        self.cp_state = ArchState(memory)  # shares memory, never accesses it
        self.ap_state.regs[NAME_TO_REG["sp"]] = STACK_TOP - 64
        self.cp_state.regs[NAME_TO_REG["sp"]] = STACK_TOP - 64
        self.queues = QueueSet(queue_capacity, queue_capacity, queue_capacity)
        self.instructions_executed = 0

    def run(self, max_steps: int = 50_000_000,
            trace: list[DynInstr] | None = None,
            fast: bool = True) -> ArchState:
        """Run to HALT; returns the AP state (owner of memory).

        With *trace*, records the interleaved dynamic stream — this is the
        trace the decoupled timing models replay.  *fast* selects the
        dispatch-table interpreter; each static instruction's step closure
        is pre-bound to its stream's register file (an unannotated
        instruction still raises at execution time, not at build time).
        """
        program = self.program
        text = program.text
        n = len(text)
        ap, cp = self.ap_state, self.cp_state
        queues = self.queues
        pc = program.entry
        steps = 0
        if fast:
            table: list = []
            pc_states: list[ArchState | None] = []
            for spc, instr in enumerate(text):
                stream = instr.ann.stream
                st = (cp if stream is Stream.CS
                      else ap if stream is Stream.AS else None)
                pc_states.append(st)
                if st is None:
                    table.append(_missing_stream_step(spc))
                else:
                    table.append(_compile_step(spc, instr, st, queues))
            append = trace.append if trace is not None else None
            try:
                while True:
                    if steps >= max_steps:
                        raise SimulationError(
                            f"{program.name}: exceeded {max_steps} steps in "
                            f"decoupled functional run"
                        )
                    if not 0 <= pc < n:
                        raise SimulationError(f"pc {pc} outside text segment")
                    st = pc_states[pc]
                    if st is not None:
                        st.pc = pc
                    addr, next_pc = table[pc]()
                    if append is not None:
                        append(DynInstr(pc, addr, next_pc))
                    pc = next_pc
                    steps += 1
            except _Halt:
                ap.halted = True
                if append is not None:
                    append(DynInstr(pc, -1, pc))
                steps += 1
            self.instructions_executed += steps
            return ap
        try:
            while True:
                if steps >= max_steps:
                    raise SimulationError(
                        f"{program.name}: exceeded {max_steps} steps in "
                        f"decoupled functional run"
                    )
                if not (0 <= pc < n):
                    raise SimulationError(f"pc {pc} outside text segment")
                instr = text[pc]
                if instr.ann.stream is Stream.CS:
                    state = cp
                elif instr.ann.stream is Stream.AS:
                    state = ap
                else:
                    raise SimulationError(
                        f"instruction {pc} has no stream annotation; "
                        f"run the slicer first"
                    )
                state.pc = pc
                addr, next_pc = _execute(instr, state, queues)
                if trace is not None:
                    trace.append(DynInstr(pc, addr, next_pc))
                pc = next_pc
                steps += 1
        except _Halt:
            ap.halted = True
            if trace is not None:
                trace.append(DynInstr(pc, -1, pc))
            steps += 1
        self.instructions_executed += steps
        return ap


# ----------------------------------------------------------------------
# The interpreter core, shared by both executors.
#
# Returns (effective_address_or_-1, next_pc).  Raises _Halt on HALT.
# `queues` is None for the sequential golden model; communication opcodes
# are illegal there (the original program has none).
# ----------------------------------------------------------------------
def _execute(instr: Instruction, state: ArchState,
             queues: QueueSet | None) -> tuple[int, int]:
    op = instr.op
    regs = state.regs
    pc = state.pc
    next_pc = pc + 1
    addr = -1

    # "$LDQ" source operands (paper Figure 6): the value comes from the
    # queue, not the register file.  The register is temporarily shadowed
    # for the duration of this instruction and restored afterwards (unless
    # the instruction overwrote it as its destination).
    restore: tuple | None = None
    ann = instr.ann
    if queues is not None and (ann.ldq_rs1 or ann.ldq_rs2):
        restore = ()
        if ann.ldq_rs1:
            restore += ((instr.rs1, regs[instr.rs1]),)
            regs[instr.rs1] = queues.ldq.pop()
        if ann.ldq_rs2:
            restore += ((instr.rs2, regs[instr.rs2]),)
            regs[instr.rs2] = queues.ldq.pop()
    try:
        addr, next_pc = _execute_op(instr, state, queues, op, regs, pc,
                                    next_pc, addr)
    finally:
        if restore is not None:
            dest = instr.dest_reg()
            for reg, old in restore:
                if reg != dest:
                    regs[reg] = old
    # "$SDQ" destination (paper Figure 3/6): the result is also deposited
    # in the Store Data Queue for a downstream store.
    if queues is not None and ann.to_sdq:
        dest = instr.dest_reg()
        if dest is None:
            raise SimulationError(f"to_sdq on an instruction without a "
                                  f"destination (pc {pc})")
        queues.sdq.push(regs[dest])
    return addr, next_pc


def _execute_op(instr: Instruction, state: ArchState,
                queues: QueueSet | None, op, regs, pc: int, next_pc: int,
                addr: int) -> tuple[int, int]:

    # Grouped by frequency: ALU, memory, control, FP, communication.
    if op is Op.ADD:
        _wr(regs, instr.rd, to_signed64(regs[instr.rs1] + regs[instr.rs2]))
    elif op is Op.ADDI:
        _wr(regs, instr.rd, to_signed64(regs[instr.rs1] + instr.imm))
    elif op is Op.SUB:
        _wr(regs, instr.rd, to_signed64(regs[instr.rs1] - regs[instr.rs2]))
    elif op is Op.MUL:
        _wr(regs, instr.rd, to_signed64(regs[instr.rs1] * regs[instr.rs2]))
    elif op is Op.MULI:
        _wr(regs, instr.rd, to_signed64(regs[instr.rs1] * instr.imm))
    elif op is Op.DIV or op is Op.REM:
        a, b = regs[instr.rs1], regs[instr.rs2]
        if b == 0:
            # RISC-V-defined division by zero: quotient all-ones (-1),
            # remainder the dividend.  No trap.
            q, r = -1, a
        else:
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            r = a - q * b
        _wr(regs, instr.rd, to_signed64(q if op is Op.DIV else r))
    elif op is Op.AND:
        _wr(regs, instr.rd, to_signed64(regs[instr.rs1] & regs[instr.rs2]))
    elif op is Op.OR:
        _wr(regs, instr.rd, to_signed64(regs[instr.rs1] | regs[instr.rs2]))
    elif op is Op.XOR:
        _wr(regs, instr.rd, to_signed64(regs[instr.rs1] ^ regs[instr.rs2]))
    elif op is Op.NOR:
        _wr(regs, instr.rd, to_signed64(~(regs[instr.rs1] | regs[instr.rs2])))
    elif op is Op.SLL:
        _wr(regs, instr.rd, to_signed64(regs[instr.rs1] << (regs[instr.rs2] & 63)))
    elif op is Op.SRL:
        _wr(regs, instr.rd,
            to_signed64(to_unsigned64(regs[instr.rs1]) >> (regs[instr.rs2] & 63)))
    elif op is Op.SRA:
        _wr(regs, instr.rd, to_signed64(regs[instr.rs1] >> (regs[instr.rs2] & 63)))
    elif op is Op.SLT:
        _wr(regs, instr.rd, int(regs[instr.rs1] < regs[instr.rs2]))
    elif op is Op.SLTU:
        _wr(regs, instr.rd,
            int(to_unsigned64(regs[instr.rs1]) < to_unsigned64(regs[instr.rs2])))
    elif op is Op.ANDI:
        _wr(regs, instr.rd, to_signed64(regs[instr.rs1] & instr.imm))
    elif op is Op.ORI:
        _wr(regs, instr.rd, to_signed64(regs[instr.rs1] | instr.imm))
    elif op is Op.XORI:
        _wr(regs, instr.rd, to_signed64(regs[instr.rs1] ^ instr.imm))
    elif op is Op.SLLI:
        _wr(regs, instr.rd, to_signed64(regs[instr.rs1] << (instr.imm & 63)))
    elif op is Op.SRLI:
        _wr(regs, instr.rd,
            to_signed64(to_unsigned64(regs[instr.rs1]) >> (instr.imm & 63)))
    elif op is Op.SRAI:
        _wr(regs, instr.rd, to_signed64(regs[instr.rs1] >> (instr.imm & 63)))
    elif op is Op.SLTI:
        _wr(regs, instr.rd, int(regs[instr.rs1] < instr.imm))
    elif op is Op.LI:
        _wr(regs, instr.rd, to_signed64(instr.imm))
    elif op is Op.MOV:
        _wr(regs, instr.rd, regs[instr.rs1])

    # --- memory --------------------------------------------------------
    elif op is Op.LD:
        addr = to_unsigned64(regs[instr.rs1] + instr.imm)
        value = state.memory.load(addr, 8)
        _wr(regs, instr.rd, value)
        if instr.ann.to_ldq:
            if queues is None:
                raise SimulationError(f"$LDQ load outside decoupled run (pc {pc})")
            queues.ldq.push(value)
    elif op is Op.LW:
        addr = to_unsigned64(regs[instr.rs1] + instr.imm)
        value = sign_extend(state.memory.load(addr, 4), 32)
        _wr(regs, instr.rd, value)
        if instr.ann.to_ldq:
            if queues is None:
                raise SimulationError(f"$LDQ load outside decoupled run (pc {pc})")
            queues.ldq.push(value)
    elif op is Op.LBU:
        addr = to_unsigned64(regs[instr.rs1] + instr.imm)
        value = state.memory.load(addr, 1)
        _wr(regs, instr.rd, value)
        if instr.ann.to_ldq:
            if queues is None:
                raise SimulationError(f"$LDQ load outside decoupled run (pc {pc})")
            queues.ldq.push(value)
    elif op is Op.FLD:
        addr = to_unsigned64(regs[instr.rs1] + instr.imm)
        value = state.memory.load_f64(addr)
        regs[instr.rd] = value
        if instr.ann.to_ldq:
            if queues is None:
                raise SimulationError(f"$LDQ load outside decoupled run (pc {pc})")
            queues.ldq.push(value)
    elif op is Op.SD or op is Op.SW or op is Op.SB:
        addr = to_unsigned64(regs[instr.rs1] + instr.imm)
        if instr.ann.sdq_data:
            if queues is None:
                raise SimulationError(f"SDQ store outside decoupled run (pc {pc})")
            value = queues.sdq.pop()
        else:
            value = regs[instr.rs2]
        nbytes = instr.op.info.mem_bytes
        state.memory.store(addr, to_unsigned64(int(value)), nbytes)
    elif op is Op.FSD:
        addr = to_unsigned64(regs[instr.rs1] + instr.imm)
        if instr.ann.sdq_data:
            if queues is None:
                raise SimulationError(f"SDQ store outside decoupled run (pc {pc})")
            value = queues.sdq.pop()
        else:
            value = regs[instr.rs2]
        state.memory.store_f64(addr, float(value))

    # --- control ---------------------------------------------------------
    elif op is Op.BEQ:
        if regs[instr.rs1] == regs[instr.rs2]:
            next_pc = instr.target
    elif op is Op.BNE:
        if regs[instr.rs1] != regs[instr.rs2]:
            next_pc = instr.target
    elif op is Op.BLT:
        if regs[instr.rs1] < regs[instr.rs2]:
            next_pc = instr.target
    elif op is Op.BGE:
        if regs[instr.rs1] >= regs[instr.rs2]:
            next_pc = instr.target
    elif op is Op.BEQZ:
        if regs[instr.rs1] == 0:
            next_pc = instr.target
    elif op is Op.BNEZ:
        if regs[instr.rs1] != 0:
            next_pc = instr.target
    elif op is Op.J:
        next_pc = instr.target
    elif op is Op.JAL:
        _wr(regs, NAME_TO_REG["ra"], pc + 1)
        next_pc = instr.target
    elif op is Op.JR:
        next_pc = regs[instr.rs1]
    elif op is Op.HALT:
        raise _Halt()
    elif op is Op.NOP:
        pass

    # --- floating point --------------------------------------------------
    elif op is Op.FADD:
        regs[instr.rd] = regs[instr.rs1] + regs[instr.rs2]
    elif op is Op.FSUB:
        regs[instr.rd] = regs[instr.rs1] - regs[instr.rs2]
    elif op is Op.FMUL:
        regs[instr.rd] = regs[instr.rs1] * regs[instr.rs2]
    elif op is Op.FDIV:
        b = regs[instr.rs2]
        if b == 0.0:
            raise SimulationError(f"FP division by zero at pc {pc}")
        regs[instr.rd] = regs[instr.rs1] / b
    elif op is Op.FNEG:
        regs[instr.rd] = -regs[instr.rs1]
    elif op is Op.FABS:
        regs[instr.rd] = abs(regs[instr.rs1])
    elif op is Op.FSQRT:
        v = regs[instr.rs1]
        if v < 0.0:
            raise SimulationError(f"FSQRT of negative value at pc {pc}")
        regs[instr.rd] = v ** 0.5
    elif op is Op.FMOV:
        regs[instr.rd] = regs[instr.rs1]
    elif op is Op.FMIN:
        regs[instr.rd] = min(regs[instr.rs1], regs[instr.rs2])
    elif op is Op.FMAX:
        regs[instr.rd] = max(regs[instr.rs1], regs[instr.rs2])
    elif op is Op.FEQ:
        _wr(regs, instr.rd, int(regs[instr.rs1] == regs[instr.rs2]))
    elif op is Op.FLT:
        _wr(regs, instr.rd, int(regs[instr.rs1] < regs[instr.rs2]))
    elif op is Op.FLE:
        _wr(regs, instr.rd, int(regs[instr.rs1] <= regs[instr.rs2]))
    elif op is Op.ITOF:
        regs[instr.rd] = float(regs[instr.rs1])
    elif op is Op.FTOI:
        _wr(regs, instr.rd, to_signed64(int(regs[instr.rs1])))

    # --- HiDISC communication ---------------------------------------------
    elif op is Op.PUSH_LDQ or op is Op.PUSH_LDQF:
        if queues is None:
            raise SimulationError(f"queue op outside decoupled run (pc {pc})")
        queues.ldq.push(regs[instr.rs1])
    elif op is Op.POP_LDQ:
        if queues is None:
            raise SimulationError(f"queue op outside decoupled run (pc {pc})")
        _wr(regs, instr.rd, int(queues.ldq.pop()))
    elif op is Op.POP_LDQF:
        if queues is None:
            raise SimulationError(f"queue op outside decoupled run (pc {pc})")
        regs[instr.rd] = float(queues.ldq.pop())
    elif op is Op.PUSH_SDQ or op is Op.PUSH_SDQF:
        if queues is None:
            raise SimulationError(f"queue op outside decoupled run (pc {pc})")
        queues.sdq.push(regs[instr.rs1])
    else:  # pragma: no cover - exhaustive over Op
        raise SimulationError(f"unimplemented opcode {op}")

    return addr, next_pc


def _wr(regs: list, rd: int, value: int) -> None:
    """Write an integer register, keeping ``r0`` hardwired to zero."""
    if rd != ZERO:
        regs[rd] = value


# ----------------------------------------------------------------------
# Dispatch-table fast path.
#
# `_compile_step` turns one *static* instruction into a zero-argument step
# closure with the register file, memory, operand indices, immediate and
# fall-through pc pre-bound, so the dynamic loop pays one indexed call per
# instruction instead of walking the if/elif chain and re-reading
# ``instr`` attributes.  Each closure returns the same ``(addr, next_pc)``
# pair as `_execute` and raises the same exceptions (pc is baked into the
# error messages at compile time).
#
# Instructions whose execution depends on annotations ("$LDQ" operand
# shadowing, ``to_ldq``/``to_sdq`` routing, SDQ-fed stores) and int-dest
# writers of ``r0`` keep the generic interpreter — rare cases where the
# legacy path's exact shadowing/restore and hardwired-zero semantics are
# not worth re-proving in closure form.
# ----------------------------------------------------------------------
_s64 = to_signed64
_u64 = to_unsigned64

#: rd <- f(regs[rs1], regs[rs2]) for canonical-int results.
_ALU_RR = {
    Op.ADD: lambda a, b: _s64(a + b),
    Op.SUB: lambda a, b: _s64(a - b),
    Op.MUL: lambda a, b: _s64(a * b),
    Op.AND: lambda a, b: _s64(a & b),
    Op.OR: lambda a, b: _s64(a | b),
    Op.XOR: lambda a, b: _s64(a ^ b),
    Op.NOR: lambda a, b: _s64(~(a | b)),
    Op.SLL: lambda a, b: _s64(a << (b & 63)),
    Op.SRL: lambda a, b: _s64(_u64(a) >> (b & 63)),
    Op.SRA: lambda a, b: _s64(a >> (b & 63)),
    Op.SLT: lambda a, b: int(a < b),
    Op.SLTU: lambda a, b: int(_u64(a) < _u64(b)),
    Op.FEQ: lambda a, b: int(a == b),
    Op.FLT: lambda a, b: int(a < b),
    Op.FLE: lambda a, b: int(a <= b),
}

#: rd <- f(regs[rs1], imm) for canonical-int results.
_ALU_RI = {
    Op.ADDI: lambda a, imm: _s64(a + imm),
    Op.MULI: lambda a, imm: _s64(a * imm),
    Op.ANDI: lambda a, imm: _s64(a & imm),
    Op.ORI: lambda a, imm: _s64(a | imm),
    Op.XORI: lambda a, imm: _s64(a ^ imm),
    Op.SLLI: lambda a, imm: _s64(a << (imm & 63)),
    Op.SRLI: lambda a, imm: _s64(_u64(a) >> (imm & 63)),
    Op.SRAI: lambda a, imm: _s64(a >> (imm & 63)),
    Op.SLTI: lambda a, imm: int(a < imm),
}

#: FP-dest two-source ops (no r0 hardwiring in the FP file).
_FP_RR = {
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FMIN: min,
    Op.FMAX: max,
}

#: FP-dest single-source ops.
_FP_R1 = {
    Op.FNEG: lambda a: -a,
    Op.FABS: abs,
    Op.FMOV: lambda a: a,
    Op.ITOF: float,
}

#: conditional branches as predicates over (regs[rs1], regs[rs2]).
_BRANCHES = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: a < b,
    Op.BGE: lambda a, b: a >= b,
    Op.BEQZ: lambda a, b: a == 0,
    Op.BNEZ: lambda a, b: a != 0,
}

_RA = NAME_TO_REG["ra"]


def _missing_stream_step(pc: int):
    """Step for an instruction with no stream annotation: always raises."""
    def step():
        raise SimulationError(
            f"instruction {pc} has no stream annotation; "
            f"run the slicer first"
        )
    return step


def _compile_step(pc: int, instr: Instruction, state: ArchState,
                  queues: QueueSet | None):
    """Compile one static instruction into a zero-arg ``() -> (addr, next_pc)``."""
    op = instr.op
    ann = instr.ann
    regs = state.regs
    memory = state.memory
    rd, rs1, rs2 = instr.rd, instr.rs1, instr.rs2
    imm, target = instr.imm, instr.target
    npc = pc + 1

    def generic():
        state.pc = pc
        return _execute(instr, state, queues)

    # Annotation-dependent execution: keep the generic interpreter (exact
    # "$LDQ" operand shadowing and restore, SDQ routing).
    if (ann.ldq_rs1 or ann.ldq_rs2 or ann.to_ldq or ann.to_sdq
            or ann.sdq_data):
        return generic

    fn = _ALU_RR.get(op)
    if fn is not None:
        if rd == ZERO:
            return generic
        def step():
            regs[rd] = fn(regs[rs1], regs[rs2])
            return -1, npc
        return step

    fn = _ALU_RI.get(op)
    if fn is not None:
        if rd == ZERO:
            return generic
        def step():
            regs[rd] = fn(regs[rs1], imm)
            return -1, npc
        return step

    fn = _BRANCHES.get(op)
    if fn is not None:
        def step():
            return -1, (target if fn(regs[rs1], regs[rs2]) else npc)
        return step

    if op is Op.LI:
        if rd == ZERO:
            return generic
        value = _s64(imm)
        def step():
            regs[rd] = value
            return -1, npc
        return step

    if op is Op.MOV:
        if rd == ZERO:
            return generic
        def step():
            regs[rd] = regs[rs1]
            return -1, npc
        return step

    if op in (Op.LD, Op.LW, Op.LBU):
        if rd == ZERO:
            return generic
        load = memory.load
        if op is Op.LD:
            def step():
                a = _u64(regs[rs1] + imm)
                regs[rd] = load(a, 8)
                return a, npc
        elif op is Op.LW:
            def step():
                a = _u64(regs[rs1] + imm)
                regs[rd] = sign_extend(load(a, 4), 32)
                return a, npc
        else:
            def step():
                a = _u64(regs[rs1] + imm)
                regs[rd] = load(a, 1)
                return a, npc
        return step

    if op is Op.FLD:
        load_f64 = memory.load_f64
        def step():
            a = _u64(regs[rs1] + imm)
            regs[rd] = load_f64(a)
            return a, npc
        return step

    if op in (Op.SD, Op.SW, Op.SB):
        store = memory.store
        nbytes = op.info.mem_bytes
        def step():
            a = _u64(regs[rs1] + imm)
            store(a, _u64(int(regs[rs2])), nbytes)
            return a, npc
        return step

    if op is Op.FSD:
        store_f64 = memory.store_f64
        def step():
            a = _u64(regs[rs1] + imm)
            store_f64(a, float(regs[rs2]))
            return a, npc
        return step

    if op is Op.J:
        def step():
            return -1, target
        return step

    if op is Op.JAL:
        link = npc
        def step():
            regs[_RA] = link
            return -1, target
        return step

    if op is Op.JR:
        def step():
            return -1, regs[rs1]
        return step

    if op is Op.HALT:
        def step():
            raise _Halt()
        return step

    if op is Op.NOP:
        def step():
            return -1, npc
        return step

    fn = _FP_RR.get(op)
    if fn is not None:
        def step():
            regs[rd] = fn(regs[rs1], regs[rs2])
            return -1, npc
        return step

    fn = _FP_R1.get(op)
    if fn is not None:
        def step():
            regs[rd] = fn(regs[rs1])
            return -1, npc
        return step

    if op is Op.FTOI:
        if rd == ZERO:
            return generic
        def step():
            regs[rd] = _s64(int(regs[rs1]))
            return -1, npc
        return step

    if op in (Op.DIV, Op.REM):
        if rd == ZERO:
            return generic
        want_rem = op is Op.REM
        def step():
            a, b = regs[rs1], regs[rs2]
            if b == 0:
                # RISC-V-defined: q = -1, r = dividend (matches _execute_op).
                regs[rd] = _s64(a if want_rem else -1)
                return -1, npc
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            regs[rd] = _s64(a - q * b if want_rem else q)
            return -1, npc
        return step

    if op is Op.FDIV:
        def step():
            b = regs[rs2]
            if b == 0.0:
                raise SimulationError(f"FP division by zero at pc {pc}")
            regs[rd] = regs[rs1] / b
            return -1, npc
        return step

    if op is Op.FSQRT:
        def step():
            v = regs[rs1]
            if v < 0.0:
                raise SimulationError(f"FSQRT of negative value at pc {pc}")
            regs[rd] = v ** 0.5
            return -1, npc
        return step

    if queues is not None:
        if op in (Op.PUSH_LDQ, Op.PUSH_LDQF):
            push = queues.ldq.push
            def step():
                push(regs[rs1])
                return -1, npc
            return step
        if op is Op.POP_LDQ:
            if rd == ZERO:
                return generic
            popq = queues.ldq.pop
            def step():
                regs[rd] = int(popq())
                return -1, npc
            return step
        if op is Op.POP_LDQF:
            popq = queues.ldq.pop
            def step():
                regs[rd] = float(popq())
                return -1, npc
            return step
        if op in (Op.PUSH_SDQ, Op.PUSH_SDQF):
            push = queues.sdq.push
            def step():
                push(regs[rs1])
                return -1, npc
            return step

    # Queue ops without queues (illegal in a sequential run) and anything
    # not specialised above fall back to the generic interpreter.
    return generic
