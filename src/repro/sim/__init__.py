"""Simulation layer: functional golden model, caches, queues, timing cores.

Typical use::

    from repro.sim import generate_trace, Machine
    trace, state = generate_trace(program)
    result = Machine(config, program, trace, mode="superscalar").run()
"""

from .branch import BranchPredictor, BranchStats, BranchTargetBuffer
from .cache import AccessResult, Cache, CacheStats
from .decoupled import MODES, Machine
from .functional import (
    ArchState,
    DecoupledFunctionalSimulator,
    DynInstr,
    FunctionalSimulator,
    load_program,
)
from .hierarchy import HierarchyStats, MemoryHierarchy
from .machine import RunResult
from .memory import MainMemory
from .profiler import CacheProfile, PcProfile, profile_cache
from .queues import ArchQueue, QueueSet, QueueStats
from .sampling import WarmupProbe, build_schedule, run_sampled
from .superscalar import run_superscalar
from .trace import (
    ROUTE_AP,
    ROUTE_CP,
    CmasPlan,
    CmasThread,
    QueuePlan,
    TraceBundle,
    build_cmas_plan,
    build_queue_plan,
    generate_decoupled_trace,
    generate_trace,
)

__all__ = [
    "AccessResult",
    "ArchQueue",
    "ArchState",
    "BranchPredictor",
    "BranchStats",
    "BranchTargetBuffer",
    "Cache",
    "CacheProfile",
    "CacheStats",
    "CmasPlan",
    "CmasThread",
    "DecoupledFunctionalSimulator",
    "DynInstr",
    "FunctionalSimulator",
    "HierarchyStats",
    "MODES",
    "Machine",
    "MainMemory",
    "MemoryHierarchy",
    "PcProfile",
    "QueuePlan",
    "QueueSet",
    "QueueStats",
    "ROUTE_AP",
    "ROUTE_CP",
    "RunResult",
    "TraceBundle",
    "WarmupProbe",
    "build_cmas_plan",
    "build_queue_plan",
    "build_schedule",
    "generate_decoupled_trace",
    "generate_trace",
    "load_program",
    "profile_cache",
    "run_sampled",
    "run_superscalar",
]
