"""Baseline superscalar machine (the paper's comparison point).

This is a thin convenience wrapper: the baseline is the unified
:class:`~repro.sim.decoupled.Machine` in ``superscalar`` mode — one
8-issue, 64-entry-window out-of-order core fed directly from the trace,
with the Table-1 memory hierarchy and bimodal predictor.  Because the
wrapper shares the unified machine, the baseline rides the same
event-driven scheduler — wakeup lists, completion calendar, dead-time
skipping to the next completion or fetch event (DESIGN.md §6) — so
baseline and decoupled cells of the grid speed up together.
"""

from __future__ import annotations

from ..asm.program import Program
from ..config import MachineConfig
from .decoupled import Machine
from .functional import DynInstr
from .machine import RunResult


def run_superscalar(
    config: MachineConfig,
    program: Program,
    trace: list[DynInstr],
    benchmark: str = "",
    work_instructions: int | None = None,
) -> RunResult:
    """Replay *trace* through the baseline superscalar; returns the result."""
    machine = Machine(
        config=config,
        program=program,
        trace=trace,
        mode="superscalar",
        work_instructions=work_instructions,
        benchmark=benchmark,
    )
    return machine.run()
