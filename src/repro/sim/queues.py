"""Architectural FIFO queues (LDQ, SDQ, SAQ, instruction queues).

The queues are the heart of a decoupled machine: they carry data between
the streams and *are* the slip-distance mechanism.  Two usage modes:

* **Functional mode** (:meth:`ArchQueue.push` / :meth:`ArchQueue.pop`):
  capacity is not enforced; popping an empty queue raises
  :class:`~repro.errors.QueueProtocolError` because in a correctly
  separated program, program-order execution can never pop early.

* **Timing mode**: the timing cores call :meth:`can_push` / :meth:`can_pop`
  and account stalls themselves; occupancy statistics accumulate here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import QueueProtocolError


def _corrupt_value(item):
    """Deterministically perturb one queue payload (bit-flip semantics)."""
    if isinstance(item, bool) or not isinstance(item, (int, float)):
        return item
    if isinstance(item, int):
        return item ^ 1
    return -item if item != 0.0 else 1.0


@dataclass
class QueueStats:
    """Occupancy and stall statistics of one queue."""

    pushes: int = 0
    pops: int = 0
    max_occupancy: int = 0
    full_stall_cycles: int = 0
    empty_stall_cycles: int = 0
    #: transfers discarded by fault injection (repro.resilience).
    drops: int = 0
    #: transfers whose payload was corrupted by fault injection.
    corruptions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "pushes": self.pushes,
            "pops": self.pops,
            "max_occupancy": self.max_occupancy,
            "full_stall_cycles": self.full_stall_cycles,
            "empty_stall_cycles": self.empty_stall_cycles,
            "drops": self.drops,
            "corruptions": self.corruptions,
        }


class ArchQueue:
    """A bounded FIFO with statistics."""

    def __init__(self, name: str, capacity: int):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._items: deque = deque()
        self.stats = QueueStats()
        self._sink = None
        self._sink_track = "queues"
        self._ops = 0
        #: push ordinal (0-based) -> "drop" | "corrupt" (fault injection).
        self._fault_schedule: dict[int, str] | None = None

    def attach_sink(self, sink, track: str = "queues") -> None:
        """Mirror occupancy to a telemetry sink as a counter track.

        Functional execution has no clock, so the counter timestamp is the
        running push+pop operation count (monotonic, one tick per queue op).
        """
        self._sink = sink if (sink is not None and sink.enabled) else None
        self._sink_track = track

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    # ------------------------------------------------------------------
    def can_push(self) -> bool:
        return not self.full

    def can_pop(self) -> bool:
        return bool(self._items)

    def schedule_faults(self, schedule: dict[int, str]) -> None:
        """Arm deterministic push faults: ``{push_ordinal: "drop"|"corrupt"}``.

        The *k*-th push (0-based) is discarded (``drop``) or its payload
        perturbed (``corrupt``).  Used by :mod:`repro.resilience.faults`
        to prove that a faulty queue transfer surfaces as a typed error
        (:class:`~repro.errors.QueueProtocolError` on the starved pop, or
        a verification failure downstream) — never as silent corruption.
        """
        self._fault_schedule = dict(schedule) if schedule else None

    def push(self, item, enforce_capacity: bool = False):
        """Append *item*; optionally raise if the queue is full."""
        if enforce_capacity and self.full:
            raise QueueProtocolError(f"push on full queue {self.name}")
        if self._fault_schedule is not None:
            action = self._fault_schedule.get(self.stats.pushes)
            if action == "drop":
                self.stats.pushes += 1
                self.stats.drops += 1
                return item
            if action == "corrupt":
                item = _corrupt_value(item)
                self.stats.corruptions += 1
        self._items.append(item)
        self.stats.pushes += 1
        if len(self._items) > self.stats.max_occupancy:
            self.stats.max_occupancy = len(self._items)
        if self._sink is not None:
            self._ops += 1
            self._sink.counter(self._sink_track, self.name, self._ops,
                               len(self._items))
        return item

    def pop(self):
        """Remove and return the head; raises if empty."""
        if not self._items:
            raise QueueProtocolError(f"pop on empty queue {self.name}")
        self.stats.pops += 1
        item = self._items.popleft()
        if self._sink is not None:
            self._ops += 1
            self._sink.counter(self._sink_track, self.name, self._ops,
                               len(self._items))
        return item

    def peek(self):
        """Head element without removing it; raises if empty."""
        if not self._items:
            raise QueueProtocolError(f"peek on empty queue {self.name}")
        return self._items[0]

    def clear(self) -> None:
        self._items.clear()

    def note_full_stall(self, cycles: int = 1) -> None:
        self.stats.full_stall_cycles += cycles

    def note_empty_stall(self, cycles: int = 1) -> None:
        self.stats.empty_stall_cycles += cycles


class QueueSet:
    """The LDQ/SDQ/SAQ triple of one decoupled machine."""

    def __init__(self, ldq_entries: int, sdq_entries: int, saq_entries: int):
        self.ldq = ArchQueue("LDQ", ldq_entries)
        self.sdq = ArchQueue("SDQ", sdq_entries)
        self.saq = ArchQueue("SAQ", saq_entries)

    def clear(self) -> None:
        self.ldq.clear()
        self.sdq.clear()
        self.saq.clear()

    def all_empty(self) -> bool:
        return self.ldq.empty and self.sdq.empty and self.saq.empty
