"""Dynamic traces and the precomputed plans that drive timing simulation.

The timing simulators are *trace-driven* (DESIGN.md substitution #2): the
program is first executed functionally, producing a list of
:class:`~repro.sim.functional.DynInstr` records; the pipeline models then
replay that trace.  This module computes, once per (program, trace) pair,
everything the machines need:

* :func:`generate_trace` — run the golden model and capture the trace.
* :class:`QueuePlan` — FIFO matching for the LDQ and SDQ.  Because both
  streams are carved out of one sequential instruction stream, the k-th pop
  of a queue always corresponds to the k-th push; the plan resolves those
  sequence numbers to trace positions so the timing cores can treat queue
  communication as ordinary dependence edges (including *capacity* edges:
  push *s* may not issue before pop *s - capacity* has freed a slot).
* :class:`CmasPlan` — trigger points and the dynamic CMAS slice each
  trigger forks onto the CMP.  A trigger fires when the separator reaches
  the trace position ``trigger_distance`` instructions ahead of a dynamic
  instance of a *probable miss* instruction (paper §4.2: a 512-instruction
  window).  Overlapping windows are de-duplicated so each dynamic CMAS
  instance is pre-executed at most once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.program import Program
from ..errors import SimulationError
from ..isa.instruction import Stream
from .decode import decode_program
from .functional import ArchState, DynInstr, FunctionalSimulator

#: Routing codes used in :class:`QueuePlan.route`.
ROUTE_CP = 0
ROUTE_AP = 1


def generate_trace(
    program: Program, max_steps: int = 50_000_000
) -> tuple[list[DynInstr], ArchState]:
    """Execute *program* functionally; return (trace, final state)."""
    trace: list[DynInstr] = []
    sim = FunctionalSimulator(program)
    state = sim.run(max_steps=max_steps, trace=trace)
    return trace, state


def generate_decoupled_trace(
    program: Program, max_steps: int = 50_000_000
) -> tuple[list[DynInstr], ArchState]:
    """Execute an *annotated* (communication-bearing) program through the
    split-register-file executor; return (trace, final AP state)."""
    from .functional import DecoupledFunctionalSimulator

    trace: list[DynInstr] = []
    sim = DecoupledFunctionalSimulator(program)
    state = sim.run(max_steps=max_steps, trace=trace)
    return trace, state


@dataclass
class QueuePlan:
    """Stream routing and queue matching for one annotated trace."""

    #: route[i] in {ROUTE_CP, ROUTE_AP} for each trace position.
    route: list[int]
    #: trace position of the k-th LDQ push / pop.
    ldq_push_pos: list[int] = field(default_factory=list)
    ldq_pop_pos: list[int] = field(default_factory=list)
    #: pop position -> matching push position(s).  Pop instructions and
    #: single-"$LDQ"-operand consumers have one entry; an instruction with
    #: both operands flagged has two (rs1's match first).
    ldq_match: dict[int, list[int]] = field(default_factory=dict)
    #: push position -> its sequence number (for capacity edges).
    ldq_push_seq: dict[int, int] = field(default_factory=dict)
    #: same for the SDQ; "pops" are the SDQ-consuming stores.
    sdq_push_pos: list[int] = field(default_factory=list)
    sdq_pop_pos: list[int] = field(default_factory=list)
    sdq_match: dict[int, int] = field(default_factory=dict)
    sdq_push_seq: dict[int, int] = field(default_factory=dict)

    @property
    def balanced(self) -> bool:
        """True iff every push has a pop and vice versa."""
        return (len(self.ldq_push_pos) == len(self.ldq_pop_pos)
                and len(self.sdq_push_pos) == len(self.sdq_pop_pos))


def build_queue_plan(program: Program, trace: list[DynInstr]) -> QueuePlan:
    """Compute stream routing and FIFO matching for an annotated program.

    Queue-protocol flags come from the static decode table
    (:mod:`repro.sim.decode`) — one record per pc — instead of re-deriving
    them through ``instr.op.info`` for every dynamic instance.
    """
    decoded = decode_program(program.text)
    route: list[int] = [0] * len(trace)
    plan = QueuePlan(route=route)
    for i, dyn in enumerate(trace):
        d = decoded[dyn.pc]
        stream = d.stream
        if stream is Stream.AS:
            route[i] = ROUTE_AP
        elif stream is Stream.CS:
            route[i] = ROUTE_CP
        else:
            raise SimulationError(
                f"trace position {i} (pc {dyn.pc}) lacks a stream annotation"
            )
        if d.ldq_push:
            plan.ldq_push_seq[i] = len(plan.ldq_push_pos)
            plan.ldq_push_pos.append(i)
        elif d.reads_ldq_any:
            matches = []
            for _ in range(d.ldq_pops):
                seq = len(plan.ldq_pop_pos)
                plan.ldq_pop_pos.append(i)
                if seq >= len(plan.ldq_push_pos):
                    raise SimulationError(
                        f"LDQ pop #{seq} at position {i} precedes its push"
                    )
                matches.append(plan.ldq_push_pos[seq])
            plan.ldq_match[i] = matches
        if d.sdq_push:
            plan.sdq_push_seq[i] = len(plan.sdq_push_pos)
            plan.sdq_push_pos.append(i)
        elif d.sdq_pop:
            seq = len(plan.sdq_pop_pos)
            plan.sdq_pop_pos.append(i)
            if seq >= len(plan.sdq_push_pos):
                raise SimulationError(
                    f"SDQ-consuming store #{seq} at position {i} precedes "
                    f"its push"
                )
            plan.sdq_match[i] = plan.sdq_push_pos[seq]
    return plan


@dataclass
class CmasThread:
    """One forked CMAS context: pre-execute *positions* when the separator
    reaches *trigger_pos*."""

    trigger_pos: int
    #: trace positions (ascending) replayed on the CMP.
    positions: list[int]
    #: the probable-miss instance this thread is trying to cover.
    miss_pos: int


@dataclass
class CmasPlan:
    """All CMAS threads of one trace, keyed by trigger position."""

    threads: list[CmasThread] = field(default_factory=list)
    #: trigger trace position -> list of thread indices firing there.
    by_trigger: dict[int, list[int]] = field(default_factory=dict)
    #: caches for the derived views below (plans are built once and then
    #: reused across many Machine constructions — windowed sampling builds
    #: one machine per interval).
    _total_prefetch: int | None = field(default=None, repr=False,
                                        compare=False)
    _by_miss: list[tuple[int, int]] | None = field(default=None, repr=False,
                                                   compare=False)
    _max_distance: int = field(default=0, repr=False, compare=False)

    @property
    def total_prefetch_instructions(self) -> int:
        if self._total_prefetch is None:
            self._total_prefetch = sum(len(t.positions) for t in self.threads)
        return self._total_prefetch

    def pending_at(self, pos: int) -> list[int]:
        """Thread indices triggered before *pos* whose covered miss is at
        or past it — the "in flight on the CMP" set a sampling window must
        re-establish.  A trigger fires at most ``miss_pos - trigger_pos``
        positions before its miss, so candidates have a miss in the band
        ``[pos, pos + max_distance]``; a bisect over a miss-sorted view
        finds them without scanning every thread.
        """
        if self._by_miss is None:
            self._by_miss = sorted(
                (t.miss_pos, i) for i, t in enumerate(self.threads))
            self._max_distance = max(
                (t.miss_pos - t.trigger_pos for t in self.threads),
                default=0)
        from bisect import bisect_left, bisect_right

        by_miss = self._by_miss
        threads = self.threads
        lo = bisect_left(by_miss, (pos, -1))
        hi = bisect_right(by_miss, (pos + self._max_distance, len(threads)))
        out = [index for _, index in by_miss[lo:hi]
               if threads[index].trigger_pos < pos]
        out.sort()
        return out


def build_cmas_plan(
    program: Program,
    trace: list[DynInstr],
    trigger_distance: int,
    max_slice: int = 2048,
    distance_for: dict[int, int] | None = None,
) -> CmasPlan:
    """Compute trigger points and de-duplicated dynamic CMAS slices.

    For every dynamic instance *q* of a probable-miss instruction, the
    trigger fires at trace position ``max(0, q - trigger_distance)`` and the
    forked context replays the CMAS-annotated instances in ``(claimed, q]``
    where *claimed* de-duplicates overlapping windows.

    *distance_for* optionally overrides the trigger distance per static
    probable-miss pc — the hook for the paper's §6 "runtime control of the
    prefetching distance" (see :mod:`repro.slicer.adaptive`).
    """
    text = program.text
    plan = CmasPlan()
    # Positions of dynamic instances of CMAS instructions, ascending.
    cmas_positions = [
        i for i, dyn in enumerate(trace) if text[dyn.pc].ann.cmas
    ]
    miss_positions = [
        i for i, dyn in enumerate(trace) if text[dyn.pc].ann.probable_miss
    ]
    if not miss_positions:
        return plan

    import bisect

    next_unclaimed = 0  # index into cmas_positions
    for q in miss_positions:
        distance = trigger_distance
        if distance_for is not None:
            distance = distance_for.get(trace[q].pc, trigger_distance)
        start = max(0, q - distance)
        lo = bisect.bisect_left(cmas_positions, start)
        lo = max(lo, next_unclaimed)
        hi = bisect.bisect_right(cmas_positions, q)
        if lo >= hi:
            continue
        positions = cmas_positions[lo:hi][:max_slice]
        next_unclaimed = lo + len(positions)
        thread = CmasThread(trigger_pos=start, positions=positions, miss_pos=q)
        index = len(plan.threads)
        plan.threads.append(thread)
        plan.by_trigger.setdefault(start, []).append(index)
    return plan


@dataclass
class TraceBundle:
    """A program variant plus everything derived from it."""

    program: Program
    trace: list[DynInstr]
    final_state: ArchState
    queue_plan: QueuePlan | None = None
    cmas_plan: CmasPlan | None = None

    @property
    def dynamic_instructions(self) -> int:
        return len(self.trace)
