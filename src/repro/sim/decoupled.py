"""The unified timing machine: baseline superscalar, CP+AP, CP+CMP, HiDISC.

All four architecture models of the paper's §5.3 are one machine class with
two switches:

* ``separated`` — route the annotated streams to CP/AP through the
  separator (access/execute decoupling on), or feed everything to a single
  superscalar core (off).
* ``cmp_enabled`` — fork CMAS threads onto the CMP at trigger points
  (cache prefetching on/off).

================  ==========  ============
model             separated   cmp_enabled
================  ==========  ============
``superscalar``   no          no
``cp_ap``         yes         no
``cp_cmp``        no          yes
``hidisc``        yes         yes
================  ==========  ============

The machine owns the shared front end (fetch + separator + branch
predictor), the shared memory hierarchy, the global ``complete_at`` array,
the **completion calendar** and the simulation loop.  Scheduling is
event-driven: when an instruction issues, its completion is bucketed on the
calendar (cycle -> gids); at the top of every simulated cycle the machine
*lands* all due buckets, waking the consumers registered on each gid's
wakeup list (see :mod:`repro.sim.core`).  The loop is cycle-stepped but
*skips dead time*: when a cycle makes no progress (every core stalled on
outstanding fills), the clock jumps to the next completion or fetch event
— read straight off the calendar instead of re-scanning every window — a
large win when all cores sit behind a 120-cycle memory access.
"""

from __future__ import annotations

from heapq import heappop, heappush

from ..asm.program import Program
from ..config import MachineConfig
from ..errors import CycleLimitError, SimulationError
from ..isa.instruction import Instruction
from ..resilience.watchdog import ProgressWatchdog
from ..telemetry import Telemetry
from .branch import BranchPredictor
from .core import TimingCore
from .decode import CTRL_COND, CTRL_INDIRECT, decode_program
from .functional import DynInstr
from .hierarchy import MemoryHierarchy
from .machine import RunResult
from .trace import ROUTE_AP, CmasPlan, QueuePlan

MODES = ("superscalar", "cp_ap", "cp_cmp", "hidisc")

_CMP_QUEUE_CAPACITY = 4096


class Machine:
    """One configured machine ready to replay one trace."""

    def __init__(
        self,
        config: MachineConfig,
        program: Program,
        trace: list[DynInstr],
        mode: str,
        queue_plan: QueuePlan | None = None,
        cmas_plan: CmasPlan | None = None,
        work_instructions: int | None = None,
        benchmark: str = "",
        warmup_pos: int = 0,
        telemetry: Telemetry | None = None,
        faults=None,
        record_commits: bool = False,
        start_pos: int = 0,
        end_pos: int | None = None,
        hierarchy: MemoryHierarchy | None = None,
        predictor: BranchPredictor | None = None,
    ):
        if mode not in MODES:
            raise SimulationError(f"unknown machine mode {mode!r}")
        self.config = config
        self.program = program
        self.trace = trace
        self.mode = mode
        self.separated = mode in ("cp_ap", "hidisc")
        self.cmp_enabled = mode in ("cp_cmp", "hidisc")
        self.queue_plan = queue_plan if self.separated else None
        self.cmas_plan = cmas_plan if self.cmp_enabled else None
        if self.separated and queue_plan is None:
            raise SimulationError(f"mode {mode} requires a queue plan")
        if self.cmp_enabled and cmas_plan is None:
            raise SimulationError(f"mode {mode} requires a CMAS plan")
        self.work_instructions = (
            work_instructions if work_instructions is not None else len(trace)
        )
        self.benchmark = benchmark

        # Interval (sampled) execution: replay only trace positions in
        # [start_pos, end_pos).  The memory hierarchy and branch predictor
        # may be *injected* so that a sampling driver can carry their warm
        # micro-architectural state across fast-forward gaps (see
        # repro.sim.sampling); a fresh pair is built for normal full runs.
        self._fetch_end = len(trace) if end_pos is None else end_pos
        if not (0 <= start_pos <= self._fetch_end <= len(trace)):
            raise SimulationError(
                f"invalid trace window [{start_pos}, {self._fetch_end}) for "
                f"a {len(trace)}-instruction trace"
            )

        self.hierarchy = (
            hierarchy if hierarchy is not None
            else MemoryHierarchy.from_config(config)
        )
        self.predictor = (
            predictor if predictor is not None
            else BranchPredictor(config.branch)
        )
        self.ldq_capacity = config.queues.ldq_entries
        self.sdq_capacity = config.queues.sdq_entries

        # Resilience: optional FaultInjector (None in normal runs — the hot
        # paths guard on it), commit recording for the co-simulation oracle,
        # and the progress watchdog replacing the old max_cycles-only guard.
        self.faults = faults
        self.hierarchy.faults = faults
        #: (core name, gid, trace position) per retirement, oldest first;
        #: None unless the run was started with ``record_commits=True``.
        self.commit_log: list[tuple[str, int, int]] | None = (
            [] if record_commits else None
        )
        self.watchdog = ProgressWatchdog(config.watchdog_window)

        # Telemetry: latch the switches once so the disabled path costs a
        # couple of local-variable tests per cycle (see repro.telemetry).
        self.telemetry = telemetry
        self._tel_cpi = telemetry is not None and telemetry.cpi
        self._tel_events = telemetry is not None and telemetry.events_on
        self.sink = telemetry.sink if self._tel_events else None
        self._sampler = telemetry.new_sampler() if telemetry is not None else None
        #: lifecycle collector and heartbeat (None unless requested); the
        #: heartbeat reads queue occupancy, so it keeps _tel_queues on.
        self._life = telemetry.lifecycle if telemetry is not None else None
        self._heartbeat = telemetry.heartbeat if telemetry is not None else None
        self._tel_queues = (self._tel_events or self._sampler is not None
                            or self._heartbeat is not None)
        #: issue-time occupancy of the architectural queues (telemetry only;
        #: the timing model itself carries queue state as dependence edges).
        self.queue_occupancy: dict[str, int] = {"LDQ": 0, "SDQ": 0, "SAQ": 0}
        if self._tel_events:
            self.hierarchy.sink = self.sink

        cmas_extra = cmas_plan.total_prefetch_instructions if self.cmp_enabled else 0
        self.complete_at: list[int | None] = [None] * (len(trace) + cmas_extra)
        self._next_cmas_gid = len(trace)
        if start_pos > 0 or self._fetch_end < len(trace):
            # Windowed replay: dependence edges reaching outside the window
            # (value producers before it, and LDQ/SDQ *capacity* edges that
            # point forward past it — queue-slot reuse ignores fetch order)
            # are treated as already satisfied at cycle 0.  This is the
            # standard sampling approximation: cross-window stalls are
            # dropped, which the detailed-warmup prefix re-establishes.
            complete_at = self.complete_at
            complete_at[:start_pos] = [0] * start_pos
            tail = len(trace) - self._fetch_end
            complete_at[self._fetch_end:len(trace)] = [0] * tail

        #: static decode table indexed by PC (see repro.sim.decode) — every
        #: per-instruction property the scheduler needs, resolved once.
        self.decoded = decode_program(program.text)
        if self._life is not None:
            self._life.bind(self)

        # Event-driven scheduling state (see repro.sim.core): per-gid wakeup
        # lists of window entries awaiting that producer's completion, and
        # the completion calendar — cycle -> gids completing then, with a
        # heap over the bucketed cycles so both landing and dead-time
        # skipping read the next event in O(log buckets).
        self.wakeup: dict[int, list] = {}
        self.calendar: dict[int, list[int]] = {}
        self.cal_heap: list[int] = []

        self.cores: list[TimingCore] = []
        if self.separated:
            self.cp = TimingCore("CP", config.cp, self)
            self.ap = TimingCore("AP", config.ap, self)
            self.cores += [self.cp, self.ap]
        else:
            self.main = TimingCore("main", config.superscalar, self)
            self.cores.append(self.main)
        if self.cmp_enabled:
            self.cmp = TimingCore("CMP", config.cmp, self)
            self.cores.append(self.cmp)

        self._fetch_pos = start_pos
        self._waiting_branch: int | None = None  # gid of mispredicted branch
        self._threads_forked = 0
        self._threads_dropped = 0
        #: last gid of each forked thread, oldest first (context limiting).
        self._thread_last_gids: list[int] = []
        # Measurement window (SimpleScalar's -fastfwd): statistics reset and
        # the cycle counter re-anchored when fetch crosses `warmup_pos`.
        self._warmup_pos = warmup_pos
        self._measure_start_cycle = 0
        self._in_warmup = warmup_pos > start_pos
        #: Windowed runs that end mid-trace stop at the cycle fetch crosses
        #: the window end instead of draining: measurement then spans
        #: fetch-crossing to fetch-crossing, so the in-flight tail is
        #: excluded symmetrically with the warmed-up pipeline at the start
        #: (a drain would charge the tail's full miss latency with nothing
        #: left to overlap it — a per-window overestimate).
        self._stop_at_fetch_end = (
            end_pos is not None and end_pos < len(trace)
        )
        if self.cmp_enabled and start_pos > 0:
            # Windowed replay: re-establish the CMP's steady-state backlog.
            # Threads triggered before the window whose covered miss lands
            # inside it are pending on the real machine's CMP at this point
            # (trigger fired up to `trigger_distance` positions ago, slice
            # not yet retired).  Forking them at cycle 0 rebuilds the
            # context chain and queue pressure that delay in-window
            # prefetches — without it every window prefetch issues
            # instantly at its trigger and lands unrealistically early.
            pending = self.cmas_plan.pending_at(start_pos)
            if pending:
                self._fork_threads(pending, -1)

    # ------------------------------------------------------------------
    # Services used by the cores.
    # ------------------------------------------------------------------
    def text_for(self, core: TimingCore) -> list[Instruction]:
        return self.program.text

    def instr_queue_capacity(self, core_name: str) -> int:
        if core_name == "CMP":
            return _CMP_QUEUE_CAPACITY
        if core_name == "main":
            # The single-stream models have no separator queue bottleneck;
            # give the main core a deep fetch queue.
            return max(64, self.config.queues.instr_queue_entries)
        return self.config.queues.instr_queue_entries

    def note_branch_issue(self, gid: int, completes: int) -> None:
        """Called by a core when a control instruction issues (no-op: the
        separator polls ``complete_at`` directly)."""

    @property
    def fetch_done(self) -> bool:
        """True once the front end has consumed its trace window."""
        return self._fetch_pos >= self._fetch_end

    def queue_delta(self, name: str, delta: int, now: int) -> None:
        """Telemetry tap: a core moved LDQ/SDQ/SAQ occupancy by *delta*."""
        occ = self.queue_occupancy[name] + delta
        self.queue_occupancy[name] = occ
        if self._tel_events:
            self.sink.counter("queues", name, now, occ)

    # ------------------------------------------------------------------
    # Front end: fetch + separate + predict + trigger.
    # ------------------------------------------------------------------
    def _separator_step(self, now: int) -> int:
        trace = self.trace
        decoded = self.decoded
        n = self._fetch_end
        if self._waiting_branch is not None:
            resolved = self.complete_at[self._waiting_branch]
            if resolved is None or now < resolved + self.config.branch.mispredict_penalty:
                return 0
            self._waiting_branch = None

        fetched = 0
        fetch_width = self.config.fetch_width
        pos = self._fetch_pos
        separated = self.separated
        route = self.queue_plan.route if separated else None
        cp = self.cp if separated else self.main
        ap = self.ap if separated else None
        by_trigger = self.cmas_plan.by_trigger if self.cmp_enabled else None
        resolve = self.predictor.resolve
        in_warmup = self._in_warmup
        life = self._life
        min_ready = now + 1
        while fetched < fetch_width and pos < n:
            dyn = trace[pos]
            core = ap if separated and route[pos] == ROUTE_AP else cp
            iq = core.instr_queue
            if len(iq) >= core.instr_queue_capacity:
                break
            if by_trigger is not None and pos in by_trigger:
                self._fork_threads(by_trigger[pos], now)
            iq.append((pos, pos, min_ready, ()))
            if life is not None:
                life.on_fetch(pos, pos, core.name, now)
            pos += 1
            self._fetch_pos = pos
            fetched += 1
            if in_warmup and pos >= self._warmup_pos:
                self._begin_measurement(now)
                in_warmup = False

            kind = decoded[dyn.pc].ctrl_kind
            if kind:
                if kind == CTRL_COND:
                    taken = dyn.next_pc != dyn.pc + 1
                    wait = resolve(dyn.pc, taken, dyn.next_pc, "cond")
                elif kind == CTRL_INDIRECT:
                    wait = resolve(dyn.pc, True, dyn.next_pc, "indirect")
                else:  # J / JAL: target known at decode.
                    wait = resolve(dyn.pc, True, dyn.next_pc, "direct")
                if wait:
                    self._waiting_branch = pos - 1
                    if self._tel_events:
                        self.sink.instant("frontend", "mispredict", now,
                                          {"pos": pos - 1, "pc": dyn.pc})
                    break
        return fetched

    def _begin_measurement(self, now: int) -> None:
        """Start the measurement window: reset statistics, keep all
        micro-architectural state (warm caches, predictor, queues)."""
        self._in_warmup = False
        self._measure_start_cycle = now
        self.hierarchy.reset_stats()
        from .branch import BranchStats

        self.predictor.stats = BranchStats()
        for core in self.cores:
            from .core import CoreStats

            # Full runs keep `committed` (their results describe the whole
            # execution); windowed sampling runs reset it so the per-window
            # counts cover exactly the measured region and extrapolate
            # cleanly (warmup-prefix commits would otherwise inflate them).
            stats = CoreStats()
            if not self._stop_at_fetch_end:
                stats.committed = core.stats.committed
            core.stats = stats
            if self._tel_cpi:
                # Reset CPI stacks with the cycle counter: classification of
                # the current cycle happens later this iteration, so stacks
                # cover exactly the measurement window.
                core.reset_cpi()

    def _fork_threads(self, thread_indices: list[int], now: int) -> None:
        max_contexts = self.config.cmas.max_contexts
        faults = self.faults
        fetch_end = self._fetch_end
        windowed = self._stop_at_fetch_end
        for index in thread_indices:
            thread = self.cmas_plan.threads[index]
            if windowed and thread.miss_pos >= fetch_end:
                # The covered miss lies beyond this sampling window, so its
                # prefetch cannot affect measured cycles — and the slice's
                # beyond-window producers are pre-filled complete, which
                # would let it issue an unrealistically early burst.  Skip
                # (not "drop": the full run forks it, a later window will
                # see its effect through the warm hierarchy).
                continue
            if faults is not None and faults.on_fork():
                # Injected trigger suppression: degrade exactly like a
                # dropped thread (fewer prefetches, identical results).
                self._threads_dropped += 1
                self._next_cmas_gid += len(thread.positions)
                if self._tel_events:
                    self.sink.instant("CMP", "cmas_suppressed", now,
                                      {"thread": index,
                                       "instrs": len(thread.positions)})
                continue
            if not self.cmp.queue_has_room(len(thread.positions)):
                self._threads_dropped += 1
                self._next_cmas_gid += len(thread.positions)
                if self._tel_events:
                    self.sink.instant("CMP", "cmas_drop", now,
                                      {"thread": index,
                                       "instrs": len(thread.positions)})
                continue
            self._threads_forked += 1
            if self._tel_events:
                self.sink.instant("CMP", "cmas_fork", now,
                                  {"thread": index,
                                   "instrs": len(thread.positions)})
            # Hardware context limit: thread i may not start before thread
            # (i - max_contexts) has finished.
            extra: tuple[int, ...] = ()
            if len(self._thread_last_gids) >= max_contexts:
                extra = (self._thread_last_gids[-max_contexts],)
            first = True
            life = self._life
            for p in thread.positions:
                self.cmp.enqueue(self._next_cmas_gid, p, now + 1,
                                 extra if first else ())
                if life is not None:
                    life.on_fetch(self._next_cmas_gid, p, "CMP", now)
                first = False
                self._next_cmas_gid += 1
            self._thread_last_gids.append(self._next_cmas_gid - 1)

    # ------------------------------------------------------------------
    # The simulation loop.
    # ------------------------------------------------------------------
    def run(self, max_cycles: int | None = None) -> RunResult:
        try:
            return self._run_loop(max_cycles)
        finally:
            # Terminate any in-progress heartbeat status line, on normal
            # completion and on exceptions alike, so results/tracebacks
            # never splice into a stale "\r" line.
            if self._heartbeat is not None:
                self._heartbeat.finish()

    def _run_loop(self, max_cycles: int | None) -> RunResult:
        if max_cycles is None:
            max_cycles = self.config.max_cycles
        now = 0
        n = self._fetch_end
        cores = self.cores
        cpi_on = self._tel_cpi
        sampler = self._sampler
        heartbeat = self._heartbeat
        watchdog = self.watchdog
        cal_heap = self.cal_heap
        while True:
            if cal_heap and cal_heap[0] <= now:
                self._land_completions(now)
            progress = self._separator_step(now)
            for core in cores:
                if core.instr_queue:
                    progress += core.dispatch(now)
                if core.ready:
                    progress += core.issue(now)
            for core in cores:
                if core.window:
                    progress += core.commit(now)
                else:
                    core._committed_now = 0

            main_done = self._fetch_pos >= n and (
                self._stop_at_fetch_end
                or all(c.drained for c in cores if c.name != "CMP")
            )
            if main_done:
                # The final cycle is the completion boundary, not a spent
                # cycle: classifying it would make stacks sum to cycles + 1.
                break
            if cpi_on:
                for core in cores:
                    core.classify_cycle(now)
            if sampler is not None and now >= sampler.next_at:
                sampler.record(self, now)
            if heartbeat is not None and now >= heartbeat.next_at:
                heartbeat.emit(self, now)
            if progress == 0:
                next_now = self._skip_to_next_event(now)
                # Raises DeadlockError: immediately when no wake-up event
                # exists (structural — nothing can ever change again), or
                # after config.watchdog_window event-ful but progress-free
                # cycles (livelock safety net).
                watchdog.check_stall(self, now, next_now)
                if cpi_on and next_now > now + 1:
                    # Dead-time skip: nothing changes between `now` and
                    # `next_now`, so the skipped cycles repeat this cycle's
                    # classification (keeps stacks summing to cycles).
                    skipped = next_now - now - 1
                    for core in cores:
                        core.cpi[core._last_bucket] += skipped
                now = next_now
            else:
                watchdog.note_progress(now)
                now += 1
            if now > max_cycles:
                raise CycleLimitError(self.benchmark, self.mode, max_cycles,
                                      cycle=now)
        return self._result(now)

    def _land_completions(self, now: int) -> None:
        """Land every calendar bucket due at or before *now*.

        For each completing gid, consumers registered on its wakeup list
        drop one pending producer; entries reaching zero enter their core's
        ready pool.  A gid's wakeup list is consumed exactly once — later
        dispatches see its ``complete_at`` already in the past and never
        register.
        """
        cal_heap = self.cal_heap
        calendar = self.calendar
        wakeup = self.wakeup
        life = self._life
        while cal_heap and cal_heap[0] <= now:
            t = heappop(cal_heap)
            for gid in calendar.pop(t):
                waiters = wakeup.pop(gid, None)
                if waiters is None:
                    continue
                for entry in waiters:
                    pending = entry.pending - 1
                    entry.pending = pending
                    if not pending:
                        heappush(entry.owner.ready, (entry.seq, entry))
                        if life is not None:
                            life.on_ready(entry.gid, now)

    def _skip_to_next_event(self, now: int) -> int | None:
        """Next cycle at which anything can happen; None = nothing ever can.

        Read off the completion calendar (every in-flight completion is
        bucketed there), the pending branch resolution and the front-end
        floors — no window scanning.
        """
        candidates: list[int] = []
        cal_heap = self.cal_heap
        if cal_heap:
            candidates.append(cal_heap[0])
        for core in self.cores:
            # Front-end pipeline floors.  Both are safety nets: an entry is
            # fetched (and the fetch counts as progress) the cycle before
            # its min_ready, so a zero-progress cycle can only see floors
            # already in the past.
            ready = core.ready
            if ready:
                min_ready = ready[0][1].min_ready
                if min_ready > now:
                    candidates.append(min_ready)
            if core.instr_queue:
                min_ready = core.instr_queue[0][2]
                if min_ready > now:
                    candidates.append(min_ready)
        if self._waiting_branch is not None:
            t = self.complete_at[self._waiting_branch]
            if t is not None:
                candidates.append(t + self.config.branch.mispredict_penalty)
        if not candidates:
            # Nothing in flight and no progress: by construction no future
            # cycle can differ from this one.  The caller's watchdog turns
            # this into a forensic DeadlockError.
            return None
        return max(now + 1, min(candidates))

    # ------------------------------------------------------------------
    def _result(self, cycles: int) -> RunResult:
        result = RunResult(
            machine=self.mode,
            benchmark=self.benchmark,
            cycles=cycles - self._measure_start_cycle,
            total_cycles=cycles,
            work_instructions=self.work_instructions,
            committed={c.name: c.stats.committed for c in self.cores},
            l1=self.hierarchy.l1.stats,
            l2=self.hierarchy.l2.stats,
            memory=self.hierarchy.stats,
            branch=self.predictor.stats,
            core_stats={c.name: c.stats.as_dict() for c in self.cores},
            cmas_threads_forked=self._threads_forked,
            cmas_threads_dropped=self._threads_dropped,
            cpi_stacks=(
                {c.name: dict(c.cpi) for c in self.cores}
                if self._tel_cpi else {}
            ),
            faults_injected=(
                self.faults.summary() if self.faults is not None else {}
            ),
        )
        return result
