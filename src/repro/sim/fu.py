"""Functional-unit issue bandwidth model.

Units are modelled as fully pipelined: what a pool limits is *issues per
cycle*, not occupancy.  (sim-outorder models some units as unpipelined;
for the DIS kernels the difference is negligible next to memory latency,
and the simplification keeps the wakeup loop cheap — a per-cycle counter
reset instead of per-unit busy lists.)

Counters are plain lists indexed by :data:`FU_INDEX` (the static decode
table carries the index), so the select loop never hashes an Enum.
"""

from __future__ import annotations

from ..config import CoreConfig
from ..isa.opcodes import FuClass

#: Dense index for each FU class — the decode table stores this int so the
#: issue loop does list indexing instead of Enum-keyed dict lookups.
FU_INDEX: dict[FuClass, int] = {fu: i for i, fu in enumerate(FuClass)}


class FuPools:
    """Per-cycle issue counters for one core's functional units."""

    __slots__ = ("limits", "_used", "_zeros")

    def __init__(self, config: CoreConfig):
        by_class: dict[FuClass, int] = {
            FuClass.IALU: config.int_alus,
            FuClass.IMULDIV: config.int_muldivs,
            FuClass.FALU: config.fp_alus if config.has_fp else 0,
            FuClass.FMULDIV: config.fp_muldivs if config.has_fp else 0,
            FuClass.LSU: config.mem_ports if config.has_lsu else 0,
            FuClass.NONE: 1 << 30,
        }
        self.limits: list[int] = [by_class[fu] for fu in FuClass]
        self._zeros: list[int] = [0] * len(self.limits)
        self._used: list[int] = list(self._zeros)

    def new_cycle(self) -> None:
        """Reset issue counters at the start of a cycle."""
        self._used[:] = self._zeros

    def take_idx(self, idx: int) -> bool:
        """Claim one issue slot by FU index; False if the pool is empty."""
        used = self._used
        if used[idx] >= self.limits[idx]:
            return False
        used[idx] += 1
        return True

    # Enum-keyed conveniences (tests / diagnostics; not on the hot path).
    def available(self, fu: FuClass) -> bool:
        idx = FU_INDEX[fu]
        return self._used[idx] < self.limits[idx]

    def take(self, fu: FuClass) -> bool:
        """Claim one issue slot; returns False if the pool is exhausted."""
        return self.take_idx(FU_INDEX[fu])
