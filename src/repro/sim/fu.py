"""Functional-unit issue bandwidth model.

Units are modelled as fully pipelined: what a pool limits is *issues per
cycle*, not occupancy.  (sim-outorder models some units as unpipelined;
for the DIS kernels the difference is negligible next to memory latency,
and the simplification keeps the wakeup loop cheap — a per-cycle counter
reset instead of per-unit busy lists.)
"""

from __future__ import annotations

from ..config import CoreConfig
from ..isa.opcodes import FuClass


class FuPools:
    """Per-cycle issue counters for one core's functional units."""

    def __init__(self, config: CoreConfig):
        self.limits: dict[FuClass, int] = {
            FuClass.IALU: config.int_alus,
            FuClass.IMULDIV: config.int_muldivs,
            FuClass.FALU: config.fp_alus if config.has_fp else 0,
            FuClass.FMULDIV: config.fp_muldivs if config.has_fp else 0,
            FuClass.LSU: config.mem_ports if config.has_lsu else 0,
            FuClass.NONE: 1 << 30,
        }
        self._used: dict[FuClass, int] = {fu: 0 for fu in self.limits}

    def new_cycle(self) -> None:
        """Reset issue counters at the start of a cycle."""
        for fu in self._used:
            self._used[fu] = 0

    def available(self, fu: FuClass) -> bool:
        return self._used[fu] < self.limits[fu]

    def take(self, fu: FuClass) -> bool:
        """Claim one issue slot; returns False if the pool is exhausted."""
        if self._used[fu] >= self.limits[fu]:
            return False
        self._used[fu] += 1
        return True
