"""Byte-addressable sparse main memory.

Memory is organised as 64 KiB pages materialised on first touch, so a
32 MiB-plus address space costs nothing until used.  All multi-byte
accesses are little-endian and must be naturally aligned (the ISA has no
unaligned accesses; the assembler keeps data aligned).

The integer value convention follows :mod:`repro.utils`: 64-bit reads
return canonical signed values, narrower loads zero- or sign-extend as the
opcode requires (the functional simulator picks; :meth:`load` here returns
unsigned raw bits for widths < 8).
"""

from __future__ import annotations

import struct

from ..errors import MemoryFault
from ..utils import to_signed64

PAGE_BITS = 16
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1

#: Precompiled scalar codecs for the widths the ISA knows.  Loads follow
#: the :meth:`MainMemory.load` convention (raw unsigned below 8 bytes,
#: canonical signed for 8); stores write masked low bytes, so the
#: unsigned 8-byte packer pairs with a pre-masked value.
_UNPACKERS = {1: struct.Struct("<B"), 4: struct.Struct("<I"),
              8: struct.Struct("<q")}
_PACKERS = {1: struct.Struct("<B"), 4: struct.Struct("<I"),
            8: struct.Struct("<Q")}


class MainMemory:
    """Sparse paged memory with byte/word/double access helpers."""

    def __init__(self, size_bytes: int):
        if size_bytes <= 0:
            raise ValueError("memory size must be positive")
        self.size_bytes = size_bytes
        self._pages: dict[int, bytearray] = {}

    # ------------------------------------------------------------------
    def _page_for(self, address: int) -> bytearray:
        index = address >> PAGE_BITS
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    def _check(self, address: int, nbytes: int) -> None:
        if address < 0 or address + nbytes > self.size_bytes:
            raise MemoryFault(address)
        if address % nbytes:
            raise MemoryFault(address, f"misaligned {nbytes}-byte access")

    # ------------------------------------------------------------------
    # Raw bulk access (loader, workload generators, result extraction).
    # ------------------------------------------------------------------
    def _page_chunks(self, address: int, total: int):
        """Yield ``(page, start, size)`` spans covering *total* bytes.

        The common page-walking loop under every bulk operation; callers
        bound-check *address*/*total* first.
        """
        offset = 0
        while offset < total:
            page = self._page_for(address + offset)
            start = (address + offset) & PAGE_MASK
            size = min(PAGE_SIZE - start, total - offset)
            yield page, start, size
            offset += size

    def write_bytes(self, address: int, payload: bytes) -> None:
        """Bulk write, page by page (no alignment requirement)."""
        if address < 0 or address + len(payload) > self.size_bytes:
            raise MemoryFault(address)
        src = memoryview(payload)
        offset = 0
        for page, start, size in self._page_chunks(address, len(payload)):
            page[start : start + size] = src[offset : offset + size]
            offset += size

    def read_bytes(self, address: int, nbytes: int) -> bytes:
        """Bulk read, page by page (no alignment requirement)."""
        if address < 0 or address + nbytes > self.size_bytes:
            raise MemoryFault(address)
        out = bytearray(nbytes)
        offset = 0
        for page, start, size in self._page_chunks(address, nbytes):
            out[offset : offset + size] = memoryview(page)[start : start + size]
            offset += size
        return bytes(out)

    # ------------------------------------------------------------------
    # Aligned block access (array readback, bulk initialisation).
    # ------------------------------------------------------------------
    def load_block(self, address: int, count: int, nbytes: int = 8) -> list[int]:
        """Aligned load of *count* scalars of width *nbytes*.

        Value convention matches :meth:`load` element-wise: canonical
        signed values for 8-byte scalars, raw unsigned bits below that.
        One precompiled :class:`struct.Struct` decodes each page-sized
        span through a memoryview — no per-element ``int.from_bytes``,
        no page lookup per scalar.
        """
        codec = _UNPACKERS.get(nbytes)
        if codec is None:
            raise MemoryFault(address, f"unsupported scalar width {nbytes}")
        total = count * nbytes
        self._check(address, nbytes)
        if address + total > self.size_bytes:
            raise MemoryFault(address + total - nbytes)
        out: list[int] = []
        # PAGE_SIZE is a multiple of every scalar width and the base is
        # aligned, so spans never split a scalar across pages.
        for page, start, size in self._page_chunks(address, total):
            view = memoryview(page)[start : start + size]
            out.extend(v for (v,) in codec.iter_unpack(view))
        return out

    def store_block(self, address: int, values, nbytes: int = 8) -> None:
        """Aligned store of a sequence of scalars of width *nbytes*.

        Each value's low *nbytes* bytes are written (the element-wise
        analogue of :meth:`store`), packed through the precompiled
        codecs straight into the backing pages.
        """
        codec = _PACKERS.get(nbytes)
        if codec is None:
            raise MemoryFault(address, f"unsupported scalar width {nbytes}")
        total = len(values) * nbytes
        self._check(address, nbytes)
        if address + total > self.size_bytes:
            raise MemoryFault(address + total - nbytes)
        mask = (1 << (nbytes * 8)) - 1
        pack_into = codec.pack_into
        index = 0
        for page, start, size in self._page_chunks(address, total):
            for pos in range(start, start + size, nbytes):
                pack_into(page, pos, values[index] & mask)
                index += 1

    # ------------------------------------------------------------------
    # Aligned scalar access (the functional simulator's hot path).
    # ------------------------------------------------------------------
    def load(self, address: int, nbytes: int) -> int:
        """Aligned load of 1/4/8 bytes.

        Returns the raw unsigned value for 1/4 bytes and the canonical
        signed value for 8 bytes.
        """
        self._check(address, nbytes)
        page = self._page_for(address)
        start = address & PAGE_MASK
        raw = int.from_bytes(page[start : start + nbytes], "little")
        return to_signed64(raw) if nbytes == 8 else raw

    def store(self, address: int, value: int, nbytes: int) -> None:
        """Aligned store of the low *nbytes* bytes of *value*."""
        self._check(address, nbytes)
        page = self._page_for(address)
        start = address & PAGE_MASK
        page[start : start + nbytes] = (value & ((1 << (nbytes * 8)) - 1)).to_bytes(
            nbytes, "little"
        )

    def load_f64(self, address: int) -> float:
        """Aligned load of an IEEE binary64 value."""
        self._check(address, 8)
        page = self._page_for(address)
        start = address & PAGE_MASK
        return struct.unpack_from("<d", page, start)[0]

    def store_f64(self, address: int, value: float) -> None:
        """Aligned store of an IEEE binary64 value."""
        self._check(address, 8)
        page = self._page_for(address)
        start = address & PAGE_MASK
        struct.pack_into("<d", page, start, value)

    # ------------------------------------------------------------------
    def touched_pages(self) -> int:
        """Number of materialised pages (diagnostics)."""
        return len(self._pages)

    def snapshot(self) -> dict[int, bytes]:
        """Immutable copy of every touched page (for equivalence checks)."""
        return {index: bytes(page) for index, page in self._pages.items()}

    def equal_contents(self, other: "MainMemory") -> bool:
        """Compare logical contents with *other* (zero pages are equal)."""
        zero = bytes(PAGE_SIZE)
        indices = set(self._pages) | set(other._pages)
        for index in indices:
            a = bytes(self._pages.get(index, b"")) or zero
            b = bytes(other._pages.get(index, b"")) or zero
            if a != b:
                return False
        return True
