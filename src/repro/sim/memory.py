"""Byte-addressable sparse main memory.

Memory is organised as 64 KiB pages materialised on first touch, so a
32 MiB-plus address space costs nothing until used.  All multi-byte
accesses are little-endian and must be naturally aligned (the ISA has no
unaligned accesses; the assembler keeps data aligned).

The integer value convention follows :mod:`repro.utils`: 64-bit reads
return canonical signed values, narrower loads zero- or sign-extend as the
opcode requires (the functional simulator picks; :meth:`load` here returns
unsigned raw bits for widths < 8).
"""

from __future__ import annotations

import struct

from ..errors import MemoryFault
from ..utils import to_signed64

PAGE_BITS = 16
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1


class MainMemory:
    """Sparse paged memory with byte/word/double access helpers."""

    def __init__(self, size_bytes: int):
        if size_bytes <= 0:
            raise ValueError("memory size must be positive")
        self.size_bytes = size_bytes
        self._pages: dict[int, bytearray] = {}

    # ------------------------------------------------------------------
    def _page_for(self, address: int) -> bytearray:
        index = address >> PAGE_BITS
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    def _check(self, address: int, nbytes: int) -> None:
        if address < 0 or address + nbytes > self.size_bytes:
            raise MemoryFault(address)
        if address % nbytes:
            raise MemoryFault(address, f"misaligned {nbytes}-byte access")

    # ------------------------------------------------------------------
    # Raw bulk access (loader, workload generators, result extraction).
    # ------------------------------------------------------------------
    def write_bytes(self, address: int, payload: bytes) -> None:
        """Bulk write, page by page (no alignment requirement)."""
        if address < 0 or address + len(payload) > self.size_bytes:
            raise MemoryFault(address)
        offset = 0
        while offset < len(payload):
            page = self._page_for(address + offset)
            start = (address + offset) & PAGE_MASK
            chunk = min(PAGE_SIZE - start, len(payload) - offset)
            page[start : start + chunk] = payload[offset : offset + chunk]
            offset += chunk

    def read_bytes(self, address: int, nbytes: int) -> bytes:
        """Bulk read, page by page (no alignment requirement)."""
        if address < 0 or address + nbytes > self.size_bytes:
            raise MemoryFault(address)
        out = bytearray()
        offset = 0
        while offset < nbytes:
            page = self._page_for(address + offset)
            start = (address + offset) & PAGE_MASK
            chunk = min(PAGE_SIZE - start, nbytes - offset)
            out += page[start : start + chunk]
            offset += chunk
        return bytes(out)

    # ------------------------------------------------------------------
    # Aligned scalar access (the functional simulator's hot path).
    # ------------------------------------------------------------------
    def load(self, address: int, nbytes: int) -> int:
        """Aligned load of 1/4/8 bytes.

        Returns the raw unsigned value for 1/4 bytes and the canonical
        signed value for 8 bytes.
        """
        self._check(address, nbytes)
        page = self._page_for(address)
        start = address & PAGE_MASK
        raw = int.from_bytes(page[start : start + nbytes], "little")
        return to_signed64(raw) if nbytes == 8 else raw

    def store(self, address: int, value: int, nbytes: int) -> None:
        """Aligned store of the low *nbytes* bytes of *value*."""
        self._check(address, nbytes)
        page = self._page_for(address)
        start = address & PAGE_MASK
        page[start : start + nbytes] = (value & ((1 << (nbytes * 8)) - 1)).to_bytes(
            nbytes, "little"
        )

    def load_f64(self, address: int) -> float:
        """Aligned load of an IEEE binary64 value."""
        self._check(address, 8)
        page = self._page_for(address)
        start = address & PAGE_MASK
        return struct.unpack_from("<d", page, start)[0]

    def store_f64(self, address: int, value: float) -> None:
        """Aligned store of an IEEE binary64 value."""
        self._check(address, 8)
        page = self._page_for(address)
        start = address & PAGE_MASK
        struct.pack_into("<d", page, start, value)

    # ------------------------------------------------------------------
    def touched_pages(self) -> int:
        """Number of materialised pages (diagnostics)."""
        return len(self._pages)

    def snapshot(self) -> dict[int, bytes]:
        """Immutable copy of every touched page (for equivalence checks)."""
        return {index: bytes(page) for index, page in self._pages.items()}

    def equal_contents(self, other: "MainMemory") -> bool:
        """Compare logical contents with *other* (zero pages are equal)."""
        zero = bytes(PAGE_SIZE)
        indices = set(self._pages) | set(other._pages)
        for index in indices:
            a = bytes(self._pages.get(index, b"")) or zero
            b = bytes(other._pages.get(index, b"")) or zero
            if a != b:
                return False
        return True
