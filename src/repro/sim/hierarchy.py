"""Two-level memory hierarchy with additive latencies and miss merging.

Latency model (Table 1 defaults)::

    L1 hit               : l1.latency                  (1 cycle)
    L1 miss, L2 hit      : l1.latency + l2.latency     (13 cycles)
    L1 miss, L2 miss     : l1.latency + l2.latency + memory_latency

Outstanding misses to the same L1 block merge MSHR-style: a second access
while the fill is in flight completes when the fill does, instead of paying
the full latency again.  This matters for spatially-local streams and for
CMP prefetches racing demand loads (a *late* prefetch still shortens the
demand miss).

The hierarchy is shared by every processor of a machine (the AP and CMP of
HiDISC access the same L1/L2, which is how the CMP's prefetches help).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CacheConfig, MachineConfig
from .cache import Cache, CacheStats


@dataclass
class HierarchyStats:
    """Aggregate statistics of one simulation run."""

    demand_loads: int = 0
    demand_stores: int = 0
    prefetches: int = 0
    #: Demand accesses whose miss latency was (partly) hidden by merging
    #: with an outstanding fill.
    merged_misses: int = 0
    #: Prefetches that were still in flight when the demand access arrived.
    late_prefetch_overlaps: int = 0


class MemoryHierarchy:
    """L1 + unified L2 + main-memory latency, with MSHR-style merging."""

    def __init__(self, l1: CacheConfig, l2: CacheConfig, memory_latency: int):
        self.l1 = Cache(l1)
        self.l2 = Cache(l2)
        self.memory_latency = memory_latency
        self.stats = HierarchyStats()
        #: Telemetry sink for fill/merge events (set by the owning machine
        #: when event tracing is on; None keeps the hot path untouched).
        self.sink = None
        #: Optional FaultInjector (set by the owning machine); its
        #: ``on_fill`` hook sees every L1-miss fill.
        self.faults = None
        #: L1-block address -> absolute cycle when the in-flight fill lands.
        self._inflight: dict[int, int] = {}
        #: blocks whose in-flight fill was initiated by a prefetch
        self._inflight_prefetch: set[int] = set()

    @classmethod
    def from_config(cls, config: MachineConfig) -> "MemoryHierarchy":
        return cls(config.l1, config.l2, config.memory_latency)

    # ------------------------------------------------------------------
    def _expire_inflight(self, now: int) -> None:
        if not self._inflight:
            return
        done = [block for block, ready in self._inflight.items() if ready <= now]
        for block in done:
            del self._inflight[block]
            self._inflight_prefetch.discard(block)

    def _miss_latency(self, address: int, is_write: bool, is_prefetch: bool) -> int:
        """Charge the L2 (and memory) for an L1 miss; updates L2 state."""
        latency = self.l2.config.latency
        l2_result = self.l2.access(address, is_write=False, is_prefetch=is_prefetch)
        if not l2_result.hit:
            latency += self.memory_latency
        return latency

    # ------------------------------------------------------------------
    def access(self, address: int, is_write: bool, now: int,
               is_prefetch: bool = False) -> int:
        """Simulate one access at absolute cycle *now*; returns its latency.

        Architectural data motion is handled by the functional layer; this
        method only updates cache/MSHR state and computes timing.
        """
        self._expire_inflight(now)
        stats = self.stats
        if is_prefetch:
            stats.prefetches += 1
        elif is_write:
            stats.demand_stores += 1
        else:
            stats.demand_loads += 1

        block = self.l1.block_address(address)
        inflight_ready = self._inflight.get(block)
        result = self.l1.access(address, is_write=is_write, is_prefetch=is_prefetch)

        if inflight_ready is not None:
            # The line's fill is still in flight (its tag may already be
            # installed — the first access allocated it).  Merge: this
            # access completes when the outstanding fill lands.
            if not is_prefetch:
                stats.merged_misses += 1
                if block in self._inflight_prefetch:
                    stats.late_prefetch_overlaps += 1
            if self.sink is not None:
                self.sink.instant("memory", "mshr_merge", now,
                                  {"block": block, "prefetch": is_prefetch})
            return max(self.l1.config.latency, inflight_ready - now)

        if result.hit:
            return self.l1.config.latency

        latency = self.l1.config.latency + self._miss_latency(
            address, is_write, is_prefetch
        )
        self._inflight[block] = now + latency
        if is_prefetch:
            self._inflight_prefetch.add(block)
        if self.faults is not None:
            # May stretch the latency (delay/drop-and-retry) or discard the
            # just-allocated line (corrupt_line pops the in-flight entry).
            latency = self.faults.on_fill(self, block, latency, now)
            if block in self._inflight:
                self._inflight[block] = now + latency
        if self.sink is not None:
            deep = latency > self.l1.config.latency + self.l2.config.latency
            self.sink.duration(
                "memory", "mem_fill" if deep else "L2_fill", now, latency,
                {"block": block, "prefetch": is_prefetch},
            )
        return latency

    def prefetch(self, address: int, now: int) -> int:
        """CMP prefetch: fills L1/L2, returns completion latency."""
        return self.access(address, is_write=False, now=now, is_prefetch=True)

    # ------------------------------------------------------------------
    def warm(self, address: int, is_write: bool = False) -> None:
        """Timing-free functional warming (sampled fast-forward).

        Updates L1/L2 tag and LRU state exactly as a demand access would —
        misses allocate, writes set dirty bits — but charges no latency and
        touches neither the MSHR table nor the statistics counters beyond
        the caches' own (which the next measurement window resets anyway).
        This is what keeps cache state honest across fast-forward gaps.
        """
        result = self.l1.access(address, is_write=is_write, is_prefetch=False)
        if not result.hit:
            self.l2.access(address, is_write=False, is_prefetch=False)

    def warm_many(self, events: list[tuple[int, bool]]) -> None:
        """Batched :meth:`warm` over ``(address, is_write)`` pairs.

        Identical tag/LRU/dirty/prefetched-flag transitions, but inlined
        over both levels with no per-access result objects and no
        statistics counters (functional warming always precedes a
        measurement window, which resets statistics anyway).  This loop is
        the fast-forward inner loop of sampled simulation — its speed sets
        the ceiling on the sampled-vs-full speedup.
        """
        from .cache import _Line

        l1, l2 = self.l1, self.l2
        l1_sets, l2_sets = l1._sets, l2._sets
        l1_bb, l2_bb = l1.block_bits, l2.block_bits
        l1_sb, l2_sb = l1.set_bits, l2.set_bits
        l1_mask, l2_mask = l1.set_mask, l2.set_mask
        l1_ways, l2_ways = l1.config.ways, l2.config.ways
        for address, is_write in events:
            block = address >> l1_bb
            lines = l1_sets[block & l1_mask]
            tag = block >> l1_sb
            for pos, line in enumerate(lines):
                if line.tag == tag:
                    if pos:
                        lines.insert(0, lines.pop(pos))
                    if is_write:
                        line.dirty = True
                    line.prefetched = False
                    break
            else:
                if len(lines) >= l1_ways:
                    lines.pop()
                lines.insert(0, _Line(tag=tag, dirty=is_write))
                block2 = address >> l2_bb
                lines2 = l2_sets[block2 & l2_mask]
                tag2 = block2 >> l2_sb
                for pos, line in enumerate(lines2):
                    if line.tag == tag2:
                        if pos:
                            lines2.insert(0, lines2.pop(pos))
                        line.prefetched = False
                        break
                else:
                    if len(lines2) >= l2_ways:
                        lines2.pop()
                    lines2.insert(0, _Line(tag=tag2))

    def settle(self) -> None:
        """Drain in-flight fill state between detailed intervals.

        Each sampled interval restarts the machine clock at 0, so fill
        ready-times recorded during the previous interval are meaningless;
        the lines themselves stay resident (allocation happened at access
        time), only the outstanding-miss bookkeeping is dropped.
        """
        self._inflight.clear()
        self._inflight_prefetch.clear()

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        self.stats = HierarchyStats()
        self.l1.stats = CacheStats()
        self.l2.stats = CacheStats()

    def demand_miss_rate(self) -> float:
        """L1 demand miss rate (the quantity in the paper's Figure 9)."""
        return self.l1.stats.demand_miss_rate

    def outstanding_misses(self, now: int | None = None) -> int:
        """Fills currently in flight (for occupancy sampling)."""
        if now is not None:
            self._expire_inflight(now)
        return len(self._inflight)
