"""Cache-access profiling (paper §3.1/§4.2).

The HiDISC compiler selects *probable cache miss instructions* from a
cache-access profile of the binary.  This module replays a functional
trace through a fresh Table-1 cache hierarchy (demand accesses only, in
program order) and reports per-static-instruction access and miss counts.

The profile deliberately uses the *sequential* access order — it models a
profiling run of the original binary on a conventional machine, which is
what the paper's compiler consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.program import Program
from ..config import MachineConfig
from .cache import Cache
from .functional import DynInstr


@dataclass
class PcProfile:
    """Access/miss counts of one static memory instruction."""

    accesses: int = 0
    misses: int = 0
    #: of the L1 misses, how many also missed L2 (went to memory).
    l2_misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        """Fraction of the L1 misses that continued to main memory."""
        return self.l2_misses / self.misses if self.misses else 0.0

    def expected_latency(self, l1_latency: int, l2_latency: int,
                         memory_latency: int) -> float:
        """Profile-estimated average latency of this instruction."""
        latency = float(l1_latency)
        latency += self.miss_rate * l2_latency
        latency += self.miss_rate * self.l2_miss_rate * memory_latency
        return latency


@dataclass
class CacheProfile:
    """Per-PC cache behaviour of one (program, input) pair."""

    per_pc: dict[int, PcProfile] = field(default_factory=dict)
    total_accesses: int = 0
    total_misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.total_misses / self.total_accesses if self.total_accesses else 0.0

    def probable_miss_pcs(self, threshold: float,
                          min_accesses: int = 4) -> set[int]:
        """Static PCs whose miss rate exceeds *threshold* (paper's
        'probable cache miss instructions')."""
        return {
            pc for pc, prof in self.per_pc.items()
            if prof.accesses >= min_accesses and prof.miss_rate >= threshold
        }


def profile_cache(
    program: Program,
    trace: list[DynInstr],
    config: MachineConfig,
) -> CacheProfile:
    """Replay memory accesses of *trace* through L1+L2; collect per-PC stats.

    Only loads are candidates for CMAS selection, but stores also touch the
    caches during profiling (they shape the contents, and write misses are
    counted per PC too).
    """
    l1 = Cache(config.l1)
    l2 = Cache(config.l2)
    text = program.text
    profile = CacheProfile()
    per_pc = profile.per_pc
    for dyn in trace:
        if dyn.addr < 0:
            continue
        instr = text[dyn.pc]
        if not instr.is_mem:
            continue
        result = l1.access(dyn.addr, is_write=instr.is_store)
        l2_hit = True
        if not result.hit:
            l2_hit = l2.access(dyn.addr, is_write=False).hit
        prof = per_pc.get(dyn.pc)
        if prof is None:
            prof = per_pc[dyn.pc] = PcProfile()
        prof.accesses += 1
        profile.total_accesses += 1
        if not result.hit:
            prof.misses += 1
            profile.total_misses += 1
            if not l2_hit:
                prof.l2_misses += 1
    return profile
