"""SMARTS-style sampled timing simulation (fast-forward + detail windows).

Full detailed simulation replays every dynamic instruction through the
timing machine.  For large workloads most of those cycles only re-confirm
steady-state behaviour, so this module simulates in detail only short
periodic windows and *extrapolates*:

1. **Fast-forward** — between detailed windows, nothing is simulated
   cycle-by-cycle.  The trace already exists (timing simulation here is
   trace-driven), so fast-forwarding costs one pass over a pre-extracted
   event stream instead of a functional re-execution.
2. **Functional warming** — while fast-forwarding, the memory/branch
   event stream is replayed into the *shared* cache hierarchy
   (:meth:`~repro.sim.hierarchy.MemoryHierarchy.warm`) and branch
   predictor (:meth:`~repro.sim.branch.BranchPredictor.resolve`), so
   long-lived micro-architectural state never goes cold.
3. **Detailed warmup** — each measured window is preceded by
   ``warmup_length`` instructions of full detailed execution whose
   statistics are discarded (the machine's existing measurement-window
   mechanism), re-establishing short-lived state: pipeline occupancy,
   queue contents, outstanding misses.
4. **Measure + extrapolate** — per-window cycles, cache/branch/core
   statistics and CPI stacks are summed and scaled by
   ``total_positions / sampled_positions`` (a ratio estimator), with a
   95% confidence interval measured from the inter-window variance.

The approximation dropped on the floor is cross-window dependence edges:
an interval machine treats producers before its window (and queue-slot
reuse edges past it) as complete at cycle 0.  The detailed warmup prefix
exists precisely to absorb that.

Faults and the co-simulation oracle are incompatible with sampling by
construction (both need every event simulated); callers enforce that with
:class:`~repro.errors.SamplingError` before reaching this module.
"""

from __future__ import annotations

import dataclasses
import math
import random
from bisect import bisect_left
from dataclasses import fields as dataclass_fields

from ..asm.program import Program
from ..config import MachineConfig, SamplingPlan
from ..telemetry import Telemetry
from .branch import BranchPredictor, BranchStats
from .decode import CTRL_COND, CTRL_DIRECT, decode_program
from .decoupled import Machine
from .functional import DynInstr
from .hierarchy import MemoryHierarchy
from .machine import RunResult
from .trace import CmasPlan, QueuePlan

#: two-sided 95% normal quantile for the extrapolation error bars.
_Z95 = 1.96

#: two-sided 95% Student-t quantiles by degrees of freedom: with only a
#: handful of sampled windows the normal quantile understates the error
#: bars, and the adaptive driver would stop densifying too early.
_T95 = (12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048, 2.045, 2.042)


def _t95(df: int) -> float:
    """Two-sided 95% t quantile (normal quantile beyond 30 d.o.f.)."""
    if df < 1:
        return _Z95
    if df <= len(_T95):
        return _T95[df - 1]
    return _Z95


class WarmupProbe:
    """Pre-extracted memory/branch event stream for functional warming.

    One pass over (decoded program, trace) builds compact position-sorted
    streams of the events that touch the hierarchy or the predictor;
    replaying any position range is then two bisects plus tight loops —
    no decode, no interpretation, no timing.  Memory and branch state are
    independent structures, so the two streams replay separately (batched
    through :meth:`~repro.sim.hierarchy.MemoryHierarchy.warm_many` for
    the cache side, which dominates).
    """

    __slots__ = ("mem_positions", "mem_events", "br_positions", "br_events")

    def __init__(self, program: Program, trace: list[DynInstr]):
        decoded = decode_program(program.text)
        # Per-pc classification (0 skip, 1 load, 2 store, 3 cond,
        # 4 indirect) so the trace loop does one list index per dynamic
        # instruction instead of DecodedOp attribute chains.  Direct jumps
        # never consult predictor state; they classify as skip.
        cls = [0] * len(decoded)
        for pc, op in enumerate(decoded):
            if op.is_mem:
                cls[pc] = 2 if op.is_store else 1
            elif op.ctrl_kind == CTRL_COND:
                cls[pc] = 3
            elif op.ctrl_kind and op.ctrl_kind != CTRL_DIRECT:
                cls[pc] = 4
        mem_positions: list[int] = []
        mem_events: list[tuple[int, bool]] = []
        br_positions: list[int] = []
        br_events: list[tuple] = []
        mem_pos_append = mem_positions.append
        mem_append = mem_events.append
        br_pos_append = br_positions.append
        br_append = br_events.append
        for pos, dyn in enumerate(trace):
            k = cls[dyn.pc]
            if not k:
                continue
            if k <= 2:
                addr = dyn.addr
                if addr is not None:
                    mem_pos_append(pos)
                    mem_append((addr, k == 2))
            elif k == 3:
                pc = dyn.pc
                br_pos_append(pos)
                br_append((pc, dyn.next_pc != pc + 1, dyn.next_pc, "cond"))
            else:
                br_pos_append(pos)
                br_append((dyn.pc, True, dyn.next_pc, "indirect"))
        self.mem_positions = mem_positions
        self.mem_events = mem_events
        self.br_positions = br_positions
        self.br_events = br_events

    def replay(self, lo: int, hi: int, hierarchy: MemoryHierarchy,
               predictor: BranchPredictor) -> None:
        """Warm *hierarchy*/*predictor* with events in positions [lo, hi)."""
        i = bisect_left(self.mem_positions, lo)
        j = bisect_left(self.mem_positions, hi)
        hierarchy.warm_many(self.mem_events[i:j])
        i = bisect_left(self.br_positions, lo)
        j = bisect_left(self.br_positions, hi)
        events = self.br_events
        resolve = predictor.resolve
        for k in range(i, j):
            ev = events[k]
            resolve(ev[0], ev[1], ev[2], ev[3])


def build_schedule(trace_length: int, warmup_pos: int,
                   plan: SamplingPlan) -> list[tuple[int, int, int]]:
    """The detailed windows as ``(fetch_start, measure_start, end)`` triples.

    The measured region ``[warmup_pos, trace_length)`` is cut into periods
    of ``plan.interval_length`` positions; one ``plan.detail_length`` window
    per period runs detailed, placed at a seed-derived random offset drawn
    *independently per period* (stratified sampling).  A single shared
    offset — classic systematic sampling — aliases with periodic program
    structure: every window lands at the same loop phase, giving estimates
    that agree tightly with each other and are all wrong the same way.
    Per-period offsets keep the coverage guarantee and make the
    inter-window variance an honest error signal.  Each window's fetch
    starts up to ``plan.warmup_length`` positions early — clamped so
    windows never overlap — and measurement starts at the window proper.
    An empty list means the region is small enough to simulate exactly.
    """
    region_start, region_end = warmup_pos, trace_length
    region = region_end - region_start
    if region <= plan.interval_length:
        return []
    rng = random.Random(
        f"{plan.seed}/{plan.interval_length}/{plan.detail_length}")
    windows: list[tuple[int, int, int]] = []
    prev_end = 0
    period_start = region_start
    while period_start < region_end:
        offset = rng.randrange(plan.interval_length - plan.detail_length + 1)
        d_start = period_start + offset
        if d_start >= region_end:
            break
        d_end = min(d_start + plan.detail_length, region_end)
        w_start = max(prev_end, d_start - plan.warmup_length, 0)
        windows.append((w_start, d_start, d_end))
        prev_end = d_end
        period_start += plan.interval_length
    return windows


def _scaled_dataclass(cls, parts: list, scale: float):
    """Field-wise sum of integer-counter dataclasses, scaled and rounded."""
    out = cls()
    for f in dataclass_fields(cls):
        total = sum(getattr(part, f.name) for part in parts)
        setattr(out, f.name, round(total * scale))
    return out


def _scaled_counter_dicts(parts: list[dict], scale: float) -> dict:
    """Key-wise sum of flat ``str -> int`` dicts, scaled and rounded."""
    out: dict = {}
    for part in parts:
        for key, value in part.items():
            out[key] = out.get(key, 0) + value
    return {key: round(value * scale) for key, value in out.items()}


def _scale_stack(bucket_sums: dict[str, int], target: int,
                 scale: float) -> dict[str, int]:
    """Scale one core's CPI stack so it sums *exactly* to *target* cycles.

    Largest-remainder rounding: floor every scaled bucket, then hand the
    residual cycles to the buckets with the largest fractional parts
    (name-ordered tiebreak, so the result is deterministic).
    """
    raw = {bucket: value * scale for bucket, value in bucket_sums.items()}
    out = {bucket: int(value) for bucket, value in raw.items()}
    short = target - sum(out.values())
    if short > 0:
        order = sorted(raw, key=lambda b: (out[b] - raw[b], b))
        for bucket in order[:short]:
            out[bucket] += 1
    return out


def _rel_ci95(samples: list[float]) -> float:
    """Relative half-width of the 95% CI on the mean of *samples*.

    Student-t quantile (not normal): sampled runs often have only a
    handful of windows, where the normal quantile understates the bars.
    """
    k = len(samples)
    if k < 2:
        return 0.0
    mean = sum(samples) / k
    if mean == 0.0:
        return 0.0
    var = sum((x - mean) ** 2 for x in samples) / (k - 1)
    return _t95(k - 1) * (var ** 0.5) / (k ** 0.5) / mean


def run_sampled(
    config: MachineConfig,
    plan: SamplingPlan,
    *,
    program: Program,
    trace: list[DynInstr],
    mode: str,
    queue_plan: QueuePlan | None = None,
    cmas_plan: CmasPlan | None = None,
    work_instructions: int | None = None,
    benchmark: str = "",
    warmup_pos: int = 0,
    telemetry: Telemetry | None = None,
    max_cycles: int | None = None,
) -> RunResult:
    """Run one (workload, model) cell sampled; returns an extrapolated
    :class:`~repro.sim.machine.RunResult` with ``sampled=True``.

    Machine construction arguments mirror :class:`~repro.sim.decoupled
    .Machine`; the sampling driver owns the shared hierarchy/predictor and
    the fast-forward schedule.  Small regions (one sampling period or less)
    fall back to exact detailed simulation of the whole region — still
    tagged ``sampled=True`` with ``"exact": True`` metadata, so cache keys
    and payloads stay honest about how the number was produced.
    """
    plan_meta = {
        "interval_length": plan.interval_length,
        "detail_length": plan.detail_length,
        "warmup_length": plan.warmup_length,
        "seed": plan.seed,
        "error_budget": plan.error_budget,
    }
    region = len(trace) - warmup_pos

    def run_exact(refinements: int) -> RunResult:
        machine = Machine(config, program, trace, mode,
                          queue_plan=queue_plan, cmas_plan=cmas_plan,
                          work_instructions=work_instructions,
                          benchmark=benchmark, warmup_pos=warmup_pos,
                          telemetry=telemetry)
        result = machine.run(max_cycles)
        result.sampled = True
        result.sampling = {
            "plan": plan_meta,
            "exact": True,
            "refinements": refinements,
            "schedule": [[warmup_pos, warmup_pos, len(trace)]],
            "intervals": 1,
            "sampled_positions": region,
            "total_positions": region,
            "trace_length": len(trace),
            "cycles_rel_ci95": 0.0,
            "component_rel_ci95": {},
        }
        return result

    schedule = build_schedule(len(trace), warmup_pos, plan)
    if not schedule:
        return run_exact(0)

    probe = WarmupProbe(program, trace)

    # Adaptive densification (the plan's `error_budget` is a variance
    # target, SMARTS-style): run the schedule, measure the 95% CI of
    # cycles-per-position across windows, and if it exceeds the budget
    # halve the sampling interval and resample.  Once the next halving
    # would cross 50% detail coverage, exact simulation is both cheaper
    # and error-free — degrade to it instead.
    interval_length = plan.interval_length
    refinements = 0
    while True:
        hierarchy = MemoryHierarchy.from_config(config)
        predictor = BranchPredictor(config.branch)
        intervals: list[RunResult] = []
        probe_pos = 0
        for w_start, d_start, d_end in schedule:
            probe.replay(probe_pos, w_start, hierarchy, predictor)
            hierarchy.settle()
            machine = Machine(config, program, trace, mode,
                              queue_plan=queue_plan, cmas_plan=cmas_plan,
                              work_instructions=d_end - d_start,
                              benchmark=benchmark, warmup_pos=d_start,
                              telemetry=telemetry,
                              start_pos=w_start, end_pos=d_end,
                              hierarchy=hierarchy, predictor=predictor)
            intervals.append(machine.run(max_cycles))
            # Detach the stats objects the interval result now owns: the
            # next probe replay and interval mutate fresh ones instead.
            hierarchy.reset_stats()
            predictor.stats = BranchStats()
            probe_pos = d_end

        positions = [d_end - d_start for _, d_start, d_end in schedule]
        cycles_ci = _rel_ci95(
            [r.cycles / pos for r, pos in zip(intervals, positions)])
        if cycles_ci <= plan.error_budget:
            break
        refinements += 1
        # The CI shrinks like 1/sqrt(windows), so meeting the budget takes
        # about k*(ci/budget)^2 windows.  Jump to (at most) the predicted
        # interval instead of halving blindly — a hopelessly high-variance
        # workload then degrades to exact after ONE probe round rather
        # than re-running ever-denser schedules first.
        k = len(schedule)
        needed = max(2 * k,
                     math.ceil(k * (cycles_ci / plan.error_budget) ** 2))
        interval_length = min(interval_length // 2, region // needed)
        if interval_length < 2 * (plan.detail_length + plan.warmup_length):
            # Denser than ~50% detail+warmup coverage: exact simulation
            # is both cheaper and error-free.
            return run_exact(refinements)
        schedule = build_schedule(
            len(trace), warmup_pos,
            dataclasses.replace(plan, interval_length=interval_length))

    sampled_positions = sum(positions)
    scale = region / sampled_positions
    total_sampled_cycles = sum(r.cycles for r in intervals)
    cycles = round(total_sampled_cycles * scale)

    cpi_stacks: dict[str, dict[str, int]] = {}
    if all(r.cpi_stacks for r in intervals):
        per_core: dict[str, dict[str, int]] = {}
        for r in intervals:
            for core, stack in r.cpi_stacks.items():
                sums = per_core.setdefault(core, {})
                for bucket, value in stack.items():
                    sums[bucket] = sums.get(bucket, 0) + value
        cpi_stacks = {core: _scale_stack(sums, cycles, scale)
                      for core, sums in per_core.items()}

    component_ci: dict[str, float] = {}
    if cpi_stacks:
        buckets = sorted({b for r in intervals
                          for stack in r.cpi_stacks.values() for b in stack})
        for bucket in buckets:
            rates = [
                sum(stack.get(bucket, 0) for stack in r.cpi_stacks.values())
                / pos
                for r, pos in zip(intervals, positions)
            ]
            component_ci[bucket] = _rel_ci95(rates)

    result = RunResult(
        machine=mode,
        benchmark=benchmark,
        cycles=cycles,
        total_cycles=cycles,
        work_instructions=(work_instructions if work_instructions is not None
                           else len(trace)),
        committed=_scaled_counter_dicts([r.committed for r in intervals],
                                        scale),
        l1=_scaled_dataclass(type(intervals[0].l1),
                             [r.l1 for r in intervals], scale),
        l2=_scaled_dataclass(type(intervals[0].l2),
                             [r.l2 for r in intervals], scale),
        memory=_scaled_dataclass(type(intervals[0].memory),
                                 [r.memory for r in intervals], scale),
        branch=_scaled_dataclass(BranchStats,
                                 [r.branch for r in intervals], scale),
        core_stats={
            core: _scaled_counter_dicts(
                [r.core_stats.get(core, {}) for r in intervals], scale)
            for core in intervals[0].core_stats
        },
        cmas_threads_forked=round(
            sum(r.cmas_threads_forked for r in intervals) * scale),
        cmas_threads_dropped=round(
            sum(r.cmas_threads_dropped for r in intervals) * scale),
        cpi_stacks=cpi_stacks,
        sampled=True,
        sampling={
            "plan": plan_meta,
            "exact": False,
            "refinements": refinements,
            "interval_length_effective": interval_length,
            "schedule": [list(window) for window in schedule],
            "intervals": len(schedule),
            "sampled_positions": sampled_positions,
            "total_positions": region,
            "trace_length": len(trace),
            "cycles_rel_ci95": cycles_ci,
            "component_rel_ci95": component_ci,
        },
    )
    return result
