"""Set-associative cache model with true-LRU replacement.

The cache stores only tags and dirty bits — data always lives in
:class:`~repro.sim.memory.MainMemory` (the functional simulator keeps the
architectural state; caches exist purely for timing and statistics, which
is exactly how sim-outorder structures it too).

Accesses are classified as *demand* (issued by the CP/AP/superscalar
pipeline) or *prefetch* (issued by the CMP running a CMAS).  Figure 9 of
the paper reports demand-miss reduction, so the two classes are counted
separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import CacheConfig
from ..utils import ilog2


@dataclass
class CacheStats:
    """Counters for one cache level."""

    demand_accesses: int = 0
    demand_misses: int = 0
    prefetch_accesses: int = 0
    prefetch_misses: int = 0
    writebacks: int = 0
    evictions: int = 0
    #: Demand misses that hit a line brought in by a prefetch (usefulness).
    useful_prefetch_hits: int = 0

    @property
    def demand_hits(self) -> int:
        return self.demand_accesses - self.demand_misses

    @property
    def demand_miss_rate(self) -> float:
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_misses / self.demand_accesses

    def merge(self, other: "CacheStats") -> None:
        for name in (
            "demand_accesses", "demand_misses", "prefetch_accesses",
            "prefetch_misses", "writebacks", "evictions", "useful_prefetch_hits",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> dict[str, float]:
        """JSON-ready counters (used by the `hidisc stats` payload)."""
        return {
            "demand_accesses": self.demand_accesses,
            "demand_misses": self.demand_misses,
            "demand_miss_rate": self.demand_miss_rate,
            "prefetch_accesses": self.prefetch_accesses,
            "prefetch_misses": self.prefetch_misses,
            "writebacks": self.writebacks,
            "evictions": self.evictions,
            "useful_prefetch_hits": self.useful_prefetch_hits,
        }


@dataclass
class _Line:
    tag: int
    dirty: bool = False
    #: line was installed by a CMP prefetch and not yet demand-touched
    prefetched: bool = False


@dataclass
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    #: Block-aligned byte address of the evicted dirty line, if any.
    writeback_address: int | None = None


class Cache:
    """One level of set-associative, write-back, write-allocate cache."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.block_bits = ilog2(config.block_bytes)
        self.set_bits = ilog2(config.sets)
        self.set_mask = config.sets - 1
        # Each set is an MRU-first list of _Line.
        self._sets: list[list[_Line]] = [[] for _ in range(config.sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _index_tag(self, address: int) -> tuple[int, int]:
        block = address >> self.block_bits
        return block & self.set_mask, block >> self.set_bits

    def block_address(self, address: int) -> int:
        """Block-aligned address containing *address*."""
        return (address >> self.block_bits) << self.block_bits

    # ------------------------------------------------------------------
    def probe(self, address: int) -> bool:
        """Non-destructive lookup: True on hit.  No LRU update, no stats."""
        index, tag = self._index_tag(address)
        return any(line.tag == tag for line in self._sets[index])

    def access(self, address: int, is_write: bool = False,
               is_prefetch: bool = False) -> AccessResult:
        """Perform one access: lookup, LRU update, fill + eviction on miss."""
        index, tag = self._index_tag(address)
        lines = self._sets[index]
        stats = self.stats

        if is_prefetch:
            stats.prefetch_accesses += 1
        else:
            stats.demand_accesses += 1

        for pos, line in enumerate(lines):
            if line.tag == tag:
                if pos:
                    lines.insert(0, lines.pop(pos))
                if is_write:
                    line.dirty = True
                if not is_prefetch and line.prefetched:
                    stats.useful_prefetch_hits += 1
                    line.prefetched = False
                return AccessResult(hit=True)

        # Miss: allocate (write-allocate policy covers stores too).
        if is_prefetch:
            stats.prefetch_misses += 1
        else:
            stats.demand_misses += 1

        writeback = None
        if len(lines) >= self.config.ways:
            victim = lines.pop()
            stats.evictions += 1
            if victim.dirty:
                stats.writebacks += 1
                victim_block = (victim.tag << self.set_bits) | index
                writeback = victim_block << self.block_bits
        lines.insert(0, _Line(tag=tag, dirty=is_write, prefetched=is_prefetch))
        return AccessResult(hit=False, writeback_address=writeback)

    def invalidate_all(self) -> None:
        """Drop every line (between benchmark runs)."""
        self._sets = [[] for _ in range(self.config.sets)]

    def invalidate_block(self, address: int) -> bool:
        """Drop the line containing *address* if resident; True if dropped.

        Models a corrupted fill detected by ECC (repro.resilience fault
        injection): the architectural data always lives in main memory, so
        discarding the line is safe — the next access simply re-fetches.
        No statistics are charged; the re-fetch shows up as an ordinary
        miss.
        """
        index, tag = self._index_tag(address)
        lines = self._sets[index]
        for pos, line in enumerate(lines):
            if line.tag == tag:
                del lines[pos]
                return True
        return False

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s) for s in self._sets)

    def resident_blocks(self) -> set[int]:
        """Set of block-aligned addresses currently cached (for tests)."""
        out = set()
        for index, lines in enumerate(self._sets):
            for line in lines:
                block = (line.tag << self.set_bits) | index
                out.add(block << self.block_bits)
        return out
