"""Static decode table for the timing model.

Everything the timing core needs to know about an instruction is a static
property of the program text: sources, destination, FU class, latency,
queue-protocol flags, branch kind.  The old hot loops re-derived all of it
per *dynamic* instruction through ``instr.op.info`` — an Enum descriptor
lookup plus several property calls, seven-plus attribute chains per
instruction retired.  :func:`decode_program` resolves them once per
*static* instruction into a flat :class:`DecodedOp` record (plain slots,
ints and tuples), and the machine indexes the table by PC.

This is purely a performance structure: every field is defined by exactly
the expression the scheduler used to evaluate inline, so consuming the
table cannot change timing.
"""

from __future__ import annotations

from ..isa.instruction import Instruction
from ..isa.opcodes import Op
from .fu import FU_INDEX

#: Branch kinds for the front-end predictor (see ``Machine._separator_step``):
#: 0 — not a predicted control instruction (includes HALT), 1 — conditional
#: branch, 2 — indirect jump (JR), 3 — direct jump (J/JAL).
CTRL_NONE, CTRL_COND, CTRL_INDIRECT, CTRL_DIRECT = 0, 1, 2, 3


class DecodedOp:
    """One statically decoded instruction (see module docstring)."""

    __slots__ = ("instr", "mnemonic", "stream", "fu", "latency", "srcs",
                 "dest", "is_load", "is_store", "is_mem", "is_control",
                 "ctrl_kind", "reads_ldq_any", "ldq_push", "ldq_pops",
                 "sdq_push", "sdq_pop", "queue_push", "has_queue",
                 "block_class")

    def __init__(self, instr: Instruction):
        info = instr.op.info
        ann = instr.ann
        self.instr = instr
        self.mnemonic = instr.op.mnemonic
        self.stream = ann.stream  # None on unannotated (baseline) text
        self.fu = FU_INDEX[info.fu]
        self.latency = info.latency
        # Register sources exactly as dispatch resolved them: "$LDQ"-flagged
        # operands take their value from the queue, not the register file.
        srcs = instr.source_regs()
        if ann.ldq_rs1 or ann.ldq_rs2:
            srcs = tuple(
                reg for reg, flagged in
                ((instr.rs1, ann.ldq_rs1), (instr.rs2, ann.ldq_rs2))
                if not flagged and reg != 0 and reg in srcs
            )
        self.srcs = srcs
        self.dest = instr.dest_reg()
        self.is_load = info.is_load
        self.is_store = info.is_store
        self.is_mem = info.is_load or info.is_store
        self.is_control = info.is_control
        if not info.is_control or instr.op is Op.HALT:
            self.ctrl_kind = CTRL_NONE
        elif instr.is_branch:
            self.ctrl_kind = CTRL_COND
        elif instr.op is Op.JR:
            self.ctrl_kind = CTRL_INDIRECT
        else:  # J / JAL: target known at decode.
            self.ctrl_kind = CTRL_DIRECT
        # Queue-protocol flags (LDQ/SDQ dependence edges + telemetry taps).
        self.reads_ldq_any = info.reads_ldq or ann.ldq_rs1 or ann.ldq_rs2
        self.ldq_push = info.writes_ldq or (info.is_load and ann.to_ldq)
        self.ldq_pops = (int(info.reads_ldq) + int(ann.ldq_rs1)
                         + int(ann.ldq_rs2))
        self.sdq_push = info.writes_sdq or ann.to_sdq
        self.sdq_pop = info.is_store and ann.sdq_data
        #: does issue push onto an architectural queue (fault-injection hook)
        self.queue_push = self.ldq_push or self.sdq_push
        #: any LDQ/SDQ participation at all — lets dispatch skip the whole
        #: queue-dependence block for plain ALU/branch instructions.
        self.has_queue = (self.reads_ldq_any or self.ldq_push
                          or self.sdq_push or self.sdq_pop)
        # Dependence-stall classification, same precedence as
        # ``TimingCore._block_reason``.
        if self.reads_ldq_any:
            self.block_class = "ldq_empty"
        elif info.writes_ldq or info.writes_sdq or ann.to_ldq or ann.to_sdq:
            self.block_class = "queue_full"
        elif self.sdq_pop:
            self.block_class = "sdq_empty"
        else:
            self.block_class = "data_dep"


def decode_program(text: list[Instruction]) -> list[DecodedOp]:
    """Decode *text* (one record per static instruction, indexed by PC).

    Must run after stream separation: the slicer's annotations (``$LDQ``
    operands, ``to_ldq``/``to_sdq`` routing) are part of the decode.
    """
    return [DecodedOp(instr) for instr in text]
