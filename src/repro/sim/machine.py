"""Run results: everything a simulation reports.

:class:`RunResult` is the single artefact the experiment harness consumes;
it carries enough detail to regenerate every figure of the paper (cycles
and IPC for Figure 8/10, demand miss rates for Figure 9, queue/LoD counters
for the Neighborhood analysis in §5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .branch import BranchStats
from .cache import CacheStats
from .hierarchy import HierarchyStats


@dataclass
class RunResult:
    """Outcome of one timing simulation."""

    machine: str                      # superscalar | cp_ap | cp_cmp | hidisc
    benchmark: str
    #: cycles inside the measurement window (equals ``total_cycles`` when
    #: no warmup/fast-forward region was configured).
    cycles: int
    #: dynamic instructions of the *original* program inside the
    #: measurement window (the unit of work); inserted communication
    #: instructions are excluded so IPC is comparable across models.
    work_instructions: int
    #: cycles including the warmup region.
    total_cycles: int = 0
    #: committed instructions per core (includes communication instructions).
    committed: dict[str, int] = field(default_factory=dict)
    l1: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)
    memory: HierarchyStats = field(default_factory=HierarchyStats)
    branch: BranchStats = field(default_factory=BranchStats)
    core_stats: dict[str, dict[str, int]] = field(default_factory=dict)
    #: CMAS bookkeeping.
    cmas_threads_forked: int = 0
    cmas_threads_dropped: int = 0
    #: Per-core CPI stacks (core name -> component -> cycles); populated
    #: when the run was telemetry-enabled, empty otherwise.  Components
    #: sum to :attr:`cycles` — see :mod:`repro.telemetry.cpi`.
    cpi_stacks: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Faults that actually fired (kind -> count); empty unless the run had
    #: a :class:`repro.resilience.FaultInjector` attached.
    faults_injected: dict[str, int] = field(default_factory=dict)
    #: True once the co-simulation oracle passed this run (``--verify``).
    verified: bool = False
    #: True when this result was *extrapolated* from sampled detailed
    #: intervals rather than measured over every cycle (see
    #: :mod:`repro.sim.sampling`).
    sampled: bool = False
    #: Sampling metadata: the :class:`~repro.config.SamplingPlan`
    #: parameters, the exact fast-forward/warmup/detail schedule, the
    #: sampled-vs-total position counts and the measured 95% confidence
    #: interval on cycles (relative).  Empty for full-detail runs.
    sampling: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Work instructions per cycle (the paper's Figure 10 metric)."""
        if self.cycles == 0:
            return 0.0
        return self.work_instructions / self.cycles

    @property
    def l1_demand_miss_rate(self) -> float:
        return self.l1.demand_miss_rate

    def speedup_over(self, baseline: "RunResult") -> float:
        """Execution-time speedup of *self* relative to *baseline*."""
        if self.cycles == 0:
            raise ValueError("cannot compute speedup of a zero-cycle run")
        return baseline.cycles / self.cycles

    def miss_rate_ratio(self, baseline: "RunResult") -> float:
        """L1 demand miss-rate relative to *baseline* (Figure 9's y-axis)."""
        base = baseline.l1_demand_miss_rate
        if base == 0.0:
            return 1.0
        return self.l1_demand_miss_rate / base

    def loss_of_decoupling_cycles(self) -> int:
        """Cycles any core's retirement was blocked on cross-stream sync."""
        total = 0
        for stats in self.core_stats.values():
            total += stats.get("ldq_empty_stalls", 0)
            total += stats.get("sdq_empty_stalls", 0)
            total += stats.get("queue_full_stalls", 0)
        return total

    def stall_breakdown(self) -> dict[str, dict[str, int]]:
        """Per-core loss-of-decoupling composition (§5.3 taxonomy).

        Maps core name to the three LoD stall counters, so trajectories can
        track *which* synchronisation mechanism caps the speedup, not just
        the :meth:`loss_of_decoupling_cycles` sum.
        """
        out: dict[str, dict[str, int]] = {}
        for core, stats in self.core_stats.items():
            out[core] = {
                "ldq_empty": stats.get("ldq_empty_stalls", 0),
                "sdq_empty": stats.get("sdq_empty_stalls", 0),
                "queue_full": stats.get("queue_full_stalls", 0),
            }
        return out

    def summary(self) -> str:
        """One-line human-readable summary (with LoD composition)."""
        line = (
            f"{self.benchmark:>14s} on {self.machine:<11s}: "
            f"{self.cycles:>9d} cycles, IPC {self.ipc:5.3f}, "
            f"L1 demand miss rate {self.l1_demand_miss_rate:6.4f}"
        )
        lod = self.loss_of_decoupling_cycles()
        if lod:
            parts = {"ldq_empty": 0, "sdq_empty": 0, "queue_full": 0}
            for per_core in self.stall_breakdown().values():
                for key, value in per_core.items():
                    parts[key] += value
            composition = "/".join(
                f"{key.split('_')[0]} {value}"
                for key, value in parts.items() if value
            )
            line += f", LoD {lod} ({composition})"
        return line
