"""Branch predictors: bimodal (Table 1), gshare, and static baselines.

The predictor answers *taken or not-taken*; the branch-target buffer (BTB)
supplies targets for taken predictions and for register-indirect jumps.
A prediction is *wrong* if either the direction or the target is wrong —
the timing cores treat both identically (front-end redirect at resolve).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import BranchConfig
from ..errors import ConfigError


@dataclass
class BranchStats:
    """Prediction accuracy counters."""

    lookups: int = 0
    mispredicts: int = 0

    @property
    def accuracy(self) -> float:
        if self.lookups == 0:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups


class BranchTargetBuffer:
    """Direct-mapped, tagged BTB: pc -> last observed target."""

    def __init__(self, size: int):
        self.mask = size - 1
        self._tags: list[int] = [-1] * size
        self._targets: list[int] = [0] * size

    def lookup(self, pc: int) -> int | None:
        index = pc & self.mask
        if self._tags[index] == pc:
            return self._targets[index]
        return None

    def update(self, pc: int, target: int) -> None:
        index = pc & self.mask
        self._tags[index] = pc
        self._targets[index] = target


class BranchPredictor:
    """Direction predictor + BTB; the concrete scheme is configuration."""

    def __init__(self, config: BranchConfig):
        self.config = config
        self.btb = BranchTargetBuffer(config.btb_size)
        self.stats = BranchStats()
        self._mask = config.table_size - 1
        # 2-bit saturating counters, initialised weakly taken.
        self._table = [2] * config.table_size
        self._history = 0
        if config.kind not in ("bimodal", "gshare", "taken", "nottaken", "perfect"):
            raise ConfigError(f"unknown predictor {config.kind!r}")

    # ------------------------------------------------------------------
    def _index(self, pc: int) -> int:
        if self.config.kind == "gshare":
            return (pc ^ self._history) & self._mask
        return pc & self._mask

    def predict_direction(self, pc: int) -> bool:
        """Predicted direction for a conditional branch at *pc*."""
        kind = self.config.kind
        if kind == "taken":
            return True
        if kind == "nottaken":
            return False
        if kind == "perfect":
            # The caller must consult the oracle; returning taken here is
            # irrelevant because `resolve` reports no mispredict.
            return True
        return self._table[self._index(pc)] >= 2

    def predict_target(self, pc: int) -> int | None:
        """Predicted target (None = BTB miss, treat as fall-through)."""
        return self.btb.lookup(pc)

    # ------------------------------------------------------------------
    def resolve(self, pc: int, taken: bool, target: int,
                kind: str = "cond") -> bool:
        """Record the outcome of a control instruction.

        *kind* is ``"cond"`` (conditional branch: direction + target
        predicted), ``"indirect"`` (jr: target through the BTB) or
        ``"direct"`` (j/jal: target known at decode, never mispredicts).

        Returns True iff the front-end *mispredicted* (direction or target)
        and must be redirected.
        """
        if kind == "direct":
            return False
        self.stats.lookups += 1
        if self.config.kind == "perfect":
            return False

        mispredict = False
        if kind == "cond":
            predicted_taken = self.predict_direction(pc)
            if predicted_taken != taken:
                mispredict = True
            elif taken and self.btb.lookup(pc) != target:
                mispredict = True
            # Update the direction table.
            if self.config.kind in ("bimodal", "gshare"):
                index = self._index(pc)
                counter = self._table[index]
                if taken:
                    self._table[index] = min(3, counter + 1)
                else:
                    self._table[index] = max(0, counter - 1)
            self._history = ((self._history << 1) | int(taken)) & self._mask
        else:
            # Indirect: direction is always taken; only the target can be
            # wrong (jr through a cold or aliased BTB entry).
            if self.btb.lookup(pc) != target:
                mispredict = True

        if taken:
            self.btb.update(pc, target)
        if mispredict:
            self.stats.mispredicts += 1
        return mispredict
