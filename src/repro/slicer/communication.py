"""Communication insertion (paper §4.2, "Insert Communication Instructions").

Builds the *decoupled program*: a copy of the separated program with the
queue communication the paper shows in Figure 6.  Three mechanisms, from
cheapest to most general:

1. **$LDQ operands** — an Access-Stream definition whose single
   Computation-Stream use sits later in the same basic block is delivered
   *through the queue into the operand*: the producing load gets the
   ``to_ldq`` annotation (``l.d $LDQ, ...``), ALU producers get a
   ``push.ldq``, and the consuming instruction's operand is flagged
   ``ldq_rs1``/``ldq_rs2`` (``mul.d $f4, $LDQ, $LDQ``).  Zero extra CP
   instructions.
2. **pop-to-register** — definitions with several CS uses (or uses in
   other blocks) are pushed once per definition and received by an
   inserted ``pop.ldq`` that writes the CP's copy of the register,
   immediately after the producer in the sequential stream.  All later CS
   uses read the CP register file.
3. **$SDQ results** — a store whose data is produced by the CS takes it
   from the SDQ (``s.d $SDQ, ...``).  If the producing CS instruction is
   unique and earlier in the same block it deposits its result directly
   (``to_sdq``); otherwise a ``push.sdq`` is inserted just before the
   store.

Because both streams are carved out of one sequential instruction stream,
queue matching is FIFO by construction **provided** pushes and pops
interleave consistently.  Mechanisms 2 and 3 (adjacent insertion) are
trivially safe; mechanism 1 opens a push-to-pop *span* inside a block, so
an exact per-block FIFO simulation (:func:`_resolve_fifo_conflicts`)
demotes any span that would cross another queue event out of order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.program import Program
from ..errors import SlicingError
from ..isa.instruction import Instruction, Stream
from ..isa.opcodes import Format, Op
from ..isa.registers import ZERO, is_fp_reg
from .dataflow import ENTRY_DEF
from .separation import SeparationResult

#: Formats whose rs2 field is a source operand (for slot counting).
_RS2_SOURCE_FORMATS = (Format.R3,)


@dataclass
class DecoupledProgram:
    """The decoupled program plus the maps back to the original."""

    program: Program
    #: original pc -> new index of the start of its instruction group
    #: (branch targets point here).
    group_map: list[int] = field(default_factory=list)
    #: original pc -> new index of the original instruction itself
    #: (annotation transfer points here).
    instr_map: list[int] = field(default_factory=list)
    #: pop-to-register transfers (mechanism 2).
    ldq_pairs: int = 0
    #: $LDQ operand transfers (mechanism 1).
    ldq_operands: int = 0
    #: stores taking data from the SDQ.
    sdq_stores: int = 0
    #: of those, how many producers deposit directly ($SDQ results).
    sdq_direct: int = 0

    def map_pcs(self, pcs: set[int]) -> set[int]:
        """Translate a set of original pcs to decoupled-program pcs."""
        return {self.instr_map[pc] for pc in pcs}


def _source_slots(instr: Instruction) -> list[tuple[str, int]]:
    """(slot name, register) pairs of the instruction's register sources."""
    fmt = instr.op.info.fmt
    slots: list[tuple[str, int]] = []
    if fmt in (Format.R3, Format.R2, Format.RI):
        slots.append(("rs1", instr.rs1))
        if fmt in _RS2_SOURCE_FORMATS:
            slots.append(("rs2", instr.rs2))
    return slots


def _select_ldq_candidates(sep: SeparationResult, needs_ldq: list[bool],
                           sdq_data_use: list[bool]) -> dict[int, tuple[int, str]]:
    """Mechanism-1 candidates: def pc -> (use pc, flagged slot).

    A definition qualifies when its Computation-Stream consumption is a
    single use, in the same basic block, strictly later, with this
    definition as the unique reaching def of that operand — and when no
    inserted ``push.sdq`` needs the CP's register copy.
    """
    text = sep.program.text
    stream_of = sep.stream_of
    def_use = sep.pfg.def_use
    block_of = sep.pfg.cfg.block_of
    candidates: dict[int, tuple[int, str]] = {}
    for d in range(len(text)):
        if not needs_ldq[d] or sdq_data_use[d]:
            continue
        cs_uses = [
            (u, reg) for (u, reg) in def_use.uses_of_def.get(d, ())
            if stream_of[u] is Stream.CS
        ]
        if len(cs_uses) != 1:
            continue
        u, reg = cs_uses[0]
        if block_of[u] != block_of[d] or u <= d:
            continue
        if def_use.defs_for_use(u, reg) != {d}:
            continue
        use_instr = text[u]
        slots = [(name, r) for name, r in _source_slots(use_instr) if r == reg]
        if len(slots) != 1:
            continue  # operand appears twice (or not at all) — keep the pop
        candidates[d] = (u, slots[0][0])
    return candidates


def _select_sdq_candidates(sep: SeparationResult,
                           sdq_store: list[bool]) -> dict[int, int]:
    """Mechanism-3 candidates: store pc -> producer pc (``to_sdq``)."""
    text = sep.program.text
    stream_of = sep.stream_of
    def_use = sep.pfg.def_use
    block_of = sep.pfg.cfg.block_of
    candidates: dict[int, int] = {}
    # How many SDQ stores each definition feeds (a direct producer must
    # feed exactly one, or push/pop counts diverge).
    feeds: dict[int, int] = {}
    for s in range(len(text)):
        if not sdq_store[s]:
            continue
        for d in def_use.defs_for_use(s, text[s].rs2):
            feeds[d] = feeds.get(d, 0) + 1
    for s in range(len(text)):
        if not sdq_store[s]:
            continue
        defs = def_use.defs_for_use(s, text[s].rs2)
        if len(defs) != 1:
            continue
        (d,) = defs
        if d == ENTRY_DEF or stream_of[d] is not Stream.CS:
            continue
        if block_of[d] != block_of[s] or d >= s:
            continue
        if feeds.get(d, 0) != 1:
            continue
        if text[d].dest_reg() is None:
            continue
        candidates[s] = d
    return candidates


def _resolve_fifo_conflicts(sep: SeparationResult, needs_ldq: list[bool],
                            sdq_store: list[bool],
                            ldq_cand: dict[int, tuple[int, str]],
                            sdq_cand: dict[int, int]) -> None:
    """Demote operand-span candidates that would break FIFO order.

    Simulates each basic block's queue traffic exactly as it will execute;
    whenever a pop would not find its own push at the head, the span
    blocking the head is demoted to the adjacent (always-safe) mechanism
    and the simulation restarts.  Terminates because every restart removes
    a candidate.  Mutates *ldq_cand* / *sdq_cand* in place.
    """
    text = sep.program.text
    blocks = sep.pfg.cfg.blocks

    def simulate() -> int | None:
        """Returns a def pc to demote (LDQ) or -store pc - 1 (SDQ), or None."""
        ldq_pops_by_use: dict[int, list[int]] = {}
        for d, (u, slot) in ldq_cand.items():
            ldq_pops_by_use.setdefault(u, []).append(d)
        for u, defs in ldq_pops_by_use.items():
            # rs1's pop precedes rs2's: order by flagged slot.
            defs.sort(key=lambda d: 0 if ldq_cand[d][1] == "rs1" else 1)
        producers = set(sdq_cand.values())
        for block in blocks:
            ldq: list[int] = []
            sdq: list[int] = []
            for pc in range(block.start, block.end):
                if needs_ldq[pc]:
                    ldq.append(pc)
                    if pc not in ldq_cand:
                        # Adjacent pop: must find itself at the head.
                        if ldq[0] != pc:
                            return ldq[0]
                        ldq.pop(0)
                for d in ldq_pops_by_use.get(pc, ()):
                    if not ldq or ldq[0] != d:
                        return ldq[0] if ldq else d
                    ldq.pop(0)
                if pc in producers:
                    sdq.append(pc)
                if sdq_store[pc]:
                    d = sdq_cand.get(pc)
                    if d is None:
                        # push.sdq inserted adjacently: head must be free.
                        if sdq:
                            return -sdq[0] - 1  # demote blocking producer
                    else:
                        if not sdq or sdq[0] != d:
                            return (-sdq[0] - 1) if sdq else (-d - 1)
                        sdq.pop(0)
            if ldq:
                return ldq[0]
            if sdq:
                return -sdq[0] - 1
        return None

    while True:
        verdict = simulate()
        if verdict is None:
            return
        if verdict >= 0:
            if verdict not in ldq_cand:
                raise SlicingError(
                    f"FIFO conflict at pc {verdict} cannot be resolved"
                )
            del ldq_cand[verdict]
        else:
            producer = -verdict - 1
            stores = [s for s, d in sdq_cand.items() if d == producer]
            if not stores:
                raise SlicingError(
                    f"SDQ FIFO conflict at producer pc {producer} cannot be "
                    f"resolved"
                )
            for s in stores:
                del sdq_cand[s]


def insert_communication(sep: SeparationResult) -> DecoupledProgram:
    """Build the decoupled program from a separation result."""
    original = sep.program
    text = original.text
    n = len(text)
    stream_of = sep.stream_of
    def_use = sep.pfg.def_use

    # --- step 1: which stores take their data from the SDQ? -------------
    sdq_store = [False] * n
    for pc, instr in enumerate(text):
        if not instr.is_store or instr.rs2 == ZERO:
            continue
        for d in def_use.defs_for_use(pc, instr.rs2):
            if d != ENTRY_DEF and stream_of[d] is Stream.CS:
                sdq_store[pc] = True
                break

    # --- step 2: which AS definitions must reach the CP? ----------------
    needs_ldq = [False] * n
    sdq_data_use = [False] * n   # def feeds an SDQ store's data operand
    for pc, instr in enumerate(text):
        if stream_of[pc] is not Stream.AS:
            continue
        dest = instr.dest_reg()
        if dest is None:
            continue
        for use_pc, reg in def_use.uses_of_def.get(pc, ()):
            use_instr = text[use_pc]
            if stream_of[use_pc] is Stream.CS:
                needs_ldq[pc] = True
            elif sdq_store[use_pc] and reg == use_instr.rs2:
                # The inserted push.sdq reads the CP's copy of this register.
                needs_ldq[pc] = True
                sdq_data_use[pc] = True
        if needs_ldq[pc] and instr.is_control:
            raise SlicingError(
                f"control instruction at pc {pc} defines a register consumed "
                f"by the Computation Stream; cannot place its LDQ push"
            )

    # --- step 2.5: operand-level delivery where FIFO order allows it ----
    ldq_cand = _select_ldq_candidates(sep, needs_ldq, sdq_data_use)
    sdq_cand = _select_sdq_candidates(sep, sdq_store)
    _resolve_fifo_conflicts(sep, needs_ldq, sdq_store, ldq_cand, sdq_cand)
    flagged_uses: dict[int, list[tuple[str, int]]] = {}
    for d, (u, slot) in ldq_cand.items():
        flagged_uses.setdefault(u, []).append((slot, d))

    # --- step 3: emit ------------------------------------------------------
    new_text: list[Instruction] = []
    group_map = [0] * n
    instr_map = [0] * n
    result = DecoupledProgram(
        program=Program(name=f"{original.name}.hidisc"),
        group_map=group_map,
        instr_map=instr_map,
    )

    def emit(instr: Instruction, stream: Stream) -> Instruction:
        instr.ann.stream = stream
        new_text.append(instr)
        return instr

    for pc in range(n):
        instr = text[pc].copy()
        stream = stream_of[pc]
        group_map[pc] = len(new_text)
        if sdq_store[pc]:
            producer = sdq_cand.get(pc)
            if producer is not None:
                # Mechanism 3: the producer deposits directly ("$SDQ" dest).
                new_text[instr_map[producer]].ann.to_sdq = True
                result.sdq_direct += 1
            else:
                push_op = Op.PUSH_SDQF if instr.op.info.is_fp else Op.PUSH_SDQ
                emit(Instruction(op=push_op, rs1=instr.rs2,
                                 comment=f"data for store @{pc}"), Stream.CS)
            instr.ann.sdq_data = True
            result.sdq_stores += 1
        for slot, _d in flagged_uses.get(pc, ()):
            # Mechanism 1: this operand reads "$LDQ".
            setattr(instr.ann, f"ldq_{slot}", True)
            result.ldq_operands += 1
        instr_map[pc] = len(new_text)
        emit(instr, stream)
        if needs_ldq[pc]:
            dest = instr.dest_reg()
            fp = is_fp_reg(dest)
            if instr.is_load:
                # Loads deposit straight into the LDQ ("$LDQ" destination).
                instr.ann.to_ldq = True
            else:
                push_op = Op.PUSH_LDQF if fp else Op.PUSH_LDQ
                emit(Instruction(op=push_op, rs1=dest,
                                 comment=f"AS->CS from @{pc}"), Stream.AS)
            if pc not in ldq_cand:
                # Mechanism 2: receive into the CP's register copy.
                pop_op = Op.POP_LDQF if fp else Op.POP_LDQ
                emit(Instruction(op=pop_op, rd=dest,
                                 comment=f"CS recv from @{pc}"), Stream.CS)
                result.ldq_pairs += 1

    # --- step 4: retarget control flow --------------------------------------
    for instr in new_text:
        if instr.op.info.fmt in (Format.BRANCH, Format.BRANCH1, Format.JUMP):
            instr.target = group_map[instr.target]

    program = result.program
    program.text = new_text
    program.data = bytearray(original.data)
    program.data_symbols = dict(original.data_symbols)
    program.text_symbols = {
        name: group_map[pc] for name, pc in original.text_symbols.items()
    }
    program.entry = group_map[original.entry]
    program.validate()
    return result
