"""The HiDISC compiler: stream separation, communication, CMAS extraction.

The one-call entry point is :func:`compile_hidisc`, which reproduces the
paper's Figure 4 pipeline:

1. derive the Program Flow Graph (:mod:`repro.slicer.pfg`),
2. define load/store instructions and chase backward slices
   (:mod:`repro.slicer.separation`),
3. insert communication instructions (:mod:`repro.slicer.communication`),
4. select the CMAS from a cache-access profile (:mod:`repro.slicer.cmas`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..asm.program import Program
from ..config import MachineConfig
from .adaptive import adaptive_trigger_distances
from .cfg import BasicBlock, ControlFlowGraph
from .cmas import CmasSelection, extract_cmas
from .communication import DecoupledProgram, insert_communication
from .dataflow import ENTRY_DEF, DefUse, compute_def_use
from .pfg import ProgramFlowGraph
from .separation import SeparationResult, separate
from .validate import (
    EquivalenceReport,
    validate_decoupled_dynamic,
    validate_decoupled_static,
    validate_separation,
)


@dataclass
class HidiscCompilation:
    """Everything the machines need, for one (program, input) pair."""

    #: original program annotated with streams + CMAS marks (run by the
    #: ``superscalar`` and ``cp_cmp`` models).
    original: Program
    #: decoupled program with communication instructions (run by the
    #: ``cp_ap`` and ``hidisc`` models).
    decoupled: Program
    separation: SeparationResult
    communication: DecoupledProgram
    selection: CmasSelection

    def report(self) -> dict[str, int]:
        """Static compilation statistics (for examples and docs)."""
        counts = self.separation.counts()
        return {
            "static_instructions": counts["total"],
            "access_stream": counts["access"],
            "computation_stream": counts["computation"],
            "ldq_pairs": self.communication.ldq_pairs,
            "sdq_stores": self.communication.sdq_stores,
            "probable_miss_loads": len(self.selection.probable_miss_pcs),
            "cmas_instructions": self.selection.slice_size,
        }


def compile_hidisc(
    program: Program,
    config: MachineConfig,
    trace=None,
    probable_miss_pcs: set[int] | None = None,
) -> HidiscCompilation:
    """Run the full HiDISC compiler on *program*.

    The cache-access profile needs a training run; pass a pre-computed
    *trace* to reuse one, or let this function generate it.  Pass
    *probable_miss_pcs* to bypass profiling entirely (tests, ablations).
    """
    sep = separate(program)
    validate_separation(sep)
    annotated_original = sep.annotate()

    comm = insert_communication(sep)
    decoupled = comm.program

    if probable_miss_pcs is None:
        from ..sim.profiler import profile_cache
        from ..sim.trace import generate_trace

        if trace is None:
            trace, _ = generate_trace(program)
        profile = profile_cache(program, trace, config)
        probable_miss_pcs = {
            pc for pc in profile.probable_miss_pcs(config.cmas.miss_rate_threshold)
            if program.text[pc].is_load
        }

    selection = extract_cmas(sep, probable_miss_pcs)
    selection.apply(annotated_original)
    selection.apply(decoupled, comm.instr_map)
    validate_decoupled_static(decoupled)

    return HidiscCompilation(
        original=annotated_original,
        decoupled=decoupled,
        separation=sep,
        communication=comm,
        selection=selection,
    )


__all__ = [
    "BasicBlock",
    "adaptive_trigger_distances",
    "CmasSelection",
    "ControlFlowGraph",
    "DecoupledProgram",
    "DefUse",
    "ENTRY_DEF",
    "EquivalenceReport",
    "HidiscCompilation",
    "ProgramFlowGraph",
    "SeparationResult",
    "compile_hidisc",
    "compute_def_use",
    "extract_cmas",
    "insert_communication",
    "separate",
    "validate_decoupled_dynamic",
    "validate_decoupled_static",
    "validate_separation",
]
