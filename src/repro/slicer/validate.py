"""Validation of separated and decoupled programs (DESIGN.md invariants).

Three layers of checking, from cheap/static to thorough/dynamic:

* :func:`validate_separation` — on the *original* program: the Access
  Stream is closed under the chased register dependences, and the
  Computation Stream contains no memory or control instructions.
* :func:`validate_decoupled_static` — structural sanity of the decoupled
  program: every instruction has a stream, communication opcodes sit in
  the right stream, SDQ flags appear only on stores, control stays in AS.
* :func:`validate_decoupled_dynamic` — the soundness proof: execute the
  original sequentially and the decoupled program on split CP/AP register
  files connected by live queues; final memories must be identical and all
  queues must drain to empty.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..asm.program import Program
from ..errors import ValidationError
from ..isa.instruction import Stream
from ..isa.registers import ZERO
from .dataflow import ENTRY_DEF
from .separation import SeparationResult


def validate_separation(sep: SeparationResult) -> None:
    """Check the AS-closure invariant on the original program."""
    text = sep.program.text
    stream_of = sep.stream_of
    def_use = sep.pfg.def_use
    for pc, instr in enumerate(text):
        stream = stream_of[pc]
        if stream is Stream.CS:
            if instr.is_mem:
                raise ValidationError(f"memory instruction at pc {pc} is CS")
            if instr.is_control:
                raise ValidationError(f"control instruction at pc {pc} is CS")
            continue
        # AS: every chased source must be produced by AS (or be live-in).
        if instr.is_store:
            chased = (instr.rs1,) if instr.rs1 != ZERO else ()
        else:
            chased = instr.source_regs()
        for reg in chased:
            for d in def_use.defs_for_use(pc, reg):
                if d != ENTRY_DEF and stream_of[d] is not Stream.AS:
                    raise ValidationError(
                        f"AS instruction at pc {pc} reads r{reg} defined by "
                        f"CS instruction at pc {d} (closure violation)"
                    )


def validate_decoupled_static(program: Program) -> None:
    """Structural checks on a decoupled (communication-bearing) program."""
    for pc, instr in enumerate(program.text):
        info = instr.op.info
        ann = instr.ann
        if ann.stream is Stream.NONE:
            raise ValidationError(f"pc {pc}: missing stream annotation")
        if ann.sdq_data and not instr.is_store:
            raise ValidationError(f"pc {pc}: sdq_data on a non-store")
        if ann.to_ldq and not (instr.is_load and ann.stream is Stream.AS):
            raise ValidationError(f"pc {pc}: to_ldq on a non-AS-load")
        if (ann.ldq_rs1 or ann.ldq_rs2) and ann.stream is not Stream.CS:
            raise ValidationError(f"pc {pc}: $LDQ operand outside the CS")
        if ann.to_sdq:
            if ann.stream is not Stream.CS:
                raise ValidationError(f"pc {pc}: to_sdq outside the CS")
            if instr.dest_reg() is None:
                raise ValidationError(
                    f"pc {pc}: to_sdq on an instruction without a destination"
                )
        if info.reads_ldq and ann.stream is not Stream.CS:
            raise ValidationError(f"pc {pc}: pop.ldq outside the CS")
        if info.writes_ldq and ann.stream is not Stream.AS:
            raise ValidationError(f"pc {pc}: push.ldq outside the AS")
        if info.writes_sdq and ann.stream is not Stream.CS:
            raise ValidationError(f"pc {pc}: push.sdq outside the CS")
        if ann.stream is Stream.CS and (instr.is_mem or instr.is_control):
            raise ValidationError(
                f"pc {pc}: {instr.op.mnemonic} routed to the CP"
            )
        if ann.cmas and (instr.is_store or instr.is_control):
            raise ValidationError(f"pc {pc}: store/control marked CMAS")
        if ann.probable_miss and not instr.is_load:
            raise ValidationError(f"pc {pc}: probable_miss on a non-load")


@dataclass
class EquivalenceReport:
    """Result of the dynamic equivalence check."""

    sequential_instructions: int
    decoupled_instructions: int
    ldq_transfers: int
    sdq_transfers: int

    @property
    def communication_overhead(self) -> float:
        """Extra dynamic instructions per original instruction."""
        if self.sequential_instructions == 0:
            return 0.0
        extra = self.decoupled_instructions - self.sequential_instructions
        return extra / self.sequential_instructions


def validate_decoupled_dynamic(
    original: Program,
    decoupled: Program,
    max_steps: int = 50_000_000,
) -> EquivalenceReport:
    """Run both programs; raise unless they agree. Returns statistics."""
    from ..sim.functional import DecoupledFunctionalSimulator, FunctionalSimulator

    seq = FunctionalSimulator(original)
    seq_state = seq.run(max_steps=max_steps)

    dec = DecoupledFunctionalSimulator(decoupled)
    dec_state = dec.run(max_steps=max_steps)

    if not dec.queues.ldq.empty:
        raise ValidationError(
            f"LDQ not drained: {len(dec.queues.ldq)} residual entries"
        )
    if not dec.queues.sdq.empty:
        raise ValidationError(
            f"SDQ not drained: {len(dec.queues.sdq)} residual entries"
        )
    if not seq_state.memory.equal_contents(dec_state.memory):
        raise ValidationError(
            "final memory of the decoupled run differs from the sequential run"
        )
    return EquivalenceReport(
        sequential_instructions=seq.instructions_executed,
        decoupled_instructions=dec.instructions_executed,
        ldq_transfers=dec.queues.ldq.stats.pops,
        sdq_transfers=dec.queues.sdq.stats.pops,
    )
