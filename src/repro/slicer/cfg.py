"""Control-flow graph over a program's text segment.

Basic blocks are half-open index ranges ``[start, end)`` over the
instruction list.  Block leaders are the entry point, every branch/jump
target, and every instruction following a control instruction.  ``jr``
(register-indirect jump) conservatively targets *every* block that is the
target of a ``jal``'s return point — in this reproduction ``jr`` is only
used as a subroutine return, and the builder's programs are small enough
that the conservative edges cost nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.program import Program
from ..isa.opcodes import Format, Op


@dataclass
class BasicBlock:
    """One basic block: instructions ``[start, end)``."""

    index: int
    start: int
    end: int
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end

    @property
    def size(self) -> int:
        return self.end - self.start


class ControlFlowGraph:
    """CFG of one program."""

    def __init__(self, program: Program):
        self.program = program
        self.blocks: list[BasicBlock] = []
        #: pc -> index of the containing block.
        self.block_of: list[int] = []
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        text = self.program.text
        n = len(text)
        if n == 0:
            return
        leaders = {self.program.entry, 0}
        return_points: set[int] = set()
        for pc, instr in enumerate(text):
            fmt = instr.op.info.fmt
            if fmt in (Format.BRANCH, Format.BRANCH1, Format.JUMP):
                leaders.add(instr.target)
                if pc + 1 < n:
                    leaders.add(pc + 1)
                if instr.op is Op.JAL:
                    return_points.add(pc + 1)
            elif fmt == Format.JREG or instr.op is Op.HALT:
                if pc + 1 < n:
                    leaders.add(pc + 1)

        starts = sorted(p for p in leaders if 0 <= p < n)
        bounds = starts + [n]
        self.blocks = [
            BasicBlock(index=i, start=bounds[i], end=bounds[i + 1])
            for i in range(len(starts))
        ]
        self.block_of = [0] * n
        for block in self.blocks:
            for pc in range(block.start, block.end):
                self.block_of[pc] = block.index

        for block in self.blocks:
            last = text[block.end - 1]
            fmt = last.op.info.fmt
            succ: list[int] = []
            if last.op is Op.HALT:
                pass
            elif fmt in (Format.BRANCH, Format.BRANCH1):
                succ.append(self.block_of[last.target])
                if block.end < n:
                    succ.append(self.block_of[block.end])
            elif fmt == Format.JUMP:
                succ.append(self.block_of[last.target])
            elif fmt == Format.JREG:
                # Conservative: a return may land at any jal return point.
                succ.extend(sorted({self.block_of[p] for p in return_points}))
            else:
                if block.end < n:
                    succ.append(self.block_of[block.end])
            # Deduplicate while preserving order.
            seen: set[int] = set()
            block.successors = [s for s in succ if not (s in seen or seen.add(s))]
        for block in self.blocks:
            for s in block.successors:
                self.blocks[s].predecessors.append(block.index)

    # ------------------------------------------------------------------
    def entry_block(self) -> BasicBlock:
        return self.blocks[self.block_of[self.program.entry]]

    def __len__(self) -> int:
        return len(self.blocks)

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (visualisation, tests)."""
        import networkx as nx

        g = nx.DiGraph()
        for block in self.blocks:
            g.add_node(block.index, start=block.start, end=block.end)
        for block in self.blocks:
            for s in block.successors:
                g.add_edge(block.index, s)
        return g
