"""Stream separation (paper §4.2, steps 2-3).

Every load/store and every control instruction seeds the Access Stream;
their backward slices (register-dependence parents, transitively) join it.
Store *data* operands are deliberately not chased — store data may be
produced by the Computation Stream and crosses through the SDQ (the
paper's Figure 6 shows exactly this: ``s.d $SDQ, 0($13)`` with the
producing ``mul.d`` left in the CS).  Whatever is not Access Stream is
Computation Stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.program import Program
from ..isa.instruction import Stream
from ..isa.registers import ZERO
from .pfg import ProgramFlowGraph


@dataclass
class SeparationResult:
    """Stream assignment for every static instruction of a program."""

    program: Program
    pfg: ProgramFlowGraph
    stream_of: list[Stream] = field(default_factory=list)

    @property
    def access_pcs(self) -> set[int]:
        return {pc for pc, s in enumerate(self.stream_of) if s is Stream.AS}

    @property
    def computation_pcs(self) -> set[int]:
        return {pc for pc, s in enumerate(self.stream_of) if s is Stream.CS}

    def counts(self) -> dict[str, int]:
        """Static instruction counts per stream (diagnostics / examples)."""
        access = len(self.access_pcs)
        return {
            "total": len(self.stream_of),
            "access": access,
            "computation": len(self.stream_of) - access,
        }

    def annotate(self, program: Program | None = None) -> Program:
        """Write the stream annotations into *program* (default: a copy of
        the analysed program) and return it."""
        target = program if program is not None else self.program.copy()
        if len(target.text) != len(self.stream_of):
            raise ValueError("program length does not match separation result")
        for pc, stream in enumerate(self.stream_of):
            target.text[pc].ann.stream = stream
        return target


def separate(program: Program) -> SeparationResult:
    """Run the stream separation on *program* (which is left unmodified)."""
    pfg = ProgramFlowGraph.build(program)
    text = program.text

    seeds: dict[int, tuple[int, ...] | None] = {}
    for pc, instr in enumerate(text):
        if instr.is_load:
            seeds[pc] = instr.source_regs()          # address operands
        elif instr.is_store:
            regs = (instr.rs1,) if instr.rs1 != ZERO else ()
            seeds[pc] = regs                          # address only, not data
        elif instr.is_control:
            seeds[pc] = instr.source_regs()          # condition / jr target

    access = pfg.backward_slice(seeds)
    result = SeparationResult(program=program, pfg=pfg)
    result.stream_of = [
        Stream.AS if pc in access else Stream.CS for pc in range(len(text))
    ]
    return result
