"""CMAS extraction (paper §4.2, "Defining CMAS").

The Cache Miss Access Slice is the subset of the Access Stream the CMP
pre-executes: the *probable cache miss* instructions (chosen from a cache
access profile) plus their backward slices.  Stores and control
instructions are excluded — the CMP only needs to reproduce the address
computation and the loads themselves, and it "only updates the cache
status" (paper §4.2); control flow is supplied by the trigger window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..asm.program import Program
from ..errors import SlicingError
from ..isa.instruction import Stream
from .separation import SeparationResult


@dataclass
class CmasSelection:
    """Static CMAS marks, expressed as pcs of the analysed program."""

    probable_miss_pcs: set[int] = field(default_factory=set)
    cmas_pcs: set[int] = field(default_factory=set)

    @property
    def slice_size(self) -> int:
        return len(self.cmas_pcs)

    def apply(self, program: Program,
              pc_translation: list[int] | None = None) -> Program:
        """Write the marks into *program*'s annotation fields.

        *pc_translation* maps analysed-program pcs to *program* pcs (use a
        :class:`~repro.slicer.communication.DecoupledProgram.instr_map`
        when annotating the decoupled program); identity when ``None``.
        """
        def tr(pc: int) -> int:
            return pc_translation[pc] if pc_translation is not None else pc

        for pc in self.cmas_pcs:
            program.text[tr(pc)].ann.cmas = True
        for pc in self.probable_miss_pcs:
            program.text[tr(pc)].ann.probable_miss = True
        return program


def extract_cmas(
    sep: SeparationResult,
    probable_miss_pcs: set[int],
) -> CmasSelection:
    """Backward-slice the probable-miss loads within the Access Stream."""
    text = sep.program.text
    for pc in probable_miss_pcs:
        if not text[pc].is_load:
            raise SlicingError(
                f"probable-miss pc {pc} is not a load ({text[pc].op.mnemonic})"
            )
        if sep.stream_of[pc] is not Stream.AS:
            raise SlicingError(f"probable-miss load at pc {pc} is not AS")

    seeds = {pc: None for pc in probable_miss_pcs}
    closure = sep.pfg.backward_slice(seeds)
    cmas_pcs = {
        pc for pc in closure
        if not text[pc].is_store and not text[pc].is_control
    }
    return CmasSelection(
        probable_miss_pcs=set(probable_miss_pcs),
        cmas_pcs=cmas_pcs,
    )
