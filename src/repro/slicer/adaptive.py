"""Adaptive prefetch-distance selection (the paper's §6 future work).

The paper fixes the CMAS trigger 512 dynamic instructions ahead of the
probable miss and notes: *"the runtime control of the prefetching distance
is another important task... under the various program behaviors and memory
latencies, the prefetching distance should be selected dynamically."*

This module implements the profile-driven version of that idea: each
probable-miss instruction gets its own trigger distance sized to the
latency its profile predicts it will suffer,

    distance(pc) = clamp(headroom * expected_latency(pc) * expected_ipc)

where ``expected_latency`` folds the instruction's L1 and L2 miss rates
into the configured hierarchy latencies.  A load that usually hits L2 gets
a short lead (launching earlier only wastes a CMAS context); a load that
goes to memory gets a lead long enough for the fill to land before the AP
arrives.  Pass the result to
:func:`repro.sim.trace.build_cmas_plan` via ``distance_for``.
"""

from __future__ import annotations

from ..config import MachineConfig
from ..sim.profiler import CacheProfile

#: Instructions the front end advances per cycle while the slice runs —
#: conservative (a stalled AP consumes slower, which only helps).
DEFAULT_EXPECTED_IPC = 2.0

#: Safety factor: launch earlier than the bare latency by this much.
DEFAULT_HEADROOM = 1.5

#: Distance clamp — shorter than one fetch group is meaningless; longer
#: than this exceeds any realistic runahead the CMP can sustain.
MIN_DISTANCE = 32
MAX_DISTANCE = 4096


def adaptive_trigger_distances(
    profile: CacheProfile,
    config: MachineConfig,
    probable_miss_pcs: set[int],
    expected_ipc: float = DEFAULT_EXPECTED_IPC,
    headroom: float = DEFAULT_HEADROOM,
) -> dict[int, int]:
    """Per-pc trigger distances sized to each load's profiled latency."""
    distances: dict[int, int] = {}
    for pc in probable_miss_pcs:
        pc_profile = profile.per_pc.get(pc)
        if pc_profile is None or pc_profile.misses == 0:
            distances[pc] = config.cmas.trigger_distance
            continue
        latency = pc_profile.expected_latency(
            config.l1.latency, config.l2.latency, config.memory_latency
        )
        distance = int(headroom * latency * expected_ipc)
        distances[pc] = max(MIN_DISTANCE, min(MAX_DISTANCE, distance))
    return distances
