"""Program Flow Graph (paper §4.2, step 1: "Deriving the Program Flow Graph").

The PFG is the instruction-granularity register dependence graph: a node
per static instruction and an edge ``def -> use`` whenever the definition
may reach the use.  It is a thin, queryable wrapper over
:mod:`repro.slicer.dataflow`, with the *parents* relation ("which
instructions produce my operands?") that the backward-chasing step walks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..asm.program import Program
from .cfg import ControlFlowGraph
from .dataflow import ENTRY_DEF, DefUse, compute_def_use


@dataclass
class ProgramFlowGraph:
    """Register dependence graph of one program."""

    program: Program
    cfg: ControlFlowGraph
    def_use: DefUse

    @classmethod
    def build(cls, program: Program) -> "ProgramFlowGraph":
        cfg = ControlFlowGraph(program)
        return cls(program=program, cfg=cfg, def_use=compute_def_use(program, cfg))

    # ------------------------------------------------------------------
    def parents(self, pc: int, regs: tuple[int, ...] | None = None) -> set[int]:
        """Defining pcs of the given source registers of instruction *pc*.

        With ``regs=None``, all source operands are chased.  ``ENTRY_DEF``
        parents (program-entry values) are omitted — they have no producing
        instruction.
        """
        instr = self.program.text[pc]
        if regs is None:
            regs = instr.source_regs()
        out: set[int] = set()
        for reg in regs:
            for d in self.def_use.defs_for_use(pc, reg):
                if d != ENTRY_DEF:
                    out.add(d)
        return out

    def children(self, pc: int) -> set[tuple[int, int]]:
        """(use pc, reg) pairs this definition may reach."""
        return set(self.def_use.uses_of_def.get(pc, ()))

    def backward_slice(self, seeds: dict[int, tuple[int, ...] | None]) -> set[int]:
        """Transitive backward closure from *seeds*.

        *seeds* maps a pc to the register subset to chase at that seed
        (``None`` = all sources).  Instructions reached transitively are
        chased on **all** their sources (paper: once an instruction joins
        the Access Stream, its whole backward slice does too).  The result
        contains the seeds.
        """
        visited: set[int] = set(seeds)
        worklist: list[int] = []
        for pc, regs in seeds.items():
            worklist.extend(self.parents(pc, regs))
        while worklist:
            pc = worklist.pop()
            if pc in visited:
                continue
            visited.add(pc)
            worklist.extend(self.parents(pc))
        return visited

    def to_networkx(self):
        """Export the def-use edges as a ``networkx.DiGraph``."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(len(self.program.text)))
        for d, uses in self.def_use.uses_of_def.items():
            if d == ENTRY_DEF:
                continue
            for use_pc, reg in uses:
                g.add_edge(d, use_pc, reg=reg)
        return g
