"""Reaching-definitions dataflow and def-use chains.

The HiDISC compiler's stream separation is a backward slice over register
def-use chains (paper §4.2, "based on the register dependencies").  This
module computes, for every instruction operand, the set of definitions that
may reach it, using the classic iterative worklist algorithm over the CFG.

Definitions are identified by the pc of the defining instruction; the
pseudo-definition ``ENTRY_DEF`` (= -1) stands for the register's value at
program entry (``sp`` initialisation, zeroed registers).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..asm.program import Program
from .cfg import ControlFlowGraph

#: Pseudo-pc of "defined at program entry".
ENTRY_DEF = -1


@dataclass
class DefUse:
    """Reaching definitions and def-use chains of one program."""

    #: (pc, reg) -> set of defining pcs (may include ENTRY_DEF).
    reaching: dict[tuple[int, int], set[int]] = field(default_factory=dict)
    #: def pc -> set of (use pc, reg) pairs it may reach.
    uses_of_def: dict[int, set[tuple[int, int]]] = field(
        default_factory=lambda: defaultdict(set)
    )

    def defs_for_use(self, pc: int, reg: int) -> set[int]:
        """Definitions reaching the use of *reg* at *pc*."""
        return self.reaching.get((pc, reg), set())


def compute_def_use(program: Program, cfg: ControlFlowGraph | None = None) -> DefUse:
    """Compute reaching definitions / def-use chains for *program*."""
    if cfg is None:
        cfg = ControlFlowGraph(program)
    text = program.text
    n = len(text)
    result = DefUse()
    if n == 0:
        return result

    # def site lists per register, plus per-block gen/kill in one pass.
    # IN/OUT sets are dicts reg -> frozenset of def pcs, block-level.
    num_blocks = len(cfg.blocks)
    block_gen: list[dict[int, int]] = [dict() for _ in range(num_blocks)]

    for block in cfg.blocks:
        gen = block_gen[block.index]
        for pc in range(block.start, block.end):
            dest = text[pc].dest_reg()
            if dest is not None:
                gen[dest] = pc  # last definition in the block wins

    # IN[b]: reg -> set of def pcs.  The entry block seeds every register
    # with ENTRY_DEF so entry values propagate like ordinary definitions.
    in_sets: list[dict[int, frozenset[int]]] = [dict() for _ in range(num_blocks)]
    out_sets: list[dict[int, frozenset[int]]] = [dict() for _ in range(num_blocks)]
    from ..isa.registers import NUM_REGS

    entry_seed = frozenset((ENTRY_DEF,))
    in_sets[cfg.entry_block().index] = {reg: entry_seed for reg in range(NUM_REGS)}

    def compute_out(b: int) -> dict[int, frozenset[int]]:
        out: dict[int, frozenset[int]] = dict(in_sets[b])
        for reg, pc in block_gen[b].items():
            out[reg] = frozenset((pc,))
        return out

    worklist = list(range(num_blocks))
    while worklist:
        b = worklist.pop()
        new_out = compute_out(b)
        if new_out != out_sets[b]:
            out_sets[b] = new_out
            for s in cfg.blocks[b].successors:
                merged = dict(in_sets[s])
                changed = False
                for reg, defs in new_out.items():
                    old = merged.get(reg)
                    if old is None:
                        merged[reg] = defs
                        changed = True
                    else:
                        union = old | defs
                        if union != old:
                            merged[reg] = union
                            changed = True
                if changed:
                    in_sets[s] = merged
                    worklist.append(s)

    # Second pass: walk each block, tracking the current def per register,
    # and record reaching sets for every use.
    for block in cfg.blocks:
        current: dict[int, set[int]] = {
            reg: set(defs) for reg, defs in in_sets[block.index].items()
        }
        for pc in range(block.start, block.end):
            instr = text[pc]
            for reg in instr.source_regs():
                defs = current.get(reg)
                if not defs:
                    defs = {ENTRY_DEF}
                result.reaching[(pc, reg)] = set(defs)
                for d in defs:
                    result.uses_of_def[d].add((pc, reg))
            dest = instr.dest_reg()
            if dest is not None:
                current[dest] = {pc}
    return result
