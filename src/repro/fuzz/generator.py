"""Seeded random-program generation over the ProgramBuilder DSL.

A generated program is a JSON-serializable **statement IR** plus seeded
initial data; :meth:`FuzzProgram.to_program` renders it to assembly
deterministically.  The IR — not the assembly — is the unit the shrinker
edits, so every invariant below is *per statement*: removing any subset
of statements leaves a program that still satisfies all of them.

Invariants (what makes a random program a *valid differential input*):

* **Termination.**  The only backward branches are counted loops with a
  reserved countdown register per nesting depth; everything else is
  straight-line or a forward branch diamond.
* **Defined semantics.**  Integer divides are guarded (``ori tmp, rs2,
  1`` makes the divisor odd, hence non-zero); FP divides add 1.0 to the
  divisor's absolute value; every FP arithmetic result is clamped to
  ±1e12 so Inf/NaN never appear and ``ftoi`` always fits 64 bits.
* **AP-executability.**  Integer registers are statically partitioned
  into a *clean* pool and an *FP-taintable* pool.  ``ftoi`` and FP
  compares may only write taintable registers; a statement reading a
  taintable register may only write taintable registers; branch
  operands and memory indices come from the clean pool.  Taint can
  therefore never reach control flow or address computation, so no FP
  instruction is ever pulled into the Access Stream by the slicer's
  backward slices.  (Memory-mediated flow is fine: the stored *value*
  may be FP-derived, but loads are integer instructions.)
* **Memory safety.**  Array indices are masked to the power-of-two
  array length before scaling.
* **Observability.**  The epilogue stores every pool register to output
  arrays, so any wrong value is visible to memory diffs.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from ..asm.builder import ProgramBuilder
from ..asm.program import Program

# Static register partition (names, not ids — rendered via the builder).
CLEAN_REGS = ("t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7")
TAINT_REGS = ("v0", "v1", "a2", "a3")   # may hold FP-derived ints
FP_REGS = ("f1", "f2", "f3", "f4", "f5", "f6")
# Reserved (never in any pool): t8/t9 macro scratch, k0/k1 array bases,
# s0/s1 loop counters, a0 epilogue base, f0=1.0, f7 FP scratch,
# f8/f9 = ±CLAMP.
LOOP_COUNTERS = ("s0", "s1")
ARRAY_BASES = ("k0", "k1")
ARRAY_LEN = 64          # power of two; indices are masked with LEN-1
CLAMP = 10 ** 12        # FP magnitude bound (keeps ftoi defined)
MAX_DEPTH = len(LOOP_COUNTERS)

_ALU_RR = ("add", "sub", "mul", "and_", "or_", "xor", "nor",
           "sll", "srl", "sra", "slt", "sltu")
_ALU_RI = ("addi", "muli", "andi", "ori", "xori", "slti")
_SHIFT_RI = ("slli", "srli", "srai")
_FP_RR = ("fadd", "fsub", "fmul", "fmin", "fmax")
_FCMP = ("feq", "flt", "fle")
_BRANCH_CC = ("beq", "bne", "blt", "bge")


@dataclass
class FuzzProgram:
    """A generated program: statement IR + seeded data, JSON-round-trippable."""

    seed: int
    statements: list = field(default_factory=list)
    init_int: dict = field(default_factory=dict)    # reg name -> int64
    init_fp: dict = field(default_factory=dict)     # reg name -> small int
    arrays: dict = field(default_factory=dict)      # label -> list[int64]

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "statements": self.statements,
            "init_int": self.init_int,
            "init_fp": self.init_fp,
            "arrays": self.arrays,
        }, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FuzzProgram":
        raw = json.loads(text)
        return cls(seed=raw["seed"], statements=raw["statements"],
                   init_int=dict(raw["init_int"]),
                   init_fp=dict(raw["init_fp"]),
                   arrays={k: list(v) for k, v in raw["arrays"].items()})

    def statement_count(self) -> int:
        def count(stmts) -> int:
            total = 0
            for s in stmts:
                total += 1
                for key in ("body", "then", "else"):
                    if key in s:
                        total += count(s[key])
            return total
        return count(self.statements)

    # ------------------------------------------------------------------
    def to_program(self) -> Program:
        b = ProgramBuilder(f"fuzz_{self.seed}")
        for label, values in sorted(self.arrays.items()):
            b.data_i64(label, values)
        pools = list(CLEAN_REGS) + list(TAINT_REGS)
        b.data_space("out_int", len(pools) * 8)
        b.data_space("out_fp", len(FP_REGS) * 8)

        # -- prologue: bases, constants, pool initial values ------------
        for base, label in zip(ARRAY_BASES, sorted(self.arrays)):
            b.la(base, label)
        b.li("t8", 1)
        b.itof("f0", "t8")                       # f0 = 1.0
        b.li64("t8", CLAMP)
        b.itof("f8", "t8")                       # f8 = +CLAMP
        b.fneg("f9", "f8")                       # f9 = -CLAMP
        for reg in pools:
            b.li64(reg, self.init_int.get(reg, 0))
        for reg in FP_REGS:
            b.li64("t8", self.init_fp.get(reg, 0))
            b.itof(reg, "t8")

        # -- body -------------------------------------------------------
        labels = iter(range(1 << 30))
        self._render(b, self.statements, labels)

        # -- epilogue: make every pool register observable --------------
        b.la("a0", "out_int")
        for i, reg in enumerate(pools):
            b.sd(reg, i * 8, "a0")
        b.la("a0", "out_fp")
        for i, reg in enumerate(FP_REGS):
            b.fsd(reg, i * 8, "a0")
        b.halt()
        return b.build()

    # ------------------------------------------------------------------
    def _render(self, b: ProgramBuilder, stmts, labels) -> None:
        for s in stmts:
            kind = s["kind"]
            if kind == "alu_rr":
                getattr(b, s["op"])(s["rd"], s["rs1"], s["rs2"])
            elif kind == "alu_ri":
                getattr(b, s["op"])(s["rd"], s["rs1"], s["imm"])
            elif kind == "div":
                b.ori("t9", s["rs2"], 1)         # odd => non-zero divisor
                getattr(b, s["op"])(s["rd"], s["rs1"], "t9")
            elif kind == "load":
                b.andi("t9", s["rs_idx"], ARRAY_LEN - 1)
                b.slli("t9", "t9", 3)
                b.add("t9", "t9", s["base"])
                b.ld(s["rd"], 0, "t9")
            elif kind == "store":
                b.andi("t9", s["rs_idx"], ARRAY_LEN - 1)
                b.slli("t9", "t9", 3)
                b.add("t9", "t9", s["base"])
                b.sd(s["rs_data"], 0, "t9")
            elif kind == "fpu_rr":
                getattr(b, s["op"])("f7", s["rs1"], s["rs2"])
                b.fmin("f7", "f7", "f8")         # clamp: no Inf/NaN ever
                b.fmax(s["rd"], "f7", "f9")
            elif kind == "fdiv":
                b.fabs_("f7", s["rs2"])
                b.fadd("f7", "f7", "f0")         # divisor >= 1.0
                b.fdiv("f7", s["rs1"], "f7")
                b.fmin("f7", "f7", "f8")
                b.fmax(s["rd"], "f7", "f9")
            elif kind == "fcmp":
                getattr(b, s["op"])(s["rd"], s["rs1"], s["rs2"])
            elif kind == "itof":
                b.itof(s["rd"], s["rs1"])
            elif kind == "ftoi":
                b.ftoi(s["rd"], s["rs1"])        # operand already clamped
            elif kind == "loop":
                counter = LOOP_COUNTERS[s["depth"]]
                top = f"L{next(labels)}_top"
                b.li(counter, s["trips"])
                b.label(top)
                self._render(b, s["body"], labels)
                b.addi(counter, counter, -1)
                b.bnez(counter, top)
            elif kind == "diamond":
                then_l = f"L{next(labels)}_then"
                end_l = f"L{next(labels)}_end"
                getattr(b, s["cmp"])(s["rs1"], s["rs2"], then_l)
                self._render(b, s["else"], labels)
                b.j(end_l)
                b.label(then_l)
                self._render(b, s["then"], labels)
                b.label(end_l)
            else:  # pragma: no cover - guarded by the generator
                raise ValueError(f"unknown statement kind {kind!r}")


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------

def _any_int(rng: random.Random):
    """Boundary-heavy operand pool."""
    pool = (0, 1, -1, 2, 63, 64, -(1 << 63), (1 << 63) - 1,
            1 << 32, -(1 << 31))
    if rng.random() < 0.6:
        return rng.choice(pool)
    return rng.getrandbits(64) - (1 << 63)


def _gen_straight(rng: random.Random) -> dict:
    """One straight-line statement honouring the taint partition."""
    roll = rng.random()
    if roll < 0.30:
        # all-clean ALU (results usable as indices / branch operands)
        return {"kind": "alu_rr", "op": rng.choice(_ALU_RR),
                "rd": rng.choice(CLEAN_REGS),
                "rs1": rng.choice(CLEAN_REGS),
                "rs2": rng.choice(CLEAN_REGS)}
    if roll < 0.42:
        op = rng.choice(_ALU_RI + _SHIFT_RI)
        imm = (rng.randrange(64) if op in _SHIFT_RI
               else rng.randrange(-1000, 1001))
        return {"kind": "alu_ri", "op": op,
                "rd": rng.choice(CLEAN_REGS),
                "rs1": rng.choice(CLEAN_REGS), "imm": imm}
    if roll < 0.50:
        return {"kind": "div", "op": rng.choice(("div", "rem")),
                "rd": rng.choice(CLEAN_REGS),
                "rs1": rng.choice(CLEAN_REGS),
                "rs2": rng.choice(CLEAN_REGS)}
    if roll < 0.62:
        return {"kind": "load", "base": rng.choice(ARRAY_BASES),
                "rd": rng.choice(CLEAN_REGS),
                "rs_idx": rng.choice(CLEAN_REGS)}
    if roll < 0.72:
        # stored *data* may be tainted; the index must be clean
        return {"kind": "store", "base": rng.choice(ARRAY_BASES),
                "rs_data": rng.choice(CLEAN_REGS + TAINT_REGS),
                "rs_idx": rng.choice(CLEAN_REGS)}
    if roll < 0.80:
        return {"kind": "fpu_rr", "op": rng.choice(_FP_RR),
                "rd": rng.choice(FP_REGS),
                "rs1": rng.choice(FP_REGS), "rs2": rng.choice(FP_REGS)}
    if roll < 0.85:
        return {"kind": "fdiv", "rd": rng.choice(FP_REGS),
                "rs1": rng.choice(FP_REGS), "rs2": rng.choice(FP_REGS)}
    if roll < 0.90:
        # FP compare writes an int — taintable destinations only
        return {"kind": "fcmp", "op": rng.choice(_FCMP),
                "rd": rng.choice(TAINT_REGS),
                "rs1": rng.choice(FP_REGS), "rs2": rng.choice(FP_REGS)}
    if roll < 0.95:
        return {"kind": "itof", "rd": rng.choice(FP_REGS),
                "rs1": rng.choice(CLEAN_REGS + TAINT_REGS)}
    return {"kind": "ftoi", "rd": rng.choice(TAINT_REGS),
            "rs1": rng.choice(FP_REGS)}


def _gen_block(rng: random.Random, count: int, depth: int) -> list:
    """*count* statements, possibly containing loops/diamonds."""
    out = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.08 and depth < MAX_DEPTH:
            out.append({"kind": "loop", "depth": depth,
                        "trips": rng.randrange(1, 7),
                        "body": _gen_block(rng, rng.randrange(1, 5),
                                           depth + 1)})
        elif roll < 0.18:
            out.append({"kind": "diamond", "cmp": rng.choice(_BRANCH_CC),
                        "rs1": rng.choice(CLEAN_REGS),
                        "rs2": rng.choice(CLEAN_REGS),
                        "then": [_gen_straight(rng)
                                 for _ in range(rng.randrange(1, 4))],
                        "else": [_gen_straight(rng)
                                 for _ in range(rng.randrange(0, 3))]})
        else:
            out.append(_gen_straight(rng))
    return out


def generate_program(seed: int, size: int = 24) -> FuzzProgram:
    """Draw one random program: ~*size* top-level statements."""
    rng = random.Random(seed)
    arrays = {
        "arr_a": [_any_int(rng) for _ in range(ARRAY_LEN)],
        "arr_b": [_any_int(rng) for _ in range(ARRAY_LEN)],
    }
    init_int = {reg: _any_int(rng) for reg in CLEAN_REGS + TAINT_REGS}
    init_fp = {reg: rng.randrange(-1000, 1001) for reg in FP_REGS}
    statements = _gen_block(rng, size, depth=0)
    return FuzzProgram(seed=seed, statements=statements,
                       init_int=init_int, init_fp=init_fp, arrays=arrays)
