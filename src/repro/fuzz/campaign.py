"""Fuzz campaign driver: generate → check → (shrink) → (persist).

One campaign draws ``runs`` programs from consecutive seeds and pushes
each through the full differential harness.  Divergent programs are
optionally delta-debugged to minimal repros and written to the corpus.
The returned report is JSON-shaped for ``hidisc fuzz --json`` and CI.
"""

from __future__ import annotations

import time
from contextlib import nullcontext

from ..config import MachineConfig
from ..experiments.models import MODEL_ORDER
from .corpus import save_repro
from .generator import generate_program
from .harness import check_program, injected_fault
from .shrink import shrink_program


def run_fuzz_campaign(seed: int = 2003, runs: int = 50, *,
                      config: MachineConfig | None = None,
                      size: int = 24,
                      shrink: bool = False,
                      corpus_dir=None,
                      fault: str | None = None,
                      models: tuple = MODEL_ORDER,
                      progress=None) -> dict:
    """Run *runs* seeded programs through the differential harness.

    *fault* names a deliberate fast-path perturbation from
    :data:`repro.fuzz.harness.FAULTS` — the self-test mode: a healthy
    toolchain must then *produce* divergences.
    """
    config = config or MachineConfig()
    start = time.perf_counter()
    divergences = []
    saved = []
    context = injected_fault(fault) if fault else nullcontext()
    with context:
        for i in range(runs):
            program_seed = seed + i
            fuzz_prog = generate_program(program_seed, size=size)
            found = check_program(fuzz_prog, config, models=models)
            if found is None:
                if progress and (i + 1) % 25 == 0:
                    progress(f"  {i + 1}/{runs} programs clean ...")
                continue
            original_count = fuzz_prog.statement_count()
            if progress:
                progress(f"  divergence at seed {program_seed}: "
                         f"{found.summary()}")
            if shrink:
                reduced = shrink_program(fuzz_prog, config,
                                         target_kind=found.kind)
                if progress:
                    progress(f"  shrunk {original_count} -> "
                             f"{reduced.statement_count()} statements")
                fuzz_prog = reduced
                found = check_program(fuzz_prog, config, models=models) \
                    or found
            if corpus_dir is not None:
                path = save_repro(corpus_dir, fuzz_prog, found,
                                  original_statements=original_count)
                saved.append(str(path))
                if progress:
                    progress(f"  repro written to {path}")
            divergences.append({
                **found.as_dict(),
                "statements": fuzz_prog.statement_count(),
                "statements_original": original_count,
            })
    return {
        "seed": seed,
        "runs": runs,
        "size": size,
        "fault": fault,
        "models": list(models),
        "divergences": divergences,
        "corpus": saved,
        "elapsed_seconds": time.perf_counter() - start,
    }
