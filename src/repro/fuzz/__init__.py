"""Differential program fuzzing for the HiDISC toolchain.

Every piece of this reproduction claims the same thing in a different
accent: the fast and legacy functional interpreters, the four timing
models, and the timing-vs-functional co-simulation oracle must all agree
on what a program *means*.  The fuzzer turns that claim into a search:

* :mod:`repro.fuzz.generator` draws seeded random programs over the
  ProgramBuilder DSL, constrained so every program terminates with
  defined semantics and stays AP-executable after separation;
* :mod:`repro.fuzz.harness` runs one program through every execution
  path and reports the first divergence (re-using
  :func:`repro.telemetry.diff.first_divergent_commit` for the
  bisection-ready answer);
* :mod:`repro.fuzz.shrink` delta-debugs a failing program down to a
  minimal statement list that still reproduces the divergence;
* :mod:`repro.fuzz.corpus` persists failures as replayable JSON;
* :mod:`repro.fuzz.campaign` ties it together for ``hidisc fuzz``.
"""

from .campaign import run_fuzz_campaign
from .corpus import load_repro, replay_repro, save_repro
from .generator import FuzzProgram, generate_program
from .harness import FAULTS, Divergence, check_program, injected_fault
from .shrink import shrink_program

__all__ = [
    "Divergence",
    "FAULTS",
    "FuzzProgram",
    "check_program",
    "generate_program",
    "injected_fault",
    "load_repro",
    "replay_repro",
    "run_fuzz_campaign",
    "save_repro",
    "shrink_program",
]
