"""Differential execution harness: one program, every execution path.

:func:`check_program` runs a generated program through

1. the **fast vs legacy** functional interpreters (registers, memory,
   dynamic trace must be bit-identical),
2. the **sequential vs decoupled** functional models via the standard
   :func:`repro.experiments.runner.prepare` pipeline plus
   :func:`repro.resilience.verify_compiled` (separation soundness,
   store order, queue drain),
3. all four **timing models** under the co-simulation oracle
   (``verify=True`` raises on any commit-stream or final-state
   divergence),

and reports the first divergence it finds as a :class:`Divergence`.
Stage 1 failures are bisected to the first divergent committed
instruction with :func:`repro.telemetry.diff.first_divergent_commit`
(control/address divergence straight from the traces; pure value bugs
via a binary search over ``max_steps`` snapshots).

:func:`injected_fault` deliberately perturbs one fast-path dispatch
entry — the self-test proving the harness actually detects bugs, and
the CI fault-injection smoke.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from ..config import MachineConfig
from ..errors import SimulationError, VerificationError, WorkloadError
from ..experiments.models import MODEL_ORDER
from ..experiments.runner import prepare, run_model
from ..isa import Op
from ..resilience import verify_compiled
from ..telemetry.diff import first_divergent_commit
from ..workloads.base import Workload


class FuzzWorkload(Workload):
    """Adapter: a generated program as a suite-shaped workload.

    ``expected_outputs`` is empty — the fuzzer has no reference
    implementation; correctness *is* the agreement of the execution
    paths, checked by :func:`verify_compiled` and the oracle.
    """

    name = "fuzz"
    label = "Fuzz"

    def __init__(self, program, seed: int = 0):
        super().__init__(seed=seed)
        self._fuzz_program = program

    def build(self):
        return self._fuzz_program

    def expected_outputs(self) -> dict:
        return {}


@dataclass
class Divergence:
    """One detected disagreement between execution paths."""

    kind: str                    # e.g. "fast_vs_legacy", "oracle:hidisc"
    detail: str
    seed: int = 0
    first_divergent: dict | None = None
    problems: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail, "seed": self.seed,
                "first_divergent": self.first_divergent,
                "problems": list(self.problems)}

    def summary(self) -> str:
        text = f"[{self.kind}] seed={self.seed}: {self.detail}"
        if self.first_divergent is not None:
            text += f" (first divergent commit: {self.first_divergent})"
        return text


def _trace_rows(program, trace) -> list[dict]:
    """Commit-stream-shaped rows for :func:`first_divergent_commit`."""
    rows = []
    for i, dyn in enumerate(trace):
        op = program.text[dyn.pc].op.mnemonic if dyn.pc < len(
            program.text) else "?"
        rows.append({"gid": i, "commit": f"{dyn.pc}/{dyn.addr}/{dyn.next_pc}",
                     "pc": dyn.pc, "asm": op})
    return rows


def _state_digest(state) -> tuple:
    return (state.pc, state.halted, tuple(state.regs))


def _run_to(program, steps: int, fast: bool):
    """Architectural state after exactly *steps* instructions."""
    from ..sim.functional import FunctionalSimulator

    sim = FunctionalSimulator(program)
    try:
        sim.run(max_steps=steps, fast=fast)
    except SimulationError:
        pass
    return sim.state


def _bisect_value_divergence(program, total_steps: int) -> dict | None:
    """Binary-search the first step after which fast and legacy register
    files differ (used when the traces agree but final state does not)."""
    lo, hi = 0, total_steps          # invariant: agree at lo, differ at hi
    if _state_digest(_run_to(program, lo, True)) != _state_digest(
            _run_to(program, lo, False)):
        return {"index": 0, "a": {"gid": 0, "commit": "initial-state"},
                "b": {"gid": 0, "commit": "initial-state"}}
    while hi - lo > 1:
        mid = (lo + hi) // 2
        same = (_state_digest(_run_to(program, mid, True))
                == _state_digest(_run_to(program, mid, False)))
        if same:
            lo = mid
        else:
            hi = mid
    fast_s = _run_to(program, hi, True)
    slow_s = _run_to(program, hi, False)
    bad = [i for i, (a, b) in enumerate(zip(fast_s.regs, slow_s.regs))
           if a != b]
    pc = _run_to(program, lo, True).pc       # pc of the divergent step
    op = program.text[pc].op.mnemonic if pc < len(program.text) else "?"
    return {"index": hi - 1,
            "a": {"gid": hi - 1, "commit": f"regs{bad}={_fmt_regs(fast_s, bad)}",
                  "pc": pc, "asm": op},
            "b": {"gid": hi - 1, "commit": f"regs{bad}={_fmt_regs(slow_s, bad)}",
                  "pc": pc, "asm": op}}


def _fmt_regs(state, ids, limit: int = 4) -> str:
    return ",".join(repr(state.regs[i]) for i in ids[:limit])


def _check_functional(program, seed: int) -> Divergence | None:
    """Stage 1: fast vs legacy interpreter on the same program."""
    from ..sim.functional import FunctionalSimulator

    results = []
    for fast in (True, False):
        trace: list = []
        sim = FunctionalSimulator(program)
        try:
            state = sim.run(trace=trace, fast=fast)
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            results.append(("raise", f"{type(exc).__name__}: {exc}", trace,
                            sim))
            continue
        results.append(("ok", state, trace, sim))
    (fk, fv, ftrace, fsim), (sk, sv, strace, ssim) = results
    if fk == "raise" or sk == "raise":
        fast_msg = fv if fk == "raise" else "completed"
        slow_msg = sv if sk == "raise" else "completed"
        if fk == sk and fv == sv:
            return Divergence("crash", f"both interpreters raised: {fv}",
                              seed=seed)
        return Divergence(
            "fast_vs_legacy",
            f"exception mismatch: fast={fast_msg} legacy={slow_msg}",
            seed=seed,
            first_divergent=first_divergent_commit(
                _trace_rows(program, ftrace), _trace_rows(program, strace)))
    if ftrace != strace:
        return Divergence(
            "fast_vs_legacy", "dynamic traces diverge", seed=seed,
            first_divergent=first_divergent_commit(
                _trace_rows(program, ftrace), _trace_rows(program, strace)))
    if fv.regs != sv.regs or not fv.memory.equal_contents(sv.memory):
        bad = [i for i, (a, b) in enumerate(zip(fv.regs, sv.regs)) if a != b]
        detail = (f"final registers differ at ids {bad[:6]}" if bad
                  else "final memory differs")
        return Divergence(
            "fast_vs_legacy", detail, seed=seed,
            first_divergent=_bisect_value_divergence(program, len(ftrace)))
    if fsim.instructions_executed != ssim.instructions_executed:
        return Divergence(
            "fast_vs_legacy",
            f"step counts differ: fast={fsim.instructions_executed} "
            f"legacy={ssim.instructions_executed}", seed=seed)
    return None


def check_program(fuzz_prog, config: MachineConfig | None = None,
                  models: tuple = MODEL_ORDER) -> Divergence | None:
    """Run one generated program through every path; first divergence wins."""
    config = config or MachineConfig()
    seed = fuzz_prog.seed
    program = fuzz_prog.to_program()

    found = _check_functional(program, seed)
    if found is not None:
        return found

    workload = FuzzWorkload(program, seed=seed)
    try:
        cw = prepare(workload, config, verify=True)
    except (SimulationError, WorkloadError) as exc:
        return Divergence("separation", f"{type(exc).__name__}: {exc}",
                          seed=seed)
    problems = verify_compiled(cw)
    if problems:
        return Divergence("cosim", "sequential vs decoupled functional "
                          "state differs", seed=seed, problems=problems)

    for mode in models:
        try:
            run_model(cw, config, mode, verify=True)
        except VerificationError as exc:
            return Divergence(f"oracle:{mode}", str(exc), seed=seed)
        except SimulationError as exc:
            return Divergence(f"crash:{mode}",
                              f"{type(exc).__name__}: {exc}", seed=seed)
    return None


# ----------------------------------------------------------------------
# Deliberate fault injection (harness self-test / CI smoke)
# ----------------------------------------------------------------------

def _s64(v: int) -> int:
    v &= (1 << 64) - 1
    return v - (1 << 64) if v >= (1 << 63) else v


def _u64(v: int) -> int:
    return v & ((1 << 64) - 1)


#: name -> (dispatch-table op, wrong semantics).  Patching the fast
#: path's shared dispatch dict perturbs *only* the dispatch-table
#: interpreter, so any program exercising the op diverges from the
#: legacy path — exactly what stage 1 must catch.
FAULTS = {
    "xor-as-or": (Op.XOR, lambda a, b: _s64(a | b)),
    "add-off-by-one": (Op.ADD, lambda a, b: _s64(a + b + 1)),
    "sra-as-srl": (Op.SRA, lambda a, b: _s64(_u64(a) >> (b & 63))),
    "sub-swapped": (Op.SUB, lambda a, b: _s64(b - a)),
}


@contextmanager
def injected_fault(name: str):
    """Temporarily replace one fast-path ALU dispatch entry with a wrong
    implementation.  Step closures bind the entry at compile time, so the
    patch must wrap simulator *construction* (it does: ``check_program``
    builds its simulators inside the caller's context)."""
    from ..sim import functional

    try:
        op, wrong = FAULTS[name]
    except KeyError:
        raise KeyError(f"unknown fault {name!r}; have "
                       f"{', '.join(sorted(FAULTS))}") from None
    original = functional._ALU_RR[op]
    functional._ALU_RR[op] = wrong
    try:
        yield
    finally:
        functional._ALU_RR[op] = original
