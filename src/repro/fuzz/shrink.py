"""Delta-debugging shrinker: minimal statement lists that still diverge.

Classic ddmin over the generator's statement IR, applied recursively:
first the top-level statement list, then the bodies of any surviving
loops/diamonds, then loop trip counts.  A candidate is *interesting*
when the harness still reports a divergence of the same kind as the
original failure — shrinking never trades one bug for a different one.

Every generator invariant is per-statement (see
:mod:`repro.fuzz.generator`), so any subset of statements is a valid
program: removal can only delete definitions and uses together or leave
a register at its seeded initial value, never create an out-of-range
access or an undefined operation.
"""

from __future__ import annotations

import json

from ..config import MachineConfig
from .generator import FuzzProgram
from .harness import check_program


def _clone(fuzz_prog: FuzzProgram, statements) -> FuzzProgram:
    return FuzzProgram(
        seed=fuzz_prog.seed,
        statements=json.loads(json.dumps(statements)),
        init_int=dict(fuzz_prog.init_int),
        init_fp=dict(fuzz_prog.init_fp),
        arrays={k: list(v) for k, v in fuzz_prog.arrays.items()},
    )


def _ddmin(items: list, interesting, allow_empty: bool = False) -> list:
    """Zeller's ddmin: smallest sublist (by chunk removal) still interesting."""
    granularity = 2
    while len(items) >= (1 if allow_empty else 2):
        chunk = max(1, len(items) // granularity)
        reduced = False
        start = 0
        while start < len(items):
            candidate = items[:start] + items[start + chunk:]
            if (candidate or allow_empty) and interesting(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # retry at the same position — indices shifted left
            else:
                start += chunk
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(max(len(items), 2), granularity * 2)
    return items


def shrink_program(fuzz_prog: FuzzProgram,
                   config: MachineConfig | None = None,
                   target_kind: str | None = None,
                   check=check_program) -> FuzzProgram:
    """Reduce *fuzz_prog* to a minimal program with the same divergence.

    Raises ``ValueError`` if the input does not diverge at all.
    """
    config = config or MachineConfig()
    baseline = check(fuzz_prog, config)
    if baseline is None:
        raise ValueError("program does not diverge; nothing to shrink")
    kind = target_kind or baseline.kind

    def interesting(statements) -> bool:
        found = check(_clone(fuzz_prog, statements), config)
        return found is not None and found.kind == kind

    statements = json.loads(json.dumps(fuzz_prog.statements))
    statements = _ddmin(statements, interesting)

    # -- recurse into surviving compound statements: the tests mutate
    # the tree in place (interesting() deep-copies via _clone anyway)
    # and keep each reduction that stays interesting.
    stack = [statements]
    while stack:
        block = stack.pop()
        for stmt in block:
            compound_keys = [key for key in ("body", "then", "else")
                             if key in stmt]
            for key in compound_keys:
                body = stmt[key]
                if body:
                    def test(candidate, stmt=stmt, key=key):
                        saved = stmt[key]
                        stmt[key] = candidate
                        ok = interesting(statements)
                        stmt[key] = saved
                        return ok

                    smaller = _ddmin(list(body), test, allow_empty=True)
                    if len(smaller) < len(body):
                        stmt[key] = smaller
            if stmt.get("kind") == "loop" and stmt.get("trips", 1) > 1:
                saved = stmt["trips"]
                stmt["trips"] = 1
                if not interesting(statements):
                    stmt["trips"] = saved
            for key in compound_keys:
                if stmt[key]:
                    stack.append(stmt[key])

    result = _clone(fuzz_prog, statements)
    final = check(result, config)
    if final is None or final.kind != kind:  # pragma: no cover - safety net
        return fuzz_prog
    return result
