"""On-disk failure corpus: replayable minimal repros.

Each divergence the campaign keeps becomes one JSON file carrying the
(shrunk) program IR plus the divergence report.  The payload shape is
deliberately `hidisc diff`-friendly: two repro files (or a repro before
and after a fix) can be compared leaf-by-leaf with the existing
differential tooling, and ``replay_repro`` re-runs the program through
the harness to confirm the failure still reproduces (or no longer does,
after a fix).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from ..config import MachineConfig
from .generator import FuzzProgram
from .harness import Divergence, check_program


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")


def save_repro(corpus_dir: str | Path, fuzz_prog: FuzzProgram,
               divergence: Divergence,
               original_statements: int | None = None) -> Path:
    """Persist one (preferably shrunk) failing program; returns the path."""
    corpus = Path(corpus_dir)
    corpus.mkdir(parents=True, exist_ok=True)
    path = corpus / (f"repro_{_slug(divergence.kind)}"
                     f"_seed{fuzz_prog.seed}.json")
    payload = {
        "divergence": divergence.as_dict(),
        "statements_kept": fuzz_prog.statement_count(),
        "statements_original": original_statements,
        "program": json.loads(fuzz_prog.to_json()),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_repro(path: str | Path) -> tuple[FuzzProgram, dict]:
    """Load a corpus file back into (program, divergence-report dict)."""
    raw = json.loads(Path(path).read_text())
    return (FuzzProgram.from_json(json.dumps(raw["program"])),
            raw["divergence"])


def replay_repro(path: str | Path,
                 config: MachineConfig | None = None) -> Divergence | None:
    """Re-run a corpus entry; None means the failure no longer reproduces."""
    fuzz_prog, _ = load_repro(path)
    return check_program(fuzz_prog, config or MachineConfig())


def corpus_entries(corpus_dir: str | Path) -> list[Path]:
    corpus = Path(corpus_dir)
    if not corpus.is_dir():
        return []
    return sorted(corpus.glob("repro_*.json"))
