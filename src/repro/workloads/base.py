"""Workload abstraction for the DIS benchmarks.

Each benchmark (DESIGN.md substitution #3) consists of

* a seeded **data generator** (numpy) that builds the input image laid into
  the program's data segment,
* an **assembly kernel** authored with the
  :class:`~repro.asm.builder.ProgramBuilder` DSL, and
* a **pure-Python reference implementation** mirroring the kernel's exact
  semantics; :meth:`Workload.verify` compares the simulated memory against
  it, so every simulator run doubles as a correctness check.

Two ISA-level constraints every kernel honours (and
:func:`check_ap_executable` enforces):

* **No branch may depend on floating-point data.**  Branch conditions are
  backward-chased into the Access Stream, and the AP has no FP units; an FP
  instruction in the AS could never issue.  Kernels use branch-free selects
  (``flt`` + ``itof`` masks) instead.
* **No address may depend on FP-derived values**, for the same reason.
"""

from __future__ import annotations

import abc
import struct

import numpy as np

from ..asm.program import Program
from ..errors import WorkloadError
from ..isa.instruction import Stream
from ..isa.opcodes import FuClass
from ..sim.functional import ArchState


class Workload(abc.ABC):
    """One benchmark: data + kernel + reference."""

    #: short identifier used in tables (e.g. ``pointer``).
    name: str = "workload"
    #: display name matching the paper's figure labels (e.g. ``Pointer``).
    label: str = "Workload"
    #: fraction of the benchmark's memory operations treated as cache
    #: warmup (SimpleScalar's -fastfwd): the timing harness resets its
    #: statistics once this fraction of memory accesses has been fetched,
    #: so compulsory cold-start misses do not distort steady-state
    #: comparisons.  0.0 = measure everything (single-pass kernels).
    warmup_fraction: float = 0.0

    def __init__(self, seed: int = 2003):
        self.seed = seed
        self._program: Program | None = None

    # ------------------------------------------------------------------
    @classmethod
    def spec_kwargs(cls, spec) -> dict:
        """Translate a :class:`~repro.workloads.spec.WorkloadSpec` into
        this family's constructor kwargs.  Families override this to map
        the shared axes (size, stride, hot set, chase depth, value
        range) onto their own knobs; axes with no sensible mapping are
        simply not consumed."""
        return {"seed": spec.seed}

    @classmethod
    def from_spec(cls, spec) -> "Workload":
        """Instantiate this family from family-independent parameters."""
        return cls(**cls.spec_kwargs(spec))

    # ------------------------------------------------------------------
    def rng(self) -> np.random.Generator:
        """Fresh deterministic generator (same data every build)."""
        return np.random.default_rng(self.seed)

    @property
    def program(self) -> Program:
        """The assembled kernel (built once, cached)."""
        if self._program is None:
            self._program = self.build()
        return self._program

    @abc.abstractmethod
    def build(self) -> Program:
        """Assemble the kernel with its input data."""

    @abc.abstractmethod
    def expected_outputs(self) -> dict[str, object]:
        """Reference results keyed by data-segment symbol.

        Values are ints (compared against one 64-bit word), floats
        (one binary64 word, compared with tolerance) or numpy arrays
        (compared element-wise against the corresponding region).
        """

    # ------------------------------------------------------------------
    def verify(self, state: ArchState) -> None:
        """Compare simulated memory with the reference; raise on mismatch."""
        program = self.program
        for symbol, expected in self.expected_outputs().items():
            addr = program.data_symbols.get(symbol)
            if addr is None:
                raise WorkloadError(f"{self.name}: unknown output symbol {symbol!r}")
            if isinstance(expected, float):
                got = state.memory.load_f64(addr)
                if not np.isclose(got, expected, rtol=1e-9, atol=1e-12):
                    raise WorkloadError(
                        f"{self.name}: {symbol} = {got!r}, expected {expected!r}"
                    )
            elif isinstance(expected, (int, np.integer)):
                got = state.memory.load(addr, 8)
                if got != int(expected):
                    raise WorkloadError(
                        f"{self.name}: {symbol} = {got}, expected {int(expected)}"
                    )
            elif isinstance(expected, np.ndarray):
                raw = state.memory.read_bytes(addr, expected.nbytes)
                got_arr = np.frombuffer(raw, dtype=expected.dtype)
                if expected.dtype.kind == "f":
                    ok = np.allclose(got_arr, expected.ravel(), rtol=1e-9)
                else:
                    ok = np.array_equal(got_arr, expected.ravel())
                if not ok:
                    bad = int(np.flatnonzero(got_arr != expected.ravel())[0]) \
                        if expected.dtype.kind != "f" else -1
                    raise WorkloadError(
                        f"{self.name}: array {symbol} mismatch "
                        f"(first bad index {bad})"
                    )
            else:  # pragma: no cover - guarded by expected_outputs contract
                raise WorkloadError(
                    f"{self.name}: unsupported expected type {type(expected)}"
                )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line description for reports."""
        return self.label


def pack_i64(values) -> bytes:
    """Little-endian bytes of a sequence of 64-bit integers."""
    arr = np.asarray(values, dtype=np.int64)
    return arr.tobytes()


def pack_f64(values) -> bytes:
    """Little-endian bytes of a sequence of binary64 floats."""
    arr = np.asarray(values, dtype=np.float64)
    return arr.tobytes()


def unpack_i64(blob: bytes) -> np.ndarray:
    return np.frombuffer(blob, dtype=np.int64)


def check_ap_executable(program: Program, ap_has_fp: bool = False) -> None:
    """Raise if any Access-Stream instruction needs an FP unit the AP lacks.

    Call after separation; catches kernels that accidentally let FP values
    leak into branch conditions or address computation.
    """
    if ap_has_fp:
        return
    for pc, instr in enumerate(program.text):
        if instr.ann.stream is Stream.AS and instr.op.info.fu in (
            FuClass.FALU, FuClass.FMULDIV
        ):
            raise WorkloadError(
                f"AS instruction at pc {pc} ({instr.op.mnemonic}) requires an "
                f"FP unit but the AP has none — FP data reached control flow "
                f"or address computation"
            )


def f64_bits(value: float) -> int:
    """Bit pattern of a float (for writing float constants as .word64)."""
    return struct.unpack("<q", struct.pack("<d", value))[0]
