"""Transitive Closure stressmark: k-limited min-plus closure of a graph.

Floyd-Warshall relaxation over a dense distance matrix, restricted to the
first *kiters* pivots (enough rounds to exercise the access pattern
without cubing the runtime).  The inner loop streams two rows and
rewrites one of them; the minimum is computed branch-free and the store
data therefore comes from the Computation Stream.

The paper's findings for TC — no benefit from access/execute decoupling,
the best cache-miss reduction of the suite (26.7%) — come from exactly
this structure: every inner iteration synchronises through the SDQ (no
slip), while the row-streaming misses are perfectly coverable by the CMP.
"""

from __future__ import annotations

import numpy as np

from ..asm.builder import ProgramBuilder
from ..asm.program import Program
from .base import Workload
from .generators import random_distance_matrix


class TransitiveWorkload(Workload):
    """Min-plus closure over an *n* x *n* matrix, first *kiters* pivots."""

    name = "transitive"
    label = "TC"
    #: the first pivot round warms the caches; the second is measured.
    warmup_fraction = 0.5

    def __init__(self, n: int = 72, kiters: int = 2, density: float = 0.25,
                 seed: int = 2003):
        super().__init__(seed=seed)
        if kiters > n:
            raise ValueError("kiters cannot exceed n")
        self.n = n
        self.kiters = kiters
        self._matrix = random_distance_matrix(self.rng(), n, density)

    @classmethod
    def spec_kwargs(cls, spec) -> dict:
        n = spec.pick("size", 72)
        return {
            "n": n,
            "kiters": min(n, spec.scaled(2)),
            "density": spec.pick("hot_fraction", 0.25),
            "seed": spec.seed,
        }

    # ------------------------------------------------------------------
    def build(self) -> Program:
        n = self.n
        row_bytes = n * 8
        b = ProgramBuilder(self.name)
        b.data_i64("dist", self._matrix.ravel())

        b.la("s0", "dist")
        b.li("s1", self.kiters)
        b.li("a1", n)                       # row count
        b.li("s2", 0)                       # k

        b.label("kloop")
        # krow = dist + k*n*8
        b.muli("t0", "s2", row_bytes)
        b.add("s5", "t0", "s0")             # s5 = &dist[k][0]
        b.li("s3", 0)                       # i
        b.label("iloop")
        b.muli("t0", "s3", row_bytes)
        b.add("s6", "t0", "s0")             # s6 = &dist[i][0]
        # s8 = dist[i][k]
        b.slli("t1", "s2", 3)
        b.add("t1", "t1", "s6")
        b.ld("s7", 0, "t1")
        b.addi("a3", "s6", row_bytes)       # end of row i
        b.mov("t2", "s5")                   # t2 walks dist[k][*]
        b.mov("t4", "s6")                   # t4 walks dist[i][*]
        b.label("jloop")
        b.ld("t1", 0, "t2")                 # dkj
        b.ld("t3", 0, "t4")                 # dij
        # CS: new = min(dij, dik + dkj), branch-free.
        b.add("t5", "s7", "t1")
        b.slt("t6", "t5", "t3")
        b.sub("t6", "zero", "t6")
        b.xor("t7", "t3", "t5")
        b.and_("t7", "t7", "t6")
        b.xor("t7", "t7", "t3")
        b.sd("t7", 0, "t4")                 # SDQ rendezvous every element
        b.addi("t2", "t2", 8)
        b.addi("t4", "t4", 8)
        b.blt("t4", "a3", "jloop")
        b.addi("s3", "s3", 1)
        b.blt("s3", "a1", "iloop")
        b.addi("s2", "s2", 1)
        b.blt("s2", "s1", "kloop")
        b.halt()
        return b.build()

    # ------------------------------------------------------------------
    def expected_outputs(self) -> dict[str, object]:
        n = self.n
        dist = self._matrix.copy()
        for k in range(self.kiters):
            for i in range(n):
                dik = int(dist[i, k])
                for j in range(n):
                    alt = dik + int(dist[k, j])
                    if alt < dist[i, j]:
                        dist[i, j] = alt
        return {"dist": dist}
