"""Large-scale workload family: the sampled-simulation stress tier.

Each entry scales its benchmark family to **at least 50x the quick-suite
dynamic instruction count** (hundreds of thousands to about a million
instructions per benchmark).  At that scale full detailed simulation of
one (benchmark, model) cell takes long enough that the sampled driver
(:mod:`repro.sim.sampling`) is the practical way to run grids — which is
exactly what this tier exists to exercise: enough sampling periods for
the extrapolation to converge, with workload generation still cheap
enough to run inside benchmarks and CI.

Every workload is built through :class:`~repro.workloads.spec.WorkloadSpec`
(the family-independent parameter layer), so the content-addressed run
cache, suite checkpoints and the ledger key these workloads exactly like
any other spec-built instance.
"""

from __future__ import annotations

from .base import Workload
from .dm import DmWorkload
from .field import FieldWorkload
from .hashjoin import HashJoinWorkload
from .neighborhood import NeighborhoodWorkload
from .pointer import PointerWorkload
from .raytrace import RayTraceWorkload
from .spec import WorkloadSpec
from .spmv import SpmvWorkload
from .transitive import TransitiveWorkload
from .update import UpdateWorkload

_FAMILIES: dict[str, type[Workload]] = {
    cls.name: cls for cls in (
        DmWorkload, RayTraceWorkload, PointerWorkload, UpdateWorkload,
        FieldWorkload, NeighborhoodWorkload, TransitiveWorkload,
        HashJoinWorkload, SpmvWorkload,
    )
}

#: Per-family spec overrides producing >= 50x the quick-suite dynamic
#: instruction counts (asserted by tests/test_sampling.py).  Primary
#: sizes grow where footprint drives the access pattern; ``intensity``
#: scales the secondary work axis (queries / sequences / rays / probes).
LARGE_SPECS: dict[str, WorkloadSpec] = {
    "dm": WorkloadSpec(size=16384, intensity=8.0),
    "raytrace": WorkloadSpec(size=2048, intensity=5.0),
    "pointer": WorkloadSpec(size=65536, chase_depth=4, intensity=5.0),
    "update": WorkloadSpec(size=65536, chase_depth=4, intensity=5.0),
    "field": WorkloadSpec(size=48000),
    "neighborhood": WorkloadSpec(size=160),
    "transitive": WorkloadSpec(size=72, intensity=7.0),
    "hashjoin": WorkloadSpec(size=4096, intensity=9.0),
    "spmv": WorkloadSpec(size=3700, chase_depth=8),
}


def large_workloads(seed: int = 2003) -> list[Workload]:
    """The whole suite at large (sampling-tier) scale."""
    return [large_workload(name, seed=seed) for name in LARGE_SPECS]


def large_workload(name: str, seed: int = 2003) -> Workload:
    """One benchmark at large scale (``KeyError`` for unknown names)."""
    if name not in LARGE_SPECS:
        raise KeyError(
            f"unknown large workload {name!r}; choose from "
            f"{sorted(LARGE_SPECS)}")
    spec = LARGE_SPECS[name]
    if seed != spec.seed:
        import dataclasses

        spec = dataclasses.replace(spec, seed=seed)
    return _FAMILIES[name].from_spec(spec)
