"""Neighborhood stressmark: pixel co-occurrence over an image.

For every pixel the kernel loads the pixel and its diagonal neighbour at
distance *d*, updates a co-occurrence histogram indexed by the two pixel
*values* (data-dependent store addresses — the access pattern the paper
calls "non-contiguous"), accumulates a product sum, and writes a running
checksum per pixel.

The per-pixel checksum store is the paper's Neighborhood signature: its
data is produced by the Computation Stream, so the AP must rendezvous with
the CP through the SDQ *every iteration*.  These frequent synchronisations
are the "loss of decoupling" events that make CP+AP *slower* than the
baseline on this benchmark (paper §5.3) — the reproduction keeps that
behaviour measurable via the SDQ stall counters.
"""

from __future__ import annotations

import numpy as np

from ..asm.builder import ProgramBuilder
from ..asm.program import Program
from .base import Workload
from .generators import random_image


class NeighborhoodWorkload(Workload):
    """Co-occurrence histogram of an *size* x *size* image at distance *d*."""

    name = "neighborhood"
    label = "Neighborhood"
    warmup_fraction = 0.1

    def __init__(self, size: int = 64, distance: int = 2, levels: int = 16,
                 seed: int = 2003):
        super().__init__(seed=seed)
        if distance >= size:
            raise ValueError("distance must be smaller than the image size")
        self.size = size
        self.distance = distance
        self.levels = levels
        self._image = random_image(self.rng(), size, size, levels)

    @classmethod
    def spec_kwargs(cls, spec) -> dict:
        size = spec.pick("size", 64)
        kwargs = {
            "size": size,
            "distance": min(spec.pick("stride", 2), size - 1),
            "seed": spec.seed,
        }
        if spec.value_range is not None:
            lo, hi = spec.value_range
            kwargs["levels"] = max(2, hi - lo + 1)
        return kwargs

    # ------------------------------------------------------------------
    def build(self) -> Program:
        n, d, levels = self.size, self.distance, self.levels
        span = n - d
        b = ProgramBuilder(self.name)
        b.data_i64("image", self._image.ravel())
        b.data_i64("hist", np.zeros(levels * levels, dtype=np.int64))
        b.data_i64("running", np.zeros(span * span, dtype=np.int64))
        b.data_i64("out", [0])

        b.la("s0", "image")
        b.la("s5", "hist")
        b.la("s7", "running")
        b.li("s1", span)                  # row/col limit
        b.li("s2", 0)                     # i
        b.li("s4", n)                     # row stride in words
        b.li("s6", 0)                     # product sum (CS)
        b.li("t8", 0)                     # pixel counter (AS)
        b.li("a2", levels)

        neighbor_off = d * (n + 1) * 8    # x[i+d, j+d] relative to x[i, j]

        b.label("iloop")
        b.li("s3", 0)                     # j
        b.label("jloop")
        b.mul("t0", "s2", "s4")
        b.add("t0", "t0", "s3")
        b.slli("t0", "t0", 3)
        b.add("t0", "t0", "s0")
        b.ld("t1", 0, "t0")               # p1
        b.ld("t2", neighbor_off, "t0")    # p2
        b.comment("hist[p1*levels + p2] += 1 (data-dependent address)")
        b.mul("t3", "t1", "a2")
        b.add("t3", "t3", "t2")
        b.slli("t3", "t3", 3)
        b.add("t3", "t3", "s5")
        b.ld("t4", 0, "t3")
        b.addi("t4", "t4", 1)             # CS: increment crosses the queues
        b.sd("t4", 0, "t3")
        b.mul("t5", "t1", "t2")           # CS: product sum
        b.add("s6", "s6", "t5")
        b.comment("running[pixel] = sum — per-pixel CP/AP rendezvous")
        b.slli("t6", "t8", 3)
        b.add("t6", "t6", "s7")
        b.sd("s6", 0, "t6")
        b.addi("t8", "t8", 1)
        b.addi("s3", "s3", 1)
        b.blt("s3", "s1", "jloop")
        b.addi("s2", "s2", 1)
        b.blt("s2", "s1", "iloop")

        b.la("a0", "out")
        b.sd("s6", 0, "a0")
        b.halt()
        return b.build()

    # ------------------------------------------------------------------
    def expected_outputs(self) -> dict[str, object]:
        n, d, levels = self.size, self.distance, self.levels
        span = n - d
        img = self._image
        hist = np.zeros(levels * levels, dtype=np.int64)
        running = np.zeros(span * span, dtype=np.int64)
        total = 0
        k = 0
        for i in range(span):
            for j in range(span):
                p1 = int(img[i, j])
                p2 = int(img[i + d, j + d])
                hist[p1 * levels + p2] += 1
                total += p1 * p2
                running[k] = total
                k += 1
        return {
            "hist": hist,
            "running": running,
            "out": np.array([total], dtype=np.int64),
        }
