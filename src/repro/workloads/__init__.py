"""The seven DIS benchmarks (paper §5.1).

=================  ====================================  =====================
Benchmark          Character                             Paper's observation
=================  ====================================  =====================
DM                 hash-index record lookups             prefetching helps
RayTray            FP-heavy nearest-hit search           decoupling helps
Pointer            serial pointer chasing                latency-tolerance demo
Update             pointer chasing + RMW stores          best speedup (18.5%)
Field              regular token scan                    decoupling > CMP
Neighborhood       per-pixel CP/AP synchronisation       CP+AP *degrades*
TC                 row-streaming min-plus closure        best miss cut (26.7%)
HashJoin*          full-chain hash-index join            (reproduction extra)
SpMV*              CSR gather mat-vec                    (reproduction extra)
=================  ====================================  =====================

(* not in the paper's DIS suite; added for coverage of join-style and
gather-style access patterns.)

Use :func:`all_workloads` / :func:`quick_workloads` for the paper-scale and
test-scale suites, :func:`get_workload` by name, or
:func:`workloads_from_spec` to build the suite from one
family-independent :class:`~repro.workloads.spec.WorkloadSpec`.
"""

from __future__ import annotations

from .base import Workload, check_ap_executable
from .dm import DmWorkload
from .field import FieldWorkload
from .hashjoin import HashJoinWorkload
from .large import LARGE_SPECS, large_workload, large_workloads
from .neighborhood import NeighborhoodWorkload
from .pointer import PointerWorkload
from .raytrace import RayTraceWorkload
from .spec import WorkloadSpec, describe_spec
from .spmv import SpmvWorkload
from .transitive import TransitiveWorkload
from .update import UpdateWorkload

#: Paper presentation order (Figure 8, left to right), followed by the
#: reproduction's extra data-intensive families.
WORKLOAD_CLASSES: tuple[type[Workload], ...] = (
    DmWorkload,
    RayTraceWorkload,
    PointerWorkload,
    UpdateWorkload,
    FieldWorkload,
    NeighborhoodWorkload,
    TransitiveWorkload,
    HashJoinWorkload,
    SpmvWorkload,
)

WORKLOADS_BY_NAME = {cls.name: cls for cls in WORKLOAD_CLASSES}


def all_workloads(seed: int = 2003) -> list[Workload]:
    """The full suite at paper scale (tens of thousands of dynamic
    instructions each — minutes of simulation for all four models)."""
    return [cls(seed=seed) for cls in WORKLOAD_CLASSES]


def quick_workloads(seed: int = 2003) -> list[Workload]:
    """Scaled-down suite for tests and quick benchmark runs."""
    return [
        DmWorkload(n=2048, buckets=512, queries=220, seed=seed),
        RayTraceWorkload(spheres=160, rays=2, seed=seed),
        PointerWorkload(n=8192, sequences=160, hops=4, seed=seed),
        UpdateWorkload(n=8192, sequences=130, hops=4, seed=seed),
        FieldWorkload(n=900, seed=seed),
        NeighborhoodWorkload(size=24, distance=2, seed=seed),
        TransitiveWorkload(n=26, kiters=2, seed=seed),
        HashJoinWorkload(build=512, probes=90, buckets=128, seed=seed),
        SpmvWorkload(rows=96, row_nnz=6, seed=seed),
    ]


def workloads_from_spec(spec: WorkloadSpec,
                        names: list[str] | None = None) -> list[Workload]:
    """Instantiate the suite (or the *names* subset) from one spec."""
    classes = WORKLOAD_CLASSES if names is None else tuple(
        WORKLOADS_BY_NAME[name] for name in names)
    return [cls.from_spec(spec) for cls in classes]


def get_workload(name: str, quick: bool = False, seed: int = 2003) -> Workload:
    """Instantiate one benchmark by name."""
    if name not in WORKLOADS_BY_NAME:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS_BY_NAME)}"
        )
    source = quick_workloads(seed) if quick else all_workloads(seed)
    for workload in source:
        if workload.name == name:
            return workload
    raise AssertionError("unreachable")  # pragma: no cover


__all__ = [
    "DmWorkload",
    "FieldWorkload",
    "HashJoinWorkload",
    "LARGE_SPECS",
    "NeighborhoodWorkload",
    "PointerWorkload",
    "RayTraceWorkload",
    "SpmvWorkload",
    "TransitiveWorkload",
    "UpdateWorkload",
    "WORKLOADS_BY_NAME",
    "WORKLOAD_CLASSES",
    "Workload",
    "WorkloadSpec",
    "all_workloads",
    "check_ap_executable",
    "describe_spec",
    "get_workload",
    "large_workload",
    "large_workloads",
    "quick_workloads",
    "workloads_from_spec",
]
