"""The seven DIS benchmarks (paper §5.1).

=================  ====================================  =====================
Benchmark          Character                             Paper's observation
=================  ====================================  =====================
DM                 hash-index record lookups             prefetching helps
RayTray            FP-heavy nearest-hit search           decoupling helps
Pointer            serial pointer chasing                latency-tolerance demo
Update             pointer chasing + RMW stores          best speedup (18.5%)
Field              regular token scan                    decoupling > CMP
Neighborhood       per-pixel CP/AP synchronisation       CP+AP *degrades*
TC                 row-streaming min-plus closure        best miss cut (26.7%)
=================  ====================================  =====================

Use :func:`all_workloads` / :func:`quick_workloads` for the paper-scale and
test-scale suites, or :func:`get_workload` by name.
"""

from __future__ import annotations

from .base import Workload, check_ap_executable
from .dm import DmWorkload
from .field import FieldWorkload
from .neighborhood import NeighborhoodWorkload
from .pointer import PointerWorkload
from .raytrace import RayTraceWorkload
from .transitive import TransitiveWorkload
from .update import UpdateWorkload

#: Paper presentation order (Figure 8, left to right).
WORKLOAD_CLASSES: tuple[type[Workload], ...] = (
    DmWorkload,
    RayTraceWorkload,
    PointerWorkload,
    UpdateWorkload,
    FieldWorkload,
    NeighborhoodWorkload,
    TransitiveWorkload,
)

WORKLOADS_BY_NAME = {cls.name: cls for cls in WORKLOAD_CLASSES}


def all_workloads(seed: int = 2003) -> list[Workload]:
    """The full suite at paper scale (tens of thousands of dynamic
    instructions each — minutes of simulation for all four models)."""
    return [cls(seed=seed) for cls in WORKLOAD_CLASSES]


def quick_workloads(seed: int = 2003) -> list[Workload]:
    """Scaled-down suite for tests and quick benchmark runs."""
    return [
        DmWorkload(n=2048, buckets=512, queries=220, seed=seed),
        RayTraceWorkload(spheres=160, rays=2, seed=seed),
        PointerWorkload(n=8192, sequences=160, hops=4, seed=seed),
        UpdateWorkload(n=8192, sequences=130, hops=4, seed=seed),
        FieldWorkload(n=900, seed=seed),
        NeighborhoodWorkload(size=24, distance=2, seed=seed),
        TransitiveWorkload(n=26, kiters=2, seed=seed),
    ]


def get_workload(name: str, quick: bool = False, seed: int = 2003) -> Workload:
    """Instantiate one benchmark by name."""
    if name not in WORKLOADS_BY_NAME:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS_BY_NAME)}"
        )
    source = quick_workloads(seed) if quick else all_workloads(seed)
    for workload in source:
        if workload.name == name:
            return workload
    raise AssertionError("unreachable")  # pragma: no cover


__all__ = [
    "DmWorkload",
    "FieldWorkload",
    "NeighborhoodWorkload",
    "PointerWorkload",
    "RayTraceWorkload",
    "TransitiveWorkload",
    "UpdateWorkload",
    "WORKLOADS_BY_NAME",
    "WORKLOAD_CLASSES",
    "Workload",
    "all_workloads",
    "check_ap_executable",
    "get_workload",
    "quick_workloads",
]
