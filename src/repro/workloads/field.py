"""Field stressmark: token search through a byte field.

A sequential scan over a random byte array counting occurrences of a token
and accumulating a position-weighted checksum.  Accesses are regular and
spatially local (one miss per 32-byte line), so the cache behaves well —
this is the benchmark where the paper notes the CMP contributes little
("contains a relatively small number of cache misses") while the
access/execute *decoupling* itself shows its merit: every loaded byte and
every index crosses to the CP, which does the comparison arithmetic.

Matching is branch-free (``xori`` + ``slti``) so the comparison chain stays
in the Computation Stream.
"""

from __future__ import annotations

import numpy as np

from ..asm.builder import ProgramBuilder
from ..asm.program import Program
from .base import Workload
from .generators import random_bytes


class FieldWorkload(Workload):
    """Scan *n* bytes for *token*; count hits and weighted positions."""

    name = "field"
    label = "Field"
    warmup_fraction = 0.1

    def __init__(self, n: int = 6000, token: int = 0x42, seed: int = 2003):
        super().__init__(seed=seed)
        if not 0 <= token < 256:
            raise ValueError("token must be a byte")
        self.n = n
        self.token = token
        self._data = random_bytes(self.rng(), n)

    @classmethod
    def spec_kwargs(cls, spec) -> dict:
        kwargs = {"n": spec.pick("size", 6000), "seed": spec.seed}
        if spec.value_range is not None:
            kwargs["token"] = spec.value_range[0] % 256
        return kwargs

    # ------------------------------------------------------------------
    def build(self) -> Program:
        b = ProgramBuilder(self.name)
        b.data_bytes("bytes", self._data.tobytes())
        b.align(8)
        b.data_i64("out", [0, 0])

        b.la("s0", "bytes")
        b.li("s1", self.n)
        b.li("s2", 0)                      # index i (AS)
        b.li("s3", 0)                      # match count (CS)
        b.li("s4", 0)                      # weighted position sum (CS)

        b.label("loop")
        b.add("t5", "s0", "s2")
        b.lbu("t0", 0, "t5")
        # CS: eq = (byte == token), branch-free.
        b.xori("t1", "t0", self.token)
        b.slti("t1", "t1", 1)
        b.add("s3", "s3", "t1")
        b.mul("t2", "t1", "s2")            # eq * i
        b.add("s4", "s4", "t2")
        b.addi("s2", "s2", 1)
        b.blt("s2", "s1", "loop")

        b.la("a0", "out")
        b.sd("s3", 0, "a0")
        b.sd("s4", 8, "a0")
        b.halt()
        return b.build()

    # ------------------------------------------------------------------
    def expected_outputs(self) -> dict[str, object]:
        matches = self._data == self.token
        count = int(matches.sum())
        wsum = int(np.flatnonzero(matches).sum())
        return {"out": np.array([count, wsum], dtype=np.int64)}
