"""Parameterised workload generation: the :class:`WorkloadSpec` layer.

The DIS benchmark families each expose their own constructor knobs
(``n``/``buckets``/``hops``/...), which is right for hand-tuned suite
runs but awkward for sweeps and fuzzing, where the interesting axes are
*shared*: how big is the footprint, how strided are the accesses, how
skewed is the reuse, how deep are the dependent chains, how wide are the
values.  ``WorkloadSpec`` names those axes once; each family translates
the spec into its own constructor parameters via ``spec_kwargs`` and
ignores axes that do not apply to it (a stride means nothing to a
pointer chase).

Because every family still goes through its ordinary constructor, the
content-addressed run cache, suite checkpoints and the ledger all key
spec-built workloads correctly with no changes: the fingerprint hashes
the instance's scalar attributes, which the constructor sets from the
translated kwargs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadSpec:
    """Family-independent workload parameters.

    Every field is optional: ``None`` (or the default) means "use the
    family's own default for whatever this axis maps to".

    ================  ====================================================
    ``size``          primary element count (records, bytes, spheres,
                      matrix rows ... whatever the family scales by)
    ``stride``        access stride in elements, for families with a
                      regular component (Field token scan step, SpMV
                      column spread)
    ``hot_fraction``  fraction of accesses landing in a cache-resident
                      hot set (Pointer), or the hit rate of index probes
                      (DM / HashJoin)
    ``chase_depth``   dependent pointer-chase hops per sequence
                      (Pointer / Update)
    ``value_range``   inclusive ``(lo, hi)`` bounds for generated data
                      values, for families that accumulate payloads
    ``intensity``     work multiplier for the family's secondary axis
                      (query/sequence/ray counts); 1.0 = family default
    ================  ====================================================
    """

    size: int | None = None
    stride: int | None = None
    hot_fraction: float | None = None
    chase_depth: int | None = None
    value_range: tuple[int, int] | None = None
    intensity: float = 1.0
    seed: int = 2003

    def __post_init__(self) -> None:
        if self.size is not None and self.size <= 0:
            raise ValueError("size must be positive")
        if self.stride is not None and self.stride <= 0:
            raise ValueError("stride must be positive")
        if self.hot_fraction is not None and not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if self.chase_depth is not None and self.chase_depth <= 0:
            raise ValueError("chase_depth must be positive")
        if self.value_range is not None:
            lo, hi = self.value_range
            if lo > hi:
                raise ValueError("value_range lo must not exceed hi")
        if self.intensity <= 0:
            raise ValueError("intensity must be positive")

    # ------------------------------------------------------------------
    def pick(self, attr: str, default):
        """The spec's value for *attr*, or *default* when unset."""
        value = getattr(self, attr)
        return default if value is None else value

    def scaled(self, default: int, minimum: int = 1) -> int:
        """*default* scaled by ``intensity`` (for secondary work axes)."""
        return max(minimum, int(round(default * self.intensity)))


def describe_spec(spec: WorkloadSpec) -> str:
    """Compact one-line rendering of the set (non-default) axes."""
    parts = []
    for name in ("size", "stride", "hot_fraction", "chase_depth",
                 "value_range"):
        value = getattr(spec, name)
        if value is not None:
            parts.append(f"{name}={value}")
    if spec.intensity != 1.0:
        parts.append(f"intensity={spec.intensity}")
    parts.append(f"seed={spec.seed}")
    return " ".join(parts)
