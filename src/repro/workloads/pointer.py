"""Pointer stressmark: pointer (index) chasing through a large field.

Following the DIS Pointer stressmark's structure, the kernel runs many
independent *hop sequences*: each starts at a random index of a large word
field and follows ``w = field[w]`` for a fixed number of hops.  Hops
within a sequence are serially dependent (the access no prefetcher can
predict); different sequences are independent, which is the memory-level
parallelism a pre-executing CMP can exploit — it walks several sequences
ahead of the AP, which is what gives HiDISC its latency tolerance on this
benchmark (paper Figure 10).

Alongside the chase, each hop folds the visited index into an xor-sum and
a branch-free running minimum — Computation-Stream work that crosses the
LDQ every hop.

Memory behaviour: with the default 64 Ki-word (512 KiB) field and random
start points, nearly every hop misses L1 and most miss L2.
"""

from __future__ import annotations

import numpy as np

from ..asm.builder import ProgramBuilder
from ..asm.program import Program
from .base import Workload
from .generators import mixed_starts, segmented_chain

_MIN_INIT = 1 << 62


class PointerWorkload(Workload):
    """Run *sequences* chains of *hops* hops through an *n*-word field."""

    name = "pointer"
    label = "Pointer"
    warmup_fraction = 0.35

    def __init__(self, n: int = 65536, sequences: int = 1800, hops: int = 2,
                 hot: int = 2048, hot_fraction: float = 0.97,
                 seed: int = 2003):
        super().__init__(seed=seed)
        self.n = n
        self.sequences = sequences
        self.hops = hops
        rng = self.rng()
        self._field = segmented_chain(rng, n, hot)
        self._starts = mixed_starts(rng, sequences, n, hot, hot_fraction)

    @classmethod
    def spec_kwargs(cls, spec) -> dict:
        n = spec.pick("size", 65536)
        return {
            "n": n,
            "sequences": spec.scaled(1800),
            "hops": spec.pick("chase_depth", 2),
            # hot segment scales with the field so the skew survives sizing
            "hot": max(2, min(n - 1, n // 32)),
            "hot_fraction": spec.pick("hot_fraction", 0.97),
            "seed": spec.seed,
        }

    # ------------------------------------------------------------------
    def build(self) -> Program:
        b = ProgramBuilder(self.name)
        b.data_i64("field", self._field)
        b.data_i64("starts", self._starts)
        b.data_i64("out", [0, 0, 0])

        b.la("s0", "field")
        b.la("s1", "starts")
        b.li("s2", 0)                      # sequence index (AS)
        b.li("s3", self.sequences)
        b.li("s5", self.hops)
        b.li("s4", 0)                      # xor accumulator (CS)
        b.li64("s6", _MIN_INIT)            # running minimum (CS)

        b.label("seqloop")
        b.slli("t0", "s2", 3)
        b.add("t0", "t0", "s1")
        b.ld("t1", 0, "t0")                # w = starts[seq]
        b.li("t5", 0)                      # hop counter (AS)
        b.label("hoploop")
        b.slli("t2", "t1", 3)
        b.add("t2", "t2", "s0")
        b.comment("w = field[w] — the serial chase")
        b.ld("t1", 0, "t2")
        b.xor("s4", "s4", "t1")            # CS: xor-sum of visited indices
        # CS: branch-free minimum  min ^= (w ^ min) & -(w < min)
        b.slt("t6", "t1", "s6")
        b.sub("t7", "zero", "t6")
        b.xor("t8", "t1", "s6")
        b.and_("t8", "t8", "t7")
        b.xor("s6", "s6", "t8")
        b.addi("t5", "t5", 1)
        b.blt("t5", "s5", "hoploop")
        b.addi("s2", "s2", 1)
        b.blt("s2", "s3", "seqloop")

        b.la("a0", "out")
        b.sd("s4", 0, "a0")
        b.sd("s6", 8, "a0")
        b.sd("t1", 16, "a0")
        b.halt()
        return b.build()

    # ------------------------------------------------------------------
    def expected_outputs(self) -> dict[str, object]:
        field = self._field
        acc = 0
        minimum = _MIN_INIT
        w = 0
        for start in self._starts:
            w = int(start)
            for _ in range(self.hops):
                w = int(field[w])
                acc ^= w
                if w < minimum:
                    minimum = w
        return {"out": np.array([acc, minimum, w], dtype=np.int64)}
