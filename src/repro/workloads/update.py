"""Update stressmark: pointer chasing with read-modify-write traffic.

Like Pointer, but every hop *writes back*: the visited slot is overwritten
with a running checksum before moving on.  The store data is produced by
the Computation Stream, so each hop also exercises the SDQ rendezvous —
Update is the benchmark where the paper reports HiDISC's largest speedup
(18.5%), driven by the CMP prefetching the line that both the load *and*
the subsequent store to the same address need.

Structure mirrors the DIS Update stressmark: many independent hop
sequences over a large field (serial within, parallel across).
"""

from __future__ import annotations

import numpy as np

from ..asm.builder import ProgramBuilder
from ..asm.program import Program
from ..utils import is_power_of_two
from .base import Workload
from .generators import mixed_starts, segmented_chain


class UpdateWorkload(Workload):
    """Run *sequences* chains of *hops* RMW hops through an *n*-word field."""

    name = "update"
    label = "Update"
    warmup_fraction = 0.35

    def __init__(self, n: int = 65536, sequences: int = 1400, hops: int = 2,
                 hot: int = 2048, hot_fraction: float = 0.95,
                 seed: int = 2003):
        super().__init__(seed=seed)
        if not is_power_of_two(n):
            raise ValueError("field size must be a power of two")
        self.n = n
        self.sequences = sequences
        self.hops = hops
        rng = self.rng()
        self._field = segmented_chain(rng, n, hot)
        self._starts = mixed_starts(rng, sequences, n, hot, hot_fraction)

    @classmethod
    def spec_kwargs(cls, spec) -> dict:
        n = spec.pick("size", 65536)
        if n & (n - 1):  # round up to the power of two the field needs
            n = 1 << n.bit_length()
        return {
            "n": n,
            "sequences": spec.scaled(1400),
            "hops": spec.pick("chase_depth", 2),
            "hot": max(2, min(n - 1, n // 32)),
            "hot_fraction": spec.pick("hot_fraction", 0.95),
            "seed": spec.seed,
        }

    # ------------------------------------------------------------------
    def build(self) -> Program:
        b = ProgramBuilder(self.name)
        b.data_i64("field", self._field)
        b.data_i64("starts", self._starts)
        b.data_i64("out", [0, 0])

        b.la("s0", "field")
        b.la("s1", "starts")
        b.li("s2", 0)                      # sequence index (AS)
        b.li("s3", self.sequences)
        b.li("s5", self.hops)
        b.li("s4", 0)                      # running checksum (CS)

        b.label("seqloop")
        b.slli("t0", "s2", 3)
        b.add("t0", "t0", "s1")
        b.ld("t1", 0, "t0")                # w = starts[seq]
        b.li("t5", 0)                      # hop counter (AS)
        b.label("hoploop")
        b.slli("t2", "t1", 3)
        b.add("t2", "t2", "s0")
        b.comment("next = field[w]")
        b.ld("t3", 0, "t2")
        # CS: checksum folds in the successor index.
        b.add("s4", "s4", "t3")
        b.xori("s4", "s4", 0x5D)
        b.comment("field[w] = checksum mod n — RMW with CS-produced data")
        b.andi("t4", "s4", self.n - 1)
        b.sd("t4", 0, "t2")
        b.mov("t1", "t3")
        b.addi("t5", "t5", 1)
        b.blt("t5", "s5", "hoploop")
        b.addi("s2", "s2", 1)
        b.blt("s2", "s3", "seqloop")

        b.la("a0", "out")
        b.sd("s4", 0, "a0")
        b.sd("t1", 8, "a0")
        b.halt()
        return b.build()

    # ------------------------------------------------------------------
    def expected_outputs(self) -> dict[str, object]:
        field = self._field.copy()
        checksum = 0
        w = 0
        for start in self._starts:
            w = int(start)
            for _ in range(self.hops):
                nxt = int(field[w])
                checksum = (checksum + nxt) ^ 0x5D
                checksum &= (1 << 64) - 1
                if checksum >= 1 << 63:
                    checksum -= 1 << 64
                field[w] = checksum & (self.n - 1)
                w = nxt
        return {"out": np.array([checksum, w], dtype=np.int64)}
