"""DM (Data Management) benchmark: hash-indexed record lookups.

The DIS Data Management benchmark models a database workload: records are
reached through an index whose traversal order is uncorrelated with memory
layout.  The reproduction builds a chained hash index offline (in the data
generator) and the kernel performs a stream of key lookups: hash the key,
walk the bucket chain comparing keys (integer compares driving branches —
legal AP work), and accumulate the values of the hits on the CP.

Access character: head/next/keys arrays total several hundred KiB and the
probe order is random — every chain hop is a likely L1 miss, and the chain
loads are serially dependent (pointer chasing through the index).
"""

from __future__ import annotations

import numpy as np

from ..asm.builder import ProgramBuilder
from ..asm.program import Program
from ..utils import is_power_of_two
from .base import Workload
from .generators import build_hash_chains, random_records


class DmWorkload(Workload):
    """Look up *queries* keys in a hash index over *n* records."""

    name = "dm"
    label = "DM"
    warmup_fraction = 0.3

    def __init__(self, n: int = 4096, buckets: int = 1024,
                 queries: int = 1800, hit_fraction: float = 0.5,
                 seed: int = 2003):
        super().__init__(seed=seed)
        if not is_power_of_two(buckets):
            raise ValueError("buckets must be a power of two")
        self.n = n
        self.buckets = buckets
        self.queries = queries
        rng = self.rng()
        self._keys, self._values = random_records(rng, n, key_space=1 << 20)
        self._head, self._next = build_hash_chains(self._keys, buckets)
        # Half the queries target existing keys, half are uniform misses.
        hits = rng.choice(self._keys, size=queries)
        misses = rng.integers(0, 1 << 20, size=queries, dtype=np.int64)
        take_hit = rng.random(queries) < hit_fraction
        self._queries = np.where(take_hit, hits, misses).astype(np.int64)

    @classmethod
    def spec_kwargs(cls, spec) -> dict:
        n = spec.pick("size", 4096)
        # keep roughly 4 records per bucket as the index scales
        buckets = 1 << max(1, (n // 4).bit_length() - 1)
        return {
            "n": n,
            "buckets": buckets,
            "queries": spec.scaled(1800),
            "hit_fraction": spec.pick("hot_fraction", 0.5),
            "seed": spec.seed,
        }

    # ------------------------------------------------------------------
    def build(self) -> Program:
        b = ProgramBuilder(self.name)
        b.data_i64("keys", self._keys)
        b.data_i64("values", self._values)
        b.data_i64("next", self._next)
        b.data_i64("head", self._head)
        b.data_i64("queries", self._queries)
        b.data_i64("out", [0])

        b.la("s0", "keys")
        b.la("s1", "values")
        b.la("s2", "next")
        b.la("s3", "head")
        b.la("s4", "queries")
        b.li("s5", self.queries)
        b.li("s6", 0)                      # query index
        b.li("s7", 0)                      # value sum of hits (CS)
        b.li("t8", -1)                     # chain terminator

        b.label("qloop")
        b.slli("t0", "s6", 3)
        b.add("t0", "t0", "s4")
        b.ld("t1", 0, "t0")                # key = queries[q]
        b.andi("t2", "t1", self.buckets - 1)
        b.slli("t2", "t2", 3)
        b.add("t2", "t2", "s3")
        b.ld("t3", 0, "t2")                # p = head[h]
        b.label("chain")
        b.beq("t3", "t8", "done_q")
        b.slli("t4", "t3", 3)
        b.add("t5", "t4", "s0")
        b.ld("t6", 0, "t5")                # keys[p]
        b.bne("t6", "t1", "next_p")
        b.comment("hit: sum += values[p]")
        b.add("t7", "t4", "s1")
        b.ld("t9", 0, "t7")
        b.add("s7", "s7", "t9")            # CS accumulation
        b.j("done_q")
        b.label("next_p")
        b.add("t7", "t4", "s2")
        b.ld("t3", 0, "t7")                # p = next[p]
        b.j("chain")
        b.label("done_q")
        b.addi("s6", "s6", 1)
        b.blt("s6", "s5", "qloop")

        b.la("a0", "out")
        b.sd("s7", 0, "a0")
        b.halt()
        return b.build()

    # ------------------------------------------------------------------
    def expected_outputs(self) -> dict[str, object]:
        mask = self.buckets - 1
        total = 0
        for key in self._queries:
            key = int(key)
            p = int(self._head[key & mask])
            while p != -1:
                if int(self._keys[p]) == key:
                    total += int(self._values[p])
                    break
                p = int(self._next[p])
        return {"out": np.array([total], dtype=np.int64)}
