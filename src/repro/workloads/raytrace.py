"""Ray Tracing benchmark: primary-ray culling census over a sphere set.

The DIS suite's Ray Tracing application is the floating-point member of
the benchmark set.  The reproduction models the hot inner stage of a
tracer's primary-ray cast: for each ray it scans the structure-of-arrays
sphere set, computes the projection of every sphere centre onto the ray
(``b = d . c``), counts the spheres inside the acceptance cone
(``b > cut``) and tracks the maximum projection — the census a tracer
uses to cull and order intersection candidates.

Everything data-dependent is branch-free: the hit predicate is an ``flt``
into an integer accumulator, the maximum an ``fmax`` — so the Access
Stream stays pure integer (loads, indices, loop control) while the FP
pipeline runs on the CP.  The computation slice per sphere (8 ops) is
sized so the CP's 16-entry window can overlap two iterations; three FP
loads cross the LDQ per sphere, the heaviest queue traffic of the suite.
"""

from __future__ import annotations

import numpy as np

from ..asm.builder import ProgramBuilder
from ..asm.program import Program
from .base import Workload
from .generators import random_rays, random_spheres

_CUT = 60.0


class RayTraceWorkload(Workload):
    """Culling census: *rays* rays against *spheres* spheres."""

    name = "raytrace"
    label = "RayTray"
    #: the first ray's pass over the sphere arrays warms the caches.
    warmup_fraction = 0.34

    def __init__(self, spheres: int = 2048, rays: int = 3, seed: int = 2003):
        super().__init__(seed=seed)
        self.n_spheres = spheres
        self.n_rays = rays
        rng = self.rng()
        self._spheres = random_spheres(rng, spheres)
        self._rays = random_rays(rng, rays)

    @classmethod
    def spec_kwargs(cls, spec) -> dict:
        return {
            "spheres": spec.pick("size", 2048),
            "rays": spec.scaled(3),
            "seed": spec.seed,
        }

    # ------------------------------------------------------------------
    def build(self) -> Program:
        b = ProgramBuilder(self.name)
        s = self._spheres
        b.data_f64("cx", s["cx"])
        b.data_f64("cy", s["cy"])
        b.data_f64("cz", s["cz"])
        r = self._rays
        b.data_f64("dirs", np.column_stack([r["dx"], r["dy"], r["dz"]]).ravel())
        b.data_f64("bmax", np.zeros(self.n_rays))
        b.data_i64("hits", np.zeros(self.n_rays, dtype=np.int64))
        b.data_f64("fconst", [-1.0e30, _CUT])

        b.la("s0", "cx")
        b.la("s1", "cy")
        b.la("s2", "cz")
        b.la("s4", "dirs")
        b.la("s5", "bmax")
        b.la("a0", "hits")
        b.li("s6", 0)                       # ray index
        b.li("s7", self.n_rays)
        b.li("a1", self.n_spheres * 8)      # byte extent of sphere arrays
        b.la("a2", "fconst")
        b.fld("f22", 0, "a2")               # -BIG (bmax identity)
        b.fld("f21", 8, "a2")               # acceptance-cone cut

        b.label("rayloop")
        b.muli("t0", "s6", 24)
        b.add("t0", "t0", "s4")
        b.fld("f0", 0, "t0")                # dx
        b.fld("f1", 8, "t0")                # dy
        b.fld("f2", 16, "t0")               # dz
        b.fmov("f19", "f22")                # bmax = -BIG  (CS)
        b.li("v0", 0)                       # hit count   (CS)
        b.li("t1", 0)                       # sphere byte offset (AS)

        b.label("sphloop")
        b.add("t2", "t1", "s0")
        b.fld("f3", 0, "t2")                # cx
        b.add("t2", "t1", "s1")
        b.fld("f4", 0, "t2")                # cy
        b.add("t2", "t1", "s2")
        b.fld("f5", 0, "t2")                # cz
        # CS: b = dx*cx + dy*cy + cz ; census.  (Primary rays point down
        # +z with dz ~= 1, so the tracer's culling metric folds the z term
        # in unscaled — one multiply fewer on the single FP MUL unit.)
        b.fmul("f7", "f0", "f3")
        b.fmul("f8", "f1", "f4")
        b.fadd("f7", "f7", "f8")
        b.fadd("f7", "f7", "f5")            # f7 = b
        b.fmax("f19", "f19", "f7")          # running max projection
        b.flt("t3", "f21", "f7")            # inside the cone iff b > cut
        b.add("v0", "v0", "t3")
        b.addi("t1", "t1", 8)
        b.blt("t1", "a1", "sphloop")

        b.comment("bmax[ray], hits[ray] = census results")
        b.slli("t5", "s6", 3)
        b.add("t6", "t5", "s5")
        b.fsd("f19", 0, "t6")
        b.add("t6", "t5", "a0")
        b.sd("v0", 0, "t6")
        b.addi("s6", "s6", 1)
        b.blt("s6", "s7", "rayloop")
        b.halt()
        return b.build()

    # ------------------------------------------------------------------
    def expected_outputs(self) -> dict[str, object]:
        s = self._spheres
        r = self._rays
        bmax = np.empty(self.n_rays)
        hits = np.empty(self.n_rays, dtype=np.int64)
        for i in range(self.n_rays):
            dx, dy, dz = r["dx"][i], r["dy"][i], r["dz"][i]
            best = -1.0e30
            count = 0
            for j in range(self.n_spheres):
                bq = (dx * s["cx"][j] + dy * s["cy"][j]) + s["cz"][j]
                best = max(best, bq)
                if bq > _CUT:
                    count += 1
            bmax[i] = best
            hits[i] = count
        return {"bmax": bmax, "hits": hits}
