"""Seeded input generators shared by the DIS benchmarks.

Every generator takes an explicit ``numpy.random.Generator`` so the same
seed always produces the same input image — simulations are bit-for-bit
reproducible (DESIGN.md "Determinism").
"""

from __future__ import annotations

import numpy as np


def permutation_chain(rng: np.random.Generator, n: int) -> np.ndarray:
    """A pointer field forming one full cycle over ``0..n-1``.

    ``field[i]`` is the successor of ``i``; following the field from any
    start visits all *n* slots before repeating.  This is the worst case
    for caches (no reuse until the whole field has been traversed) and the
    canonical pointer-chasing input.
    """
    order = rng.permutation(n)
    field = np.empty(n, dtype=np.int64)
    field[order] = np.roll(order, -1)
    return field


def segmented_chain(rng: np.random.Generator, n: int, hot: int) -> np.ndarray:
    """A pointer field split into a *hot* and a *cold* segment.

    Slots ``0..hot-1`` form one cycle among themselves and ``hot..n-1``
    another, so a chase that starts hot stays hot (a cache-resident working
    set) while cold chases roam the large remainder (memory misses).  This
    mirrors the skewed reuse of real data-intensive applications: a hot
    index plus a long cold tail.
    """
    if not 0 < hot < n:
        raise ValueError("hot segment must be a strict, non-empty prefix")
    field = np.empty(n, dtype=np.int64)
    field[:hot] = permutation_chain(rng, hot)
    field[hot:] = permutation_chain(rng, n - hot) + hot
    return field


def mixed_starts(rng: np.random.Generator, count: int, n: int, hot: int,
                 hot_fraction: float) -> np.ndarray:
    """Chase start points: *hot_fraction* of them inside the hot segment."""
    hot_starts = rng.integers(0, hot, size=count, dtype=np.int64)
    cold_starts = rng.integers(hot, n, size=count, dtype=np.int64)
    take_hot = rng.random(count) < hot_fraction
    return np.where(take_hot, hot_starts, cold_starts).astype(np.int64)


def random_bytes(rng: np.random.Generator, n: int, alphabet: int = 256) -> np.ndarray:
    """Uniform random byte field (Field stressmark input)."""
    return rng.integers(0, alphabet, size=n, dtype=np.uint8)


def random_image(rng: np.random.Generator, rows: int, cols: int,
                 levels: int) -> np.ndarray:
    """Random image with pixel values in ``[0, levels)`` (Neighborhood)."""
    return rng.integers(0, levels, size=(rows, cols), dtype=np.int64)


def random_distance_matrix(rng: np.random.Generator, n: int,
                           density: float = 0.25,
                           inf: int = 1 << 20) -> np.ndarray:
    """Weighted adjacency matrix for Transitive Closure / shortest paths.

    Missing edges get the large-but-addable sentinel *inf* (additions never
    overflow 64 bits).  Diagonal is zero.
    """
    weights = rng.integers(1, 100, size=(n, n), dtype=np.int64)
    mask = rng.random((n, n)) < density
    mat = np.where(mask, weights, np.int64(inf))
    np.fill_diagonal(mat, 0)
    return mat


def random_records(rng: np.random.Generator, n: int,
                   key_space: int) -> tuple[np.ndarray, np.ndarray]:
    """(keys, values) arrays for the DM benchmark."""
    keys = rng.integers(0, key_space, size=n, dtype=np.int64)
    values = rng.integers(1, 1000, size=n, dtype=np.int64)
    return keys, values


def build_hash_chains(keys: np.ndarray, buckets: int) -> tuple[np.ndarray, np.ndarray]:
    """Chained hash index over *keys*: (head[buckets], next[n]).

    ``head[h]`` is the index of the first record in bucket *h* (-1 if
    empty); ``next[i]`` links records within a bucket (-1 terminates).
    Records are inserted in order, newest first — the classic layout whose
    traversal order is uncorrelated with memory order.
    """
    n = len(keys)
    head = np.full(buckets, -1, dtype=np.int64)
    nxt = np.full(n, -1, dtype=np.int64)
    mask = buckets - 1
    for i in range(n):
        h = int(keys[i]) & mask
        nxt[i] = head[h]
        head[h] = i
    return head, nxt


def random_spheres(rng: np.random.Generator, n: int,
                   extent: float = 100.0) -> dict[str, np.ndarray]:
    """Structure-of-arrays sphere set for the RayTrace benchmark."""
    return {
        "cx": rng.uniform(-extent, extent, size=n),
        "cy": rng.uniform(-extent, extent, size=n),
        "cz": rng.uniform(extent * 0.5, extent * 2.0, size=n),  # in front
        "r": rng.uniform(0.5, 4.0, size=n),
    }


def random_rays(rng: np.random.Generator, n: int) -> dict[str, np.ndarray]:
    """Normalised ray directions, mostly towards +z."""
    dx = rng.uniform(-0.4, 0.4, size=n)
    dy = rng.uniform(-0.4, 0.4, size=n)
    dz = np.ones(n)
    norm = np.sqrt(dx * dx + dy * dy + dz * dz)
    return {"dx": dx / norm, "dy": dy / norm, "dz": dz / norm}
