"""Hash join: probe a chained hash index, accumulating over *all* matches.

A classic equi-join inner loop: the build side's keys are indexed with
:func:`~repro.workloads.generators.build_hash_chains` offline, and the
kernel streams the probe side through the index.  Unlike DM's first-hit
lookups, a join must walk every bucket chain to the end — the build keys
are drawn from a small key space so buckets hold genuine duplicates, and
each match contributes ``build_value * probe_value`` to the join payload.

Access character: like DM, the chain walk is serially dependent pointer
chasing through head/next/keys arrays in traversal order uncorrelated
with layout; the extra value-array touch per match adds a second
data-dependent load stream.  Match arithmetic (the multiply-accumulate)
is pure Computation Stream work.
"""

from __future__ import annotations

import numpy as np

from ..asm.builder import ProgramBuilder
from ..asm.program import Program
from ..utils import is_power_of_two
from .base import Workload
from .generators import build_hash_chains


class HashJoinWorkload(Workload):
    """Join *probes* probe records against an index over *build* records."""

    name = "hashjoin"
    label = "HashJoin"
    warmup_fraction = 0.3

    def __init__(self, build: int = 2048, probes: int = 600,
                 buckets: int = 512, hit_fraction: float = 0.5,
                 value_range: tuple[int, int] = (1, 1000),
                 seed: int = 2003):
        super().__init__(seed=seed)
        if not is_power_of_two(buckets):
            raise ValueError("buckets must be a power of two")
        lo, hi = value_range
        if lo > hi:
            raise ValueError("value_range lo must not exceed hi")
        self.build_n = build
        self.probes = probes
        self.buckets = buckets
        rng = self.rng()
        # small key space => buckets contain real duplicate keys
        key_space = max(2, build // 2)
        self._rkeys = rng.integers(0, key_space, size=build, dtype=np.int64)
        self._rvalues = rng.integers(lo, hi + 1, size=build, dtype=np.int64)
        self._head, self._next = build_hash_chains(self._rkeys, buckets)
        hits = rng.choice(self._rkeys, size=probes)
        misses = rng.integers(key_space, 2 * key_space, size=probes,
                              dtype=np.int64)
        take_hit = rng.random(probes) < hit_fraction
        self._pkeys = np.where(take_hit, hits, misses).astype(np.int64)
        self._pvalues = rng.integers(lo, hi + 1, size=probes, dtype=np.int64)

    @classmethod
    def spec_kwargs(cls, spec) -> dict:
        n = spec.pick("size", 2048)
        kwargs = {
            "build": n,
            "probes": spec.scaled(600),
            "buckets": 1 << max(1, (n // 4).bit_length() - 1),
            "hit_fraction": spec.pick("hot_fraction", 0.5),
            "seed": spec.seed,
        }
        if spec.value_range is not None:
            kwargs["value_range"] = spec.value_range
        return kwargs

    # ------------------------------------------------------------------
    def build(self) -> Program:
        b = ProgramBuilder(self.name)
        b.data_i64("rkeys", self._rkeys)
        b.data_i64("rvalues", self._rvalues)
        b.data_i64("next", self._next)
        b.data_i64("head", self._head)
        b.data_i64("pkeys", self._pkeys)
        b.data_i64("pvalues", self._pvalues)
        b.data_i64("out", [0, 0])

        b.la("s0", "rkeys")
        b.la("s1", "rvalues")
        b.la("s2", "next")
        b.la("s3", "head")
        b.la("s4", "pkeys")
        b.la("s5", "pvalues")
        b.li("a1", self.probes)
        b.li("s6", 0)                      # probe index
        b.li("s7", 0)                      # payload sum (CS)
        b.li("v0", 0)                      # match count (CS)
        b.li("t8", -1)                     # chain terminator

        b.label("ploop")
        b.slli("t0", "s6", 3)
        b.add("t1", "t0", "s4")
        b.ld("t2", 0, "t1")                # pkey
        b.add("t1", "t0", "s5")
        b.ld("t3", 0, "t1")                # pval
        b.andi("t4", "t2", self.buckets - 1)
        b.slli("t4", "t4", 3)
        b.add("t4", "t4", "s3")
        b.ld("t5", 0, "t4")                # p = head[h]
        b.label("chain")
        b.beq("t5", "t8", "done_p")
        b.slli("t6", "t5", 3)
        b.add("t7", "t6", "s0")
        b.ld("t9", 0, "t7")                # rkeys[p]
        b.bne("t9", "t2", "skip")
        b.comment("match: count += 1, sum += rvalues[p] * pval")
        b.addi("v0", "v0", 1)
        b.add("t7", "t6", "s1")
        b.ld("t9", 0, "t7")
        b.mul("t9", "t9", "t3")
        b.add("s7", "s7", "t9")            # CS accumulation
        b.label("skip")
        b.add("t7", "t6", "s2")
        b.ld("t5", 0, "t7")                # p = next[p]: walk the WHOLE chain
        b.j("chain")
        b.label("done_p")
        b.addi("s6", "s6", 1)
        b.blt("s6", "a1", "ploop")

        b.la("a0", "out")
        b.sd("v0", 0, "a0")
        b.sd("s7", 8, "a0")
        b.halt()
        return b.build()

    # ------------------------------------------------------------------
    def expected_outputs(self) -> dict[str, object]:
        mask = self.buckets - 1
        count = 0
        total = 0
        for key, pval in zip(self._pkeys, self._pvalues):
            key, pval = int(key), int(pval)
            p = int(self._head[key & mask])
            while p != -1:
                if int(self._rkeys[p]) == key:
                    count += 1
                    total += int(self._rvalues[p]) * pval
                p = int(self._next[p])
        return {"out": np.array([count, total], dtype=np.int64)}
