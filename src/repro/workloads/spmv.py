"""Sparse matrix-vector multiply (CSR, integer payload).

``y = A @ x`` with *A* in compressed-sparse-row form: ``rowptr`` bounds
each row's slice of ``colidx``/``vals``, and the inner loop gathers
``x[colidx[k]]`` — the canonical data-dependent gather.  Row lengths
vary (some rows are empty), so the inner trip count is data-driven.

Access character: ``rowptr``/``colidx``/``vals`` stream sequentially
(the Access Processor's bread and butter), while the ``x`` gather jumps
by the generator's column stride — small strides keep the gather
cache-resident, large strides turn every gather into a likely miss.
The multiply-accumulate is pure Computation Stream work.  Integer
payloads keep verification exact.
"""

from __future__ import annotations

import numpy as np

from ..asm.builder import ProgramBuilder
from ..asm.program import Program
from .base import Workload


class SpmvWorkload(Workload):
    """``y = A @ x`` over *rows* CSR rows of ~*row_nnz* entries each."""

    name = "spmv"
    label = "SpMV"
    warmup_fraction = 0.1

    def __init__(self, rows: int = 384, row_nnz: int = 8,
                 stride: int = 1, value_range: tuple[int, int] = (1, 100),
                 seed: int = 2003):
        super().__init__(seed=seed)
        if rows <= 0 or row_nnz <= 0 or stride <= 0:
            raise ValueError("rows, row_nnz and stride must be positive")
        lo, hi = value_range
        if lo > hi:
            raise ValueError("value_range lo must not exceed hi")
        self.rows = rows
        self.row_nnz = row_nnz
        self.stride = stride
        cols = rows  # square matrix; x has one slot per column
        rng = self.rng()
        rowptr = [0]
        colidx: list[int] = []
        # columns land on multiples of the stride, so the gather's reach
        # scales with it (stride 1 = dense-ish reuse, large = scattered)
        reach = max(1, cols // stride)
        for _ in range(rows):
            nnz = int(rng.integers(0, 2 * row_nnz + 1))  # empty rows happen
            picks = np.unique(
                (rng.integers(0, reach, size=nnz) * stride) % cols
            ) if nnz else np.empty(0, dtype=np.int64)
            colidx.extend(int(c) for c in picks)
            rowptr.append(len(colidx))
        self._rowptr = np.asarray(rowptr, dtype=np.int64)
        self._colidx = np.asarray(colidx, dtype=np.int64)
        self._vals = rng.integers(lo, hi + 1, size=len(colidx), dtype=np.int64)
        self._x = rng.integers(lo, hi + 1, size=cols, dtype=np.int64)

    @classmethod
    def spec_kwargs(cls, spec) -> dict:
        kwargs = {
            "rows": spec.pick("size", 384),
            "row_nnz": spec.pick("chase_depth", 8),
            "stride": spec.pick("stride", 1),
            "seed": spec.seed,
        }
        if spec.value_range is not None:
            kwargs["value_range"] = spec.value_range
        return kwargs

    # ------------------------------------------------------------------
    def build(self) -> Program:
        b = ProgramBuilder(self.name)
        b.data_i64("rowptr", self._rowptr)
        b.data_i64("colidx", self._colidx if len(self._colidx) else [0])
        b.data_i64("vals", self._vals if len(self._vals) else [0])
        b.data_i64("x", self._x)
        b.data_space("y", self.rows * 8)

        b.la("s0", "rowptr")
        b.la("s1", "colidx")
        b.la("s2", "vals")
        b.la("s3", "x")
        b.la("s4", "y")
        b.li("s5", self.rows)
        b.li("s6", 0)                      # row index

        b.label("rloop")
        b.slli("t0", "s6", 3)
        b.add("t1", "t0", "s0")
        b.ld("t2", 0, "t1")                # k    = rowptr[r]
        b.ld("t3", 8, "t1")                # kend = rowptr[r+1]
        b.li("s7", 0)                      # acc (CS)
        b.label("inner")
        b.bge("t2", "t3", "row_done")      # handles empty rows too
        b.slli("t4", "t2", 3)
        b.add("t5", "t4", "s1")
        b.ld("t6", 0, "t5")                # c = colidx[k]
        b.add("t7", "t4", "s2")
        b.ld("t9", 0, "t7")                # v = vals[k]
        b.slli("t6", "t6", 3)
        b.add("t6", "t6", "s3")
        b.ld("t6", 0, "t6")                # x[c]  (the gather)
        b.mul("t9", "t9", "t6")
        b.add("s7", "s7", "t9")            # CS accumulation
        b.addi("t2", "t2", 1)
        b.j("inner")
        b.label("row_done")
        b.add("t0", "t0", "s4")
        b.sd("s7", 0, "t0")                # y[r]
        b.addi("s6", "s6", 1)
        b.blt("s6", "s5", "rloop")
        b.halt()
        return b.build()

    # ------------------------------------------------------------------
    def expected_outputs(self) -> dict[str, object]:
        y = np.zeros(self.rows, dtype=np.int64)
        for r in range(self.rows):
            lo, hi = int(self._rowptr[r]), int(self._rowptr[r + 1])
            for k in range(lo, hi):
                y[r] += self._vals[k] * self._x[self._colidx[k]]
        return {"y": y}
