"""Assembler layer: programs, the builder DSL, and the text assembler."""

from .builder import ProgramBuilder
from .parser import Assembler, assemble
from .program import DATA_BASE, HEAP_BASE, MEMORY_BYTES, STACK_TOP, Program

__all__ = [
    "Assembler",
    "DATA_BASE",
    "HEAP_BASE",
    "MEMORY_BYTES",
    "Program",
    "ProgramBuilder",
    "STACK_TOP",
    "assemble",
]
