"""``ProgramBuilder`` — a Python DSL for authoring assembly programs.

The DIS benchmarks are written with this builder (the paper compiles C with
a SimpleScalar gcc; we author the same kernels directly — see DESIGN.md
substitution #1).  Example::

    b = ProgramBuilder("sum")
    arr = b.data_f64("arr", [1.0, 2.0, 3.0])
    b.la("t0", "arr")
    b.li("t1", 3)            # counter
    b.li("t2", 0)
    b.fsub("f0", "f0", "f0")  # f0 = 0.0
    b.label("loop")
    b.fld("f1", 0, "t0")
    b.fadd("f0", "f0", "f1")
    b.addi("t0", "t0", 8)
    b.addi("t2", "t2", 1)
    b.blt("t2", "t1", "loop")
    b.halt()
    program = b.build()

Branch targets are labels; they are resolved to instruction indices by
:meth:`ProgramBuilder.build`.  Register operands may be names (``"t0"``,
``"$f2"``) or raw register ids.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable

from ..errors import AssemblyError
from ..isa.instruction import Instruction
from ..isa.opcodes import Format, Op
from ..isa.registers import parse_reg
from ..utils import align_up
from .program import DATA_BASE, Program

# Must match the encodable immediate width (29-bit two's complement).
_IMM_MIN = -(1 << 28)
_IMM_MAX = (1 << 28) - 1


def _reg(value: int | str) -> int:
    return value if isinstance(value, int) else parse_reg(value)


class ProgramBuilder:
    """Incrementally build a :class:`~repro.asm.program.Program`."""

    def __init__(self, name: str = "program"):
        self.name = name
        self._text: list[Instruction] = []
        self._data = bytearray()
        self._text_symbols: dict[str, int] = {}
        self._data_symbols: dict[str, int] = {}
        #: (instruction index, label) fixups resolved at build time.
        self._fixups: list[tuple[int, str]] = []
        self._comment_next: str = ""

    # ------------------------------------------------------------------
    # Labels and comments
    # ------------------------------------------------------------------
    def label(self, name: str) -> str:
        """Define a text label at the current position; returns *name*."""
        if name in self._text_symbols or name in self._data_symbols:
            raise AssemblyError(f"duplicate label {name!r}")
        self._text_symbols[name] = len(self._text)
        return name

    def comment(self, text: str) -> None:
        """Attach a comment to the next emitted instruction."""
        self._comment_next = text

    @property
    def here(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._text)

    # ------------------------------------------------------------------
    # Data segment
    # ------------------------------------------------------------------
    def _def_data(self, label: str | None, address: int) -> int:
        if label is not None:
            if label in self._data_symbols or label in self._text_symbols:
                raise AssemblyError(f"duplicate label {label!r}")
            self._data_symbols[label] = address
        return address

    def align(self, alignment: int) -> None:
        """Pad the data segment to *alignment* bytes."""
        target = align_up(len(self._data), alignment)
        self._data.extend(b"\0" * (target - len(self._data)))

    def data_bytes(self, label: str | None, payload: bytes) -> int:
        """Emit raw bytes; returns the absolute byte address."""
        addr = DATA_BASE + len(self._data)
        self._data.extend(payload)
        return self._def_data(label, addr)

    def data_space(self, label: str | None, nbytes: int, align: int = 8) -> int:
        """Reserve *nbytes* zeroed bytes (aligned); returns the address."""
        self.align(align)
        return self.data_bytes(label, b"\0" * nbytes)

    def data_i64(self, label: str | None, values: Iterable[int]) -> int:
        """Emit 64-bit little-endian integers; returns the address."""
        self.align(8)
        payload = b"".join(struct.pack("<q", int(v)) for v in values)
        return self.data_bytes(label, payload)

    def data_i32(self, label: str | None, values: Iterable[int]) -> int:
        """Emit 32-bit little-endian integers; returns the address."""
        self.align(4)
        payload = b"".join(struct.pack("<i", int(v)) for v in values)
        return self.data_bytes(label, payload)

    def data_f64(self, label: str | None, values: Iterable[float]) -> int:
        """Emit IEEE binary64 values; returns the address."""
        self.align(8)
        payload = b"".join(struct.pack("<d", float(v)) for v in values)
        return self.data_bytes(label, payload)

    # ------------------------------------------------------------------
    # Core emit
    # ------------------------------------------------------------------
    def emit(self, instr: Instruction) -> Instruction:
        """Append a pre-constructed instruction."""
        if self._comment_next:
            instr.comment = self._comment_next
            self._comment_next = ""
        self._text.append(instr)
        return instr

    def _where(self, index: int | None = None) -> str:
        """Source context for error messages: instruction index plus the
        nearest preceding text label (the builder's analogue of a line
        number), so a failure points at the offending builder call."""
        if index is None:
            index = len(self._text)
        label, at = None, -1
        for name, pos in self._text_symbols.items():
            if pos <= index and pos > at:
                label, at = name, pos
        where = f"instruction {index}"
        if label is not None:
            where += f" ({label!r}+{index - at})"
        return f"{self.name}: {where}"

    def _emit(self, op: Op, rd: int = 0, rs1: int = 0, rs2: int = 0,
              imm: int = 0, label: str | None = None) -> Instruction:
        if not (_IMM_MIN <= imm <= _IMM_MAX):
            raise AssemblyError(
                f"{self._where()}: {op.mnemonic}: immediate {imm} does not "
                f"fit in 29 bits (use li64 for large constants)"
            )
        instr = Instruction(op=op, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
        if label is not None:
            self._fixups.append((len(self._text), label))
        return self.emit(instr)

    # ------------------------------------------------------------------
    # Integer ALU
    # ------------------------------------------------------------------
    def add(self, rd, rs1, rs2):  # noqa: D102 - uniform one-liners
        return self._emit(Op.ADD, _reg(rd), _reg(rs1), _reg(rs2))

    def sub(self, rd, rs1, rs2):
        return self._emit(Op.SUB, _reg(rd), _reg(rs1), _reg(rs2))

    def mul(self, rd, rs1, rs2):
        return self._emit(Op.MUL, _reg(rd), _reg(rs1), _reg(rs2))

    def div(self, rd, rs1, rs2):
        return self._emit(Op.DIV, _reg(rd), _reg(rs1), _reg(rs2))

    def rem(self, rd, rs1, rs2):
        return self._emit(Op.REM, _reg(rd), _reg(rs1), _reg(rs2))

    def and_(self, rd, rs1, rs2):
        return self._emit(Op.AND, _reg(rd), _reg(rs1), _reg(rs2))

    def or_(self, rd, rs1, rs2):
        return self._emit(Op.OR, _reg(rd), _reg(rs1), _reg(rs2))

    def xor(self, rd, rs1, rs2):
        return self._emit(Op.XOR, _reg(rd), _reg(rs1), _reg(rs2))

    def nor(self, rd, rs1, rs2):
        return self._emit(Op.NOR, _reg(rd), _reg(rs1), _reg(rs2))

    def sll(self, rd, rs1, rs2):
        return self._emit(Op.SLL, _reg(rd), _reg(rs1), _reg(rs2))

    def srl(self, rd, rs1, rs2):
        return self._emit(Op.SRL, _reg(rd), _reg(rs1), _reg(rs2))

    def sra(self, rd, rs1, rs2):
        return self._emit(Op.SRA, _reg(rd), _reg(rs1), _reg(rs2))

    def slt(self, rd, rs1, rs2):
        return self._emit(Op.SLT, _reg(rd), _reg(rs1), _reg(rs2))

    def sltu(self, rd, rs1, rs2):
        return self._emit(Op.SLTU, _reg(rd), _reg(rs1), _reg(rs2))

    def addi(self, rd, rs1, imm: int):
        return self._emit(Op.ADDI, _reg(rd), _reg(rs1), imm=imm)

    def muli(self, rd, rs1, imm: int):
        return self._emit(Op.MULI, _reg(rd), _reg(rs1), imm=imm)

    def andi(self, rd, rs1, imm: int):
        return self._emit(Op.ANDI, _reg(rd), _reg(rs1), imm=imm)

    def ori(self, rd, rs1, imm: int):
        return self._emit(Op.ORI, _reg(rd), _reg(rs1), imm=imm)

    def xori(self, rd, rs1, imm: int):
        return self._emit(Op.XORI, _reg(rd), _reg(rs1), imm=imm)

    def slli(self, rd, rs1, imm: int):
        return self._emit(Op.SLLI, _reg(rd), _reg(rs1), imm=imm)

    def srli(self, rd, rs1, imm: int):
        return self._emit(Op.SRLI, _reg(rd), _reg(rs1), imm=imm)

    def srai(self, rd, rs1, imm: int):
        return self._emit(Op.SRAI, _reg(rd), _reg(rs1), imm=imm)

    def slti(self, rd, rs1, imm: int):
        return self._emit(Op.SLTI, _reg(rd), _reg(rs1), imm=imm)

    def li(self, rd, imm: int):
        """Load a (<= 29-bit signed) immediate."""
        return self._emit(Op.LI, _reg(rd), imm=imm)

    def li64(self, rd, value: int):
        """Materialise an arbitrary 64-bit constant (li/slli/ori sequence)."""
        rd = _reg(rd)
        if _IMM_MIN <= value <= _IMM_MAX:
            return self.li(rd, value)
        if not (-(1 << 63) <= value < (1 << 64)):
            raise AssemblyError(
                f"{self._where()}: li64: constant {value} does not fit in "
                f"64 bits"
            )
        bits = value & ((1 << 64) - 1)
        # Build 16 bits at a time, top chunk sign-extended by the shifts.
        top = bits >> 48
        if top >= 1 << 15:
            top -= 1 << 16
        instr = self.li(rd, top)
        for shift in (32, 16, 0):
            self._emit(Op.SLLI, rd, rd, imm=16)
            chunk = (bits >> shift) & 0xFFFF
            if chunk:
                instr = self._emit(Op.ORI, rd, rd, imm=chunk)
        return instr

    def mov(self, rd, rs1):
        return self._emit(Op.MOV, _reg(rd), _reg(rs1))

    def la(self, rd, label: str):
        """Load the address of a data (or text) label — resolved at build."""
        instr = self._emit(Op.LI, _reg(rd))
        self._fixups.append((len(self._text) - 1, label))
        return instr

    # ------------------------------------------------------------------
    # Floating point
    # ------------------------------------------------------------------
    def fadd(self, rd, rs1, rs2):
        return self._emit(Op.FADD, _reg(rd), _reg(rs1), _reg(rs2))

    def fsub(self, rd, rs1, rs2):
        return self._emit(Op.FSUB, _reg(rd), _reg(rs1), _reg(rs2))

    def fmul(self, rd, rs1, rs2):
        return self._emit(Op.FMUL, _reg(rd), _reg(rs1), _reg(rs2))

    def fdiv(self, rd, rs1, rs2):
        return self._emit(Op.FDIV, _reg(rd), _reg(rs1), _reg(rs2))

    def fneg(self, rd, rs1):
        return self._emit(Op.FNEG, _reg(rd), _reg(rs1))

    def fabs_(self, rd, rs1):
        return self._emit(Op.FABS, _reg(rd), _reg(rs1))

    def fsqrt(self, rd, rs1):
        return self._emit(Op.FSQRT, _reg(rd), _reg(rs1))

    def fmov(self, rd, rs1):
        return self._emit(Op.FMOV, _reg(rd), _reg(rs1))

    def fmin(self, rd, rs1, rs2):
        return self._emit(Op.FMIN, _reg(rd), _reg(rs1), _reg(rs2))

    def fmax(self, rd, rs1, rs2):
        return self._emit(Op.FMAX, _reg(rd), _reg(rs1), _reg(rs2))

    def feq(self, rd, rs1, rs2):
        return self._emit(Op.FEQ, _reg(rd), _reg(rs1), _reg(rs2))

    def flt(self, rd, rs1, rs2):
        return self._emit(Op.FLT, _reg(rd), _reg(rs1), _reg(rs2))

    def fle(self, rd, rs1, rs2):
        return self._emit(Op.FLE, _reg(rd), _reg(rs1), _reg(rs2))

    def itof(self, rd, rs1):
        return self._emit(Op.ITOF, _reg(rd), _reg(rs1))

    def ftoi(self, rd, rs1):
        return self._emit(Op.FTOI, _reg(rd), _reg(rs1))

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def ld(self, rd, offset: int, base):
        return self._emit(Op.LD, _reg(rd), _reg(base), imm=offset)

    def lw(self, rd, offset: int, base):
        return self._emit(Op.LW, _reg(rd), _reg(base), imm=offset)

    def lbu(self, rd, offset: int, base):
        return self._emit(Op.LBU, _reg(rd), _reg(base), imm=offset)

    def sd(self, data, offset: int, base):
        return self._emit(Op.SD, rs1=_reg(base), rs2=_reg(data), imm=offset)

    def sw(self, data, offset: int, base):
        return self._emit(Op.SW, rs1=_reg(base), rs2=_reg(data), imm=offset)

    def sb(self, data, offset: int, base):
        return self._emit(Op.SB, rs1=_reg(base), rs2=_reg(data), imm=offset)

    def fld(self, rd, offset: int, base):
        return self._emit(Op.FLD, _reg(rd), _reg(base), imm=offset)

    def fsd(self, data, offset: int, base):
        return self._emit(Op.FSD, rs1=_reg(base), rs2=_reg(data), imm=offset)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def beq(self, rs1, rs2, label: str):
        return self._emit(Op.BEQ, rs1=_reg(rs1), rs2=_reg(rs2), label=label)

    def bne(self, rs1, rs2, label: str):
        return self._emit(Op.BNE, rs1=_reg(rs1), rs2=_reg(rs2), label=label)

    def blt(self, rs1, rs2, label: str):
        return self._emit(Op.BLT, rs1=_reg(rs1), rs2=_reg(rs2), label=label)

    def bge(self, rs1, rs2, label: str):
        return self._emit(Op.BGE, rs1=_reg(rs1), rs2=_reg(rs2), label=label)

    def beqz(self, rs1, label: str):
        return self._emit(Op.BEQZ, rs1=_reg(rs1), label=label)

    def bnez(self, rs1, label: str):
        return self._emit(Op.BNEZ, rs1=_reg(rs1), label=label)

    def j(self, label: str):
        return self._emit(Op.J, label=label)

    def jal(self, label: str):
        return self._emit(Op.JAL, label=label)

    def jr(self, rs1):
        return self._emit(Op.JR, rs1=_reg(rs1))

    def nop(self):
        return self._emit(Op.NOP)

    def halt(self):
        return self._emit(Op.HALT)

    # ------------------------------------------------------------------
    def build(self, entry_label: str | None = None) -> Program:
        """Resolve labels and return the finished, validated program."""
        program = Program(
            text=self._text,
            data=self._data,
            text_symbols=dict(self._text_symbols),
            data_symbols=dict(self._data_symbols),
            name=self.name,
        )
        for index, label in self._fixups:
            instr = self._text[index]
            if label in self._text_symbols:
                value = self._text_symbols[label]
            elif label in self._data_symbols:
                value = self._data_symbols[label]
            else:
                raise AssemblyError(
                    f"{self._where(index)}: {instr.op.mnemonic}: undefined "
                    f"label {label!r}"
                )
            if not (_IMM_MIN <= value <= _IMM_MAX):
                raise AssemblyError(
                    f"{self._where(index)}: {instr.op.mnemonic}: label "
                    f"{label!r} resolves to {value}, which does not fit in "
                    f"29 bits"
                )
            if instr.op.info.fmt in (Format.BRANCH, Format.BRANCH1, Format.JUMP):
                instr.target = value
            else:
                instr.imm = value
        if entry_label is not None:
            program.entry = program.text_symbols[entry_label]
        program.validate()
        return program
