"""The :class:`Program` container: text segment, data image, symbols.

Memory layout (byte addresses)::

    0x0010_0000   DATA_BASE   — static data segment grows upward
    0x0100_0000   HEAP_BASE   — workload generators place bulk arrays here
    0x0800_0000   STACK_TOP   — ``sp`` is initialised here, grows downward

The text segment is *not* mapped into data memory; the PC is an index into
``program.text`` (see :mod:`repro.isa.instruction`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AssemblyError
from ..isa.instruction import Instruction

DATA_BASE = 0x0010_0000
HEAP_BASE = 0x0100_0000
STACK_TOP = 0x0800_0000
#: Default size of simulated memory in bytes (sparse — only touched pages
#: are materialised, see :mod:`repro.sim.memory`).
MEMORY_BYTES = 0x0800_0000


@dataclass
class Program:
    """An assembled program ready for simulation."""

    text: list[Instruction] = field(default_factory=list)
    #: Initial contents of the data segment, loaded at :data:`DATA_BASE`.
    data: bytearray = field(default_factory=bytearray)
    #: Symbol table: label -> instruction index (text) or byte address (data).
    text_symbols: dict[str, int] = field(default_factory=dict)
    data_symbols: dict[str, int] = field(default_factory=dict)
    #: Entry point (instruction index).
    entry: int = 0
    name: str = "program"

    def __len__(self) -> int:
        return len(self.text)

    def symbol(self, name: str) -> int:
        """Look up *name* in the data then text symbol tables."""
        if name in self.data_symbols:
            return self.data_symbols[name]
        if name in self.text_symbols:
            return self.text_symbols[name]
        raise AssemblyError(f"undefined symbol {name!r}")

    def validate(self) -> None:
        """Structural checks: targets in range, operand register spaces."""
        n = len(self.text)
        for i, instr in enumerate(self.text):
            try:
                instr.validate()
            except ValueError as exc:
                raise AssemblyError(f"instruction {i}: {exc}") from exc
            if instr.is_control and instr.op.info.fmt.value in ("branch", "br1", "jump"):
                if not (0 <= instr.target < n):
                    raise AssemblyError(
                        f"instruction {i}: target {instr.target} outside text "
                        f"segment of {n} instructions"
                    )
        if not (0 <= self.entry <= n):
            raise AssemblyError(f"entry point {self.entry} outside program")

    def copy(self) -> "Program":
        """Deep copy — the slicer annotates a copy, never the original."""
        return Program(
            text=[instr.copy() for instr in self.text],
            data=bytearray(self.data),
            text_symbols=dict(self.text_symbols),
            data_symbols=dict(self.data_symbols),
            entry=self.entry,
            name=self.name,
        )

    def listing(self, with_annotations: bool = False) -> str:
        """Disassembled listing of the text segment."""
        from ..isa.disasm import disassemble

        return disassemble(self.text, with_annotations=with_annotations)
