"""Parser: text assembly -> :class:`~repro.asm.program.Program`.

Parsing is a thin layer over :class:`~repro.asm.builder.ProgramBuilder`,
which already handles label resolution and validation.  The parser only has
to map mnemonic + operand list to the right builder call.
"""

from __future__ import annotations

from ..errors import AssemblyError
from ..isa.opcodes import MNEMONIC_TO_OP, Format, Op
from ..isa.registers import NAME_TO_REG
from .builder import ProgramBuilder
from .lexer import Line, tokenize
from .program import Program


def _is_number(token: str) -> bool:
    try:
        _parse_int(token)
        return True
    except ValueError:
        return False


def _parse_int(token: str) -> int:
    return int(token, 0)


def _parse_float(token: str) -> float:
    return float(token)


class _LineParser:
    """Operand cursor over one lexed line."""

    def __init__(self, line: Line):
        self.line = line
        self.tokens = line.tokens
        self.pos = 1  # token 0 is the mnemonic/directive

    def error(self, message: str) -> AssemblyError:
        return AssemblyError(message, line=self.line.number)

    def done(self) -> bool:
        return self.pos >= len(self.tokens)

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        if self.done():
            raise self.error("unexpected end of operands")
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.take()
        if got != token:
            raise self.error(f"expected {token!r}, got {got!r}")

    def comma(self) -> None:
        self.expect(",")

    def reg(self) -> int:
        token = self.take().lstrip("$").lower()
        if token not in NAME_TO_REG:
            raise self.error(f"unknown register {token!r}")
        return NAME_TO_REG[token]

    def imm(self) -> int:
        token = self.take()
        try:
            return _parse_int(token)
        except ValueError:
            raise self.error(f"expected integer, got {token!r}") from None

    def label_or_imm(self) -> str | int:
        token = self.take()
        if _is_number(token):
            return _parse_int(token)
        return token

    def mem_operand(self) -> tuple[int, str | int]:
        """Parse ``offset(base)`` or ``label`` -> (offset, base-or-label)."""
        token = self.take()
        if _is_number(token):
            offset = _parse_int(token)
        else:
            raise self.error(f"expected offset, got {token!r}")
        self.expect("(")
        base = self.reg()
        self.expect(")")
        return offset, base

    def rest_numbers(self) -> list[str]:
        """Remaining comma-separated numeric tokens (for data directives)."""
        values = []
        while not self.done():
            values.append(self.take())
            if not self.done():
                self.comma()
        return values


class Assembler:
    """Two-section (``.data``/``.text``) assembler."""

    def __init__(self, name: str = "program"):
        self.builder = ProgramBuilder(name)
        self.section = ".text"
        self._pending_data_label: str | None = None

    def assemble(self, source: str) -> Program:
        """Assemble *source* text and return the validated program."""
        for line in tokenize(source):
            self._line(line)
        return self.builder.build()

    # ------------------------------------------------------------------
    def _line(self, line: Line) -> None:
        if line.label is not None:
            if self.section == ".text":
                self.builder.label(line.label)
            elif not line.tokens:
                # Bare label in .data: attach to the next directive via
                # a pending label.
                self._pending_data_label = line.label
                return
        if not line.tokens:
            return
        head = line.tokens[0]
        p = _LineParser(line)
        if head.startswith("."):
            self._directive(head, p, line)
        else:
            self._instruction(head.lower(), p, line)

    # ------------------------------------------------------------------
    def _directive(self, head: str, p: _LineParser, line: Line) -> None:
        label = line.label if self.section == ".data" else None
        label = label or getattr(self, "_pending_data_label", None)
        self._pending_data_label = None
        if head in (".data", ".text"):
            self.section = head
            return
        if self.section != ".data":
            raise p.error(f"directive {head} only allowed in .data")
        if head == ".space":
            self.builder.data_space(label, p.imm())
        elif head in (".word64", ".dword", ".quad"):
            self.builder.data_i64(label, [_parse_int(t) for t in p.rest_numbers()])
        elif head in (".word", ".int"):
            self.builder.data_i32(label, [_parse_int(t) for t in p.rest_numbers()])
        elif head in (".double", ".float64"):
            self.builder.data_f64(label, [_parse_float(t) for t in p.rest_numbers()])
        elif head == ".byte":
            payload = bytes(_parse_int(t) & 0xFF for t in p.rest_numbers())
            self.builder.data_bytes(label, payload)
        elif head == ".align":
            self.builder.align(p.imm())
        else:
            raise p.error(f"unknown directive {head}")

    # ------------------------------------------------------------------
    def _instruction(self, mnemonic: str, p: _LineParser, line: Line) -> None:
        b = self.builder
        # Pseudo-instructions first.
        if mnemonic == "la":
            rd = p.reg()
            p.comma()
            b.la(rd, p.take())
            return
        if mnemonic == "li":
            rd = p.reg()
            p.comma()
            b.li(rd, p.imm())
            return
        op = MNEMONIC_TO_OP.get(mnemonic)
        if op is None:
            raise p.error(f"unknown mnemonic {mnemonic!r}")
        fmt = op.info.fmt
        if fmt == Format.R3:
            rd = p.reg(); p.comma(); rs1 = p.reg(); p.comma(); rs2 = p.reg()
            b._emit(op, rd, rs1, rs2)
        elif fmt == Format.R2:
            rd = p.reg(); p.comma(); rs1 = p.reg()
            b._emit(op, rd, rs1)
        elif fmt == Format.RI:
            rd = p.reg(); p.comma(); rs1 = p.reg(); p.comma(); imm = p.imm()
            b._emit(op, rd, rs1, imm=imm)
        elif fmt == Format.LI:
            rd = p.reg(); p.comma(); imm = p.imm()
            b._emit(op, rd, imm=imm)
        elif fmt == Format.LOAD:
            rd = p.reg(); p.comma(); offset, base = p.mem_operand()
            b._emit(op, rd, base, imm=offset)
        elif fmt == Format.STORE:
            data = p.reg(); p.comma(); offset, base = p.mem_operand()
            b._emit(op, rs1=base, rs2=data, imm=offset)
        elif fmt == Format.BRANCH:
            rs1 = p.reg(); p.comma(); rs2 = p.reg(); p.comma()
            target = p.label_or_imm()
            if isinstance(target, int):
                b._emit(op, rs1=rs1, rs2=rs2).target = target
            else:
                b._emit(op, rs1=rs1, rs2=rs2, label=target)
        elif fmt == Format.BRANCH1:
            rs1 = p.reg(); p.comma()
            target = p.label_or_imm()
            if isinstance(target, int):
                b._emit(op, rs1=rs1).target = target
            else:
                b._emit(op, rs1=rs1, label=target)
        elif fmt == Format.JUMP:
            target = p.label_or_imm()
            if isinstance(target, int):
                b._emit(op).target = target
            else:
                b._emit(op, label=target)
        elif fmt == Format.JREG:
            b._emit(op, rs1=p.reg())
        elif fmt == Format.PUSH:
            b._emit(op, rs1=p.reg())
        elif fmt == Format.POP:
            b._emit(op, rd=p.reg())
        elif fmt == Format.NONE:
            b._emit(op)
        else:  # pragma: no cover - exhaustive over Format
            raise p.error(f"unhandled format {fmt}")
        if not p.done():
            raise p.error(f"trailing tokens: {p.tokens[p.pos:]}")


def assemble(source: str, name: str = "program") -> Program:
    """Assemble *source* text into a program."""
    return Assembler(name).assemble(source)
