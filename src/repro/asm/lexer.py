"""Line-oriented lexer for the text assembler.

The surface syntax is deliberately close to the MIPS listings in the paper's
Figures 5-7::

        .data
    arr:    .space 64
    coef:   .double 1.0, 0.5
        .text
    main:   la   t0, arr
    loop:   ld   t1, 0(t0)
            beq  t1, zero, done
            addi t0, t0, 8
            j    loop
    done:   halt

Comments start with ``#`` or ``;`` and run to end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import AssemblyError

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_TOKEN_RE = re.compile(
    r"""
    \s*(
        -?0[xX][0-9a-fA-F]+          # hex number
      | -?\d+\.\d+(?:[eE][-+]?\d+)?  # float
      | -?\.\d+(?:[eE][-+]?\d+)?     # float starting with a dot
      | -?\d+(?:[eE][-+]?\d+)?       # int (or int with exponent -> float)
      | \.[A-Za-z_][\w]*             # directive
      | [A-Za-z_$][\w.$]*            # identifier / register / mnemonic
      | [(),]                        # punctuation
    )
    """,
    re.VERBOSE,
)


@dataclass
class Line:
    """One significant source line after lexing."""

    number: int
    label: str | None
    tokens: list[str] = field(default_factory=list)


def tokenize_line(text: str, number: int) -> Line | None:
    """Lex one source line; returns ``None`` for blank/comment-only lines."""
    # Strip comments.
    for marker in ("#", ";"):
        pos = text.find(marker)
        if pos >= 0:
            text = text[:pos]
    text = text.strip()
    if not text:
        return None

    label = None
    m = _LABEL_RE.match(text)
    if m:
        label = m.group(1)
        text = text[m.end():].strip()

    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise AssemblyError(f"cannot tokenize {text[pos:]!r}", line=number)
        tokens.append(m.group(1))
        pos = m.end()

    if label is None and not tokens:
        return None
    return Line(number=number, label=label, tokens=tokens)


def tokenize(source: str) -> list[Line]:
    """Lex a whole source file into significant lines."""
    lines: list[Line] = []
    for i, raw in enumerate(source.splitlines(), start=1):
        line = tokenize_line(raw, i)
        if line is not None:
            lines.append(line)
    return lines
