"""Tests for the sampled-interval simulation driver (repro.sim.sampling).

Covers the SamplingPlan contract, schedule construction, end-to-end
determinism (same seed + plan => byte-identical extrapolated RunResult),
the accuracy budget against full-detail runs, cache/checkpoint key
separation, and the large-workload family's >= 50x scale guarantee.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.config import MachineConfig, SamplingPlan
from repro.errors import ConfigError, SamplingError
from repro.experiments import (
    MODEL_ORDER,
    RunCache,
    prepare,
    run_model,
    run_suite,
    suite_key,
)
from repro.sim import generate_trace
from repro.sim.sampling import build_schedule
from repro.workloads import all_workloads, get_workload, quick_workloads
from repro.workloads.large import LARGE_SPECS, large_workload

#: Grid-validated plan: every paper-scale (benchmark, model) cell lands
#: inside the default 3% error budget at this density.
GRID_PLAN = SamplingPlan(interval_length=4000, detail_length=1000,
                         warmup_length=1000)


# ----------------------------------------------------------------------
# SamplingPlan validation
# ----------------------------------------------------------------------
class TestPlan:
    def test_defaults_are_valid(self):
        plan = SamplingPlan()
        assert plan.detail_length <= plan.interval_length
        assert 0.0 < plan.error_budget < 1.0

    @pytest.mark.parametrize("kwargs", [
        dict(interval_length=0),
        dict(interval_length=100, detail_length=2000),
        dict(detail_length=0),
        dict(warmup_length=-1),
        dict(error_budget=0.0),
        dict(error_budget=1.5),
    ])
    def test_invalid_plans_raise_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            SamplingPlan(**kwargs)


# ----------------------------------------------------------------------
# Schedule construction
# ----------------------------------------------------------------------
class TestSchedule:
    def test_deterministic(self):
        a = build_schedule(500_000, 1000, GRID_PLAN)
        b = build_schedule(500_000, 1000, GRID_PLAN)
        assert a == b and a

    def test_seed_changes_offsets(self):
        a = build_schedule(500_000, 1000, GRID_PLAN)
        b = build_schedule(500_000, 1000,
                           dataclasses.replace(GRID_PLAN, seed=GRID_PLAN.seed + 1))
        assert a != b
        # ... but never the coverage guarantee: one window per period.
        assert len(a) == len(b)

    def test_windows_well_formed(self):
        trace_length, warmup_pos = 500_000, 1357
        schedule = build_schedule(trace_length, warmup_pos, GRID_PLAN)
        prev_end = 0
        for fetch_start, measure_start, end in schedule:
            assert warmup_pos <= measure_start < end <= trace_length
            assert fetch_start <= measure_start
            # Warmup prefix is bounded and windows never overlap.
            assert measure_start - fetch_start <= GRID_PLAN.warmup_length
            assert end - measure_start <= GRID_PLAN.detail_length
            assert fetch_start >= prev_end
            prev_end = end

    def test_small_region_is_exact(self):
        assert build_schedule(GRID_PLAN.interval_length, 0, GRID_PLAN) == []
        assert build_schedule(3000, 2500, GRID_PLAN) == []

    def test_stratified_not_systematic(self):
        """Per-period offsets must actually vary (a single shared offset
        aliases with loop-periodic program structure)."""
        schedule = build_schedule(500_000, 0, GRID_PLAN)
        offsets = {measure_start % GRID_PLAN.interval_length
                   for _, measure_start, _ in schedule}
        assert len(offsets) > 1


# ----------------------------------------------------------------------
# End-to-end: determinism, metadata, accuracy
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def paper_raytrace():
    # raytrace is the regular-behaviour cell: every model meets the
    # budget at GRID_PLAN density without densifying or degrading.
    return prepare(get_workload("raytrace"), MachineConfig())


class TestSampledRun:
    def test_same_seed_and_plan_byte_identical(self, paper_raytrace):
        config = MachineConfig()
        a = run_model(paper_raytrace, config, "hidisc", sampling=GRID_PLAN)
        b = run_model(paper_raytrace, config, "hidisc", sampling=GRID_PLAN)
        assert pickle.dumps(a) == pickle.dumps(b)

    def test_metadata_carries_plan_and_schedule(self, paper_raytrace):
        result = run_model(paper_raytrace, MachineConfig(), "hidisc",
                           sampling=GRID_PLAN)
        assert result.sampled
        meta = result.sampling
        assert meta["plan"]["interval_length"] == GRID_PLAN.interval_length
        assert meta["plan"]["seed"] == GRID_PLAN.seed
        assert not meta["exact"]
        # The published schedule is the real one: re-derivable from the
        # effective interval (after any adaptive densification).
        effective = dataclasses.replace(
            GRID_PLAN, interval_length=meta["interval_length_effective"])
        expected = build_schedule(meta["trace_length"],
                                  paper_raytrace.warmup_pos_decoupled,
                                  effective)
        assert meta["schedule"] == [list(w) for w in expected]
        assert meta["intervals"] == len(expected)
        assert meta["sampled_positions"] < meta["total_positions"]
        assert 0.0 <= meta["cycles_rel_ci95"] <= GRID_PLAN.error_budget

    def test_single_cell_within_budget(self, paper_raytrace):
        config = MachineConfig()
        full = run_model(paper_raytrace, config, "hidisc")
        samp = run_model(paper_raytrace, config, "hidisc",
                         sampling=GRID_PLAN)
        err = abs(samp.cycles - full.cycles) / full.cycles
        assert err <= GRID_PLAN.error_budget, f"CPI error {err:.2%}"
        # Extrapolated CPI stacks stay exactly consistent with cycles.
        for core, stack in samp.cpi_stacks.items():
            assert sum(stack.values()) == samp.cycles, core

    def test_quick_workload_degrades_to_exact(self):
        """Quick traces fit inside one default sampling period; the result
        must be the honest full-detail number, tagged exact."""
        cw = prepare(get_workload("field", quick=True), MachineConfig())
        config = MachineConfig()
        samp = run_model(cw, config, "hidisc", sampling=SamplingPlan())
        full = run_model(cw, config, "hidisc")
        assert samp.sampled and samp.sampling["exact"]
        assert samp.cycles == full.cycles
        assert samp.sampling["cycles_rel_ci95"] == 0.0

    def test_sampling_conflicts_raise(self, paper_raytrace):
        config = MachineConfig()
        with pytest.raises(SamplingError):
            run_model(paper_raytrace, config, "hidisc", verify=True,
                      sampling=GRID_PLAN)
        with pytest.raises(SamplingError):
            run_model(paper_raytrace, config, "hidisc", faults=object(),
                      sampling=GRID_PLAN)


@pytest.mark.slow
class TestGridAccuracy:
    def test_sampled_cpi_within_budget_all_cells(self):
        """The tentpole accuracy claim: every paper-scale benchmark on
        every machine model extrapolates within the error budget."""
        config = MachineConfig()
        failures = []
        for workload in all_workloads():
            cw = prepare(workload, config)
            for mode in MODEL_ORDER:
                full = run_model(cw, config, mode)
                samp = run_model(cw, config, mode, sampling=GRID_PLAN)
                err = abs(samp.cycles - full.cycles) / full.cycles
                if err > GRID_PLAN.error_budget:
                    failures.append(f"{workload.name}/{mode}: {err:.2%}")
        assert not failures, failures


# ----------------------------------------------------------------------
# Cache / checkpoint key separation
# ----------------------------------------------------------------------
class TestCacheKeys:
    def test_suite_key_separates_sampled_from_full(self):
        config = MachineConfig()
        workloads = quick_workloads()
        keys = {
            suite_key(config, workloads, MODEL_ORDER, sampling=None),
            suite_key(config, workloads, MODEL_ORDER, sampling=SamplingPlan()),
            suite_key(config, workloads, MODEL_ORDER, sampling=GRID_PLAN),
            suite_key(config, workloads, MODEL_ORDER,
                      sampling=dataclasses.replace(GRID_PLAN, seed=7)),
        }
        assert len(keys) == 4, "sampled/full or distinct plans alias"

    def test_sampled_suite_round_trips_without_aliasing(self, tmp_path):
        config = MachineConfig()
        workloads = [get_workload("field", quick=True),
                     get_workload("spmv", quick=True)]
        modes = ("superscalar", "hidisc")
        cache = RunCache(tmp_path / "cache")
        plan = SamplingPlan()

        sampled_1 = run_suite(config, quick=True, workloads=workloads,
                              modes=modes, cache=cache, sampling=plan)
        # Resume from the checkpoints the first run wrote: identical
        # payload, every cell still tagged sampled.
        sampled_2 = run_suite(config, quick=True, workloads=workloads,
                              modes=modes, cache=cache, sampling=plan,
                              resume=True)
        for name in sampled_1.benchmarks:
            for mode in modes:
                r1 = sampled_1.benchmarks[name].results[mode]
                r2 = sampled_2.benchmarks[name].results[mode]
                assert r1 == r2, (name, mode)
                assert r1.sampled and r2.sampled, (name, mode)

        # A full-detail resume against the SAME cache must not pick up the
        # sampled checkpoints (the suite key includes the plan).
        full = run_suite(config, quick=True, workloads=workloads,
                         modes=modes, cache=cache, resume=True)
        for name in full.benchmarks:
            for mode in modes:
                assert not full.benchmarks[name].results[mode].sampled, \
                    (name, mode)


# ----------------------------------------------------------------------
# Large workload family
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestLargeFamily:
    def test_at_least_50x_quick_counts(self):
        quick_by_name = {w.name: w for w in quick_workloads()}
        for name in LARGE_SPECS:
            quick_trace, _ = generate_trace(quick_by_name[name].program)
            large_trace, _ = generate_trace(large_workload(name).program)
            ratio = len(large_trace) / len(quick_trace)
            assert ratio >= 50.0, f"{name}: only {ratio:.1f}x quick scale"

    def test_large_cell_samples_with_tight_ci(self):
        """The showcase bench cell really samples (no degrade-to-exact)
        and meets the default budget without densification."""
        cw = prepare(large_workload("raytrace"), MachineConfig())
        plan = SamplingPlan(interval_length=80_000, detail_length=2_000,
                            warmup_length=1_000)
        result = run_model(cw, MachineConfig(), "hidisc", sampling=plan)
        meta = result.sampling
        assert not meta["exact"]
        assert meta["refinements"] == 0
        assert meta["cycles_rel_ci95"] <= plan.error_budget
        # The whole point: detail covers a small fraction of the region.
        assert meta["sampled_positions"] / meta["total_positions"] < 0.2
