"""Observability of the process-pool grid (repro.experiments.parallel):
retry/backoff/fallback counters and span records, worker observations
travelling back inside task results, and the suite-level counters the
run ledger reports."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.experiments import RunCache, Task, run_suite, run_tasks
from repro.experiments.parallel import prepare_task
from repro.telemetry import metrics, spans
from repro.workloads import FieldWorkload


@pytest.fixture(autouse=True)
def _clean_observability():
    spans.disable()
    metrics.reset()
    yield
    spans.disable()
    metrics.reset()


def _identity_task(value):
    return value


def _crash_in_worker(parent_pid):
    """Dies hard in a pool worker; succeeds when run in the parent."""
    if os.getpid() != parent_pid:
        os._exit(3)
    return "ok"


def _sleep_in_worker(parent_pid, seconds):
    """Hangs in a pool worker; returns immediately in the parent."""
    if os.getpid() != parent_pid:
        time.sleep(seconds)
    return "ok"


def _crash_until_marker(parent_pid, marker):
    """Dies in a pool worker until *marker* exists (created just before
    the crash) — so the first pool round breaks and the retried round
    succeeds."""
    if os.getpid() != parent_pid and not os.path.exists(marker):
        try:
            with open(marker, "x"):
                pass
        except FileExistsError:
            pass
        os._exit(3)
    return "ok"


class TestRetryAndFallbackCounters:
    def test_retry_recovers_and_counts(self, tmp_path):
        tracer = spans.enable()
        parent = os.getpid()
        marker = str(tmp_path / "crashed")
        tasks = [Task(label=f"t{i}", fn=_crash_until_marker,
                      args=(parent, marker)) for i in range(4)]
        assert run_tasks(tasks, jobs=2, backoff=0.01) == ["ok"] * 4
        spans.disable()
        counters = metrics.snapshot()["counters"]
        assert counters["pool_retries"] == 1
        assert counters["pool_worker_failures"] >= 1
        assert "pool_fallback_tasks" not in counters, \
            "the retried round succeeded — no serial fallback"
        names = [r.name for r in tracer.records]
        assert names.count("pool_round") >= 2
        assert "backoff" in names and "run_tasks" in names
        assert "worker_failure" in [r.name for r in tracer.records
                                    if r.dur_ns is None]

    def test_exhausted_retries_fall_back_serially(self):
        tracer = spans.enable()
        parent = os.getpid()
        tasks = [Task(label=f"t{i}", fn=_crash_in_worker, args=(parent,))
                 for i in range(3)]
        assert run_tasks(tasks, jobs=2, retries=1, backoff=0.01) == \
            ["ok"] * 3
        spans.disable()
        counters = metrics.snapshot()["counters"]
        assert counters["pool_retries"] == 1
        assert counters["pool_fallback_tasks"] == 3
        fallback = [r for r in tracer.records
                    if r.name == "serial_fallback"]
        assert len(fallback) == 1 and fallback[0].args["tasks"] == 3

    def test_timeout_counts_as_worker_failure(self):
        parent = os.getpid()
        tasks = [Task(label=f"t{i}", fn=_sleep_in_worker, args=(parent, 3))
                 for i in range(2)]
        assert run_tasks(tasks, jobs=2, timeout=0.2, retries=0) == \
            ["ok"] * 2
        counters = metrics.snapshot()["counters"]
        assert counters["pool_worker_failures"] >= 1
        assert counters["pool_fallback_tasks"] == 2

    def test_counters_track_without_tracing(self):
        """The metrics registry works with spans off (the ledger records
        counters even for untraced runs)."""
        parent = os.getpid()
        tasks = [Task(label=f"t{i}", fn=_crash_in_worker, args=(parent,))
                 for i in range(2)]
        assert run_tasks(tasks, jobs=2, retries=0) == ["ok"] * 2
        assert not spans.active()
        counters = metrics.snapshot()["counters"]
        assert counters["pool_fallback_tasks"] == 2

    def test_clean_run_leaves_failure_counters_untouched(self):
        tasks = [Task(label=str(i), fn=_identity_task, args=(i,))
                 for i in range(6)]
        assert run_tasks(tasks, jobs=2) == list(range(6))
        counters = metrics.snapshot()["counters"]
        for key in ("pool_retries", "pool_worker_failures",
                    "pool_fallback_tasks"):
            assert key not in counters


class TestWorkerObservations:
    def test_worker_spans_and_metrics_travel_back(self, config, tmp_path):
        tracer = spans.enable()
        workloads = [FieldWorkload(n=500, seed=1),
                     FieldWorkload(n=500, seed=2)]
        tasks = [Task(label=w.name, fn=prepare_task,
                      args=(w, config, str(tmp_path))) for w in workloads]
        results = run_tasks(tasks, jobs=2)
        spans.disable()

        assert all(cw.work > 0 for cw in results)
        # transport attributes are stripped after absorption, so the
        # results (and any checkpoint pickle of them) stay clean
        assert all(not hasattr(cw, "host_spans")
                   and not hasattr(cw, "host_metrics") for cw in results)
        worker_pids = {r.pid for r in tracer.records} - {os.getpid()}
        assert worker_pids, "no worker-lane spans were adopted"
        names = {r.name for r in tracer.records}
        assert {"prepare_task", "prepare", "cache_store"} <= names

        snap = metrics.snapshot()
        assert snap["counters"]["cache_misses"] == 2
        assert snap["counters"]["cache_stores"] == 2
        assert snap["gauges"]["peak_rss_bytes"] > 0
        queue_wait = snap["histograms"]["queue_to_pool_seconds"]
        assert queue_wait["count"] == 2 and queue_wait["min"] >= 0

    def test_untraced_workers_ship_nothing(self, config, tmp_path):
        workload = FieldWorkload(n=500)
        tasks = [Task(label="a", fn=prepare_task,
                      args=(workload, config, str(tmp_path))),
                 Task(label="b", fn=prepare_task,
                      args=(workload, config, str(tmp_path)))]
        results = run_tasks(tasks, jobs=2)
        assert all(not hasattr(cw, "host_spans") for cw in results)
        counters = metrics.snapshot()["counters"]
        assert "cache_misses" not in counters, \
            "worker-side metrics only travel when tracing is on"


class TestSuiteCounters:
    def test_parallel_suite_counters_and_trace(self, config, tmp_path):
        tracer = spans.enable()
        suite = run_suite(config, quick=True,
                          workloads=[FieldWorkload(n=500)], jobs=2,
                          cache=RunCache(tmp_path / "cache"))
        spans.disable()
        assert suite.benchmarks["field"].baseline.cycles > 0

        counters = metrics.snapshot()["counters"]
        assert counters["cells_completed"] == 4
        assert counters["checkpoint_stores"] == 4
        assert counters["cache_misses"] >= 1
        assert counters["cache_stores"] >= 1

        out = tmp_path / "orch.json"
        count = spans.write_orchestration_trace(tracer.records, out,
                                                main_pid=os.getpid())
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == count > 0
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"run_suite", "run_tasks", "run_model",
                "checkpoint_store"} <= names

    def test_resume_counts_replayed_cells(self, config, tmp_path):
        cache = RunCache(tmp_path)
        run_suite(config, quick=True, workloads=[FieldWorkload(n=500)],
                  cache=cache)
        metrics.reset()
        run_suite(config, quick=True, workloads=[FieldWorkload(n=500)],
                  cache=cache, resume=True)
        counters = metrics.snapshot()["counters"]
        assert counters["cells_resumed"] == 4
        assert counters["checkpoint_replayed"] == 4
        assert counters["cache_hits"] == 1
        assert "cells_completed" not in counters
