"""Tests for adaptive trigger-distance selection (paper §6 future work)."""

import pytest

from repro.config import MachineConfig
from repro.sim import Machine, build_cmas_plan, generate_trace, profile_cache
from repro.slicer import compile_hidisc
from repro.slicer.adaptive import (
    MAX_DISTANCE,
    MIN_DISTANCE,
    adaptive_trigger_distances,
)
from repro.workloads import PointerWorkload

from tests.test_cmas import build_chase


@pytest.fixture(scope="module")
def chase_env():
    config = MachineConfig()
    program = build_chase(n=4096, hops=400)
    trace, _ = generate_trace(program)
    comp = compile_hidisc(program, config, trace=trace)
    profile = profile_cache(program, trace, config)
    return config, program, trace, comp, profile


class TestDistances:
    def test_memory_missing_load_gets_long_lead(self, chase_env):
        config, program, trace, comp, profile = chase_env
        distances = adaptive_trigger_distances(
            profile, config, comp.selection.probable_miss_pcs
        )
        chase_pc = next(pc for pc in comp.selection.probable_miss_pcs
                        if profile.per_pc[pc].l2_miss_rate > 0.3)
        # ~133-cycle expected latency * ipc 2 * headroom 1.5 ~ 400.
        assert distances[chase_pc] > 200

    def test_l2_resident_load_gets_short_lead(self, chase_env):
        config, program, trace, comp, profile = chase_env
        # Synthesise an L2-resident profile entry.
        from repro.sim.profiler import PcProfile

        profile.per_pc[9999] = PcProfile(accesses=100, misses=50, l2_misses=0)
        distances = adaptive_trigger_distances(profile, config, {9999})
        assert distances[9999] < 64

    def test_clamping(self, chase_env):
        config, program, trace, comp, profile = chase_env
        from repro.sim.profiler import PcProfile

        profile.per_pc[9998] = PcProfile(accesses=4, misses=4, l2_misses=4)
        lo = adaptive_trigger_distances(profile, config, {9998},
                                        expected_ipc=0.01)
        hi = adaptive_trigger_distances(profile, config, {9998},
                                        expected_ipc=1000.0)
        assert lo[9998] == MIN_DISTANCE
        assert hi[9998] == MAX_DISTANCE

    def test_unprofiled_pc_falls_back_to_default(self, chase_env):
        config, program, trace, comp, profile = chase_env
        distances = adaptive_trigger_distances(profile, config, {123456})
        assert distances[123456] == config.cmas.trigger_distance

    def test_scales_with_latency_config(self, chase_env):
        config, program, trace, comp, profile = chase_env
        pcs = comp.selection.probable_miss_pcs
        short = adaptive_trigger_distances(profile, config.with_latency(4, 40), pcs)
        long = adaptive_trigger_distances(profile, config.with_latency(16, 160), pcs)
        assert all(long[pc] >= short[pc] for pc in pcs)


class TestPlanIntegration:
    def test_distance_for_overrides_plan(self, chase_env):
        config, program, trace, comp, profile = chase_env
        fixed = build_cmas_plan(comp.original, trace, 512)
        tiny = build_cmas_plan(
            comp.original, trace, 512,
            distance_for={pc: 8 for pc in comp.selection.probable_miss_pcs},
        )
        assert fixed.threads and tiny.threads
        fixed_lead = fixed.threads[5].miss_pos - fixed.threads[5].trigger_pos
        tiny_lead = tiny.threads[5].miss_pos - tiny.threads[5].trigger_pos
        assert tiny_lead <= 8 <= fixed_lead

    def test_adaptive_not_slower_than_too_short(self):
        """Adaptive distances must beat a uniformly starved 32-instruction
        lead on a memory-missing workload."""
        config = MachineConfig()
        w = PointerWorkload(n=8192, sequences=150, hops=2, hot=1024,
                            hot_fraction=0.2)
        trace, _ = generate_trace(w.program)
        comp = compile_hidisc(w.program, config, trace=trace)
        profile = profile_cache(w.program, trace, config)
        distances = adaptive_trigger_distances(
            profile, config, comp.selection.probable_miss_pcs
        )
        adaptive_plan = build_cmas_plan(comp.original, trace, 512,
                                        distance_for=distances)
        starved_plan = build_cmas_plan(comp.original, trace, 32)
        run = lambda plan: Machine(
            config, comp.original, trace, mode="cp_cmp", cmas_plan=plan,
            benchmark="pointer",
        ).run().cycles
        assert run(adaptive_plan) <= run(starved_plan) * 1.02
