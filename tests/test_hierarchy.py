"""Tests for the two-level hierarchy: latencies, MSHR merging, prefetch."""

import pytest

from repro.config import CacheConfig, MachineConfig
from repro.sim.hierarchy import MemoryHierarchy


def make_hierarchy(l1_latency=1, l2_latency=12, memory=120):
    return MemoryHierarchy(
        CacheConfig(sets=4, block_bytes=32, ways=2, latency=l1_latency, name="L1"),
        CacheConfig(sets=16, block_bytes=64, ways=2, latency=l2_latency, name="L2"),
        memory,
    )


class TestLatencies:
    def test_cold_miss_full_latency(self):
        h = make_hierarchy()
        assert h.access(0x1000, False, now=0) == 1 + 12 + 120

    def test_l1_hit(self):
        h = make_hierarchy()
        h.access(0x1000, False, now=0)
        assert h.access(0x1008, False, now=200) == 1

    def test_l2_hit_after_l1_eviction(self):
        h = make_hierarchy()
        h.access(0x0000, False, now=0)
        # Evict the L1 line (sets=4, ways=2: three conflicting blocks).
        h.access(0x0080, False, now=200)
        h.access(0x0100, False, now=400)
        latency = h.access(0x0000, False, now=600)
        assert latency == 1 + 12  # L2 still holds it

    def test_from_config(self):
        h = MemoryHierarchy.from_config(MachineConfig())
        assert h.memory_latency == 120
        assert h.l1.config.sets == 256


class TestMshrMerging:
    def test_second_access_merges(self):
        h = make_hierarchy()
        first = h.access(0x1000, False, now=0)
        assert first == 133
        second = h.access(0x1008, False, now=10)
        assert second == 133 - 10
        assert h.stats.merged_misses == 1

    def test_merge_after_fill_is_plain_hit(self):
        h = make_hierarchy()
        h.access(0x1000, False, now=0)
        assert h.access(0x1008, False, now=140) == 1
        assert h.stats.merged_misses == 0

    def test_prefetch_then_demand_overlap_counted(self):
        h = make_hierarchy()
        h.prefetch(0x1000, now=0)
        latency = h.access(0x1000, False, now=50)
        assert latency == 133 - 50
        assert h.stats.late_prefetch_overlaps == 1

    def test_timely_prefetch_gives_hit(self):
        h = make_hierarchy()
        h.prefetch(0x1000, now=0)
        assert h.access(0x1000, False, now=500) == 1
        assert h.l1.stats.useful_prefetch_hits == 1


class TestStats:
    def test_demand_classification(self):
        h = make_hierarchy()
        h.access(0x1000, False, now=0)
        h.access(0x2000, True, now=0)
        h.prefetch(0x3000, now=0)
        assert h.stats.demand_loads == 1
        assert h.stats.demand_stores == 1
        assert h.stats.prefetches == 1

    def test_prefetch_does_not_pollute_demand_stats(self):
        h = make_hierarchy()
        h.prefetch(0x1000, now=0)
        assert h.l1.stats.demand_accesses == 0
        assert h.demand_miss_rate() == 0.0

    def test_reset_stats_keeps_contents(self):
        h = make_hierarchy()
        h.access(0x1000, False, now=0)
        h.reset_stats()
        assert h.stats.demand_loads == 0
        assert h.l1.stats.demand_accesses == 0
        # The line is still cached (warmup semantics).
        assert h.access(0x1000, False, now=1000) == 1

    def test_miss_rate(self):
        h = make_hierarchy()
        h.access(0x1000, False, now=0)
        h.access(0x1000, False, now=200)
        assert h.demand_miss_rate() == pytest.approx(0.5)


class TestLatencySweep:
    def test_figure10_configs_scale(self):
        config = MachineConfig()
        for l2, mem in ((4, 40), (16, 160)):
            point = config.with_latency(l2, mem)
            h = MemoryHierarchy.from_config(point)
            assert h.access(0x1000, False, now=0) == 1 + l2 + mem
