"""Tests for the sparse main memory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryFault
from repro.sim.memory import PAGE_SIZE, MainMemory


@pytest.fixture
def mem():
    return MainMemory(1 << 24)


class TestScalars:
    def test_load_default_zero(self, mem):
        assert mem.load(0x1000, 8) == 0

    def test_store_load_64(self, mem):
        mem.store(0x1000, 0xDEADBEEF, 8)
        assert mem.load(0x1000, 8) == 0xDEADBEEF

    def test_negative_value_roundtrip(self, mem):
        mem.store(0x1000, (-5) & ((1 << 64) - 1), 8)
        assert mem.load(0x1000, 8) == -5

    def test_byte_and_word(self, mem):
        mem.store(0x2000, 0xAB, 1)
        assert mem.load(0x2000, 1) == 0xAB
        mem.store(0x2004, 0x1234_5678, 4)
        assert mem.load(0x2004, 4) == 0x1234_5678

    def test_float_roundtrip(self, mem):
        mem.store_f64(0x3000, -2.75)
        assert mem.load_f64(0x3000) == -2.75

    def test_float_and_int_share_bits(self, mem):
        mem.store_f64(0x3000, 1.0)
        assert mem.load(0x3000, 8) == 0x3FF0000000000000


class TestFaults:
    def test_misaligned(self, mem):
        with pytest.raises(MemoryFault):
            mem.load(0x1001, 8)
        with pytest.raises(MemoryFault):
            mem.store(0x1002, 0, 4)

    def test_out_of_range(self, mem):
        with pytest.raises(MemoryFault):
            mem.load(1 << 24, 8)
        with pytest.raises(MemoryFault):
            mem.load(-8, 8)

    def test_byte_never_misaligned(self, mem):
        mem.store(0x1003, 7, 1)
        assert mem.load(0x1003, 1) == 7


class TestBulk:
    def test_write_read_across_pages(self, mem):
        payload = bytes(range(256)) * 300  # spans > one 64 KiB page
        base = PAGE_SIZE - 128
        mem.write_bytes(base, payload)
        assert mem.read_bytes(base, len(payload)) == payload
        assert mem.touched_pages() >= 2

    def test_bulk_out_of_range(self, mem):
        with pytest.raises(MemoryFault):
            mem.write_bytes((1 << 24) - 4, b"12345678")

    def test_sparse_untouched(self, mem):
        assert mem.touched_pages() == 0
        mem.load(0x10_0000, 8)
        assert mem.touched_pages() == 1


class TestBlocks:
    def test_block_roundtrip_across_pages(self, mem):
        values = [(i * 0x9E3779B97F4A7C15) & ((1 << 64) - 1) - (1 << 63)
                  for i in range(20_000)]  # 160 KiB: spans three pages
        base = PAGE_SIZE - 4096
        mem.store_block(base, values, 8)
        assert mem.load_block(base, len(values), 8) == values
        assert mem.touched_pages() >= 3

    def test_block_matches_scalar_convention(self, mem):
        for width in (1, 4, 8):
            base = 0x4000
            raw = [0, 1, (1 << (width * 8)) - 1]
            mem.store_block(base, raw, width)
            expected = [mem.load(base + i * width, width)
                        for i in range(len(raw))]
            assert mem.load_block(base, len(raw), width) == expected

    def test_block_masks_like_store(self, mem):
        mem.store_block(0x5000, [-5], 8)
        assert mem.load(0x5000, 8) == -5
        mem.store_block(0x6000, [0x1FF], 1)
        assert mem.load(0x6000, 1) == 0xFF

    def test_block_interoperates_with_read_bytes(self, mem):
        mem.store_block(0x7000, [0x11223344], 4)
        assert mem.read_bytes(0x7000, 4) == bytes.fromhex("44332211")

    def test_block_faults(self, mem):
        with pytest.raises(MemoryFault):
            mem.load_block(0x1001, 4, 8)  # misaligned base
        with pytest.raises(MemoryFault):
            mem.load_block((1 << 24) - 8, 2, 8)  # runs off the end
        with pytest.raises(MemoryFault):
            mem.store_block((1 << 24) - 8, [1, 2], 8)
        with pytest.raises(MemoryFault):
            mem.load_block(0x1000, 4, 2)  # width the ISA doesn't have


class TestEquality:
    def test_equal_fresh(self):
        assert MainMemory(1 << 20).equal_contents(MainMemory(1 << 20))

    def test_zero_page_equals_untouched(self):
        a, b = MainMemory(1 << 20), MainMemory(1 << 20)
        a.store(0x100, 0, 8)  # touches a page but stays zero
        assert a.equal_contents(b) and b.equal_contents(a)

    def test_difference_detected(self):
        a, b = MainMemory(1 << 20), MainMemory(1 << 20)
        a.store(0x100, 1, 8)
        assert not a.equal_contents(b)

    def test_snapshot(self):
        a = MainMemory(1 << 20)
        a.store(0x100, 42, 8)
        snap = a.snapshot()
        assert len(snap) == 1
        a.store(0x100, 43, 8)
        (page,) = snap.values()
        assert page[0x100] == 42


@given(st.lists(
    st.tuples(st.integers(0, (1 << 16) - 8), st.integers(-(2**63), 2**63 - 1)),
    max_size=40,
))
def test_memory_behaves_like_dict(writes):
    """Property: memory == last-writer-wins dict at 8-byte granularity."""
    mem = MainMemory(1 << 20)
    model = {}
    for addr, value in writes:
        addr &= ~7
        mem.store(addr, value & ((1 << 64) - 1), 8)
        model[addr] = value
    for addr, value in model.items():
        assert mem.load(addr, 8) == value
