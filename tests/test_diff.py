"""Differential run analysis: ``repro.telemetry.diff`` and ``hidisc diff``.

Covers the structural walker (paths, ignored noise keys, length
mismatches), the commit-stream bisection helper (the acceptance
criterion: a perturbed run's **first divergent gid** is pinpointed), and
the CLI end-to-end contract — two identical-config lifecycle runs diff
clean (exit 0), a perturbed payload does not (exit 1).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main
from repro.telemetry import (
    diff_payloads,
    first_divergent_commit,
    load_payload,
    render_diff,
)
from repro.telemetry.diff import IGNORED_KEYS, walk_diff


def _rows(n, *, gid0=0):
    return [{"gid": gid0 + i, "commit": 10 + 3 * i, "pc": i % 4,
             "asm": f"op{i % 4}"} for i in range(n)]


class TestWalkDiff:
    def test_identical_nested_payloads(self):
        a = {"stats": {"cycles": 100, "stacks": {"CP": [1, 2]}}}
        divergences, leaves = walk_diff(a, json.loads(json.dumps(a)))
        assert divergences == []
        assert leaves == 3

    def test_scalar_divergence_reports_path(self):
        a = {"stats": {"cycles": 100}}
        b = {"stats": {"cycles": 105}}
        divergences, _ = walk_diff(a, b)
        assert divergences == [{"path": "stats/cycles", "a": 100, "b": 105}]

    def test_noise_keys_ignored(self):
        a = {"cycles": 7, "elapsed_seconds": 1.2, "date": "2026-08-01",
             "python": "3.11.1", "path": "/tmp/a", "out": "a.json",
             "prepare_seconds": 0.3}
        b = {"cycles": 7, "elapsed_seconds": 9.9, "date": "2026-08-06",
             "python": "3.12.0", "path": "/tmp/b", "out": "b.json",
             "prepare_seconds": 4.5}
        assert set(a) - {"cycles"} <= IGNORED_KEYS
        divergences, leaves = walk_diff(a, b)
        assert divergences == [] and leaves == 1

    def test_missing_key_is_divergence(self):
        divergences, _ = walk_diff({"x": 1, "y": 2}, {"x": 1})
        assert divergences == [{"path": "y", "a": 2, "b": None}]

    def test_list_length_mismatch(self):
        divergences, _ = walk_diff({"r": [1, 2, 3]}, {"r": [1, 2]})
        assert {"path": "r/length", "a": 3, "b": 2} in divergences

    def test_divergence_list_is_capped_but_counting_continues(self):
        a = {str(i): 0 for i in range(40)}
        b = {str(i): 1 for i in range(40)}
        divergences, leaves = walk_diff(a, b, limit=5)
        assert len(divergences) == 5 and leaves == 40

    def test_int_float_equality_not_reported(self):
        divergences, _ = walk_diff({"v": 2}, {"v": 2.0})
        assert divergences == []


class TestFirstDivergentCommit:
    def test_identical_streams(self):
        assert first_divergent_commit(_rows(8), _rows(8)) is None

    def test_perturbed_commit_cycle_pinpointed(self):
        a, b = _rows(8), _rows(8)
        b[5] = dict(b[5], commit=b[5]["commit"] + 3)
        first = first_divergent_commit(a, b)
        assert first["index"] == 5
        assert first["a"]["gid"] == first["b"]["gid"] == 5
        assert first["b"]["commit"] == first["a"]["commit"] + 3

    def test_perturbed_gid_pinpointed(self):
        a, b = _rows(8), _rows(8)
        b[3] = dict(b[3], gid=99)
        first = first_divergent_commit(a, b)
        assert first["index"] == 3
        assert first["a"]["gid"] == 3 and first["b"]["gid"] == 99

    def test_length_mismatch_names_first_extra_commit(self):
        a, b = _rows(8), _rows(6)
        first = first_divergent_commit(a, b)
        assert first["index"] == 6
        assert first["length_a"] == 8 and first["length_b"] == 6
        assert first["a"]["gid"] == 6 and "b" not in first


class TestDiffPayloads:
    def test_identical_report(self):
        payload = {"lifecycle": {"records": _rows(6)}, "stats": {"c": 1}}
        report = diff_payloads(payload, json.loads(json.dumps(payload)))
        assert report["identical"]
        assert report["divergences"] == []
        assert report["first_divergent_commit"] is None
        assert "payloads identical" in render_diff(report)

    def test_perturbed_lifecycle_payload(self):
        a = {"lifecycle": {"records": _rows(6)}}
        b = json.loads(json.dumps(a))
        b["lifecycle"]["records"][4]["commit"] += 2
        report = diff_payloads(a, b)
        assert not report["identical"]
        first = report["first_divergent_commit"]
        assert first["index"] == 4 and first["a"]["gid"] == 4
        text = render_diff(report, "good.json", "bad.json")
        assert "first divergent committed instruction" in text
        assert "gid=4" in text and "bad.json" in text

    def test_raw_jsonl_row_lists_are_bisected(self):
        a, b = _rows(5), _rows(5)
        b[2] = dict(b[2], commit=0)
        report = diff_payloads(a, b)
        assert report["first_divergent_commit"]["index"] == 2

    def test_payload_without_lifecycle_records(self):
        report = diff_payloads({"stats": {"cycles": 5}},
                               {"stats": {"cycles": 6}})
        assert report["first_divergent_commit"] is None
        assert not report["identical"]


class TestLoadPayload:
    def test_json_document(self, tmp_path):
        path = tmp_path / "p.json"
        path.write_text('{"stats": {"cycles": 9}}')
        assert load_payload(path) == {"stats": {"cycles": 9}}

    def test_jsonl_stream(self, tmp_path):
        path = tmp_path / "life.jsonl"
        rows = _rows(3)
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        assert load_payload(path) == rows


class TestCliDiff:
    @pytest.fixture(scope="class")
    def payloads(self, tmp_path_factory):
        """Two identical-config quick lifecycle runs, as --json payloads."""
        tmp = tmp_path_factory.mktemp("diff")
        paths = []
        for name in ("a", "b"):
            json_path = tmp / f"{name}.json"
            assert main(["lifecycle", "--quick", "--no-progress",
                         "--bench", "field", "--model", "hidisc",
                         "--out", str(tmp / f"{name}.kanata"),
                         "--json", str(json_path)]) == 0
            paths.append(json_path)
        return paths

    def test_identical_runs_diff_clean(self, payloads, capsys):
        a, b = payloads
        capsys.readouterr()
        assert main(["diff", str(a), str(b)]) == 0
        assert "payloads identical" in capsys.readouterr().out

    def test_perturbed_run_fails_with_first_gid(self, payloads, tmp_path,
                                                capsys):
        a, b = payloads
        doc = json.loads(b.read_text())
        victim = doc["lifecycle"]["records"][40]
        victim["commit"] += 3
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(doc))
        capsys.readouterr()
        json_path = tmp_path / "report.json"
        assert main(["diff", str(a), str(bad),
                     "--json", str(json_path)]) == 1
        out = capsys.readouterr().out
        assert "first divergent committed instruction" in out
        assert f"gid={victim['gid']}" in out
        report = json.loads(json_path.read_text())["diff"]
        assert report["first_divergent_commit"]["index"] == 40
        assert report["first_divergent_commit"]["b"]["gid"] == victim["gid"]

    def test_diff_requires_two_paths(self):
        with pytest.raises(SystemExit):
            main(["diff", "only_one.json"])
