"""Encode/decode round-trip tests, including a hypothesis sweep."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.isa import Annotations, Format, Instruction, Op, Stream
from repro.isa.encoding import (
    decode_instruction,
    decode_program_text,
    encode_instruction,
    encode_program_text,
)

_IMM_MIN = -(1 << 28)
_IMM_MAX = (1 << 28) - 1


def _roundtrip(instr: Instruction) -> Instruction:
    return decode_instruction(encode_instruction(instr))


class TestRoundtrip:
    def test_alu(self):
        i = Instruction(op=Op.ADD, rd=3, rs1=4, rs2=5)
        j = _roundtrip(i)
        assert (j.op, j.rd, j.rs1, j.rs2) == (Op.ADD, 3, 4, 5)

    def test_negative_immediate(self):
        i = Instruction(op=Op.ADDI, rd=3, rs1=4, imm=-12345)
        assert _roundtrip(i).imm == -12345

    def test_extreme_immediates(self):
        for imm in (_IMM_MIN, _IMM_MAX, 0, -1):
            assert _roundtrip(Instruction(op=Op.LI, rd=1, imm=imm)).imm == imm

    def test_branch_target(self):
        i = Instruction(op=Op.BEQ, rs1=1, rs2=2, target=1000)
        j = _roundtrip(i)
        assert j.target == 1000 and j.imm == 0

    def test_annotations_survive(self):
        i = Instruction(op=Op.LD, rd=3, rs1=4, imm=8)
        i.ann = Annotations(stream=Stream.AS, cmas=True, probable_miss=True,
                            trigger=True, to_ldq=True)
        j = _roundtrip(i)
        assert j.ann.stream is Stream.AS
        assert j.ann.cmas and j.ann.probable_miss and j.ann.trigger
        assert j.ann.to_ldq and not j.ann.sdq_data

    def test_cs_annotations_survive(self):
        i = Instruction(op=Op.MUL, rd=3, rs1=4, rs2=5)
        i.ann = Annotations(stream=Stream.CS, ldq_rs1=True, ldq_rs2=True,
                            to_sdq=True)
        j = _roundtrip(i)
        assert j.ann.stream is Stream.CS
        assert j.ann.ldq_rs1 and j.ann.ldq_rs2 and j.ann.to_sdq

    def test_unannotated_stream_none(self):
        assert _roundtrip(Instruction(op=Op.NOP)).ann.stream is Stream.NONE


class TestFieldSpace:
    """Systematic coverage of the packed word's field space: the shared
    imm/target field at its ±2^28 boundaries for every format, and every
    annotation-flag combination (the flag field is only 10 bits, so the
    full product is cheap to enumerate)."""

    # one representative op per low-field interpretation
    _IMM_OPS = (Op.LI, Op.ADDI, Op.LD, Op.SD)
    _TARGET_OPS = (Op.BEQ, Op.BEQZ, Op.J)

    @pytest.mark.parametrize("op", _IMM_OPS, ids=lambda o: o.mnemonic)
    @pytest.mark.parametrize("imm", [
        _IMM_MIN, _IMM_MIN + 1, -1, 0, 1, _IMM_MAX - 1, _IMM_MAX])
    def test_imm_boundaries(self, op, imm):
        assert _roundtrip(Instruction(op=op, rd=1, rs1=2, imm=imm)).imm == imm

    @pytest.mark.parametrize("op", _TARGET_OPS, ids=lambda o: o.mnemonic)
    @pytest.mark.parametrize("target", [
        _IMM_MIN, -1, 0, 1, _IMM_MAX])
    def test_target_boundaries(self, op, target):
        i = Instruction(op=op, rs1=1, rs2=2, target=target)
        j = _roundtrip(i)
        assert j.target == target and j.imm == 0

    @pytest.mark.parametrize("op", _IMM_OPS, ids=lambda o: o.mnemonic)
    @pytest.mark.parametrize("imm", [_IMM_MIN - 1, _IMM_MAX + 1])
    def test_imm_just_out_of_range_rejected(self, op, imm):
        with pytest.raises(EncodingError) as err:
            encode_instruction(Instruction(op=op, rd=1, rs1=2, imm=imm))
        msg = str(err.value)
        assert op.mnemonic in msg and str(imm) in msg and "29 bits" in msg

    def test_all_annotation_flag_combos_roundtrip(self):
        """Exhaustive: 3 streams x 2^8 boolean flags.  Every combination
        must survive the 10-bit flag field bit-exactly."""
        bools = ("cmas", "probable_miss", "trigger", "sdq_data",
                 "to_ldq", "to_sdq", "ldq_rs1", "ldq_rs2")
        for stream in (Stream.NONE, Stream.CS, Stream.AS):
            for mask in range(1 << len(bools)):
                ann = Annotations(
                    stream=stream,
                    **{name: bool(mask >> bit & 1)
                       for bit, name in enumerate(bools)})
                i = Instruction(op=Op.LD, rd=3, rs1=4, imm=8, ann=ann)
                assert _roundtrip(i).ann == ann, (stream, mask)


class TestErrors:
    def test_immediate_overflow(self):
        with pytest.raises(EncodingError):
            encode_instruction(Instruction(op=Op.LI, rd=1, imm=_IMM_MAX + 1))

    def test_register_out_of_range(self):
        with pytest.raises(EncodingError):
            encode_instruction(Instruction(op=Op.ADD, rd=64, rs1=0, rs2=0))

    @pytest.mark.parametrize("field", ["rd", "rs1", "rs2"])
    @pytest.mark.parametrize("reg", [-1, 64, 1000])
    def test_register_rejection_names_field(self, field, reg):
        kwargs = {"rd": 0, "rs1": 0, "rs2": 0, field: reg}
        with pytest.raises(EncodingError) as err:
            encode_instruction(Instruction(op=Op.ADD, **kwargs))
        msg = str(err.value)
        assert f"{field}={reg}" in msg and "add" in msg

    def test_bad_word_length(self):
        with pytest.raises(EncodingError):
            decode_program_text(b"\x00" * 7)

    def test_unknown_opcode(self):
        with pytest.raises(EncodingError):
            decode_instruction(127 << 57)


class TestProgramText:
    def test_roundtrip_list(self):
        instrs = [
            Instruction(op=Op.LI, rd=1, imm=5),
            Instruction(op=Op.ADDI, rd=2, rs1=1, imm=-1),
            Instruction(op=Op.BEQ, rs1=1, rs2=2, target=0),
            Instruction(op=Op.HALT),
        ]
        blob = encode_program_text(instrs)
        assert len(blob) == 32
        out = decode_program_text(blob)
        assert [o.op for o in out] == [i.op for i in instrs]
        assert out[1].imm == -1 and out[2].target == 0


_ann_strategy = st.builds(
    Annotations,
    stream=st.sampled_from([Stream.NONE, Stream.CS, Stream.AS]),
    cmas=st.booleans(),
    probable_miss=st.booleans(),
    trigger=st.booleans(),
    sdq_data=st.booleans(),
    to_ldq=st.booleans(),
    to_sdq=st.booleans(),
    ldq_rs1=st.booleans(),
    ldq_rs2=st.booleans(),
)


@given(
    op=st.sampled_from(list(Op)),
    rd=st.integers(0, 63),
    rs1=st.integers(0, 63),
    rs2=st.integers(0, 63),
    value=st.integers(_IMM_MIN, _IMM_MAX),
    ann=_ann_strategy,
)
def test_roundtrip_hypothesis(op, rd, rs1, rs2, value, ann):
    instr = Instruction(op=op, rd=rd, rs1=rs1, rs2=rs2, ann=ann)
    if op.info.fmt in (Format.BRANCH, Format.BRANCH1, Format.JUMP):
        instr.target = abs(value) % (1 << 28)
    else:
        instr.imm = value
    out = decode_instruction(encode_instruction(instr))
    assert out.op is instr.op
    assert (out.rd, out.rs1, out.rs2) == (instr.rd, instr.rs1, instr.rs2)
    assert out.imm == instr.imm and out.target == instr.target
    assert out.ann == instr.ann
