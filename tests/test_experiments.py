"""Experiment harness tests: runner, suite, and the figure/table views.

The full-suite tests run the scaled-down (quick) inputs end-to-end and then
assert the paper's *shape* claims on the result — these are the
reproduction's acceptance tests.
"""

import json

import pytest

from repro.config import FIGURE10_LATENCIES, MachineConfig
from repro.experiments import (
    MODEL_ORDER,
    figure8,
    figure9,
    figure10,
    prepare,
    run_benchmark,
    run_model,
    run_suite,
    table1,
    table2,
)
from repro.workloads import FieldWorkload, get_workload


@pytest.fixture(scope="module")
def quick_suite():
    """One shared quick-suite run (the expensive fixture of this module)."""
    return run_suite(MachineConfig(), quick=True)


class TestRunner:
    def test_prepare_validates_and_counts(self, config):
        cw = prepare(FieldWorkload(n=500), config)
        assert cw.work > 0
        assert cw.queue_plan.balanced
        assert cw.warmup_pos_original < len(cw.trace)

    def test_run_model_modes(self, config):
        cw = prepare(FieldWorkload(n=500), config)
        results = {mode: run_model(cw, config, mode) for mode in MODEL_ORDER}
        assert all(r.cycles > 0 for r in results.values())
        # same measured work across models
        assert len({r.work_instructions for r in results.values()}) == 1

    def test_run_benchmark_collects(self, config):
        cw = prepare(FieldWorkload(n=500), config)
        bench = run_benchmark(cw, config)
        assert set(bench.results) == set(MODEL_ORDER)
        assert bench.speedup("superscalar") == pytest.approx(1.0)

    def test_unknown_mode_rejected(self, config):
        from repro.errors import SimulationError

        cw = prepare(FieldWorkload(n=500), config)
        with pytest.raises(SimulationError):
            run_model(cw, config, "quantum")

    def test_prepare_stamps_fingerprint(self, config):
        from repro.experiments import compile_key

        workload = FieldWorkload(n=500)
        cw = prepare(workload, config)
        assert cw.fingerprint == compile_key(workload, config)

    def test_missing_baseline_raises_clearly(self, config):
        """Regression: modes without 'superscalar' used to surface as a
        bare KeyError from BenchmarkResults.baseline."""
        from repro.errors import SimulationError

        cw = prepare(FieldWorkload(n=500), config)
        bench = run_benchmark(cw, config, modes=("hidisc",))
        with pytest.raises(SimulationError, match="baseline"):
            bench.baseline
        with pytest.raises(SimulationError, match="baseline"):
            bench.speedup("hidisc")


class TestSuiteShapes:
    """The paper's qualitative claims, asserted on the quick suite."""

    def test_all_benchmarks_present(self, quick_suite):
        assert set(quick_suite.names) == {
            "dm", "raytrace", "pointer", "update", "field",
            "neighborhood", "transitive", "hashjoin", "spmv",
        }

    def test_hidisc_beats_baseline_on_average(self, quick_suite):
        assert quick_suite.mean_speedup("hidisc") > 1.05

    def test_prefetching_contributes_more_than_decoupling(self, quick_suite):
        # Paper Table 2: CP+AP +1.3% vs CP+CMP +10.7%.
        assert quick_suite.mean_speedup("cp_cmp") > \
            quick_suite.mean_speedup("cp_ap")

    def test_decoupling_alone_is_modest(self, quick_suite):
        assert quick_suite.mean_speedup("cp_ap") < \
            quick_suite.mean_speedup("hidisc")

    def test_misses_eliminated_on_average(self, quick_suite):
        # Paper §5.3: 17.1% of cache misses eliminated by HiDISC.
        assert quick_suite.mean_miss_reduction("hidisc") > 0.10

    def test_cp_ap_does_not_change_misses(self, quick_suite):
        for bench in quick_suite.benchmarks.values():
            assert bench.miss_ratio("cp_ap") == pytest.approx(1.0, abs=0.12)

    def test_field_gains_from_decoupling_not_prefetching(self, quick_suite):
        field = quick_suite.benchmarks["field"]
        assert field.speedup("cp_ap") > 1.02
        assert field.speedup("cp_cmp") == pytest.approx(1.0, abs=0.02)

    def test_empty_suite_means_raise_clearly(self):
        """Regression: mean_speedup / mean_miss_reduction used to crash
        with ZeroDivisionError on an empty suite."""
        from repro.errors import SimulationError
        from repro.experiments import SuiteResult

        empty = SuiteResult(config=MachineConfig(), quick=True)
        with pytest.raises(SimulationError, match="empty suite"):
            empty.mean_speedup("hidisc")
        with pytest.raises(SimulationError, match="empty suite"):
            empty.mean_miss_reduction("hidisc")

    def test_payload_serialises(self, quick_suite, tmp_path):
        payload = quick_suite.to_payload()
        text = json.dumps(payload)
        back = json.loads(text)
        assert set(back["benchmarks"]) == set(quick_suite.names)
        for entry in back["benchmarks"].values():
            assert set(entry["models"]) == set(MODEL_ORDER)


class TestFigureViews:
    def test_figure8_render(self, quick_suite):
        view = figure8(quick_suite)
        text = view.render()
        assert "Figure 8" in text and "HiDISC" in text and "MEAN" in text
        speedups = view.speedups()
        assert set(speedups) == set(quick_suite.names)
        for by_model in speedups.values():
            assert by_model["superscalar"] == pytest.approx(1.0)

    def test_figure8_best_model(self, quick_suite):
        view = figure8(quick_suite)
        for name in quick_suite.names:
            best = view.best_model(name)
            bench = quick_suite.benchmarks[name]
            assert bench.speedup(best) == max(
                bench.speedup(m) for m in MODEL_ORDER
            )

    def test_table2_render_and_ordering(self, quick_suite):
        view = table2(quick_suite)
        text = view.render()
        assert "Table 2" in text and "Cache prefetching" in text
        means = view.means()
        assert set(means) == {"cp_ap", "cp_cmp", "hidisc"}
        assert view.ordering_holds()

    def test_figure9_render(self, quick_suite):
        view = figure9(quick_suite)
        text = view.render()
        assert "Figure 9" in text and "miss rate" in text
        name, cut = view.best_reduction()
        assert name in quick_suite.names and 0 < cut <= 1

    def test_table1_lists_parameters(self):
        text = table1(MachineConfig())
        assert "bimodal" in text
        assert "2048" in text
        assert "120 CPU clock cycles" in text


class TestFigure10:
    def test_sweep_quick_single_benchmark(self):
        fig = figure10(MachineConfig(), quick=True, benchmarks=("pointer",),
                       latencies=((4, 40), (16, 160)))
        series = fig.ipc["pointer"]
        assert set(series) == set(MODEL_ORDER)
        for values in series.values():
            assert len(values) == 2 and all(v > 0 for v in values)
        # every model runs slower (or equal) at 4x the latency
        for mode in MODEL_ORDER:
            assert series[mode][1] <= series[mode][0]

    def test_degradation_and_render(self):
        fig = figure10(MachineConfig(), quick=True, benchmarks=("pointer",),
                       latencies=((4, 40), (16, 160)))
        d = fig.degradation("pointer", "superscalar")
        assert 0.0 <= d < 1.0
        text = fig.render()
        assert "Figure 10" in text and "4/40" in text

    def test_reuses_compiled(self, config):
        cw = prepare(get_workload("pointer", quick=True), config)
        fig = figure10(config, quick=True, benchmarks=("pointer",),
                       latencies=((12, 120),),
                       compiled={"pointer": cw})
        assert fig.ipc["pointer"]["hidisc"][0] > 0

    def test_rejects_stale_compiled(self, config):
        """Regression: a compilation prepared under different settings
        (here quick=True vs a paper-scale sweep) must be rejected, not
        silently replayed."""
        from repro.errors import SimulationError

        cw = prepare(get_workload("pointer", quick=True), config)
        with pytest.raises(SimulationError, match="different"):
            figure10(config, quick=False, benchmarks=("pointer",),
                     latencies=((12, 120),), compiled={"pointer": cw})

    def test_rejects_compiled_from_other_config(self, config):
        from repro.errors import SimulationError

        other = config.with_latency(4, 40)
        cw = prepare(get_workload("pointer", quick=True), other)
        with pytest.raises(SimulationError, match="different"):
            figure10(config, quick=True, benchmarks=("pointer",),
                     latencies=((12, 120),), compiled={"pointer": cw})

    def test_default_latencies_match_paper(self):
        assert FIGURE10_LATENCIES == ((4, 40), (8, 80), (12, 120), (16, 160))
