"""Unit tests for the host-side orchestration observability primitives:
the span tracer (repro.telemetry.spans) and the metrics registry
(repro.telemetry.metrics)."""

from __future__ import annotations

import json
import os

import pytest

from repro.telemetry import metrics, spans


@pytest.fixture(autouse=True)
def _clean_observability():
    """Both modules hold process-global state; give every test a clean
    slate and never leak an enabled tracer into other tests."""
    spans.disable()
    metrics.reset()
    yield
    spans.disable()
    metrics.reset()


# ----------------------------------------------------------------------
# Span tracer


class TestSpanTracer:
    def test_disabled_by_default_and_zero_alloc(self):
        assert not spans.active()
        assert spans.current() is None
        assert spans.ENV_FLAG not in os.environ
        # the module-level helpers hand back the one shared no-op object
        assert spans.span("anything") is spans.NULL_SPAN
        with spans.span("nested", cat="x", a=1) as sp:
            sp.set(b=2)
        spans.instant("nothing", cat="x")

    def test_enable_records_nested_spans(self):
        tracer = spans.enable()
        assert spans.active() and os.environ[spans.ENV_FLAG] == "1"
        with spans.span("outer", cat="t", k=1):
            with spans.span("inner", cat="t") as sp:
                sp.set(found=True)
        spans.disable()
        assert [r.name for r in tracer.records] == ["inner", "outer"]
        inner, outer = tracer.records
        assert inner.parent == outer.sid and outer.parent is None
        assert inner.args == {"found": True} and outer.args == {"k": 1}
        assert inner.dur_ns >= 0 and outer.dur_ns >= inner.dur_ns
        assert outer.pid == os.getpid()

    def test_exception_annotates_span_and_pops_stack(self):
        tracer = spans.enable()
        with pytest.raises(ValueError):
            with spans.span("doomed", cat="t"):
                raise ValueError("boom")
        with spans.span("after", cat="t"):
            pass
        doomed, after = tracer.records
        assert doomed.args["error"] == "ValueError"
        assert after.parent is None, "exception must unwind the stack"

    def test_instants_carry_parent_and_no_duration(self):
        tracer = spans.enable()
        with spans.span("outer", cat="t"):
            spans.instant("ping", cat="t", n=3)
        ping = tracer.records[0]
        assert ping.dur_ns is None and ping.args == {"n": 3}
        assert ping.parent == tracer.records[1].sid

    def test_span_ids_are_pid_prefixed_and_unique(self):
        tracer = spans.enable()
        for _ in range(5):
            with spans.span("s", cat="t"):
                pass
        sids = [r.sid for r in tracer.records]
        assert len(set(sids)) == 5
        assert all(sid.startswith(f"{os.getpid():x}.") for sid in sids)

    def test_adopt_keeps_foreign_pids(self):
        tracer = spans.enable()
        foreign = spans.SpanRecord(name="w", cat="pool", pid=424242,
                                   sid="678f2.1", parent=None,
                                   t0_ns=1, dur_ns=5, args={})
        tracer.adopt([foreign])
        assert tracer.records[-1].pid == 424242

    def test_record_dict_round_trip(self):
        record = spans.SpanRecord(name="n", cat="c", pid=1, sid="1.1",
                                  parent=None, t0_ns=7, dur_ns=3,
                                  args={"x": 1})
        assert spans.SpanRecord(**record.as_dict()) == record


class TestWorkerBracketing:
    def test_parent_process_traces_inline(self):
        spans.enable()
        assert spans.begin_worker_task() is None, \
            "the tracing parent keeps its own tracer on the inline path"

    def test_off_means_none(self):
        assert spans.begin_worker_task() is None
        assert spans.end_worker_task(None) is None

    def test_fork_inherited_tracer_is_replaced(self):
        stale = spans.enable()
        # simulate a fork-inherited tracer: same object, foreign pid
        stale.pid = os.getpid() + 1
        fresh = spans.begin_worker_task()
        assert fresh is not None and fresh is not stale
        assert spans.current() is fresh
        with spans.span("task-work", cat="t"):
            pass
        records = spans.end_worker_task(fresh)
        assert [r.name for r in records] == ["task-work"]
        assert spans.current() is None, "worker tracer uninstalled"


# ----------------------------------------------------------------------
# Export and summary


def _sample_records():
    pid = os.getpid()
    return [
        spans.SpanRecord(name="prepare", cat="compile", pid=pid,
                         sid=f"{pid:x}.1", parent=None,
                         t0_ns=1_000_000, dur_ns=2_000_000, args={}),
        spans.SpanRecord(name="cache_miss", cat="cache", pid=pid,
                         sid=f"{pid:x}.2", parent=f"{pid:x}.1",
                         t0_ns=1_500_000, dur_ns=None, args={"key": "ab"}),
        spans.SpanRecord(name="run_model_task", cat="pool", pid=999,
                         sid="3e7.1", parent=None,
                         t0_ns=2_000_000, dur_ns=500_000, args={}),
    ]


class TestTraceExport:
    def test_to_trace_events_lanes_and_epoch(self):
        events = spans.to_trace_events(_sample_records(),
                                       main_pid=os.getpid())
        meta = [e for e in events if e["ph"] == "M"]
        names = {(e["pid"], e["args"].get("name")) for e in meta
                 if e["name"] == "process_name"}
        assert (os.getpid(), "hidisc orchestrator") in names
        assert (999, "hidisc worker 999") in names
        xs = [e for e in events if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == 0.0, "epoch-relative timestamps"
        assert any(e["ph"] == "i" for e in events)

    def test_empty_records(self):
        assert spans.to_trace_events([]) == []

    def test_write_is_json_and_line_consumable(self, tmp_path):
        out = tmp_path / "orch.json"
        count = spans.write_orchestration_trace(_sample_records(), out,
                                                main_pid=os.getpid())
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == count > 0
        lines = out.read_text().splitlines()
        assert lines[0] == '{"traceEvents": ['
        assert lines[-1] == "]}"
        for line in lines[1:-1]:
            json.loads(line.rstrip(","))

    def test_summarize(self):
        digest = spans.summarize(_sample_records())
        assert digest["count"] == 3
        assert digest["by_category"]["compile"] == {"count": 1, "ms": 2.0}
        assert digest["by_category"]["pool"] == {"count": 1, "ms": 0.5}
        assert digest["slowest"][0]["name"] == "prepare"


# ----------------------------------------------------------------------
# Metrics registry


class TestMetricsRegistry:
    def test_counters_sum_and_labels_render_sorted(self):
        reg = metrics.MetricsRegistry()
        reg.inc("hits")
        reg.inc("hits", 2)
        reg.inc("hits", bench="field", mode="hidisc")
        assert reg.counters == {"hits": 3,
                                "hits{bench=field,mode=hidisc}": 1}

    def test_gauge_and_gauge_max(self):
        reg = metrics.MetricsRegistry()
        reg.gauge("rss", 10)
        reg.gauge("rss", 5)
        assert reg.gauges["rss"] == 5
        reg.gauge_max("peak", 10)
        reg.gauge_max("peak", 5)
        reg.gauge_max("peak", 20)
        assert reg.gauges["peak"] == 20

    def test_histogram_decade_buckets(self):
        reg = metrics.MetricsRegistry()
        for value in (0.003, 0.004, 0.02, 5.0, 0.0):
            reg.observe("wait", value)
        hist = reg.histograms["wait"]
        assert hist["count"] == 5 and hist["min"] == 0.0
        assert hist["max"] == 5.0
        assert hist["buckets"] == {"<=0": 1, "1e-3..1e-2": 2,
                                   "1e-2..1e-1": 1, "1e0..1e1": 1}

    def test_snapshot_is_deterministic(self):
        a, b = metrics.MetricsRegistry(), metrics.MetricsRegistry()
        for reg, order in ((a, ("x", "y")), (b, ("y", "x"))):
            for name in order:
                reg.inc(name)
                reg.observe("h", 1.0, series=name)
        assert json.dumps(a.snapshot()) == json.dumps(b.snapshot())
        assert a.snapshot()["version"] == metrics.SNAPSHOT_VERSION

    def test_merge_commutes(self):
        def build(values):
            reg = metrics.MetricsRegistry()
            for v in values:
                reg.inc("n")
                reg.gauge_max("peak", v)
                reg.observe("h", v)
            return reg.snapshot()

        snap_a, snap_b = build([1.0, 30.0]), build([0.2])
        ab, ba = metrics.MetricsRegistry(), metrics.MetricsRegistry()
        ab.merge(snap_a)
        ab.merge(snap_b)
        ba.merge(snap_b)
        ba.merge(snap_a)
        assert json.dumps(ab.snapshot()) == json.dumps(ba.snapshot())
        assert ab.counters["n"] == 3
        assert ab.gauges["peak"] == 30.0
        assert ab.histograms["h"]["count"] == 3
        assert ab.histograms["h"]["min"] == 0.2

    def test_scopes_isolate_per_task_deltas(self):
        metrics.inc("base")
        scope = metrics.push_scope()
        metrics.inc("task_only", 2)
        snap = metrics.pop_scope(scope)
        assert snap["counters"] == {"task_only": 2}
        # the base registry never saw the scoped increment
        assert metrics.snapshot()["counters"] == {"base": 1}
        # and a shipped snapshot merges back deterministically
        metrics.merge(snap)
        assert metrics.snapshot()["counters"] == {"base": 1, "task_only": 2}

    def test_reset_clears_everything(self):
        metrics.inc("x")
        metrics.push_scope()
        metrics.reset()
        assert metrics.registry().empty()

    def test_record_peak_rss(self):
        value = metrics.record_peak_rss()
        if value is None:
            pytest.skip("resource module unavailable")
        assert value > 0
        assert metrics.snapshot()["gauges"]["peak_rss_bytes"] == value
