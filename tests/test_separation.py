"""Tests for stream separation (the AS/CS split)."""

from repro.isa import Stream
from repro.slicer import separate, validate_separation

from .conftest import (
    build_counting_loop,
    build_fp_kernel,
    build_load_compute_store,
    build_store_loop,
)


class TestSeparation:
    def test_all_memory_and_control_in_as(self):
        for program in (build_counting_loop(), build_store_loop(),
                        build_load_compute_store(), build_fp_kernel()):
            sep = separate(program)
            for pc, instr in enumerate(program.text):
                if instr.is_mem or instr.is_control:
                    assert sep.stream_of[pc] is Stream.AS, (program.name, pc)

    def test_counting_loop_is_mostly_as(self):
        # Loop counters feed the branch, so they are chased into the AS;
        # the accumulating add feeds only the final store's data, so it is
        # the lone CS instruction besides nothing else.
        program = build_counting_loop()
        sep = separate(program)
        counts = sep.counts()
        # the accumulator chain: `li t2, 0` and `add t2, t2, t0`.
        assert counts["computation"] == 2
        assert sep.stream_of[2] is Stream.CS
        assert sep.stream_of[3] is Stream.CS

    def test_compute_chain_lands_in_cs(self):
        program = build_load_compute_store()
        sep = separate(program)
        # mul (pc 5) and addi (pc 6) produce the store data -> CS.
        assert sep.stream_of[5] is Stream.CS
        assert sep.stream_of[6] is Stream.CS

    def test_address_producers_land_in_as(self):
        program = build_load_compute_store()
        sep = separate(program)
        # pointer increments (addi t0/t1) feed addresses -> AS.
        for pc, instr in enumerate(program.text):
            if instr.op.mnemonic == "addi" and instr.rd in (8, 9):  # t0, t1
                assert sep.stream_of[pc] is Stream.AS

    def test_fp_pipeline_in_cs(self):
        program = build_fp_kernel()
        sep = separate(program)
        fp_compute = [pc for pc, i in enumerate(program.text)
                      if i.op.mnemonic in ("fmul", "fadd")]
        assert fp_compute
        for pc in fp_compute:
            assert sep.stream_of[pc] is Stream.CS

    def test_closure_validates(self):
        for program in (build_counting_loop(), build_store_loop(),
                        build_load_compute_store(), build_fp_kernel()):
            validate_separation(separate(program))

    def test_annotate_returns_copy_by_default(self):
        program = build_counting_loop()
        sep = separate(program)
        annotated = sep.annotate()
        assert annotated is not program
        assert program.text[0].ann.stream is Stream.NONE
        assert annotated.text[0].ann.stream is not Stream.NONE

    def test_access_pcs_partition(self):
        program = build_store_loop()
        sep = separate(program)
        assert sep.access_pcs | sep.computation_pcs == set(range(len(program.text)))
        assert not (sep.access_pcs & sep.computation_pcs)
