"""Fault injection, watchdog forensics and the co-simulation oracle
(repro.resilience).

The resilience contract under test: a faulted run either completes with
architecturally correct state (proved by the oracle) or raises a *typed*
ReproError with a forensic payload — silently wrong numbers are the only
forbidden outcome.
"""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.errors import (
    ConfigError,
    CycleLimitError,
    DeadlockError,
    QueueProtocolError,
    ReproError,
    WorkloadError,
)
from repro.experiments import prepare
from repro.experiments.runner import build_machine, run_model
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    FaultSite,
    check_commit_stream,
    run_fault_campaign,
    verified_run,
    verify_compiled,
)
from repro.sim import MODES, ArchQueue, DecoupledFunctionalSimulator
from repro.telemetry import Telemetry, check_stack
from repro.workloads import DmWorkload, FieldWorkload

ALL_MODES = tuple(MODES)


@pytest.fixture(scope="module")
def field_cw():
    """Small regular-scan benchmark (heavy LDQ traffic, no CMAS forks)."""
    return prepare(FieldWorkload(n=500), MachineConfig())


@pytest.fixture(scope="module")
def dm_cw():
    """Small hash-lookup benchmark (hundreds of fills and CMAS forks)."""
    return prepare(DmWorkload(n=2048, buckets=512, queries=60),
                   MachineConfig())


# ----------------------------------------------------------------------
# FaultPlan determinism and validation.

class TestFaultPlan:
    def test_same_seed_same_plan(self):
        assert FaultPlan.random(7) == FaultPlan.random(7)
        assert FaultPlan.random(7, count=16) == FaultPlan.random(7, count=16)

    def test_different_seed_different_plan(self):
        assert FaultPlan.random(7) != FaultPlan.random(8)

    def test_sites_drawn_from_requested_kinds(self):
        plan = FaultPlan.random(3, count=32, kinds=("delay_fill",))
        assert len(plan.sites) == 32
        assert all(site.kind == "delay_fill" for site in plan.sites)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultSite("melt_the_alu", at=0)

    def test_negative_ordinal_rejected(self):
        with pytest.raises(ConfigError, match=">= 0"):
            FaultSite("delay_fill", at=-1)

    def test_describe_names_every_site(self):
        plan = FaultPlan.random(11, count=5)
        text = plan.describe()
        assert "seed=11" in text
        for site in plan.sites:
            assert site.kind in text

    def test_functional_schedules_cover_data_faults(self):
        plan = FaultPlan(seed=0, sites=(
            FaultSite("corrupt_transfer", at=3),
            FaultSite("drop_transfer", at=5),
            FaultSite("delay_fill", at=0, arg=10),
        ))
        assert plan.functional_schedules() == {
            "LDQ": {3: "corrupt", 5: "drop"}
        }

    def test_injector_first_site_per_ordinal_wins(self):
        plan = FaultPlan(seed=0, sites=(
            FaultSite("delay_fill", at=2, arg=10),
            FaultSite("drop_fill", at=2),
        ))
        injector = FaultInjector(plan)
        assert injector._fill_sites[2].kind == "delay_fill"


# ----------------------------------------------------------------------
# Watchdog regression: the old one-cycle "nudge" is gone, and known-good
# workloads must still complete on every model.

class TestWatchdogRegression:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_known_good_workloads_complete(self, field_cw, config, mode):
        result = run_model(field_cw, config, mode)
        assert result.cycles > 0

    def test_skip_to_next_event_reports_exhaustion(self, field_cw, config):
        """The nudge replacement: once nothing can ever wake up again,
        the event skip answers None (which the watchdog converts into a
        structural DeadlockError) instead of inventing now+1."""
        machine = build_machine(field_cw, config, "superscalar")
        machine.run()
        assert machine._skip_to_next_event(10**9) is None

    def test_watchdog_window_validated(self):
        with pytest.raises(ConfigError, match="watchdog_window"):
            MachineConfig(watchdog_window=0)

    def test_max_cycles_validated(self):
        with pytest.raises(ConfigError, match="max_cycles"):
            MachineConfig(max_cycles=0)


# ----------------------------------------------------------------------
# Cycle budget: configurable via MachineConfig and per-run override.

class TestCycleLimit:
    def test_run_override_raises_typed_error(self, field_cw, config):
        machine = build_machine(field_cw, config, "hidisc")
        with pytest.raises(CycleLimitError) as exc_info:
            machine.run(max_cycles=50)
        message = str(exc_info.value)
        assert "field" in message and "hidisc" in message
        assert "--max-cycles" in message and "max_cycles" in message

    def test_config_budget_is_honoured(self, field_cw):
        tight = MachineConfig(max_cycles=50)
        with pytest.raises(CycleLimitError):
            build_machine(field_cw, tight, "superscalar").run()


# ----------------------------------------------------------------------
# Timing-layer faults: graceful degradation, cycle accounting intact.

class TestTimingFaults:
    def test_delay_and_stall_faults_slow_but_verify(self, field_cw, config):
        clean = run_model(field_cw, config, "hidisc")
        plan = FaultPlan(seed=0, sites=(
            FaultSite("delay_fill", at=0, arg=400),
            FaultSite("delay_fill", at=5, arg=400),
            FaultSite("stall_queue", at=3, arg=200),
        ))
        injector = FaultInjector(plan)
        result = verified_run(field_cw, config, "hidisc", faults=injector)
        assert result.verified
        assert result.cycles >= clean.cycles
        assert result.faults_injected == {"delay_fill": 2, "stall_queue": 1}

    def test_cpi_stacks_still_sum_under_faults(self, field_cw, config):
        """Fault latencies flow through complete_at, so the cycle taxonomy
        must keep summing exactly to the measured cycles."""
        plan = FaultPlan(seed=0, sites=(
            FaultSite("delay_fill", at=1, arg=300),
            FaultSite("drop_fill", at=4),
            FaultSite("stall_queue", at=2, arg=150),
        ))
        machine = build_machine(field_cw, config, "hidisc",
                                telemetry=Telemetry(cpi=True),
                                faults=FaultInjector(plan))
        result = machine.run()
        assert result.cpi_stacks
        for core, stack in result.cpi_stacks.items():
            check_stack(stack, result.cycles, core)

    def test_corrupt_line_forces_remiss_but_verifies(self, dm_cw, config):
        plan = FaultPlan(seed=0, sites=(
            FaultSite("corrupt_line", at=0),
            FaultSite("corrupt_line", at=2),
        ))
        injector = FaultInjector(plan)
        result = verified_run(dm_cw, config, "superscalar", faults=injector)
        assert result.verified
        assert injector.counts.get("corrupt_line") == 2

    def test_suppress_trigger_degrades_gracefully(self, dm_cw, config):
        clean = run_model(dm_cw, config, "hidisc")
        assert clean.cmas_threads_forked > 4
        plan = FaultPlan(seed=0, sites=tuple(
            FaultSite("suppress_trigger", at=k) for k in range(4)
        ))
        injector = FaultInjector(plan)
        result = verified_run(dm_cw, config, "hidisc", faults=injector)
        assert result.verified
        assert injector.counts.get("suppress_trigger") == 4
        assert result.cmas_threads_forked < clean.cmas_threads_forked

    def test_drop_transfer_raises_forensic_deadlock(self, field_cw, config):
        plan = FaultPlan(seed=0, sites=(FaultSite("drop_transfer", at=2),))
        injector = FaultInjector(plan)
        machine = build_machine(field_cw, config, "hidisc", faults=injector)
        with pytest.raises(DeadlockError) as exc_info:
            machine.run()
        err = exc_info.value
        # The dump carries everything needed to diagnose the stuck transfer.
        assert err.dump["benchmark"] == "field"
        assert err.dump["mode"] == "hidisc"
        assert err.dump["dropped_transfer_gids"] == injector.dropped_gids
        assert err.dump["faults_injected"] == {"drop_transfer": 1}
        assert set(err.dump["cores"]) == {"CP", "AP", "CMP"}
        message = str(err)
        assert "deadlock" in message
        assert str(injector.dropped_gids[0]) in message

    def test_deadlock_detected_structurally_not_by_cycle_limit(
            self, field_cw, config):
        """The watchdog must fire the moment the machine is provably stuck
        (or within one livelock window), not at the two-billion-cycle
        budget like the old nudge workaround."""
        plan = FaultPlan(seed=0, sites=(FaultSite("drop_transfer", at=0),))
        machine = build_machine(field_cw, config, "hidisc",
                                faults=FaultInjector(plan))
        with pytest.raises(DeadlockError) as exc_info:
            machine.run()
        assert exc_info.value.dump["cycle"] < config.max_cycles // 1000

    def test_each_kind_fires_at_its_scheduled_ordinal(self, field_cw, dm_cw,
                                                      config):
        """Directly pin each timing-side kind to a small ordinal and assert
        exactly one fault fires — guards the per-domain ordinal counters
        against drift."""
        cases = [
            (field_cw, "delay_fill", 1),
            (field_cw, "drop_fill", 2),
            (field_cw, "corrupt_line", 0),
            (field_cw, "stall_queue", 3),
            (dm_cw, "suppress_trigger", 0),
        ]
        for cw, kind, at in cases:
            plan = FaultPlan(seed=0, sites=(FaultSite(kind, at=at, arg=9),))
            outcome = run_fault_campaign(cw, config, "hidisc", plan)
            assert outcome.graceful, (kind, outcome.as_dict())
            assert outcome.fired == {kind: 1}, (kind, outcome.as_dict())


# ----------------------------------------------------------------------
# Functional-layer faults: corrupted/dropped payloads surface as typed
# errors, and the counters land in QueueStats.as_dict().

class TestFunctionalFaults:
    def test_queue_drop_starves_pop(self, field_cw):
        sim = DecoupledFunctionalSimulator(field_cw.compilation.decoupled)
        sim.queues.ldq.schedule_faults({0: "drop"})
        with pytest.raises(QueueProtocolError, match="empty"):
            sim.run()
        assert sim.queues.ldq.stats.drops == 1

    def test_queue_corruption_fails_verification(self, dm_cw):
        sim = DecoupledFunctionalSimulator(dm_cw.compilation.decoupled)
        sim.queues.ldq.schedule_faults({1: "corrupt"})
        try:
            state = sim.run()
        except ReproError:
            return  # corrupted pointer/index faulted mid-run — typed, fine
        with pytest.raises(WorkloadError):
            dm_cw.workload.verify(state)
        assert sim.queues.ldq.stats.corruptions == 1

    def test_stats_dict_reports_fault_counters(self):
        queue = ArchQueue("LDQ", capacity=4)
        queue.schedule_faults({0: "drop", 1: "corrupt"})
        queue.push(10)            # dropped
        queue.push(11)            # corrupted to 11 ^ 1 == 10
        stats = queue.stats.as_dict()
        assert stats["drops"] == 1
        assert stats["corruptions"] == 1
        assert stats["pushes"] == 2
        assert len(queue) == 1
        assert queue.pop() == 10

    def test_corrupt_value_perturbs_numbers_only(self):
        from repro.sim.queues import _corrupt_value

        assert _corrupt_value(42) == 43
        assert _corrupt_value(-1.5) == 1.5
        assert _corrupt_value(0.0) == 1.0
        assert _corrupt_value(True) is True
        assert _corrupt_value("x") == "x"


# ----------------------------------------------------------------------
# The co-simulation oracle.

class TestOracle:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_clean_runs_verify_on_every_model(self, field_cw, config, mode):
        result = verified_run(field_cw, config, mode)
        assert result.verified
        assert result.cycles == run_model(field_cw, config, mode).cycles

    def test_verify_compiled_memoizes(self, field_cw):
        assert verify_compiled(field_cw) == []
        assert field_cw._oracle_mismatches == ()
        assert verify_compiled(field_cw) == []

    def test_commit_stream_requires_recording(self, field_cw, config):
        machine = build_machine(field_cw, config, "superscalar")
        machine.run()
        problems = check_commit_stream(machine)
        assert problems and "record_commits" in problems[0]

    def test_commit_stream_flags_tampering(self, field_cw, config):
        machine = build_machine(field_cw, config, "superscalar",
                                record_commits=True)
        machine.run()
        assert check_commit_stream(machine) == []
        # Replaying a committed position must be reported as a duplicate,
        # and its displaced victim as never-committed.
        core, gid, pos = machine.commit_log[10]
        machine.commit_log[11] = (core, gid, pos)
        problems = "\n".join(check_commit_stream(machine))
        assert "committed twice" in problems
        assert "never committed" in problems


# ----------------------------------------------------------------------
# Campaigns: every seeded plan either completes-and-verifies or raises
# a typed error.  The graceful-degradation acceptance sweep.

class TestCampaigns:
    @pytest.mark.parametrize("seed", range(8))
    def test_campaign_is_graceful_for_any_seed(self, field_cw, config,
                                               seed):
        plan = FaultPlan.random(seed, count=6)
        for mode in ("superscalar", "hidisc"):
            outcome = run_fault_campaign(field_cw, config, mode, plan)
            assert outcome.graceful, outcome.as_dict()
            if outcome.outcome == "raised":
                assert outcome.error_type and outcome.error

    def test_campaign_outcome_payload_round_trips(self, field_cw, config):
        plan = FaultPlan.random(4, count=6)
        outcome = run_fault_campaign(field_cw, config, "hidisc", plan)
        payload = outcome.as_dict()
        assert payload["benchmark"] == "field"
        assert payload["plan_seed"] == 4
        assert payload["graceful"] is True
        assert "field" in outcome.summary()
        assert "seed 4" in outcome.summary()

    def test_campaign_never_returns_unverified_completion(self, field_cw,
                                                          config):
        plan = FaultPlan(seed=1, sites=(FaultSite("delay_fill", at=0,
                                                  arg=50),))
        outcome = run_fault_campaign(field_cw, config, "cp_ap", plan)
        assert outcome.outcome == "completed" and outcome.verified
        assert outcome.graceful

    def test_functional_drop_is_caught_before_timing(self, field_cw,
                                                     config):
        plan = FaultPlan(seed=0, sites=(FaultSite("drop_transfer", at=1),))
        outcome = run_fault_campaign(field_cw, config, "hidisc", plan)
        assert outcome.graceful
        assert outcome.outcome == "raised"
        assert outcome.error_type == "QueueProtocolError"
        assert outcome.queue_faults.get("LDQ") == 1
