"""Timing-model behaviour tests: latencies, widths, queues, warmup.

These check the *physics* of the cycle models: more latency means more
cycles, wider machines are not slower, queue capacities throttle slip,
prefetching removes demand misses.
"""

import pytest
from dataclasses import replace

from repro.config import MachineConfig
from repro.sim import (
    Machine,
    build_cmas_plan,
    build_queue_plan,
    generate_decoupled_trace,
    generate_trace,
)
from repro.slicer import compile_hidisc

from .conftest import build_counting_loop, build_load_compute_store
from tests.test_cmas import build_chase


def run_superscalar(program, config, **kw):
    trace, _ = generate_trace(program)
    return Machine(config, program.copy(), trace, mode="superscalar", **kw).run()


class TestBaselinePhysics:
    def test_cycles_positive_and_bounded(self, config, counting_loop):
        result = run_superscalar(counting_loop, config)
        trace_len = 36
        assert 0 < result.cycles
        # 8-wide: cannot be faster than trace/8 (+ drain), nor absurdly slow.
        assert result.cycles >= trace_len / 8
        assert result.cycles < trace_len * 200

    def test_ipc_never_exceeds_width(self, config):
        result = run_superscalar(build_load_compute_store(64), config)
        assert result.ipc <= config.superscalar.issue_width

    def test_memory_latency_hurts(self, config):
        program = build_chase(n=2048, hops=256)
        slow = run_superscalar(program, config.with_latency(16, 160))
        fast = run_superscalar(program, config.with_latency(4, 40))
        assert slow.cycles > fast.cycles

    def test_narrow_machine_slower(self, config):
        # A compute-bound loop: width matters when memory does not dominate.
        program = build_counting_loop(200)
        narrow = replace(
            config,
            superscalar=replace(config.superscalar, issue_width=1,
                                commit_width=1),
            fetch_width=1,
        )
        wide = run_superscalar(program, config)
        one = run_superscalar(program, narrow)
        assert one.cycles > wide.cycles * 1.5

    def test_small_window_slower_on_misses(self, config):
        program = build_chase(n=4096, hops=512)
        small = replace(config,
                        superscalar=replace(config.superscalar, window=4))
        big = run_superscalar(program, config)
        tiny = run_superscalar(program, small)
        assert tiny.cycles > big.cycles

    def test_commit_counts_whole_trace(self, config, counting_loop):
        result = run_superscalar(counting_loop, config)
        assert result.committed["main"] == 36

    def test_branch_stats_populated(self, config, counting_loop):
        result = run_superscalar(counting_loop, config)
        assert result.branch.lookups == 10
        assert result.branch.mispredicts >= 1  # cold BTB on first back edge

    def test_perfect_predictor_not_slower(self, config, counting_loop):
        from repro.config import BranchConfig

        perfect = replace(config, branch=BranchConfig(kind="perfect"))
        base = run_superscalar(build_chase(n=256, hops=200), config)
        oracle = run_superscalar(build_chase(n=256, hops=200), perfect)
        assert oracle.cycles <= base.cycles


class TestDecoupledPhysics:
    @pytest.fixture
    def compiled(self, config):
        program = build_load_compute_store(64)
        comp = compile_hidisc(program, config, probable_miss_pcs=set())
        trace, _ = generate_trace(program)
        dtrace, _ = generate_decoupled_trace(comp.decoupled)
        qplan = build_queue_plan(comp.decoupled, dtrace)
        return comp, trace, dtrace, qplan

    def test_cp_ap_commits_both_streams(self, config, compiled):
        comp, trace, dtrace, qplan = compiled
        result = Machine(config, comp.decoupled, dtrace, mode="cp_ap",
                         queue_plan=qplan, work_instructions=len(trace)).run()
        assert result.committed["CP"] + result.committed["AP"] == len(dtrace)
        assert result.committed["CP"] > 0 and result.committed["AP"] > 0

    def test_tiny_ldq_throttles(self, config, compiled):
        comp, trace, dtrace, qplan = compiled
        tiny = replace(config, queues=replace(config.queues, ldq_entries=1,
                                              sdq_entries=1))
        roomy = Machine(config, comp.decoupled, dtrace, mode="cp_ap",
                        queue_plan=qplan, work_instructions=len(trace)).run()
        cramped = Machine(tiny, comp.decoupled, dtrace, mode="cp_ap",
                          queue_plan=qplan, work_instructions=len(trace)).run()
        assert cramped.cycles >= roomy.cycles

    def test_requires_plans(self, config, compiled):
        comp, trace, dtrace, qplan = compiled
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            Machine(config, comp.decoupled, dtrace, mode="cp_ap")
        with pytest.raises(SimulationError):
            Machine(config, comp.original, trace, mode="cp_cmp")
        with pytest.raises(SimulationError):
            Machine(config, comp.original, trace, mode="bogus")


class TestPrefetchPhysics:
    @pytest.fixture
    def chase_compiled(self, config):
        # A *streaming* kernel: the CMP races ahead through the induction
        # chain and covers the compulsory line misses.  (A single serial
        # pointer chain would be uncoverable — the CMP starts later and
        # walks at the same speed; see test_serial_chain_uncoverable.)
        program = build_load_compute_store(600)
        trace, _ = generate_trace(program)
        comp = compile_hidisc(program, config, trace=trace)
        cplan = build_cmas_plan(comp.original, trace,
                                config.cmas.trigger_distance)
        return comp, trace, cplan

    def test_serial_chain_uncoverable(self, config):
        """Pre-execution cannot beat a same-speed serial chain that the
        main core is already walking — the paper's motivation for *timely*
        triggering (§4.2)."""
        program = build_chase(n=4096, hops=600)
        trace, _ = generate_trace(program)
        comp = compile_hidisc(program, config, trace=trace)
        cplan = build_cmas_plan(comp.original, trace,
                                config.cmas.trigger_distance)
        base = Machine(config, comp.original, trace, mode="superscalar").run()
        pf = Machine(config, comp.original, trace, mode="cp_cmp",
                     cmas_plan=cplan).run()
        assert pf.cycles >= base.cycles * 0.95

    def test_cmp_reduces_demand_misses(self, config, chase_compiled):
        comp, trace, cplan = chase_compiled
        base = Machine(config, comp.original, trace, mode="superscalar").run()
        pf = Machine(config, comp.original, trace, mode="cp_cmp",
                     cmas_plan=cplan).run()
        assert pf.l1.demand_misses < base.l1.demand_misses
        assert pf.cycles <= base.cycles
        assert pf.cmas_threads_forked > 0

    def test_prefetches_not_counted_as_demand(self, config, chase_compiled):
        comp, trace, cplan = chase_compiled
        pf = Machine(config, comp.original, trace, mode="cp_cmp",
                     cmas_plan=cplan).run()
        assert pf.l1.prefetch_accesses > 0
        assert pf.l1.demand_accesses == \
            pf.memory.demand_loads + pf.memory.demand_stores


class TestWarmup:
    def test_warmup_reduces_measured_cycles(self, config):
        program = build_chase(n=2048, hops=400)
        trace, _ = generate_trace(program)
        full = Machine(config, program.copy(), trace,
                       mode="superscalar").run()
        half = Machine(config, program.copy(), trace, mode="superscalar",
                       warmup_pos=len(trace) // 2).run()
        assert half.total_cycles == pytest.approx(full.cycles, rel=0.01)
        assert half.cycles < full.cycles

    def test_warmup_resets_cache_stats(self, config):
        program = build_chase(n=256, hops=400)  # fits caches after a pass
        trace, _ = generate_trace(program)
        warmed = Machine(config, program.copy(), trace, mode="superscalar",
                         warmup_pos=len(trace) // 2).run()
        cold = Machine(config, program.copy(), trace,
                       mode="superscalar").run()
        assert warmed.l1_demand_miss_rate < cold.l1_demand_miss_rate


class TestTimeSkip:
    def test_results_deterministic(self, config):
        program = build_chase(n=1024, hops=300)
        a = run_superscalar(program, config)
        b = run_superscalar(program, config)
        assert a.cycles == b.cycles
        assert a.l1.demand_misses == b.l1.demand_misses
