"""Run-cache and parallel-grid tests (repro.experiments.cache / .parallel).

The parity tests use a reduced workload set so the grid stays seconds-sized;
the full quick suite is exercised by test_experiments and the CI smoke run.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.config import MachineConfig
from repro.errors import ConfigError, SimulationError
from repro.experiments import (
    RunCache,
    Task,
    compile_key,
    prepare,
    prepare_cached,
    run_benchmark,
    run_suite,
    run_tasks,
)
from repro.experiments.cache import workload_fingerprint
from repro.workloads import FieldWorkload, get_workload


def small_workloads(seed: int = 2003):
    """Three tiny benchmarks — enough to exercise grid assembly."""
    return [
        FieldWorkload(n=500, seed=seed),
        get_workload("pointer", quick=True, seed=seed),
        get_workload("transitive", quick=True, seed=seed),
    ]


def _count_prepares(monkeypatch):
    """Patch runner.prepare with a counting wrapper (parent process only)."""
    import repro.experiments.runner as runner_mod

    calls = []
    real = runner_mod.prepare

    def counting(workload, config, verify=True):
        calls.append(workload.name)
        return real(workload, config, verify=verify)

    monkeypatch.setattr(runner_mod, "prepare", counting)
    return calls


# ----------------------------------------------------------------------
# Fingerprints

class TestFingerprints:
    def test_same_inputs_same_key(self, config):
        assert compile_key(FieldWorkload(n=500), config) == \
            compile_key(FieldWorkload(n=500), config)

    def test_seed_changes_key(self, config):
        assert compile_key(FieldWorkload(n=500, seed=1), config) != \
            compile_key(FieldWorkload(n=500, seed=2), config)

    def test_quick_scale_changes_key(self, config):
        # quick vs paper-scale instances differ in their size parameters
        assert compile_key(get_workload("pointer", quick=True), config) != \
            compile_key(get_workload("pointer", quick=False), config)

    def test_config_changes_key(self, config):
        assert compile_key(FieldWorkload(n=500), config) != \
            compile_key(FieldWorkload(n=500), config.with_latency(4, 40))

    def test_version_changes_key(self, config, monkeypatch):
        import repro

        before = compile_key(FieldWorkload(n=500), config)
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert compile_key(FieldWorkload(n=500), config) != before

    def test_workload_fingerprint_covers_scalars(self):
        a = workload_fingerprint(FieldWorkload(n=500, token=0x42))
        b = workload_fingerprint(FieldWorkload(n=500, token=0x43))
        assert a != b


# ----------------------------------------------------------------------
# RunCache store semantics

class TestRunCache:
    def test_miss_then_hit(self, config, tmp_path, monkeypatch):
        calls = _count_prepares(monkeypatch)
        cache = RunCache(tmp_path)
        cw1 = prepare_cached(FieldWorkload(n=500), config, cache)
        assert calls == ["field"] and cache.stores == 1
        cw2 = prepare_cached(FieldWorkload(n=500), config, cache)
        assert calls == ["field"], "cache hit must skip prepare()"
        assert cache.hits == 1
        assert cw2.fingerprint == cw1.fingerprint
        assert len(cw2.trace) == len(cw1.trace)

    def test_hit_survives_new_cache_instance(self, config, tmp_path,
                                             monkeypatch):
        prepare_cached(FieldWorkload(n=500), config, RunCache(tmp_path))
        calls = _count_prepares(monkeypatch)
        prepare_cached(FieldWorkload(n=500), config, RunCache(tmp_path))
        assert calls == []

    def test_fingerprint_mismatch_misses(self, config, tmp_path,
                                         monkeypatch):
        cache = RunCache(tmp_path)
        prepare_cached(FieldWorkload(n=500), config, cache)
        calls = _count_prepares(monkeypatch)
        prepare_cached(FieldWorkload(n=500, seed=7), config, cache)
        prepare_cached(FieldWorkload(n=500), config.with_latency(4, 40),
                       cache)
        assert calls == ["field", "field"], \
            "changed seed/config must recompute"

    def test_corrupted_entry_recomputes(self, config, tmp_path,
                                        monkeypatch):
        cache = RunCache(tmp_path)
        workload = FieldWorkload(n=500)
        prepare_cached(workload, config, cache)
        key = compile_key(workload, config)
        cache.path_for(key).write_bytes(b"\x80garbage not a pickle")
        calls = _count_prepares(monkeypatch)
        fresh = RunCache(tmp_path)
        cw = prepare_cached(workload, config, fresh)
        assert calls == ["field"] and fresh.corrupt == 1
        assert cw.fingerprint == key
        # the bad entry was replaced by a good one
        assert fresh.load(key) is not None

    def test_wrong_key_content_rejected(self, config, tmp_path):
        """An entry whose payload fingerprint disagrees with its file name
        (e.g. a renamed file) is evicted, not returned."""
        cache = RunCache(tmp_path)
        workload = FieldWorkload(n=500)
        prepare_cached(workload, config, cache)
        good = cache.path_for(compile_key(workload, config))
        bad = cache.path_for("0" * 64)
        good.rename(bad)
        assert cache.load("0" * 64) is None
        assert not bad.exists()

    def test_stats_and_clear(self, config, tmp_path):
        cache = RunCache(tmp_path)
        prepare_cached(FieldWorkload(n=500), config, cache)
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["total_bytes"] > 0
        assert cache.clear() == 1
        assert cache.stats()["entries"] == 0

    def test_unwritable_root_degrades_gracefully(self, config):
        cache = RunCache("/proc/definitely/not/writable")
        cw = prepare_cached(FieldWorkload(n=500), config, cache)
        assert cw.work > 0 and cache.stores == 0


# ----------------------------------------------------------------------
# Parallel grid execution

def _identity_task(value):
    return value


def _crash_in_worker(parent_pid):
    """Dies hard in a pool worker; succeeds when run in the parent."""
    if os.getpid() != parent_pid:
        os._exit(3)
    return "ok"


def _sleep_in_worker(parent_pid, seconds):
    """Hangs in a pool worker; returns immediately in the parent."""
    if os.getpid() != parent_pid:
        time.sleep(seconds)
    return "ok"


def _raise_simulation_error():
    raise SimulationError("boom from worker")


class TestRunTasks:
    def test_results_in_task_order(self):
        tasks = [Task(label=str(i), fn=_identity_task, args=(i,))
                 for i in range(20)]
        assert run_tasks(tasks, jobs=4) == list(range(20))

    def test_serial_when_jobs_one(self):
        tasks = [Task(label=str(i), fn=_identity_task, args=(i,))
                 for i in range(3)]
        assert run_tasks(tasks, jobs=1) == [0, 1, 2]

    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigError):
            run_tasks([Task("x", _identity_task, (1,))], jobs=-2)

    def test_worker_crash_falls_back_to_serial(self):
        parent = os.getpid()
        tasks = [Task(label=f"t{i}", fn=_crash_in_worker, args=(parent,))
                 for i in range(4)]
        assert run_tasks(tasks, jobs=2) == ["ok"] * 4

    def test_timeout_falls_back_to_serial(self):
        parent = os.getpid()
        tasks = [Task(label=f"t{i}", fn=_sleep_in_worker, args=(parent, 3))
                 for i in range(2)]
        assert run_tasks(tasks, jobs=2, timeout=0.2) == ["ok"] * 2

    def test_task_exceptions_propagate(self):
        # two tasks so the pool path (not the inline shortcut) is taken
        tasks = [Task(label="good", fn=_identity_task, args=(1,)),
                 Task(label="bad", fn=_raise_simulation_error, args=())]
        with pytest.raises(SimulationError, match="boom"):
            run_tasks(tasks, jobs=2)

    def test_task_exceptions_propagate_inline(self):
        tasks = [Task(label="bad", fn=_raise_simulation_error, args=())]
        with pytest.raises(SimulationError, match="boom"):
            run_tasks(tasks, jobs=1)


class TestParallelSuite:
    def test_parallel_payload_matches_serial(self, config):
        serial = run_suite(config, quick=True,
                           workloads=small_workloads(), jobs=1)
        fanned = run_suite(config, quick=True,
                           workloads=small_workloads(), jobs=2)
        p_serial, p_fanned = serial.to_payload(), fanned.to_payload()
        p_serial.pop("elapsed_seconds")
        p_fanned.pop("elapsed_seconds")
        assert json.dumps(p_serial, sort_keys=True) == \
            json.dumps(p_fanned, sort_keys=True)

    def test_warm_cache_skips_all_prepares(self, config, tmp_path,
                                           monkeypatch):
        cache = RunCache(tmp_path)
        run_suite(config, quick=True, workloads=small_workloads(),
                  jobs=1, cache=cache)
        assert cache.stores == len(small_workloads())

        # Warm run: any prepare() call in the parent is a test failure.
        import repro.experiments.runner as runner_mod

        def forbidden(workload, config, verify=True):
            raise AssertionError("prepare() called on a warm cache")

        monkeypatch.setattr(runner_mod, "prepare", forbidden)
        warm_cache = RunCache(tmp_path)
        warm = run_suite(config, quick=True, workloads=small_workloads(),
                         jobs=2, cache=warm_cache)
        assert warm_cache.hits == len(small_workloads())
        assert set(warm.names) == {w.name for w in small_workloads()}

    def test_run_benchmark_parallel_modes(self, config):
        cw = prepare(FieldWorkload(n=500), config)
        serial = run_benchmark(cw, config)
        fanned = run_benchmark(cw, config, jobs=2)
        assert set(fanned.results) == set(serial.results)
        for mode, result in fanned.results.items():
            assert result.cycles == serial.results[mode].cycles

    def test_custom_telemetry_forces_serial(self, config):
        """A caller-supplied telemetry object is process-local, so the
        suite must fall back to serial execution (and still collect)."""
        from repro.telemetry import MemorySink, Telemetry

        telemetry = Telemetry(sink=MemorySink(), cpi=True)
        suite = run_suite(config, quick=True,
                          workloads=[FieldWorkload(n=500)],
                          jobs=4, telemetry=telemetry)
        assert suite.benchmarks["field"].baseline.cycles > 0
        assert telemetry.sink.events
