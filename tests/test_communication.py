"""Tests for communication insertion and the decoupled program."""

import pytest

from repro.isa import Op, Stream
from repro.slicer import (
    insert_communication,
    separate,
    validate_decoupled_dynamic,
    validate_decoupled_static,
)
from repro.sim.functional import DecoupledFunctionalSimulator

from .conftest import (
    build_counting_loop,
    build_fp_kernel,
    build_load_compute_store,
    build_store_loop,
)

ALL_BUILDERS = (build_counting_loop, build_store_loop,
                build_load_compute_store, build_fp_kernel)


class TestStructure:
    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_static_validation_passes(self, builder):
        dp = insert_communication(separate(builder()))
        validate_decoupled_static(dp.program)

    def test_sdq_store_marked(self):
        dp = insert_communication(separate(build_store_loop()))
        stores = [i for i in dp.program.text if i.is_store]
        assert stores and all(i.ann.sdq_data for i in stores)
        assert dp.sdq_stores == len(stores)

    def test_sdq_direct_when_producer_adjacent_block(self):
        # store data produced by `mul` in the same block -> "$SDQ" result,
        # no push.sdq instruction.
        dp = insert_communication(separate(build_store_loop()))
        assert dp.sdq_direct >= 1
        pushes = [i for i in dp.program.text if i.op is Op.PUSH_SDQ]
        producers = [i for i in dp.program.text if i.ann.to_sdq]
        assert len(pushes) + len(producers) == dp.sdq_stores

    def test_load_to_ldq_annotation(self):
        dp = insert_communication(separate(build_load_compute_store()))
        marked = [i for i in dp.program.text if i.ann.to_ldq]
        assert marked and all(i.is_load for i in marked)

    def test_operand_flags_on_cs(self):
        dp = insert_communication(separate(build_load_compute_store()))
        flagged = [i for i in dp.program.text
                   if i.ann.ldq_rs1 or i.ann.ldq_rs2]
        for i in flagged:
            assert i.ann.stream is Stream.CS
        assert dp.ldq_operands == sum(
            int(i.ann.ldq_rs1) + int(i.ann.ldq_rs2) for i in flagged
        )

    def test_branch_targets_remapped(self):
        program = build_store_loop()
        dp = insert_communication(separate(program))
        dp.program.validate()
        for instr in dp.program.text:
            if instr.is_branch:
                target = dp.program.text[instr.target]
                # the loop branch must land on the start of the group of
                # the original loop head (possibly an inserted push).
                assert 0 <= instr.target < len(dp.program.text)
                assert target is not None

    def test_maps_cover_every_pc(self):
        program = build_fp_kernel()
        dp = insert_communication(separate(program))
        n = len(program.text)
        assert len(dp.group_map) == n and len(dp.instr_map) == n
        assert dp.group_map[0] == 0
        for pc in range(n):
            assert dp.group_map[pc] <= dp.instr_map[pc]
        # instr_map points at a copy of the original instruction.
        for pc in range(n):
            assert dp.program.text[dp.instr_map[pc]].op is program.text[pc].op

    def test_map_pcs(self):
        program = build_load_compute_store()
        dp = insert_communication(separate(program))
        loads = {pc for pc, i in enumerate(program.text) if i.is_load}
        mapped = dp.map_pcs(loads)
        assert all(dp.program.text[pc].is_load for pc in mapped)


class TestDynamicEquivalence:
    @pytest.mark.parametrize("builder", ALL_BUILDERS)
    def test_decoupled_matches_sequential(self, builder):
        program = builder()
        dp = insert_communication(separate(program))
        report = validate_decoupled_dynamic(program, dp.program)
        assert report.ldq_transfers >= 0
        assert report.communication_overhead < 0.7

    def test_split_register_files_really_split(self):
        """The CP must receive values only through the queues."""
        program = build_load_compute_store()
        dp = insert_communication(separate(program))
        sim = DecoupledFunctionalSimulator(dp.program)
        sim.run()
        # The queue moved one value per load that crosses to the CS.
        assert sim.queues.ldq.stats.pops > 0
        assert sim.queues.sdq.stats.pops > 0
        assert sim.queues.ldq.empty and sim.queues.sdq.empty

    def test_detects_broken_annotation(self):
        """Flipping one stream annotation must break validation."""
        from repro.errors import ReproError

        program = build_load_compute_store()
        dp = insert_communication(separate(program))
        victim = next(i for i in dp.program.text if i.ann.sdq_data)
        victim.ann.sdq_data = False
        with pytest.raises(ReproError):
            validate_decoupled_dynamic(program, dp.program)
