"""Workload tests: correctness, determinism, separation soundness, and the
memory-access character each benchmark is supposed to have."""

import numpy as np
import pytest

from repro.config import MachineConfig
from repro.errors import WorkloadError
from repro.sim import generate_trace, profile_cache
from repro.sim.functional import FunctionalSimulator
from repro.slicer import compile_hidisc, validate_decoupled_dynamic
from repro.workloads import (
    DmWorkload,
    FieldWorkload,
    HashJoinWorkload,
    NeighborhoodWorkload,
    PointerWorkload,
    RayTraceWorkload,
    SpmvWorkload,
    TransitiveWorkload,
    UpdateWorkload,
    WORKLOAD_CLASSES,
    WorkloadSpec,
    check_ap_executable,
    get_workload,
    quick_workloads,
    workloads_from_spec,
)

QUICK = {w.name: w for w in quick_workloads()}


@pytest.mark.parametrize("name", sorted(QUICK))
class TestEveryWorkload:
    def test_reference_matches_kernel(self, name):
        w = QUICK[name]
        state = FunctionalSimulator(w.program).run()
        w.verify(state)  # raises on mismatch

    def test_separation_sound(self, name):
        w = QUICK[name]
        comp = compile_hidisc(w.program, MachineConfig(),
                              probable_miss_pcs=set())
        validate_decoupled_dynamic(w.program, comp.decoupled)

    def test_no_fp_in_access_stream(self, name):
        w = QUICK[name]
        comp = compile_hidisc(w.program, MachineConfig(),
                              probable_miss_pcs=set())
        check_ap_executable(comp.decoupled)

    def test_deterministic_build(self, name):
        a = get_workload(name, quick=True, seed=7)
        b = get_workload(name, quick=True, seed=7)
        assert len(a.program.text) == len(b.program.text)
        assert bytes(a.program.data) == bytes(b.program.data)

    def test_seed_changes_data(self, name):
        a = get_workload(name, quick=True, seed=1)
        b = get_workload(name, quick=True, seed=2)
        assert bytes(a.program.data) != bytes(b.program.data)

    def test_warmup_fraction_sane(self, name):
        assert 0.0 <= QUICK[name].warmup_fraction < 1.0


class TestVerifyRejectsCorruption:
    def test_detects_wrong_output(self):
        w = FieldWorkload(n=400)
        state = FunctionalSimulator(w.program).run()
        addr = w.program.data_symbols["out"]
        state.memory.store(addr, 10**6, 8)
        with pytest.raises(WorkloadError):
            w.verify(state)

    def test_detects_wrong_array(self):
        w = NeighborhoodWorkload(size=16)
        state = FunctionalSimulator(w.program).run()
        addr = w.program.data_symbols["hist"]
        state.memory.store(addr, 10**6, 8)
        with pytest.raises(WorkloadError):
            w.verify(state)

    def test_unknown_symbol(self):
        class Broken(FieldWorkload):
            def expected_outputs(self):
                return {"no_such_symbol": 1}

        w = Broken(n=100)
        state = FunctionalSimulator(w.program).run()
        with pytest.raises(WorkloadError):
            w.verify(state)


class TestAccessCharacter:
    """Each benchmark must exhibit its paper-described access pattern."""

    def _miss_rate(self, workload):
        config = MachineConfig()
        trace, _ = generate_trace(workload.program)
        profile = profile_cache(workload.program, trace, config)
        return profile.miss_rate

    def test_pointer_misses_more_than_field(self):
        pointer = PointerWorkload(n=16384, sequences=200, hops=4,
                                  hot=1024, hot_fraction=0.2)
        field = FieldWorkload(n=1500)
        assert self._miss_rate(pointer) > 4 * self._miss_rate(field)

    def test_field_is_regular(self):
        assert self._miss_rate(FieldWorkload(n=2000)) < 0.05

    def test_update_writes_back(self):
        w = UpdateWorkload(n=4096, sequences=50, hops=4)
        trace, _ = generate_trace(w.program)
        stores = sum(1 for d in trace if w.program.text[d.pc].is_store)
        assert stores >= 200  # one RMW store per hop

    def test_dm_walks_chains(self):
        w = DmWorkload(n=1024, buckets=64, queries=100)
        trace, _ = generate_trace(w.program)
        loads = sum(1 for d in trace if w.program.text[d.pc].is_load)
        # >= 2 loads per query (query key + head) plus chain walking.
        assert loads > 2 * 100

    def test_raytrace_is_fp_heavy(self):
        w = RayTraceWorkload(spheres=64, rays=1)
        fp = sum(1 for i in w.program.text if i.op.info.is_fp)
        assert fp >= 10

    def test_transitive_touches_matrix(self):
        w = TransitiveWorkload(n=12, kiters=1)
        state = FunctionalSimulator(w.program).run()
        w.verify(state)
        expected = w.expected_outputs()["dist"]
        assert expected.shape == (12, 12)
        # the closure must actually relax something
        assert (expected != w._matrix).any()


class TestRegistry:
    def test_class_order_matches_paper(self):
        assert [c.name for c in WORKLOAD_CLASSES] == [
            "dm", "raytrace", "pointer", "update", "field",
            "neighborhood", "transitive", "hashjoin", "spmv",
        ]

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError):
            get_workload("bogus")

    def test_quick_smaller_than_full(self):
        for quick, full_cls in zip(quick_workloads(), WORKLOAD_CLASSES):
            full = full_cls()
            assert len(bytes(quick.program.data)) <= len(bytes(full.program.data))


class TestWorkloadSpec:
    SPEC = WorkloadSpec(size=128, stride=2, hot_fraction=0.8,
                        chase_depth=3, value_range=(1, 50),
                        intensity=0.05, seed=11)

    def test_every_family_builds_and_verifies_from_one_spec(self):
        built = workloads_from_spec(self.SPEC)
        assert [w.name for w in built] == [c.name for c in WORKLOAD_CLASSES]
        for w in built:
            state = FunctionalSimulator(w.program).run()
            w.verify(state)

    def test_spec_axes_reach_the_families(self):
        pointer = PointerWorkload.from_spec(self.SPEC)
        assert pointer.n == 128 and pointer.hops == 3
        spmv = SpmvWorkload.from_spec(self.SPEC)
        assert spmv.rows == 128 and spmv.stride == 2
        dm = DmWorkload.from_spec(self.SPEC)
        assert dm.n == 128

    def test_update_rounds_size_to_power_of_two(self):
        w = UpdateWorkload.from_spec(WorkloadSpec(size=100, intensity=0.02))
        assert w.n == 128

    def test_spec_seed_threads_through(self):
        a = FieldWorkload.from_spec(WorkloadSpec(size=300, seed=1))
        b = FieldWorkload.from_spec(WorkloadSpec(size=300, seed=2))
        assert bytes(a.program.data) != bytes(b.program.data)

    @pytest.mark.parametrize("bad", [
        dict(size=0), dict(stride=-1), dict(hot_fraction=1.5),
        dict(chase_depth=0), dict(value_range=(5, 1)), dict(intensity=0),
    ])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            WorkloadSpec(**bad)

    def test_spec_built_workloads_fingerprint_distinctly(self):
        from repro.experiments.cache import workload_fingerprint

        small = HashJoinWorkload.from_spec(WorkloadSpec(size=64,
                                                        intensity=0.05))
        large = HashJoinWorkload.from_spec(WorkloadSpec(size=128,
                                                        intensity=0.05))
        assert workload_fingerprint(small) != workload_fingerprint(large)


class TestNewFamilies:
    def test_hashjoin_walks_whole_chains(self):
        """A join must find *all* duplicates, not first hits: the match
        count has to exceed the number of distinct matched probe keys."""
        w = HashJoinWorkload(build=256, probes=64, buckets=32,
                             hit_fraction=1.0)
        count = int(w.expected_outputs()["out"][0])
        distinct = len(set(int(k) for k in w._pkeys
                           if (w._rkeys == k).any()))
        assert count > distinct

    def test_spmv_handles_empty_rows(self):
        w = SpmvWorkload(rows=64, row_nnz=2, seed=5)
        lens = np.diff(w._rowptr)
        assert (lens == 0).any(), "generator should produce empty rows"
        state = FunctionalSimulator(w.program).run()
        w.verify(state)

    def test_spmv_stride_spreads_gather(self):
        w = SpmvWorkload(rows=64, row_nnz=4, stride=8)
        assert (w._colidx % 8 == 0).all()


class TestGenerators:
    def test_permutation_chain_is_single_cycle(self):
        from repro.workloads.generators import permutation_chain

        rng = np.random.default_rng(3)
        field = permutation_chain(rng, 64)
        w, seen = 0, set()
        for _ in range(64):
            assert w not in seen
            seen.add(w)
            w = int(field[w])
        assert w == 0 and len(seen) == 64

    def test_segmented_chain_respects_segments(self):
        from repro.workloads.generators import segmented_chain

        rng = np.random.default_rng(3)
        field = segmented_chain(rng, 128, 32)
        assert (field[:32] < 32).all()
        assert (field[32:] >= 32).all()

    def test_mixed_starts_fractions(self):
        from repro.workloads.generators import mixed_starts

        rng = np.random.default_rng(3)
        starts = mixed_starts(rng, 1000, 1 << 16, 1 << 10, 0.9)
        hot = (starts < (1 << 10)).mean()
        assert 0.85 < hot < 0.95

    def test_hash_chains_reach_every_record(self):
        from repro.workloads.generators import build_hash_chains

        rng = np.random.default_rng(3)
        keys = rng.integers(0, 1 << 16, size=200, dtype=np.int64)
        head, nxt = build_hash_chains(keys, 32)
        visited = set()
        for h in range(32):
            p = int(head[h])
            while p != -1:
                assert p not in visited
                visited.add(p)
                p = int(nxt[p])
        assert visited == set(range(200))

    def test_distance_matrix_diagonal_zero(self):
        from repro.workloads.generators import random_distance_matrix

        rng = np.random.default_rng(3)
        mat = random_distance_matrix(rng, 10)
        assert (np.diag(mat) == 0).all()
        assert (mat >= 0).all()

    def test_rays_normalised(self):
        from repro.workloads.generators import random_rays

        rng = np.random.default_rng(3)
        rays = random_rays(rng, 50)
        norms = np.sqrt(rays["dx"]**2 + rays["dy"]**2 + rays["dz"]**2)
        assert np.allclose(norms, 1.0)
