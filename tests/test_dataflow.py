"""Tests for reaching definitions, def-use chains and the PFG."""

from repro.asm.builder import ProgramBuilder
from repro.isa.registers import parse_reg
from repro.slicer.dataflow import ENTRY_DEF, compute_def_use
from repro.slicer.pfg import ProgramFlowGraph

from .conftest import build_counting_loop


def t(name):
    return parse_reg(name)


class TestStraightLine:
    def test_simple_chain(self):
        b = ProgramBuilder()
        b.li("t0", 1)          # 0
        b.addi("t1", "t0", 2)  # 1
        b.add("t2", "t0", "t1")  # 2
        b.halt()
        du = compute_def_use(b.build())
        assert du.defs_for_use(1, t("t0")) == {0}
        assert du.defs_for_use(2, t("t0")) == {0}
        assert du.defs_for_use(2, t("t1")) == {1}
        assert (2, t("t0")) in du.uses_of_def[0]

    def test_redefinition_kills(self):
        b = ProgramBuilder()
        b.li("t0", 1)          # 0
        b.li("t0", 2)          # 1
        b.mov("t1", "t0")      # 2
        b.halt()
        du = compute_def_use(b.build())
        assert du.defs_for_use(2, t("t0")) == {1}
        assert du.uses_of_def.get(0, set()) == set()

    def test_entry_def_for_uninitialised(self):
        b = ProgramBuilder()
        b.mov("t1", "sp")      # 0: sp defined at entry
        b.halt()
        du = compute_def_use(b.build())
        assert du.defs_for_use(0, t("sp")) == {ENTRY_DEF}


class TestAcrossBlocks:
    def test_loop_carried_definition(self):
        p = build_counting_loop()
        du = compute_def_use(p)
        # `add t2, t2, t0` at pc 3 sees both the preheader li (pc 2) and
        # its own result from the previous iteration (pc 3).
        assert du.defs_for_use(3, t("t2")) == {2, 3}
        # t0 at pc 3 sees the preheader li (pc 0) and the loop addi (pc 4).
        assert du.defs_for_use(3, t("t0")) == {0, 4}

    def test_merge_of_two_paths(self):
        b = ProgramBuilder()
        b.li("t9", 0)            # 0
        b.beq("t9", "zero", "other")  # 1
        b.li("t0", 1)            # 2
        b.j("join")              # 3
        b.label("other")
        b.li("t0", 2)            # 4
        b.label("join")
        b.mov("t1", "t0")        # 5
        b.halt()
        du = compute_def_use(b.build())
        assert du.defs_for_use(5, t("t0")) == {2, 4}

    def test_partial_redefinition_keeps_entry(self):
        b = ProgramBuilder()
        b.li("t9", 1)                # 0
        b.beq("t9", "zero", "skip")  # 1
        b.li("t0", 7)                # 2
        b.label("skip")
        b.mov("t1", "t0")            # 3
        b.halt()
        du = compute_def_use(b.build())
        # Along the taken path t0 still holds its entry value.
        assert du.defs_for_use(3, t("t0")) == {2, ENTRY_DEF}


class TestPfg:
    def test_parents(self):
        b = ProgramBuilder()
        b.li("t0", 4)            # 0
        b.slli("t1", "t0", 3)    # 1
        b.ld("t2", 0, "t1")      # 2
        b.halt()
        pfg = ProgramFlowGraph.build(b.build())
        assert pfg.parents(2) == {1}
        assert pfg.parents(1) == {0}
        assert pfg.parents(0) == set()

    def test_children(self):
        b = ProgramBuilder()
        b.li("t0", 4)
        b.add("t1", "t0", "t0")
        b.halt()
        pfg = ProgramFlowGraph.build(b.build())
        assert (1, t("t0")) in pfg.children(0)

    def test_backward_slice_transitive(self):
        b = ProgramBuilder()
        b.li("t0", 4)            # 0
        b.addi("t1", "t0", 8)    # 1
        b.li("t5", 9)            # 2  (not in slice)
        b.slli("t2", "t1", 3)    # 3
        b.ld("t3", 0, "t2")      # 4
        b.halt()
        pfg = ProgramFlowGraph.build(b.build())
        slice_pcs = pfg.backward_slice({4: (t("t2"),)})
        assert slice_pcs == {0, 1, 3, 4}

    def test_slice_chases_all_sources_of_members(self):
        b = ProgramBuilder()
        b.li("t0", 1)            # 0
        b.li("t1", 2)            # 1
        b.add("t2", "t0", "t1")  # 2
        b.ld("t3", 0, "t2")      # 3
        b.halt()
        pfg = ProgramFlowGraph.build(b.build())
        assert pfg.backward_slice({3: (t("t2"),)}) == {0, 1, 2, 3}

    def test_networkx_export(self):
        pfg = ProgramFlowGraph.build(build_counting_loop())
        g = pfg.to_networkx()
        assert g.number_of_nodes() == len(pfg.program.text)
        assert g.number_of_edges() > 0
