"""Golden-model equivalence of the dispatch-table interpreter fast path.

``FunctionalSimulator.run(fast=True)`` (the default) executes through
per-instruction pre-bound step closures; ``fast=False`` is the legacy
if/elif interpreter.  The two must be *architecturally identical*: same
final registers, same memory image (checked page by page), same dynamic
trace (which pins load/store order and effective addresses), same step
count, and the same exceptions on the error paths.  Ditto for the
decoupled executor, whose closures are pre-bound per stream.
"""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.sim.functional import (
    DecoupledFunctionalSimulator,
    FunctionalSimulator,
)
from repro.slicer import compile_hidisc
from repro.workloads import quick_workloads

SEED = 2003


def _quick_programs():
    return [(w.name, w.program) for w in quick_workloads(SEED)]


def _run_both(program, decoupled: bool):
    """Run fast and slow variants; returns both (sim, state, trace)."""
    results = []
    for fast in (True, False):
        if decoupled:
            sim = DecoupledFunctionalSimulator(program)
        else:
            sim = FunctionalSimulator(program)
        trace = []
        state = sim.run(trace=trace, fast=fast)
        results.append((sim, state, trace))
    return results


@pytest.mark.parametrize("name,program", _quick_programs())
def test_sequential_equivalence(name, program):
    (fsim, fstate, ftrace), (ssim, sstate, strace) = _run_both(
        program, decoupled=False)
    assert fstate.regs == sstate.regs, name
    assert fstate.pc == sstate.pc and fstate.halted == sstate.halted, name
    assert fsim.instructions_executed == ssim.instructions_executed, name
    assert ftrace == strace, name  # pins store order + effective addresses
    assert fstate.memory.equal_contents(sstate.memory), name


@pytest.mark.parametrize("name,program", _quick_programs())
def test_decoupled_equivalence(name, program):
    config = MachineConfig()
    annotated = compile_hidisc(program, config).decoupled
    (fsim, fap, ftrace), (ssim, sap, strace) = _run_both(
        annotated, decoupled=True)
    assert fap.regs == sap.regs, name
    assert fsim.cp_state.regs == ssim.cp_state.regs, name
    assert fap.pc == sap.pc and fap.halted == sap.halted, name
    assert fsim.cp_state.pc == ssim.cp_state.pc, name
    assert fsim.instructions_executed == ssim.instructions_executed, name
    assert ftrace == strace, name
    assert fap.memory.equal_contents(sap.memory), name


@pytest.mark.parametrize("name,program", _quick_programs())
def test_fast_path_matches_decoupled_golden_memory(name, program):
    """Fast sequential and fast decoupled runs still agree on memory —
    the separation-soundness check, now through the dispatch table."""
    config = MachineConfig()
    annotated = compile_hidisc(program, config).decoupled
    seq = FunctionalSimulator(program)
    seq_state = seq.run()
    dec = DecoupledFunctionalSimulator(annotated)
    dec_state = dec.run()
    assert seq_state.memory.equal_contents(dec_state.memory), name


def test_max_steps_error_identical(counting_loop):
    messages = []
    for fast in (True, False):
        with pytest.raises(SimulationError) as err:
            FunctionalSimulator(counting_loop).run(max_steps=5, fast=fast)
        messages.append(str(err.value))
    assert messages[0] == messages[1]


def test_div_by_zero_defined_identically():
    """Division by zero no longer traps: q = -1, r = dividend (RISC-V),
    identically on the dispatch-table and legacy paths."""
    from repro.asm.builder import ProgramBuilder

    b = ProgramBuilder("divzero")
    b.li("r1", 7)
    b.li("r2", 0)
    b.div("r3", "r1", "r2")
    b.rem("r4", "r1", "r2")
    b.li("r5", -9)
    b.rem("r6", "r5", "r2")
    b.halt()
    program = b.build()
    finals = []
    for fast in (True, False):
        state = FunctionalSimulator(program).run(fast=fast)
        finals.append(list(state.regs))
    assert finals[0] == finals[1]
    regs = finals[0]
    assert regs[3] == -1 and regs[4] == 7 and regs[6] == -9


# ----------------------------------------------------------------------
# ALU edge semantics as fast-vs-legacy parity properties (boundary
# operands + a seeded random sweep).  Each case materialises the operands
# with li64, runs one ALU op on both interpreter paths, and asserts the
# paths agree — and, where the architecture pins a value, that both match
# it.
# ----------------------------------------------------------------------

I64_MIN = -(1 << 63)
I64_MAX = (1 << 63) - 1

_RR_OPS = ("add", "sub", "mul", "div", "rem", "and_", "or_", "xor", "nor",
           "sll", "srl", "sra", "slt", "sltu")


def _alu_both(op_name: str, a: int, b: int) -> int:
    """Run ``rd = op(a, b)`` on both paths; assert parity; return rd."""
    from repro.asm.builder import ProgramBuilder

    builder = ProgramBuilder(f"edge_{op_name}")
    builder.li64("t0", a)
    builder.li64("t1", b)
    getattr(builder, op_name)("t2", "t0", "t1")
    builder.halt()
    program = builder.build()
    values = []
    for fast in (True, False):
        state = FunctionalSimulator(program).run(fast=fast)
        values.append(state.regs[10])  # t2
    assert values[0] == values[1], (op_name, a, b)
    return values[0]


@pytest.mark.parametrize("a,b,quotient,remainder", [
    (I64_MIN, -1, I64_MIN, 0),      # the overflow wrap
    (I64_MIN, 1, I64_MIN, 0),
    (I64_MIN, 0, -1, I64_MIN),      # division by zero: q=-1, r=a
    (I64_MAX, 0, -1, I64_MAX),
    (-7, 2, -3, -1),                # truncation toward zero
    (7, -2, -3, 1),                 # remainder sign follows dividend
])
def test_div_rem_boundary_parity(a, b, quotient, remainder):
    assert _alu_both("div", a, b) == quotient
    assert _alu_both("rem", a, b) == remainder


@pytest.mark.parametrize("amount", [64, 65, 127, 128, -1, -64, 63])
def test_shift_amounts_masked_identically(amount):
    """Shift amounts are taken mod 64 (the & 63 mask), including negative
    register values — -1 & 63 == 63 on both paths."""
    from repro.utils import to_signed64

    masked = amount & 63
    assert _alu_both("sll", 1, amount) == to_signed64(1 << masked)
    assert _alu_both("srl", -1, amount) == to_signed64(
        ((1 << 64) - 1) >> masked)
    assert _alu_both("sra", I64_MIN, amount) == I64_MIN >> masked


@pytest.mark.parametrize("a,b", [
    (I64_MIN, I64_MAX), (I64_MIN, -1), (I64_MAX, -1),
    (I64_MIN, I64_MIN), (I64_MAX, I64_MAX), (-1, 0),
])
def test_bitwise_sign_boundary_parity(a, b):
    import repro.utils as utils

    assert _alu_both("xor", a, b) == utils.to_signed64(a ^ b)
    assert _alu_both("nor", a, b) == utils.to_signed64(~(a | b))
    assert _alu_both("and_", a, b) == utils.to_signed64(a & b)
    assert _alu_both("or_", a, b) == utils.to_signed64(a | b)


def test_alu_edge_random_sweep():
    """Seeded random property sweep: every RR op, operands drawn from a
    boundary-heavy pool, fast and legacy paths bit-identical (one combined
    program per op keeps this fast)."""
    import random

    from repro.asm.builder import ProgramBuilder

    rng = random.Random(2003)
    pool = [0, 1, -1, 2, -2, 63, 64, 65, I64_MIN, I64_MAX,
            I64_MIN + 1, I64_MAX - 1, 1 << 32, -(1 << 32)]
    for op_name in _RR_OPS:
        builder = ProgramBuilder(f"sweep_{op_name}")
        out = builder.data_space("out", 40 * 8)
        builder.la("s0", "out")
        for slot in range(40):
            a = rng.choice(pool) if rng.random() < 0.7 else rng.getrandbits(64) - (1 << 63)
            b = rng.choice(pool) if rng.random() < 0.7 else rng.getrandbits(64) - (1 << 63)
            builder.li64("t0", a)
            builder.li64("t1", b)
            getattr(builder, op_name)("t2", "t0", "t1")
            builder.sd("t2", slot * 8, "s0")
        builder.halt()
        program = builder.build()
        images = []
        for fast in (True, False):
            state = FunctionalSimulator(program).run(fast=fast)
            images.append(state.memory.read_bytes(out, 40 * 8))
        assert images[0] == images[1], op_name


def test_missing_stream_annotation_raises_at_call_time(counting_loop):
    """An unannotated program builds a decoupled table fine; execution of
    the first unannotated instruction raises exactly like the slow path."""
    messages = []
    for fast in (True, False):
        sim = DecoupledFunctionalSimulator(counting_loop)
        with pytest.raises(SimulationError) as err:
            sim.run(fast=fast)
        messages.append(str(err.value))
    assert messages[0] == messages[1]
    assert "no stream annotation" in messages[0]
