"""Golden-model equivalence of the dispatch-table interpreter fast path.

``FunctionalSimulator.run(fast=True)`` (the default) executes through
per-instruction pre-bound step closures; ``fast=False`` is the legacy
if/elif interpreter.  The two must be *architecturally identical*: same
final registers, same memory image (checked page by page), same dynamic
trace (which pins load/store order and effective addresses), same step
count, and the same exceptions on the error paths.  Ditto for the
decoupled executor, whose closures are pre-bound per stream.
"""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.errors import SimulationError
from repro.sim.functional import (
    DecoupledFunctionalSimulator,
    FunctionalSimulator,
)
from repro.slicer import compile_hidisc
from repro.workloads import quick_workloads

SEED = 2003


def _quick_programs():
    return [(w.name, w.program) for w in quick_workloads(SEED)]


def _run_both(program, decoupled: bool):
    """Run fast and slow variants; returns both (sim, state, trace)."""
    results = []
    for fast in (True, False):
        if decoupled:
            sim = DecoupledFunctionalSimulator(program)
        else:
            sim = FunctionalSimulator(program)
        trace = []
        state = sim.run(trace=trace, fast=fast)
        results.append((sim, state, trace))
    return results


@pytest.mark.parametrize("name,program", _quick_programs())
def test_sequential_equivalence(name, program):
    (fsim, fstate, ftrace), (ssim, sstate, strace) = _run_both(
        program, decoupled=False)
    assert fstate.regs == sstate.regs, name
    assert fstate.pc == sstate.pc and fstate.halted == sstate.halted, name
    assert fsim.instructions_executed == ssim.instructions_executed, name
    assert ftrace == strace, name  # pins store order + effective addresses
    assert fstate.memory.equal_contents(sstate.memory), name


@pytest.mark.parametrize("name,program", _quick_programs())
def test_decoupled_equivalence(name, program):
    config = MachineConfig()
    annotated = compile_hidisc(program, config).decoupled
    (fsim, fap, ftrace), (ssim, sap, strace) = _run_both(
        annotated, decoupled=True)
    assert fap.regs == sap.regs, name
    assert fsim.cp_state.regs == ssim.cp_state.regs, name
    assert fap.pc == sap.pc and fap.halted == sap.halted, name
    assert fsim.cp_state.pc == ssim.cp_state.pc, name
    assert fsim.instructions_executed == ssim.instructions_executed, name
    assert ftrace == strace, name
    assert fap.memory.equal_contents(sap.memory), name


@pytest.mark.parametrize("name,program", _quick_programs())
def test_fast_path_matches_decoupled_golden_memory(name, program):
    """Fast sequential and fast decoupled runs still agree on memory —
    the separation-soundness check, now through the dispatch table."""
    config = MachineConfig()
    annotated = compile_hidisc(program, config).decoupled
    seq = FunctionalSimulator(program)
    seq_state = seq.run()
    dec = DecoupledFunctionalSimulator(annotated)
    dec_state = dec.run()
    assert seq_state.memory.equal_contents(dec_state.memory), name


def test_max_steps_error_identical(counting_loop):
    messages = []
    for fast in (True, False):
        with pytest.raises(SimulationError) as err:
            FunctionalSimulator(counting_loop).run(max_steps=5, fast=fast)
        messages.append(str(err.value))
    assert messages[0] == messages[1]


def test_div_by_zero_error_identical():
    from repro.asm.builder import ProgramBuilder

    b = ProgramBuilder("divzero")
    b.li("r1", 1)
    b.li("r2", 0)
    b.div("r3", "r1", "r2")
    b.halt()
    program = b.build()
    messages = []
    for fast in (True, False):
        with pytest.raises(SimulationError) as err:
            FunctionalSimulator(program).run(fast=fast)
        messages.append(str(err.value))
    assert messages[0] == messages[1]
    assert "division by zero" in messages[0]


def test_missing_stream_annotation_raises_at_call_time(counting_loop):
    """An unannotated program builds a decoupled table fine; execution of
    the first unannotated instruction raises exactly like the slow path."""
    messages = []
    for fast in (True, False):
        sim = DecoupledFunctionalSimulator(counting_loop)
        with pytest.raises(SimulationError) as err:
            sim.run(fast=fast)
        messages.append(str(err.value))
    assert messages[0] == messages[1]
    assert "no stream annotation" in messages[0]
