"""Crash-resumable suites and retry-with-backoff
(repro.experiments.checkpoint / .parallel / .suite).

The contract: an interrupted suite resumed with ``--resume`` replays only
the missing grid cells and produces a payload byte-identical to an
uninterrupted run modulo ``elapsed_seconds``; transient worker failures
retry with backoff while deterministic task errors fail fast.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.config import MachineConfig
from repro.errors import ConfigError, SimulationError
from repro.experiments import (
    MODEL_ORDER,
    RunCache,
    SuiteCheckpoint,
    Task,
    run_suite,
    run_tasks,
    suite_key,
)
from repro.workloads import FieldWorkload, get_workload


def small_workloads(seed: int = 2003):
    return [
        FieldWorkload(n=500, seed=seed),
        get_workload("transitive", quick=True, seed=seed),
    ]


def payload_json(suite) -> str:
    payload = suite.to_payload()
    payload.pop("elapsed_seconds")
    return json.dumps(payload, sort_keys=True)


def _count_run_models(monkeypatch):
    """Patch the suite's serial run_model with a counting wrapper."""
    import repro.experiments.suite as suite_mod

    calls = []
    real = suite_mod.run_model

    def counting(cw, config, mode, **kwargs):
        calls.append((cw.name, mode))
        return real(cw, config, mode, **kwargs)

    monkeypatch.setattr(suite_mod, "run_model", counting)
    return calls


# ----------------------------------------------------------------------
# Suite keys and the checkpoint store.

class TestSuiteKey:
    def test_deterministic(self, config):
        assert suite_key(config, small_workloads(), MODEL_ORDER) == \
            suite_key(config, small_workloads(), MODEL_ORDER)

    def test_config_changes_key(self, config):
        assert suite_key(config, small_workloads(), MODEL_ORDER) != \
            suite_key(config.with_latency(4, 40), small_workloads(),
                      MODEL_ORDER)

    def test_modes_and_workloads_change_key(self, config):
        base = suite_key(config, small_workloads(), MODEL_ORDER)
        assert base != suite_key(config, small_workloads(),
                                 ("superscalar",))
        assert base != suite_key(config, small_workloads(seed=7),
                                 MODEL_ORDER)

    def test_version_changes_key(self, config, monkeypatch):
        import repro

        before = suite_key(config, small_workloads(), MODEL_ORDER)
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert suite_key(config, small_workloads(), MODEL_ORDER) != before


class TestSuiteCheckpoint:
    def test_store_load_roundtrip(self, config, tmp_path):
        from repro.experiments import prepare
        from repro.experiments.runner import run_model

        cw = prepare(FieldWorkload(n=500), config)
        result = run_model(cw, config, "superscalar")
        ckpt = SuiteCheckpoint(tmp_path / "ck")
        ckpt.store("field", "superscalar", result)
        assert ckpt.stores == 1
        assert len(ckpt.cells()) == 1
        loaded = SuiteCheckpoint(tmp_path / "ck").load("field", "superscalar")
        assert loaded is not None
        assert loaded.cycles == result.cycles

    def test_missing_cell_loads_none(self, tmp_path):
        ckpt = SuiteCheckpoint(tmp_path / "ck")
        assert ckpt.load("field", "hidisc") is None

    def test_corrupt_cell_deleted_and_missing(self, tmp_path):
        ckpt = SuiteCheckpoint(tmp_path / "ck")
        ckpt.root.mkdir(parents=True)
        path = ckpt.cell_path("field", "hidisc")
        path.write_bytes(b"\x80garbage not a pickle")
        assert ckpt.load("field", "hidisc") is None
        assert ckpt.corrupt == 1
        assert not path.exists(), "corrupt cells must be evicted"

    def test_truncated_cell_detected_and_evicted(self, config, tmp_path):
        """A half-written pickle (crash/SIGKILL mid-``pickle.dump``) must
        load as None and be evicted, exactly like garbage bytes."""
        from repro.experiments import prepare
        from repro.experiments.runner import run_model

        cw = prepare(FieldWorkload(n=500), config)
        result = run_model(cw, config, "superscalar")
        ckpt = SuiteCheckpoint(tmp_path / "ck")
        ckpt.store("field", "superscalar", result)
        path = ckpt.cell_path("field", "superscalar")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        fresh = SuiteCheckpoint(tmp_path / "ck")
        assert fresh.load("field", "superscalar") is None
        assert fresh.corrupt == 1
        assert not path.exists(), "truncated cells must be evicted"

    def test_mislabeled_cell_rejected(self, config, tmp_path):
        """A cell whose payload names a different benchmark (e.g. a renamed
        file) is evicted, not returned."""
        from repro.experiments import prepare
        from repro.experiments.runner import run_model

        cw = prepare(FieldWorkload(n=500), config)
        result = run_model(cw, config, "superscalar")
        ckpt = SuiteCheckpoint(tmp_path / "ck")
        ckpt.store("field", "superscalar", result)
        ckpt.cell_path("field", "superscalar").rename(
            ckpt.cell_path("pointer", "superscalar"))
        assert ckpt.load("pointer", "superscalar") is None
        assert ckpt.corrupt == 1

    def test_unwritable_root_degrades_to_noop(self):
        ckpt = SuiteCheckpoint("/proc/definitely/not/writable")
        ckpt.store("field", "hidisc", object())
        assert ckpt.stores == 0

    def test_clear_removes_cells(self, config, tmp_path):
        from repro.experiments import prepare
        from repro.experiments.runner import run_model

        cw = prepare(FieldWorkload(n=500), config)
        ckpt = SuiteCheckpoint(tmp_path / "ck")
        for mode in ("superscalar", "hidisc"):
            ckpt.store("field", mode, run_model(cw, config, mode))
        assert ckpt.clear() == 2
        assert ckpt.cells() == []


# ----------------------------------------------------------------------
# Resumable suites.

class TestSuiteResume:
    def test_resume_without_cache_is_a_config_error(self, config):
        with pytest.raises(ConfigError, match="resume"):
            run_suite(config, quick=True, workloads=small_workloads(),
                      resume=True, cache=None)

    def test_cells_checkpoint_as_they_complete(self, config, tmp_path):
        cache = RunCache(tmp_path)
        run_suite(config, quick=True, workloads=small_workloads(),
                  cache=cache)
        ckpt = SuiteCheckpoint.for_suite(cache, config, small_workloads(),
                                         MODEL_ORDER)
        assert len(ckpt.cells()) == len(small_workloads()) * len(MODEL_ORDER)

    def test_full_resume_simulates_nothing(self, config, tmp_path,
                                           monkeypatch):
        cache = RunCache(tmp_path)
        first = run_suite(config, quick=True, workloads=small_workloads(),
                          cache=cache)
        calls = _count_run_models(monkeypatch)
        resumed = run_suite(config, quick=True, workloads=small_workloads(),
                            cache=RunCache(tmp_path), resume=True)
        assert calls == [], "a complete checkpoint must replay every cell"
        assert payload_json(resumed) == payload_json(first)

    def test_partial_resume_computes_only_missing(self, config, tmp_path,
                                                  monkeypatch):
        cache = RunCache(tmp_path)
        first = run_suite(config, quick=True, workloads=small_workloads(),
                          cache=cache)
        # Simulate a crash that lost the last benchmark's hidisc cells.
        ckpt = SuiteCheckpoint.for_suite(cache, config, small_workloads(),
                                         MODEL_ORDER)
        ckpt.cell_path("field", "hidisc").unlink()
        ckpt.cell_path("transitive", "cp_ap").unlink()
        calls = _count_run_models(monkeypatch)
        resumed = run_suite(config, quick=True, workloads=small_workloads(),
                            cache=RunCache(tmp_path), resume=True)
        assert sorted(calls) == [("field", "hidisc"),
                                 ("transitive", "cp_ap")]
        assert payload_json(resumed) == payload_json(first)

    def test_resume_recovers_from_corrupt_cell(self, config, tmp_path):
        cache = RunCache(tmp_path)
        first = run_suite(config, quick=True, workloads=small_workloads(),
                          cache=cache)
        ckpt = SuiteCheckpoint.for_suite(cache, config, small_workloads(),
                                         MODEL_ORDER)
        ckpt.cell_path("field", "superscalar").write_bytes(b"torn write")
        resumed = run_suite(config, quick=True, workloads=small_workloads(),
                            cache=RunCache(tmp_path), resume=True)
        assert payload_json(resumed) == payload_json(first)

    def test_parallel_resume_payload_parity(self, config, tmp_path):
        cache = RunCache(tmp_path)
        first = run_suite(config, quick=True, workloads=small_workloads(),
                          cache=cache, jobs=2)
        ckpt = SuiteCheckpoint.for_suite(cache, config, small_workloads(),
                                         MODEL_ORDER)
        assert len(ckpt.cells()) == len(small_workloads()) * len(MODEL_ORDER)
        ckpt.cell_path("field", "hidisc").unlink()
        ckpt.cell_path("field", "cp_cmp").unlink()
        resumed = run_suite(config, quick=True, workloads=small_workloads(),
                            cache=RunCache(tmp_path), resume=True, jobs=2)
        assert payload_json(resumed) == payload_json(first)

    def test_changed_config_does_not_reuse_cells(self, config, tmp_path,
                                                 monkeypatch):
        """A different machine configuration lands in a different suite
        directory, so --resume can never mix incompatible cells."""
        cache = RunCache(tmp_path)
        run_suite(config, quick=True, workloads=small_workloads(),
                  cache=cache)
        other = config.with_latency(4, 40)
        calls = _count_run_models(monkeypatch)
        run_suite(other, quick=True, workloads=small_workloads(),
                  cache=RunCache(tmp_path), resume=True)
        assert len(calls) == len(small_workloads()) * len(MODEL_ORDER)

    def test_run_cache_clear_removes_suite_cells(self, config, tmp_path):
        cache = RunCache(tmp_path)
        run_suite(config, quick=True, workloads=small_workloads(),
                  cache=cache)
        cells = len(small_workloads()) * len(MODEL_ORDER)
        removed = RunCache(tmp_path).clear()
        assert removed == cells + len(small_workloads())
        assert SuiteCheckpoint.for_suite(
            RunCache(tmp_path), config, small_workloads(), MODEL_ORDER
        ).cells() == []


# ----------------------------------------------------------------------
# Retry-with-backoff for transient worker failures.

def _identity_task(value):
    return value


def _flaky_in_worker(parent_pid, sentinel):
    """Dies hard in a worker on the first attempt; succeeds once the
    sentinel exists (and always succeeds in the parent)."""
    if os.getpid() != parent_pid and not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os._exit(3)
    return "ok"


def _record_then_raise(log_path):
    with open(log_path, "a") as fh:
        fh.write("attempt\n")
    raise SimulationError("deterministic failure")


def _sleep_in_worker(parent_pid, seconds):
    if os.getpid() != parent_pid:
        time.sleep(seconds)
    return "ok"


def _log_and_return(log_path, value):
    with open(log_path, "a") as fh:
        fh.write(value + "\n")
    return value


def _die_after_peer(parent_pid, peer_log, sentinel):
    """First worker-side attempt: wait until the peer task has finished
    (its log line exists), then die hard — so the round deterministically
    breaks *after* a result has already been delivered."""
    if os.getpid() != parent_pid and not os.path.exists(sentinel):
        deadline = time.time() + 10
        while not os.path.exists(peer_log) and time.time() < deadline:
            time.sleep(0.01)
        time.sleep(0.5)  # let the peer's result drain back to the parent
        with open(sentinel, "w"):
            pass
        os._exit(3)
    return "ok"


class TestRetryBackoff:
    def test_transient_failure_recovers_via_retry(self, tmp_path):
        parent = os.getpid()
        sentinel = str(tmp_path / "came-up")
        tasks = [Task(label=f"t{i}", fn=_flaky_in_worker,
                      args=(parent, sentinel)) for i in range(4)]
        messages = []
        assert run_tasks(tasks, jobs=2, progress=messages.append,
                         retries=2, backoff=0.01) == ["ok"] * 4
        text = "\n".join(messages)
        assert "rebuilding worker pool" in text
        assert "serially in-process" not in text, \
            "recovery must come from the retried pool, not the fallback"

    def test_retries_exhausted_falls_back_to_serial(self):
        parent = os.getpid()
        # No sentinel: workers always die; the parent-side fallback wins.
        tasks = [Task(label=f"t{i}", fn=_flaky_in_worker,
                      args=(parent, "/nonexistent/sentinel"))
                 for i in range(3)]
        messages = []
        assert run_tasks(tasks, jobs=2, progress=messages.append,
                         retries=1, backoff=0.01) == ["ok"] * 3
        assert "serially in-process" in "\n".join(messages)

    def test_deterministic_task_error_fails_fast(self, tmp_path):
        log = tmp_path / "attempts.log"
        tasks = [Task(label="good", fn=_identity_task, args=(1,)),
                 Task(label="bad", fn=_record_then_raise, args=(str(log),))]
        with pytest.raises(SimulationError, match="deterministic failure"):
            run_tasks(tasks, jobs=2, retries=3, backoff=0.01)
        assert log.read_text().count("attempt") == 1, \
            "a task-raised error must not be retried"

    def test_timeout_salvages_finished_results(self):
        parent = os.getpid()
        fast = Task(label="fast", fn=_identity_task, args=("done",))
        slow = Task(label="slow", fn=_sleep_in_worker, args=(parent, 5))
        delivered = []
        results = run_tasks([fast, slow], jobs=2, timeout=0.5, retries=0,
                            on_result=lambda i, r: delivered.append(i))
        assert results == ["done", "ok"]
        assert sorted(delivered) == [0, 1]

    def test_worker_death_mid_round_salvages_delivered_results(self,
                                                               tmp_path):
        """A worker SIGKILL mid-round must not lose or re-deliver results
        that already landed: the finished task is salvaged (computed once,
        delivered once) and only unfinished tasks are resubmitted."""
        parent = os.getpid()
        log = tmp_path / "ran.log"
        sentinel = str(tmp_path / "second-attempt")
        tasks = [Task(label="a", fn=_log_and_return, args=(str(log), "a")),
                 Task(label="boom", fn=_die_after_peer,
                      args=(parent, str(log), sentinel)),
                 Task(label="c", fn=_identity_task, args=("c",))]
        delivered = []
        messages = []
        results = run_tasks(tasks, jobs=2, retries=2, backoff=0.01,
                            progress=messages.append,
                            on_result=lambda i, r: delivered.append(i))
        assert results == ["a", "ok", "c"]
        assert sorted(delivered) == [0, 1, 2]
        assert len(delivered) == len(set(delivered)), \
            "salvaged results must not be re-delivered after the rebuild"
        assert "rebuilding worker pool" in "\n".join(messages)
        assert log.read_text().splitlines().count("a") == 1, \
            "a finished task must be salvaged, not recomputed"

    def test_on_result_fires_exactly_once_per_task(self):
        tasks = [Task(label=str(i), fn=_identity_task, args=(i,))
                 for i in range(8)]
        seen = []
        results = run_tasks(tasks, jobs=3,
                            on_result=lambda i, r: seen.append((i, r)))
        assert results == list(range(8))
        assert sorted(seen) == [(i, i) for i in range(8)]
